//! Workspace root crate for the eFactory reproduction.
//!
//! This crate only hosts the cross-crate integration tests (`tests/`) and the
//! runnable examples (`examples/`); the library surface re-exports the
//! member crates for convenience in those targets.

pub use efactory;
pub use efactory_baselines as baselines;
pub use efactory_checksum as checksum;
pub use efactory_harness as harness;
pub use efactory_pmem as pmem;
pub use efactory_rnic as rnic;
pub use efactory_sim as sim;
pub use efactory_ycsb as ycsb;
