/root/repo/target/release/deps/efactory_obs-0cbafece733af2d9.d: crates/obs/src/lib.rs crates/obs/src/hist.rs crates/obs/src/json.rs crates/obs/src/metrics.rs crates/obs/src/trace.rs

/root/repo/target/release/deps/libefactory_obs-0cbafece733af2d9.rlib: crates/obs/src/lib.rs crates/obs/src/hist.rs crates/obs/src/json.rs crates/obs/src/metrics.rs crates/obs/src/trace.rs

/root/repo/target/release/deps/libefactory_obs-0cbafece733af2d9.rmeta: crates/obs/src/lib.rs crates/obs/src/hist.rs crates/obs/src/json.rs crates/obs/src/metrics.rs crates/obs/src/trace.rs

crates/obs/src/lib.rs:
crates/obs/src/hist.rs:
crates/obs/src/json.rs:
crates/obs/src/metrics.rs:
crates/obs/src/trace.rs:
