/root/repo/target/release/deps/fig9-92272a2812e2c534.d: crates/bench/src/bin/fig9.rs

/root/repo/target/release/deps/fig9-92272a2812e2c534: crates/bench/src/bin/fig9.rs

crates/bench/src/bin/fig9.rs:
