/root/repo/target/release/deps/rand-2cbe846974825f0a.d: /root/shims/rand/src/lib.rs

/root/repo/target/release/deps/librand-2cbe846974825f0a.rlib: /root/shims/rand/src/lib.rs

/root/repo/target/release/deps/librand-2cbe846974825f0a.rmeta: /root/shims/rand/src/lib.rs

/root/shims/rand/src/lib.rs:
