/root/repo/target/release/deps/fig1-fd9c94eb6e508598.d: crates/bench/src/bin/fig1.rs

/root/repo/target/release/deps/fig1-fd9c94eb6e508598: crates/bench/src/bin/fig1.rs

crates/bench/src/bin/fig1.rs:
