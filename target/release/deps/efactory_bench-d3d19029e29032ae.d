/root/repo/target/release/deps/efactory_bench-d3d19029e29032ae.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/libefactory_bench-d3d19029e29032ae.rlib: crates/bench/src/lib.rs

/root/repo/target/release/deps/libefactory_bench-d3d19029e29032ae.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
