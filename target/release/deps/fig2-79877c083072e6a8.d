/root/repo/target/release/deps/fig2-79877c083072e6a8.d: crates/bench/src/bin/fig2.rs

/root/repo/target/release/deps/fig2-79877c083072e6a8: crates/bench/src/bin/fig2.rs

crates/bench/src/bin/fig2.rs:
