/root/repo/target/release/deps/serde-fc6e5996927424c9.d: /root/shims/serde/src/lib.rs

/root/repo/target/release/deps/libserde-fc6e5996927424c9.rlib: /root/shims/serde/src/lib.rs

/root/repo/target/release/deps/libserde-fc6e5996927424c9.rmeta: /root/shims/serde/src/lib.rs

/root/shims/serde/src/lib.rs:
