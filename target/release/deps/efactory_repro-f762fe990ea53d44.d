/root/repo/target/release/deps/efactory_repro-f762fe990ea53d44.d: src/lib.rs

/root/repo/target/release/deps/libefactory_repro-f762fe990ea53d44.rlib: src/lib.rs

/root/repo/target/release/deps/libefactory_repro-f762fe990ea53d44.rmeta: src/lib.rs

src/lib.rs:
