/root/repo/target/release/deps/efactory_sim-a87dfa25e6d6da1a.d: crates/sim/src/lib.rs crates/sim/src/chan.rs crates/sim/src/kernel.rs crates/sim/src/time.rs

/root/repo/target/release/deps/libefactory_sim-a87dfa25e6d6da1a.rlib: crates/sim/src/lib.rs crates/sim/src/chan.rs crates/sim/src/kernel.rs crates/sim/src/time.rs

/root/repo/target/release/deps/libefactory_sim-a87dfa25e6d6da1a.rmeta: crates/sim/src/lib.rs crates/sim/src/chan.rs crates/sim/src/kernel.rs crates/sim/src/time.rs

crates/sim/src/lib.rs:
crates/sim/src/chan.rs:
crates/sim/src/kernel.rs:
crates/sim/src/time.rs:
