/root/repo/target/release/deps/serde_derive-e141128145b94f9c.d: /root/shims/serde_derive/src/lib.rs

/root/repo/target/release/deps/libserde_derive-e141128145b94f9c.so: /root/shims/serde_derive/src/lib.rs

/root/shims/serde_derive/src/lib.rs:
