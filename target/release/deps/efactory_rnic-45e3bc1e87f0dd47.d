/root/repo/target/release/deps/efactory_rnic-45e3bc1e87f0dd47.d: crates/rnic/src/lib.rs crates/rnic/src/cost.rs crates/rnic/src/fabric.rs

/root/repo/target/release/deps/libefactory_rnic-45e3bc1e87f0dd47.rlib: crates/rnic/src/lib.rs crates/rnic/src/cost.rs crates/rnic/src/fabric.rs

/root/repo/target/release/deps/libefactory_rnic-45e3bc1e87f0dd47.rmeta: crates/rnic/src/lib.rs crates/rnic/src/cost.rs crates/rnic/src/fabric.rs

crates/rnic/src/lib.rs:
crates/rnic/src/cost.rs:
crates/rnic/src/fabric.rs:
