/root/repo/target/release/deps/efactory_rnic-9c61bf91212a8683.d: crates/rnic/src/lib.rs crates/rnic/src/cost.rs crates/rnic/src/fabric.rs

/root/repo/target/release/deps/libefactory_rnic-9c61bf91212a8683.rlib: crates/rnic/src/lib.rs crates/rnic/src/cost.rs crates/rnic/src/fabric.rs

/root/repo/target/release/deps/libefactory_rnic-9c61bf91212a8683.rmeta: crates/rnic/src/lib.rs crates/rnic/src/cost.rs crates/rnic/src/fabric.rs

crates/rnic/src/lib.rs:
crates/rnic/src/cost.rs:
crates/rnic/src/fabric.rs:
