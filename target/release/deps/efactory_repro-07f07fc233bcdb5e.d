/root/repo/target/release/deps/efactory_repro-07f07fc233bcdb5e.d: src/lib.rs

/root/repo/target/release/deps/libefactory_repro-07f07fc233bcdb5e.rlib: src/lib.rs

/root/repo/target/release/deps/libefactory_repro-07f07fc233bcdb5e.rmeta: src/lib.rs

src/lib.rs:
