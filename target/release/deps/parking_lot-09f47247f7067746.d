/root/repo/target/release/deps/parking_lot-09f47247f7067746.d: /root/shims/parking_lot/src/lib.rs

/root/repo/target/release/deps/libparking_lot-09f47247f7067746.rlib: /root/shims/parking_lot/src/lib.rs

/root/repo/target/release/deps/libparking_lot-09f47247f7067746.rmeta: /root/shims/parking_lot/src/lib.rs

/root/shims/parking_lot/src/lib.rs:
