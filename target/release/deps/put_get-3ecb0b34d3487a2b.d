/root/repo/target/release/deps/put_get-3ecb0b34d3487a2b.d: crates/bench/src/bin/put_get.rs

/root/repo/target/release/deps/put_get-3ecb0b34d3487a2b: crates/bench/src/bin/put_get.rs

crates/bench/src/bin/put_get.rs:
