/root/repo/target/release/deps/efactory_baselines-0f2bf2b05e152330.d: crates/baselines/src/lib.rs crates/baselines/src/ca_noper.rs crates/baselines/src/common.rs crates/baselines/src/erda.rs crates/baselines/src/forca.rs crates/baselines/src/imm.rs crates/baselines/src/rpc_store.rs crates/baselines/src/saw.rs

/root/repo/target/release/deps/libefactory_baselines-0f2bf2b05e152330.rlib: crates/baselines/src/lib.rs crates/baselines/src/ca_noper.rs crates/baselines/src/common.rs crates/baselines/src/erda.rs crates/baselines/src/forca.rs crates/baselines/src/imm.rs crates/baselines/src/rpc_store.rs crates/baselines/src/saw.rs

/root/repo/target/release/deps/libefactory_baselines-0f2bf2b05e152330.rmeta: crates/baselines/src/lib.rs crates/baselines/src/ca_noper.rs crates/baselines/src/common.rs crates/baselines/src/erda.rs crates/baselines/src/forca.rs crates/baselines/src/imm.rs crates/baselines/src/rpc_store.rs crates/baselines/src/saw.rs

crates/baselines/src/lib.rs:
crates/baselines/src/ca_noper.rs:
crates/baselines/src/common.rs:
crates/baselines/src/erda.rs:
crates/baselines/src/forca.rs:
crates/baselines/src/imm.rs:
crates/baselines/src/rpc_store.rs:
crates/baselines/src/saw.rs:
