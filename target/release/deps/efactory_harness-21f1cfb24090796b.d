/root/repo/target/release/deps/efactory_harness-21f1cfb24090796b.d: crates/harness/src/lib.rs crates/harness/src/cluster.rs crates/harness/src/stats.rs crates/harness/src/table.rs

/root/repo/target/release/deps/libefactory_harness-21f1cfb24090796b.rlib: crates/harness/src/lib.rs crates/harness/src/cluster.rs crates/harness/src/stats.rs crates/harness/src/table.rs

/root/repo/target/release/deps/libefactory_harness-21f1cfb24090796b.rmeta: crates/harness/src/lib.rs crates/harness/src/cluster.rs crates/harness/src/stats.rs crates/harness/src/table.rs

crates/harness/src/lib.rs:
crates/harness/src/cluster.rs:
crates/harness/src/stats.rs:
crates/harness/src/table.rs:
