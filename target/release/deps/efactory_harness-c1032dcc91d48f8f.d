/root/repo/target/release/deps/efactory_harness-c1032dcc91d48f8f.d: crates/harness/src/lib.rs crates/harness/src/cluster.rs crates/harness/src/report.rs crates/harness/src/stats.rs crates/harness/src/table.rs

/root/repo/target/release/deps/libefactory_harness-c1032dcc91d48f8f.rlib: crates/harness/src/lib.rs crates/harness/src/cluster.rs crates/harness/src/report.rs crates/harness/src/stats.rs crates/harness/src/table.rs

/root/repo/target/release/deps/libefactory_harness-c1032dcc91d48f8f.rmeta: crates/harness/src/lib.rs crates/harness/src/cluster.rs crates/harness/src/report.rs crates/harness/src/stats.rs crates/harness/src/table.rs

crates/harness/src/lib.rs:
crates/harness/src/cluster.rs:
crates/harness/src/report.rs:
crates/harness/src/stats.rs:
crates/harness/src/table.rs:
