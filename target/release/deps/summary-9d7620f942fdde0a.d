/root/repo/target/release/deps/summary-9d7620f942fdde0a.d: crates/bench/src/bin/summary.rs

/root/repo/target/release/deps/summary-9d7620f942fdde0a: crates/bench/src/bin/summary.rs

crates/bench/src/bin/summary.rs:
