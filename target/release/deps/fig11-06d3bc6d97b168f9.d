/root/repo/target/release/deps/fig11-06d3bc6d97b168f9.d: crates/bench/src/bin/fig11.rs

/root/repo/target/release/deps/fig11-06d3bc6d97b168f9: crates/bench/src/bin/fig11.rs

crates/bench/src/bin/fig11.rs:
