/root/repo/target/release/deps/efactory_pmem-217d84bf5263d200.d: crates/pmem/src/lib.rs

/root/repo/target/release/deps/libefactory_pmem-217d84bf5263d200.rlib: crates/pmem/src/lib.rs

/root/repo/target/release/deps/libefactory_pmem-217d84bf5263d200.rmeta: crates/pmem/src/lib.rs

crates/pmem/src/lib.rs:
