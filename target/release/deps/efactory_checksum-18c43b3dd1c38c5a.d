/root/repo/target/release/deps/efactory_checksum-18c43b3dd1c38c5a.d: crates/checksum/src/lib.rs

/root/repo/target/release/deps/libefactory_checksum-18c43b3dd1c38c5a.rlib: crates/checksum/src/lib.rs

/root/repo/target/release/deps/libefactory_checksum-18c43b3dd1c38c5a.rmeta: crates/checksum/src/lib.rs

crates/checksum/src/lib.rs:
