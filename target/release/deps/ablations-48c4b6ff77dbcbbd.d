/root/repo/target/release/deps/ablations-48c4b6ff77dbcbbd.d: crates/bench/src/bin/ablations.rs

/root/repo/target/release/deps/ablations-48c4b6ff77dbcbbd: crates/bench/src/bin/ablations.rs

crates/bench/src/bin/ablations.rs:
