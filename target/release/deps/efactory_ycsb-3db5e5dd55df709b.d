/root/repo/target/release/deps/efactory_ycsb-3db5e5dd55df709b.d: crates/ycsb/src/lib.rs

/root/repo/target/release/deps/libefactory_ycsb-3db5e5dd55df709b.rlib: crates/ycsb/src/lib.rs

/root/repo/target/release/deps/libefactory_ycsb-3db5e5dd55df709b.rmeta: crates/ycsb/src/lib.rs

crates/ycsb/src/lib.rs:
