/root/repo/target/release/deps/efactory_pmem-2ef93522ae88583b.d: crates/pmem/src/lib.rs

/root/repo/target/release/deps/libefactory_pmem-2ef93522ae88583b.rlib: crates/pmem/src/lib.rs

/root/repo/target/release/deps/libefactory_pmem-2ef93522ae88583b.rmeta: crates/pmem/src/lib.rs

crates/pmem/src/lib.rs:
