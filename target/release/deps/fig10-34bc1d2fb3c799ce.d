/root/repo/target/release/deps/fig10-34bc1d2fb3c799ce.d: crates/bench/src/bin/fig10.rs

/root/repo/target/release/deps/fig10-34bc1d2fb3c799ce: crates/bench/src/bin/fig10.rs

crates/bench/src/bin/fig10.rs:
