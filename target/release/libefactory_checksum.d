/root/repo/target/release/libefactory_checksum.rlib: /root/repo/crates/checksum/src/lib.rs
