/root/repo/target/debug/libefactory_ycsb.rlib: /root/repo/crates/ycsb/src/lib.rs /root/shims/rand/src/lib.rs
