/root/repo/target/debug/libefactory_checksum.rlib: /root/repo/crates/checksum/src/lib.rs
