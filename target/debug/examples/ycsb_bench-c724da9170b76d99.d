/root/repo/target/debug/examples/ycsb_bench-c724da9170b76d99.d: examples/ycsb_bench.rs

/root/repo/target/debug/examples/ycsb_bench-c724da9170b76d99: examples/ycsb_bench.rs

examples/ycsb_bench.rs:
