/root/repo/target/debug/examples/store_inspect-3a7de8a0c78900f4.d: examples/store_inspect.rs Cargo.toml

/root/repo/target/debug/examples/libstore_inspect-3a7de8a0c78900f4.rmeta: examples/store_inspect.rs Cargo.toml

examples/store_inspect.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
