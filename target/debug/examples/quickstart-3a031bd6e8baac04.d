/root/repo/target/debug/examples/quickstart-3a031bd6e8baac04.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-3a031bd6e8baac04: examples/quickstart.rs

examples/quickstart.rs:
