/root/repo/target/debug/examples/crash_recovery-45e031d53d4846f5.d: examples/crash_recovery.rs Cargo.toml

/root/repo/target/debug/examples/libcrash_recovery-45e031d53d4846f5.rmeta: examples/crash_recovery.rs Cargo.toml

examples/crash_recovery.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
