/root/repo/target/debug/examples/log_cleaning-b99bff832b494f94.d: examples/log_cleaning.rs

/root/repo/target/debug/examples/log_cleaning-b99bff832b494f94: examples/log_cleaning.rs

examples/log_cleaning.rs:
