/root/repo/target/debug/examples/crash_recovery-28d61691c118a2f0.d: examples/crash_recovery.rs

/root/repo/target/debug/examples/crash_recovery-28d61691c118a2f0: examples/crash_recovery.rs

examples/crash_recovery.rs:
