/root/repo/target/debug/examples/store_inspect-37a70701bdb74a54.d: examples/store_inspect.rs

/root/repo/target/debug/examples/store_inspect-37a70701bdb74a54: examples/store_inspect.rs

examples/store_inspect.rs:
