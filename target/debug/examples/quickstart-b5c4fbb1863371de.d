/root/repo/target/debug/examples/quickstart-b5c4fbb1863371de.d: examples/quickstart.rs Cargo.toml

/root/repo/target/debug/examples/libquickstart-b5c4fbb1863371de.rmeta: examples/quickstart.rs Cargo.toml

examples/quickstart.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
