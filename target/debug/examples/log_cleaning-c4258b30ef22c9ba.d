/root/repo/target/debug/examples/log_cleaning-c4258b30ef22c9ba.d: examples/log_cleaning.rs

/root/repo/target/debug/examples/log_cleaning-c4258b30ef22c9ba: examples/log_cleaning.rs

examples/log_cleaning.rs:
