/root/repo/target/debug/examples/ycsb_bench-2e15788a76991593.d: examples/ycsb_bench.rs

/root/repo/target/debug/examples/ycsb_bench-2e15788a76991593: examples/ycsb_bench.rs

examples/ycsb_bench.rs:
