/root/repo/target/debug/examples/ycsb_bench-8b625c8d28f6b5ae.d: examples/ycsb_bench.rs Cargo.toml

/root/repo/target/debug/examples/libycsb_bench-8b625c8d28f6b5ae.rmeta: examples/ycsb_bench.rs Cargo.toml

examples/ycsb_bench.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
