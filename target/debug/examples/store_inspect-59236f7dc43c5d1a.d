/root/repo/target/debug/examples/store_inspect-59236f7dc43c5d1a.d: examples/store_inspect.rs

/root/repo/target/debug/examples/store_inspect-59236f7dc43c5d1a: examples/store_inspect.rs

examples/store_inspect.rs:
