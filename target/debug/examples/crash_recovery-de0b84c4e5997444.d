/root/repo/target/debug/examples/crash_recovery-de0b84c4e5997444.d: examples/crash_recovery.rs

/root/repo/target/debug/examples/crash_recovery-de0b84c4e5997444: examples/crash_recovery.rs

examples/crash_recovery.rs:
