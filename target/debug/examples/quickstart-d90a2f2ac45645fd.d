/root/repo/target/debug/examples/quickstart-d90a2f2ac45645fd.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-d90a2f2ac45645fd: examples/quickstart.rs

examples/quickstart.rs:
