/root/repo/target/debug/examples/log_cleaning-3a63ef0f2aa9228b.d: examples/log_cleaning.rs Cargo.toml

/root/repo/target/debug/examples/liblog_cleaning-3a63ef0f2aa9228b.rmeta: examples/log_cleaning.rs Cargo.toml

examples/log_cleaning.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
