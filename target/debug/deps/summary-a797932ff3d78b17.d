/root/repo/target/debug/deps/summary-a797932ff3d78b17.d: crates/bench/src/bin/summary.rs

/root/repo/target/debug/deps/summary-a797932ff3d78b17: crates/bench/src/bin/summary.rs

crates/bench/src/bin/summary.rs:
