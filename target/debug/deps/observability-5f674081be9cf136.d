/root/repo/target/debug/deps/observability-5f674081be9cf136.d: tests/observability.rs

/root/repo/target/debug/deps/observability-5f674081be9cf136: tests/observability.rs

tests/observability.rs:
