/root/repo/target/debug/deps/efactory_sim-ec0b1682d8028c9b.d: crates/sim/src/lib.rs crates/sim/src/chan.rs crates/sim/src/kernel.rs crates/sim/src/time.rs

/root/repo/target/debug/deps/libefactory_sim-ec0b1682d8028c9b.rlib: crates/sim/src/lib.rs crates/sim/src/chan.rs crates/sim/src/kernel.rs crates/sim/src/time.rs

/root/repo/target/debug/deps/libefactory_sim-ec0b1682d8028c9b.rmeta: crates/sim/src/lib.rs crates/sim/src/chan.rs crates/sim/src/kernel.rs crates/sim/src/time.rs

crates/sim/src/lib.rs:
crates/sim/src/chan.rs:
crates/sim/src/kernel.rs:
crates/sim/src/time.rs:
