/root/repo/target/debug/deps/serde-f6e9bd32394f741e.d: /root/shims/serde/src/lib.rs

/root/repo/target/debug/deps/libserde-f6e9bd32394f741e.rmeta: /root/shims/serde/src/lib.rs

/root/shims/serde/src/lib.rs:
