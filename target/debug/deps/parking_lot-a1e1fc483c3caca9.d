/root/repo/target/debug/deps/parking_lot-a1e1fc483c3caca9.d: /root/shims/parking_lot/src/lib.rs

/root/repo/target/debug/deps/libparking_lot-a1e1fc483c3caca9.rmeta: /root/shims/parking_lot/src/lib.rs

/root/shims/parking_lot/src/lib.rs:
