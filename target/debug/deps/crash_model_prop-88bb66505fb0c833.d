/root/repo/target/debug/deps/crash_model_prop-88bb66505fb0c833.d: tests/crash_model_prop.rs

/root/repo/target/debug/deps/crash_model_prop-88bb66505fb0c833: tests/crash_model_prop.rs

tests/crash_model_prop.rs:
