/root/repo/target/debug/deps/cross_system-ed5866deffea43c6.d: tests/cross_system.rs

/root/repo/target/debug/deps/cross_system-ed5866deffea43c6: tests/cross_system.rs

tests/cross_system.rs:
