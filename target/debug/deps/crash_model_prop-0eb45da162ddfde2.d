/root/repo/target/debug/deps/crash_model_prop-0eb45da162ddfde2.d: tests/crash_model_prop.rs Cargo.toml

/root/repo/target/debug/deps/libcrash_model_prop-0eb45da162ddfde2.rmeta: tests/crash_model_prop.rs Cargo.toml

tests/crash_model_prop.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
