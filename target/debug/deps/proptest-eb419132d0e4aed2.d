/root/repo/target/debug/deps/proptest-eb419132d0e4aed2.d: /root/shims/proptest/src/lib.rs

/root/repo/target/debug/deps/libproptest-eb419132d0e4aed2.rlib: /root/shims/proptest/src/lib.rs

/root/repo/target/debug/deps/libproptest-eb419132d0e4aed2.rmeta: /root/shims/proptest/src/lib.rs

/root/shims/proptest/src/lib.rs:
