/root/repo/target/debug/deps/serde_derive-9b24ea5138f424d5.d: /root/shims/serde_derive/src/lib.rs

/root/repo/target/debug/deps/libserde_derive-9b24ea5138f424d5.so: /root/shims/serde_derive/src/lib.rs

/root/shims/serde_derive/src/lib.rs:
