/root/repo/target/debug/deps/fig9-dadcc1bbdb95b128.d: crates/bench/src/bin/fig9.rs

/root/repo/target/debug/deps/fig9-dadcc1bbdb95b128: crates/bench/src/bin/fig9.rs

crates/bench/src/bin/fig9.rs:
