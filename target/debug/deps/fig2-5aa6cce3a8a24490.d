/root/repo/target/debug/deps/fig2-5aa6cce3a8a24490.d: crates/bench/src/bin/fig2.rs

/root/repo/target/debug/deps/fig2-5aa6cce3a8a24490: crates/bench/src/bin/fig2.rs

crates/bench/src/bin/fig2.rs:
