/root/repo/target/debug/deps/cleaning_recovery-39d182a9341377cc.d: crates/core/tests/cleaning_recovery.rs Cargo.toml

/root/repo/target/debug/deps/libcleaning_recovery-39d182a9341377cc.rmeta: crates/core/tests/cleaning_recovery.rs Cargo.toml

crates/core/tests/cleaning_recovery.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
