/root/repo/target/debug/deps/efactory_rnic-1efaf83615bf207f.d: crates/rnic/src/lib.rs crates/rnic/src/cost.rs crates/rnic/src/fabric.rs Cargo.toml

/root/repo/target/debug/deps/libefactory_rnic-1efaf83615bf207f.rmeta: crates/rnic/src/lib.rs crates/rnic/src/cost.rs crates/rnic/src/fabric.rs Cargo.toml

crates/rnic/src/lib.rs:
crates/rnic/src/cost.rs:
crates/rnic/src/fabric.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
