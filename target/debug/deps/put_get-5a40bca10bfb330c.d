/root/repo/target/debug/deps/put_get-5a40bca10bfb330c.d: crates/bench/src/bin/put_get.rs

/root/repo/target/debug/deps/put_get-5a40bca10bfb330c: crates/bench/src/bin/put_get.rs

crates/bench/src/bin/put_get.rs:
