/root/repo/target/debug/deps/fig2-f65827f4751abb91.d: crates/bench/src/bin/fig2.rs

/root/repo/target/debug/deps/fig2-f65827f4751abb91: crates/bench/src/bin/fig2.rs

crates/bench/src/bin/fig2.rs:
