/root/repo/target/debug/deps/cross_system-b7c4f0d47278ea39.d: tests/cross_system.rs

/root/repo/target/debug/deps/cross_system-b7c4f0d47278ea39: tests/cross_system.rs

tests/cross_system.rs:
