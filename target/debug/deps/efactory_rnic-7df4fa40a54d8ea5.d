/root/repo/target/debug/deps/efactory_rnic-7df4fa40a54d8ea5.d: crates/rnic/src/lib.rs crates/rnic/src/cost.rs crates/rnic/src/fabric.rs

/root/repo/target/debug/deps/efactory_rnic-7df4fa40a54d8ea5: crates/rnic/src/lib.rs crates/rnic/src/cost.rs crates/rnic/src/fabric.rs

crates/rnic/src/lib.rs:
crates/rnic/src/cost.rs:
crates/rnic/src/fabric.rs:
