/root/repo/target/debug/deps/efactory_sim-139c3c139ac8e633.d: crates/sim/src/lib.rs crates/sim/src/chan.rs crates/sim/src/kernel.rs crates/sim/src/time.rs Cargo.toml

/root/repo/target/debug/deps/libefactory_sim-139c3c139ac8e633.rmeta: crates/sim/src/lib.rs crates/sim/src/chan.rs crates/sim/src/kernel.rs crates/sim/src/time.rs Cargo.toml

crates/sim/src/lib.rs:
crates/sim/src/chan.rs:
crates/sim/src/kernel.rs:
crates/sim/src/time.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
