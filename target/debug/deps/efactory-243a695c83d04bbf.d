/root/repo/target/debug/deps/efactory-243a695c83d04bbf.d: crates/core/src/lib.rs crates/core/src/cleaner.rs crates/core/src/client.rs crates/core/src/hashtable.rs crates/core/src/inspect.rs crates/core/src/layout.rs crates/core/src/log.rs crates/core/src/protocol.rs crates/core/src/recovery.rs crates/core/src/server.rs crates/core/src/verifier.rs Cargo.toml

/root/repo/target/debug/deps/libefactory-243a695c83d04bbf.rmeta: crates/core/src/lib.rs crates/core/src/cleaner.rs crates/core/src/client.rs crates/core/src/hashtable.rs crates/core/src/inspect.rs crates/core/src/layout.rs crates/core/src/log.rs crates/core/src/protocol.rs crates/core/src/recovery.rs crates/core/src/server.rs crates/core/src/verifier.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/cleaner.rs:
crates/core/src/client.rs:
crates/core/src/hashtable.rs:
crates/core/src/inspect.rs:
crates/core/src/layout.rs:
crates/core/src/log.rs:
crates/core/src/protocol.rs:
crates/core/src/recovery.rs:
crates/core/src/server.rs:
crates/core/src/verifier.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
