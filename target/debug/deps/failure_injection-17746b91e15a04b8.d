/root/repo/target/debug/deps/failure_injection-17746b91e15a04b8.d: crates/core/tests/failure_injection.rs

/root/repo/target/debug/deps/failure_injection-17746b91e15a04b8: crates/core/tests/failure_injection.rs

crates/core/tests/failure_injection.rs:
