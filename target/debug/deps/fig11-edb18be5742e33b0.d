/root/repo/target/debug/deps/fig11-edb18be5742e33b0.d: crates/bench/src/bin/fig11.rs

/root/repo/target/debug/deps/fig11-edb18be5742e33b0: crates/bench/src/bin/fig11.rs

crates/bench/src/bin/fig11.rs:
