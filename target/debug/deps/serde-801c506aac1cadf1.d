/root/repo/target/debug/deps/serde-801c506aac1cadf1.d: /root/shims/serde/src/lib.rs

/root/repo/target/debug/deps/libserde-801c506aac1cadf1.rlib: /root/shims/serde/src/lib.rs

/root/repo/target/debug/deps/libserde-801c506aac1cadf1.rmeta: /root/shims/serde/src/lib.rs

/root/shims/serde/src/lib.rs:
