/root/repo/target/debug/deps/efactory_baselines-95b1b095dd3d5598.d: crates/baselines/src/lib.rs crates/baselines/src/ca_noper.rs crates/baselines/src/common.rs crates/baselines/src/erda.rs crates/baselines/src/forca.rs crates/baselines/src/imm.rs crates/baselines/src/rpc_store.rs crates/baselines/src/saw.rs Cargo.toml

/root/repo/target/debug/deps/libefactory_baselines-95b1b095dd3d5598.rmeta: crates/baselines/src/lib.rs crates/baselines/src/ca_noper.rs crates/baselines/src/common.rs crates/baselines/src/erda.rs crates/baselines/src/forca.rs crates/baselines/src/imm.rs crates/baselines/src/rpc_store.rs crates/baselines/src/saw.rs Cargo.toml

crates/baselines/src/lib.rs:
crates/baselines/src/ca_noper.rs:
crates/baselines/src/common.rs:
crates/baselines/src/erda.rs:
crates/baselines/src/forca.rs:
crates/baselines/src/imm.rs:
crates/baselines/src/rpc_store.rs:
crates/baselines/src/saw.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
