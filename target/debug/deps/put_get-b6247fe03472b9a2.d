/root/repo/target/debug/deps/put_get-b6247fe03472b9a2.d: crates/bench/src/bin/put_get.rs Cargo.toml

/root/repo/target/debug/deps/libput_get-b6247fe03472b9a2.rmeta: crates/bench/src/bin/put_get.rs Cargo.toml

crates/bench/src/bin/put_get.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
