/root/repo/target/debug/deps/determinism-debbaf2bc3bf0c3b.d: crates/sim/tests/determinism.rs Cargo.toml

/root/repo/target/debug/deps/libdeterminism-debbaf2bc3bf0c3b.rmeta: crates/sim/tests/determinism.rs Cargo.toml

crates/sim/tests/determinism.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
