/root/repo/target/debug/deps/determinism-ae5af522212bd63a.d: crates/sim/tests/determinism.rs

/root/repo/target/debug/deps/determinism-ae5af522212bd63a: crates/sim/tests/determinism.rs

crates/sim/tests/determinism.rs:
