/root/repo/target/debug/deps/fig11-fdd1f67a35c706bb.d: crates/bench/src/bin/fig11.rs

/root/repo/target/debug/deps/fig11-fdd1f67a35c706bb: crates/bench/src/bin/fig11.rs

crates/bench/src/bin/fig11.rs:
