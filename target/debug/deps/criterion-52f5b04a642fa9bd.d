/root/repo/target/debug/deps/criterion-52f5b04a642fa9bd.d: /root/shims/criterion/src/lib.rs

/root/repo/target/debug/deps/libcriterion-52f5b04a642fa9bd.rlib: /root/shims/criterion/src/lib.rs

/root/repo/target/debug/deps/libcriterion-52f5b04a642fa9bd.rmeta: /root/shims/criterion/src/lib.rs

/root/shims/criterion/src/lib.rs:
