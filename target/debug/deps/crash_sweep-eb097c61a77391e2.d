/root/repo/target/debug/deps/crash_sweep-eb097c61a77391e2.d: tests/crash_sweep.rs

/root/repo/target/debug/deps/crash_sweep-eb097c61a77391e2: tests/crash_sweep.rs

tests/crash_sweep.rs:
