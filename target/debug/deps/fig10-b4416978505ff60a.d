/root/repo/target/debug/deps/fig10-b4416978505ff60a.d: crates/bench/src/bin/fig10.rs

/root/repo/target/debug/deps/fig10-b4416978505ff60a: crates/bench/src/bin/fig10.rs

crates/bench/src/bin/fig10.rs:
