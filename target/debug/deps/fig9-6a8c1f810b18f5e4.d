/root/repo/target/debug/deps/fig9-6a8c1f810b18f5e4.d: crates/bench/src/bin/fig9.rs Cargo.toml

/root/repo/target/debug/deps/libfig9-6a8c1f810b18f5e4.rmeta: crates/bench/src/bin/fig9.rs Cargo.toml

crates/bench/src/bin/fig9.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
