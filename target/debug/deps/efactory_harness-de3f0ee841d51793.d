/root/repo/target/debug/deps/efactory_harness-de3f0ee841d51793.d: crates/harness/src/lib.rs crates/harness/src/cluster.rs crates/harness/src/stats.rs crates/harness/src/table.rs

/root/repo/target/debug/deps/efactory_harness-de3f0ee841d51793: crates/harness/src/lib.rs crates/harness/src/cluster.rs crates/harness/src/stats.rs crates/harness/src/table.rs

crates/harness/src/lib.rs:
crates/harness/src/cluster.rs:
crates/harness/src/stats.rs:
crates/harness/src/table.rs:
