/root/repo/target/debug/deps/model_check-5ebedc8c32cc4a97.d: tests/model_check.rs

/root/repo/target/debug/deps/model_check-5ebedc8c32cc4a97: tests/model_check.rs

tests/model_check.rs:
