/root/repo/target/debug/deps/simkernel-b8d3499cb3ec1388.d: crates/bench/benches/simkernel.rs Cargo.toml

/root/repo/target/debug/deps/libsimkernel-b8d3499cb3ec1388.rmeta: crates/bench/benches/simkernel.rs Cargo.toml

crates/bench/benches/simkernel.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
