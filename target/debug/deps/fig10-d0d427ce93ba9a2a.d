/root/repo/target/debug/deps/fig10-d0d427ce93ba9a2a.d: crates/bench/src/bin/fig10.rs Cargo.toml

/root/repo/target/debug/deps/libfig10-d0d427ce93ba9a2a.rmeta: crates/bench/src/bin/fig10.rs Cargo.toml

crates/bench/src/bin/fig10.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
