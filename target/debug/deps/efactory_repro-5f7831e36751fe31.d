/root/repo/target/debug/deps/efactory_repro-5f7831e36751fe31.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libefactory_repro-5f7831e36751fe31.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
