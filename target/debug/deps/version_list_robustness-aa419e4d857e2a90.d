/root/repo/target/debug/deps/version_list_robustness-aa419e4d857e2a90.d: tests/version_list_robustness.rs Cargo.toml

/root/repo/target/debug/deps/libversion_list_robustness-aa419e4d857e2a90.rmeta: tests/version_list_robustness.rs Cargo.toml

tests/version_list_robustness.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
