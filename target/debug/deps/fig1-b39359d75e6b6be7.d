/root/repo/target/debug/deps/fig1-b39359d75e6b6be7.d: crates/bench/src/bin/fig1.rs

/root/repo/target/debug/deps/fig1-b39359d75e6b6be7: crates/bench/src/bin/fig1.rs

crates/bench/src/bin/fig1.rs:
