/root/repo/target/debug/deps/efactory_pmem-9f070177be680be1.d: crates/pmem/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libefactory_pmem-9f070177be680be1.rmeta: crates/pmem/src/lib.rs Cargo.toml

crates/pmem/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
