/root/repo/target/debug/deps/summary-f3743ae4bdaafcc5.d: crates/bench/src/bin/summary.rs Cargo.toml

/root/repo/target/debug/deps/libsummary-f3743ae4bdaafcc5.rmeta: crates/bench/src/bin/summary.rs Cargo.toml

crates/bench/src/bin/summary.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
