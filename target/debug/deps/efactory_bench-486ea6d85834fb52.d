/root/repo/target/debug/deps/efactory_bench-486ea6d85834fb52.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/efactory_bench-486ea6d85834fb52: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
