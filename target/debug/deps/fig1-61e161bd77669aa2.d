/root/repo/target/debug/deps/fig1-61e161bd77669aa2.d: crates/bench/src/bin/fig1.rs Cargo.toml

/root/repo/target/debug/deps/libfig1-61e161bd77669aa2.rmeta: crates/bench/src/bin/fig1.rs Cargo.toml

crates/bench/src/bin/fig1.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
