/root/repo/target/debug/deps/fig1-c7bdf691e7604c34.d: crates/bench/src/bin/fig1.rs Cargo.toml

/root/repo/target/debug/deps/libfig1-c7bdf691e7604c34.rmeta: crates/bench/src/bin/fig1.rs Cargo.toml

crates/bench/src/bin/fig1.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
