/root/repo/target/debug/deps/fig10-d92b10b34962a053.d: crates/bench/src/bin/fig10.rs

/root/repo/target/debug/deps/fig10-d92b10b34962a053: crates/bench/src/bin/fig10.rs

crates/bench/src/bin/fig10.rs:
