/root/repo/target/debug/deps/efactory_pmem-b7e185697479c630.d: crates/pmem/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libefactory_pmem-b7e185697479c630.rmeta: crates/pmem/src/lib.rs Cargo.toml

crates/pmem/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
