/root/repo/target/debug/deps/efactory_bench-e2d76711667a807f.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libefactory_bench-e2d76711667a807f.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libefactory_bench-e2d76711667a807f.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
