/root/repo/target/debug/deps/put_get-c77176189a2cdc2d.d: crates/bench/benches/put_get.rs Cargo.toml

/root/repo/target/debug/deps/libput_get-c77176189a2cdc2d.rmeta: crates/bench/benches/put_get.rs Cargo.toml

crates/bench/benches/put_get.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
