/root/repo/target/debug/deps/efactory_e2e-4a31307b8eb73691.d: crates/core/tests/efactory_e2e.rs

/root/repo/target/debug/deps/efactory_e2e-4a31307b8eb73691: crates/core/tests/efactory_e2e.rs

crates/core/tests/efactory_e2e.rs:
