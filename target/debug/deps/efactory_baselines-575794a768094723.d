/root/repo/target/debug/deps/efactory_baselines-575794a768094723.d: crates/baselines/src/lib.rs crates/baselines/src/ca_noper.rs crates/baselines/src/common.rs crates/baselines/src/erda.rs crates/baselines/src/forca.rs crates/baselines/src/imm.rs crates/baselines/src/rpc_store.rs crates/baselines/src/saw.rs Cargo.toml

/root/repo/target/debug/deps/libefactory_baselines-575794a768094723.rmeta: crates/baselines/src/lib.rs crates/baselines/src/ca_noper.rs crates/baselines/src/common.rs crates/baselines/src/erda.rs crates/baselines/src/forca.rs crates/baselines/src/imm.rs crates/baselines/src/rpc_store.rs crates/baselines/src/saw.rs Cargo.toml

crates/baselines/src/lib.rs:
crates/baselines/src/ca_noper.rs:
crates/baselines/src/common.rs:
crates/baselines/src/erda.rs:
crates/baselines/src/forca.rs:
crates/baselines/src/imm.rs:
crates/baselines/src/rpc_store.rs:
crates/baselines/src/saw.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
