/root/repo/target/debug/deps/efactory-cf03752547dfa08f.d: crates/core/src/lib.rs crates/core/src/client.rs crates/core/src/cleaner.rs crates/core/src/hashtable.rs crates/core/src/inspect.rs crates/core/src/layout.rs crates/core/src/log.rs crates/core/src/protocol.rs crates/core/src/recovery.rs crates/core/src/server.rs crates/core/src/verifier.rs

/root/repo/target/debug/deps/libefactory-cf03752547dfa08f.rlib: crates/core/src/lib.rs crates/core/src/client.rs crates/core/src/cleaner.rs crates/core/src/hashtable.rs crates/core/src/inspect.rs crates/core/src/layout.rs crates/core/src/log.rs crates/core/src/protocol.rs crates/core/src/recovery.rs crates/core/src/server.rs crates/core/src/verifier.rs

/root/repo/target/debug/deps/libefactory-cf03752547dfa08f.rmeta: crates/core/src/lib.rs crates/core/src/client.rs crates/core/src/cleaner.rs crates/core/src/hashtable.rs crates/core/src/inspect.rs crates/core/src/layout.rs crates/core/src/log.rs crates/core/src/protocol.rs crates/core/src/recovery.rs crates/core/src/server.rs crates/core/src/verifier.rs

crates/core/src/lib.rs:
crates/core/src/client.rs:
crates/core/src/cleaner.rs:
crates/core/src/hashtable.rs:
crates/core/src/inspect.rs:
crates/core/src/layout.rs:
crates/core/src/log.rs:
crates/core/src/protocol.rs:
crates/core/src/recovery.rs:
crates/core/src/server.rs:
crates/core/src/verifier.rs:
