/root/repo/target/debug/deps/crash_sweep-8cc8e7d452cad45c.d: tests/crash_sweep.rs Cargo.toml

/root/repo/target/debug/deps/libcrash_sweep-8cc8e7d452cad45c.rmeta: tests/crash_sweep.rs Cargo.toml

tests/crash_sweep.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
