/root/repo/target/debug/deps/efactory_repro-b0c648683fd34f35.d: src/lib.rs

/root/repo/target/debug/deps/libefactory_repro-b0c648683fd34f35.rlib: src/lib.rs

/root/repo/target/debug/deps/libefactory_repro-b0c648683fd34f35.rmeta: src/lib.rs

src/lib.rs:
