/root/repo/target/debug/deps/efactory_ycsb-cc91286f7c3852d7.d: crates/ycsb/src/lib.rs

/root/repo/target/debug/deps/efactory_ycsb-cc91286f7c3852d7: crates/ycsb/src/lib.rs

crates/ycsb/src/lib.rs:
