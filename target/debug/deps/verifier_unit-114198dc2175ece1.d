/root/repo/target/debug/deps/verifier_unit-114198dc2175ece1.d: crates/core/tests/verifier_unit.rs

/root/repo/target/debug/deps/verifier_unit-114198dc2175ece1: crates/core/tests/verifier_unit.rs

crates/core/tests/verifier_unit.rs:
