/root/repo/target/debug/deps/efactory-bac27b989b44893b.d: crates/core/src/lib.rs crates/core/src/cleaner.rs crates/core/src/client.rs crates/core/src/hashtable.rs crates/core/src/inspect.rs crates/core/src/layout.rs crates/core/src/log.rs crates/core/src/protocol.rs crates/core/src/recovery.rs crates/core/src/server.rs crates/core/src/verifier.rs Cargo.toml

/root/repo/target/debug/deps/libefactory-bac27b989b44893b.rmeta: crates/core/src/lib.rs crates/core/src/cleaner.rs crates/core/src/client.rs crates/core/src/hashtable.rs crates/core/src/inspect.rs crates/core/src/layout.rs crates/core/src/log.rs crates/core/src/protocol.rs crates/core/src/recovery.rs crates/core/src/server.rs crates/core/src/verifier.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/cleaner.rs:
crates/core/src/client.rs:
crates/core/src/hashtable.rs:
crates/core/src/inspect.rs:
crates/core/src/layout.rs:
crates/core/src/log.rs:
crates/core/src/protocol.rs:
crates/core/src/recovery.rs:
crates/core/src/server.rs:
crates/core/src/verifier.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
