/root/repo/target/debug/deps/baselines_e2e-ae95678d3ba502bb.d: crates/baselines/tests/baselines_e2e.rs

/root/repo/target/debug/deps/baselines_e2e-ae95678d3ba502bb: crates/baselines/tests/baselines_e2e.rs

crates/baselines/tests/baselines_e2e.rs:
