/root/repo/target/debug/deps/cleaning_recovery-1780fa0995912e6b.d: crates/core/tests/cleaning_recovery.rs

/root/repo/target/debug/deps/cleaning_recovery-1780fa0995912e6b: crates/core/tests/cleaning_recovery.rs

crates/core/tests/cleaning_recovery.rs:
