/root/repo/target/debug/deps/version_list_robustness-626ab9ac1bed245a.d: tests/version_list_robustness.rs

/root/repo/target/debug/deps/version_list_robustness-626ab9ac1bed245a: tests/version_list_robustness.rs

tests/version_list_robustness.rs:
