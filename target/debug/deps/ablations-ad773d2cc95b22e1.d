/root/repo/target/debug/deps/ablations-ad773d2cc95b22e1.d: crates/bench/src/bin/ablations.rs

/root/repo/target/debug/deps/ablations-ad773d2cc95b22e1: crates/bench/src/bin/ablations.rs

crates/bench/src/bin/ablations.rs:
