/root/repo/target/debug/deps/baselines_e2e-e9bc923c6e1f1b5c.d: crates/baselines/tests/baselines_e2e.rs Cargo.toml

/root/repo/target/debug/deps/libbaselines_e2e-e9bc923c6e1f1b5c.rmeta: crates/baselines/tests/baselines_e2e.rs Cargo.toml

crates/baselines/tests/baselines_e2e.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
