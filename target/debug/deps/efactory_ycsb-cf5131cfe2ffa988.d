/root/repo/target/debug/deps/efactory_ycsb-cf5131cfe2ffa988.d: crates/ycsb/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libefactory_ycsb-cf5131cfe2ffa988.rmeta: crates/ycsb/src/lib.rs Cargo.toml

crates/ycsb/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
