/root/repo/target/debug/deps/ablations-f9a87c7c0d0505de.d: crates/bench/src/bin/ablations.rs

/root/repo/target/debug/deps/ablations-f9a87c7c0d0505de: crates/bench/src/bin/ablations.rs

crates/bench/src/bin/ablations.rs:
