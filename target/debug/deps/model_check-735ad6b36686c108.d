/root/repo/target/debug/deps/model_check-735ad6b36686c108.d: tests/model_check.rs Cargo.toml

/root/repo/target/debug/deps/libmodel_check-735ad6b36686c108.rmeta: tests/model_check.rs Cargo.toml

tests/model_check.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
