/root/repo/target/debug/deps/version_list_robustness-fb9f102fdff76608.d: tests/version_list_robustness.rs

/root/repo/target/debug/deps/version_list_robustness-fb9f102fdff76608: tests/version_list_robustness.rs

tests/version_list_robustness.rs:
