/root/repo/target/debug/deps/efactory_harness-65bc42110fab83bb.d: crates/harness/src/lib.rs crates/harness/src/cluster.rs crates/harness/src/stats.rs crates/harness/src/table.rs

/root/repo/target/debug/deps/libefactory_harness-65bc42110fab83bb.rlib: crates/harness/src/lib.rs crates/harness/src/cluster.rs crates/harness/src/stats.rs crates/harness/src/table.rs

/root/repo/target/debug/deps/libefactory_harness-65bc42110fab83bb.rmeta: crates/harness/src/lib.rs crates/harness/src/cluster.rs crates/harness/src/stats.rs crates/harness/src/table.rs

crates/harness/src/lib.rs:
crates/harness/src/cluster.rs:
crates/harness/src/stats.rs:
crates/harness/src/table.rs:
