/root/repo/target/debug/deps/efactory_repro-3a2ab5e7b213e9dd.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libefactory_repro-3a2ab5e7b213e9dd.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
