/root/repo/target/debug/deps/obs_trace-7a0443b1a0863844.d: crates/core/tests/obs_trace.rs

/root/repo/target/debug/deps/obs_trace-7a0443b1a0863844: crates/core/tests/obs_trace.rs

crates/core/tests/obs_trace.rs:
