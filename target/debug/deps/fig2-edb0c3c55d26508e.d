/root/repo/target/debug/deps/fig2-edb0c3c55d26508e.d: crates/bench/src/bin/fig2.rs

/root/repo/target/debug/deps/fig2-edb0c3c55d26508e: crates/bench/src/bin/fig2.rs

crates/bench/src/bin/fig2.rs:
