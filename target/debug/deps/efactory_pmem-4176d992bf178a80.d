/root/repo/target/debug/deps/efactory_pmem-4176d992bf178a80.d: crates/pmem/src/lib.rs

/root/repo/target/debug/deps/libefactory_pmem-4176d992bf178a80.rlib: crates/pmem/src/lib.rs

/root/repo/target/debug/deps/libefactory_pmem-4176d992bf178a80.rmeta: crates/pmem/src/lib.rs

crates/pmem/src/lib.rs:
