/root/repo/target/debug/deps/verifier_unit-6d2ee13dee203663.d: crates/core/tests/verifier_unit.rs Cargo.toml

/root/repo/target/debug/deps/libverifier_unit-6d2ee13dee203663.rmeta: crates/core/tests/verifier_unit.rs Cargo.toml

crates/core/tests/verifier_unit.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
