/root/repo/target/debug/deps/criterion-6f4e600c95611585.d: /root/shims/criterion/src/lib.rs

/root/repo/target/debug/deps/libcriterion-6f4e600c95611585.rmeta: /root/shims/criterion/src/lib.rs

/root/shims/criterion/src/lib.rs:
