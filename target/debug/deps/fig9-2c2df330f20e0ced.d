/root/repo/target/debug/deps/fig9-2c2df330f20e0ced.d: crates/bench/src/bin/fig9.rs

/root/repo/target/debug/deps/fig9-2c2df330f20e0ced: crates/bench/src/bin/fig9.rs

crates/bench/src/bin/fig9.rs:
