/root/repo/target/debug/deps/efactory_harness-32899af8a4eab905.d: crates/harness/src/lib.rs crates/harness/src/cluster.rs crates/harness/src/report.rs crates/harness/src/stats.rs crates/harness/src/table.rs Cargo.toml

/root/repo/target/debug/deps/libefactory_harness-32899af8a4eab905.rmeta: crates/harness/src/lib.rs crates/harness/src/cluster.rs crates/harness/src/report.rs crates/harness/src/stats.rs crates/harness/src/table.rs Cargo.toml

crates/harness/src/lib.rs:
crates/harness/src/cluster.rs:
crates/harness/src/report.rs:
crates/harness/src/stats.rs:
crates/harness/src/table.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
