/root/repo/target/debug/deps/efactory-b69ea7902eded7f2.d: crates/core/src/lib.rs crates/core/src/cleaner.rs crates/core/src/client.rs crates/core/src/hashtable.rs crates/core/src/inspect.rs crates/core/src/layout.rs crates/core/src/log.rs crates/core/src/protocol.rs crates/core/src/recovery.rs crates/core/src/server.rs crates/core/src/verifier.rs

/root/repo/target/debug/deps/libefactory-b69ea7902eded7f2.rlib: crates/core/src/lib.rs crates/core/src/cleaner.rs crates/core/src/client.rs crates/core/src/hashtable.rs crates/core/src/inspect.rs crates/core/src/layout.rs crates/core/src/log.rs crates/core/src/protocol.rs crates/core/src/recovery.rs crates/core/src/server.rs crates/core/src/verifier.rs

/root/repo/target/debug/deps/libefactory-b69ea7902eded7f2.rmeta: crates/core/src/lib.rs crates/core/src/cleaner.rs crates/core/src/client.rs crates/core/src/hashtable.rs crates/core/src/inspect.rs crates/core/src/layout.rs crates/core/src/log.rs crates/core/src/protocol.rs crates/core/src/recovery.rs crates/core/src/server.rs crates/core/src/verifier.rs

crates/core/src/lib.rs:
crates/core/src/cleaner.rs:
crates/core/src/client.rs:
crates/core/src/hashtable.rs:
crates/core/src/inspect.rs:
crates/core/src/layout.rs:
crates/core/src/log.rs:
crates/core/src/protocol.rs:
crates/core/src/recovery.rs:
crates/core/src/server.rs:
crates/core/src/verifier.rs:
