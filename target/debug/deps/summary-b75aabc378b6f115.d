/root/repo/target/debug/deps/summary-b75aabc378b6f115.d: crates/bench/src/bin/summary.rs

/root/repo/target/debug/deps/summary-b75aabc378b6f115: crates/bench/src/bin/summary.rs

crates/bench/src/bin/summary.rs:
