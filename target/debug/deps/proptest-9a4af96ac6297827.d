/root/repo/target/debug/deps/proptest-9a4af96ac6297827.d: /root/shims/proptest/src/lib.rs

/root/repo/target/debug/deps/libproptest-9a4af96ac6297827.rmeta: /root/shims/proptest/src/lib.rs

/root/shims/proptest/src/lib.rs:
