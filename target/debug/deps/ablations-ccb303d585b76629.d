/root/repo/target/debug/deps/ablations-ccb303d585b76629.d: crates/bench/src/bin/ablations.rs Cargo.toml

/root/repo/target/debug/deps/libablations-ccb303d585b76629.rmeta: crates/bench/src/bin/ablations.rs Cargo.toml

crates/bench/src/bin/ablations.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
