/root/repo/target/debug/deps/fig11-0c951c08011c6e0a.d: crates/bench/src/bin/fig11.rs Cargo.toml

/root/repo/target/debug/deps/libfig11-0c951c08011c6e0a.rmeta: crates/bench/src/bin/fig11.rs Cargo.toml

crates/bench/src/bin/fig11.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
