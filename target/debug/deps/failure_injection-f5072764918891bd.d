/root/repo/target/debug/deps/failure_injection-f5072764918891bd.d: crates/core/tests/failure_injection.rs

/root/repo/target/debug/deps/failure_injection-f5072764918891bd: crates/core/tests/failure_injection.rs

crates/core/tests/failure_injection.rs:
