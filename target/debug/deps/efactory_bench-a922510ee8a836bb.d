/root/repo/target/debug/deps/efactory_bench-a922510ee8a836bb.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libefactory_bench-a922510ee8a836bb.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
