/root/repo/target/debug/deps/efactory_repro-0763dbb750ab04b9.d: src/lib.rs

/root/repo/target/debug/deps/efactory_repro-0763dbb750ab04b9: src/lib.rs

src/lib.rs:
