/root/repo/target/debug/deps/efactory_pmem-8f9dc647ebcfcfac.d: crates/pmem/src/lib.rs

/root/repo/target/debug/deps/efactory_pmem-8f9dc647ebcfcfac: crates/pmem/src/lib.rs

crates/pmem/src/lib.rs:
