/root/repo/target/debug/deps/efactory_checksum-fa47e62690101219.d: crates/checksum/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libefactory_checksum-fa47e62690101219.rmeta: crates/checksum/src/lib.rs Cargo.toml

crates/checksum/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
