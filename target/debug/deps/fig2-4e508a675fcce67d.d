/root/repo/target/debug/deps/fig2-4e508a675fcce67d.d: crates/bench/src/bin/fig2.rs Cargo.toml

/root/repo/target/debug/deps/libfig2-4e508a675fcce67d.rmeta: crates/bench/src/bin/fig2.rs Cargo.toml

crates/bench/src/bin/fig2.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
