/root/repo/target/debug/deps/efactory_harness-61d9ba0fb6efe972.d: crates/harness/src/lib.rs crates/harness/src/cluster.rs crates/harness/src/report.rs crates/harness/src/stats.rs crates/harness/src/table.rs

/root/repo/target/debug/deps/efactory_harness-61d9ba0fb6efe972: crates/harness/src/lib.rs crates/harness/src/cluster.rs crates/harness/src/report.rs crates/harness/src/stats.rs crates/harness/src/table.rs

crates/harness/src/lib.rs:
crates/harness/src/cluster.rs:
crates/harness/src/report.rs:
crates/harness/src/stats.rs:
crates/harness/src/table.rs:
