/root/repo/target/debug/deps/efactory_sim-c2b46b72b2380a54.d: crates/sim/src/lib.rs crates/sim/src/chan.rs crates/sim/src/kernel.rs crates/sim/src/time.rs Cargo.toml

/root/repo/target/debug/deps/libefactory_sim-c2b46b72b2380a54.rmeta: crates/sim/src/lib.rs crates/sim/src/chan.rs crates/sim/src/kernel.rs crates/sim/src/time.rs Cargo.toml

crates/sim/src/lib.rs:
crates/sim/src/chan.rs:
crates/sim/src/kernel.rs:
crates/sim/src/time.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
