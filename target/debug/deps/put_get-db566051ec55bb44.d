/root/repo/target/debug/deps/put_get-db566051ec55bb44.d: crates/bench/src/bin/put_get.rs Cargo.toml

/root/repo/target/debug/deps/libput_get-db566051ec55bb44.rmeta: crates/bench/src/bin/put_get.rs Cargo.toml

crates/bench/src/bin/put_get.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
