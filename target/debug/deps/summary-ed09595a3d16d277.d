/root/repo/target/debug/deps/summary-ed09595a3d16d277.d: crates/bench/src/bin/summary.rs Cargo.toml

/root/repo/target/debug/deps/libsummary-ed09595a3d16d277.rmeta: crates/bench/src/bin/summary.rs Cargo.toml

crates/bench/src/bin/summary.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
