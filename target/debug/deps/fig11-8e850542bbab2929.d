/root/repo/target/debug/deps/fig11-8e850542bbab2929.d: crates/bench/src/bin/fig11.rs

/root/repo/target/debug/deps/fig11-8e850542bbab2929: crates/bench/src/bin/fig11.rs

crates/bench/src/bin/fig11.rs:
