/root/repo/target/debug/deps/efactory_obs-808e8cb33bfee8f2.d: crates/obs/src/lib.rs crates/obs/src/hist.rs crates/obs/src/json.rs crates/obs/src/metrics.rs crates/obs/src/trace.rs Cargo.toml

/root/repo/target/debug/deps/libefactory_obs-808e8cb33bfee8f2.rmeta: crates/obs/src/lib.rs crates/obs/src/hist.rs crates/obs/src/json.rs crates/obs/src/metrics.rs crates/obs/src/trace.rs Cargo.toml

crates/obs/src/lib.rs:
crates/obs/src/hist.rs:
crates/obs/src/json.rs:
crates/obs/src/metrics.rs:
crates/obs/src/trace.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
