/root/repo/target/debug/deps/crash_model_prop-02c03ab9d2ba7d42.d: tests/crash_model_prop.rs

/root/repo/target/debug/deps/crash_model_prop-02c03ab9d2ba7d42: tests/crash_model_prop.rs

tests/crash_model_prop.rs:
