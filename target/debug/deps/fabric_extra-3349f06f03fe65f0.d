/root/repo/target/debug/deps/fabric_extra-3349f06f03fe65f0.d: crates/rnic/tests/fabric_extra.rs

/root/repo/target/debug/deps/fabric_extra-3349f06f03fe65f0: crates/rnic/tests/fabric_extra.rs

crates/rnic/tests/fabric_extra.rs:
