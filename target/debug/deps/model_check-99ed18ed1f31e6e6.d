/root/repo/target/debug/deps/model_check-99ed18ed1f31e6e6.d: tests/model_check.rs

/root/repo/target/debug/deps/model_check-99ed18ed1f31e6e6: tests/model_check.rs

tests/model_check.rs:
