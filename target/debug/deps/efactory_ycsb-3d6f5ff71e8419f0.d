/root/repo/target/debug/deps/efactory_ycsb-3d6f5ff71e8419f0.d: crates/ycsb/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libefactory_ycsb-3d6f5ff71e8419f0.rmeta: crates/ycsb/src/lib.rs Cargo.toml

crates/ycsb/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
