/root/repo/target/debug/deps/efactory_obs-a8bf9cb5cdee5e0d.d: crates/obs/src/lib.rs crates/obs/src/hist.rs crates/obs/src/json.rs crates/obs/src/metrics.rs crates/obs/src/trace.rs

/root/repo/target/debug/deps/efactory_obs-a8bf9cb5cdee5e0d: crates/obs/src/lib.rs crates/obs/src/hist.rs crates/obs/src/json.rs crates/obs/src/metrics.rs crates/obs/src/trace.rs

crates/obs/src/lib.rs:
crates/obs/src/hist.rs:
crates/obs/src/json.rs:
crates/obs/src/metrics.rs:
crates/obs/src/trace.rs:
