/root/repo/target/debug/deps/efactory_bench-d1d4d5bd7023b9e5.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libefactory_bench-d1d4d5bd7023b9e5.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libefactory_bench-d1d4d5bd7023b9e5.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
