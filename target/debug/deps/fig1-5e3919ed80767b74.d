/root/repo/target/debug/deps/fig1-5e3919ed80767b74.d: crates/bench/src/bin/fig1.rs

/root/repo/target/debug/deps/fig1-5e3919ed80767b74: crates/bench/src/bin/fig1.rs

crates/bench/src/bin/fig1.rs:
