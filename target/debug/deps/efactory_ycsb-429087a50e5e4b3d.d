/root/repo/target/debug/deps/efactory_ycsb-429087a50e5e4b3d.d: crates/ycsb/src/lib.rs

/root/repo/target/debug/deps/libefactory_ycsb-429087a50e5e4b3d.rlib: crates/ycsb/src/lib.rs

/root/repo/target/debug/deps/libefactory_ycsb-429087a50e5e4b3d.rmeta: crates/ycsb/src/lib.rs

crates/ycsb/src/lib.rs:
