/root/repo/target/debug/deps/fig9-8373e2396925581a.d: crates/bench/src/bin/fig9.rs

/root/repo/target/debug/deps/fig9-8373e2396925581a: crates/bench/src/bin/fig9.rs

crates/bench/src/bin/fig9.rs:
