/root/repo/target/debug/deps/baselines_e2e-428a88a39492d79a.d: crates/baselines/tests/baselines_e2e.rs

/root/repo/target/debug/deps/baselines_e2e-428a88a39492d79a: crates/baselines/tests/baselines_e2e.rs

crates/baselines/tests/baselines_e2e.rs:
