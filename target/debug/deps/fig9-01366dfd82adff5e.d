/root/repo/target/debug/deps/fig9-01366dfd82adff5e.d: crates/bench/src/bin/fig9.rs

/root/repo/target/debug/deps/fig9-01366dfd82adff5e: crates/bench/src/bin/fig9.rs

crates/bench/src/bin/fig9.rs:
