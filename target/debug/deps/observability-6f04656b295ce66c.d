/root/repo/target/debug/deps/observability-6f04656b295ce66c.d: tests/observability.rs Cargo.toml

/root/repo/target/debug/deps/libobservability-6f04656b295ce66c.rmeta: tests/observability.rs Cargo.toml

tests/observability.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
