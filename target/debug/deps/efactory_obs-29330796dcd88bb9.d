/root/repo/target/debug/deps/efactory_obs-29330796dcd88bb9.d: crates/obs/src/lib.rs crates/obs/src/hist.rs crates/obs/src/json.rs crates/obs/src/metrics.rs crates/obs/src/trace.rs

/root/repo/target/debug/deps/libefactory_obs-29330796dcd88bb9.rlib: crates/obs/src/lib.rs crates/obs/src/hist.rs crates/obs/src/json.rs crates/obs/src/metrics.rs crates/obs/src/trace.rs

/root/repo/target/debug/deps/libefactory_obs-29330796dcd88bb9.rmeta: crates/obs/src/lib.rs crates/obs/src/hist.rs crates/obs/src/json.rs crates/obs/src/metrics.rs crates/obs/src/trace.rs

crates/obs/src/lib.rs:
crates/obs/src/hist.rs:
crates/obs/src/json.rs:
crates/obs/src/metrics.rs:
crates/obs/src/trace.rs:
