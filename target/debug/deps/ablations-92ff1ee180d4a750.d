/root/repo/target/debug/deps/ablations-92ff1ee180d4a750.d: crates/bench/src/bin/ablations.rs

/root/repo/target/debug/deps/ablations-92ff1ee180d4a750: crates/bench/src/bin/ablations.rs

crates/bench/src/bin/ablations.rs:
