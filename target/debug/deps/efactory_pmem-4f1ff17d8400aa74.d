/root/repo/target/debug/deps/efactory_pmem-4f1ff17d8400aa74.d: crates/pmem/src/lib.rs

/root/repo/target/debug/deps/efactory_pmem-4f1ff17d8400aa74: crates/pmem/src/lib.rs

crates/pmem/src/lib.rs:
