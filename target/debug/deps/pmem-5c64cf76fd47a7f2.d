/root/repo/target/debug/deps/pmem-5c64cf76fd47a7f2.d: crates/bench/benches/pmem.rs Cargo.toml

/root/repo/target/debug/deps/libpmem-5c64cf76fd47a7f2.rmeta: crates/bench/benches/pmem.rs Cargo.toml

crates/bench/benches/pmem.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
