/root/repo/target/debug/deps/fabric_extra-aee8e73500d95a63.d: crates/rnic/tests/fabric_extra.rs Cargo.toml

/root/repo/target/debug/deps/libfabric_extra-aee8e73500d95a63.rmeta: crates/rnic/tests/fabric_extra.rs Cargo.toml

crates/rnic/tests/fabric_extra.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
