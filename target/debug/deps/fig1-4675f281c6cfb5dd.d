/root/repo/target/debug/deps/fig1-4675f281c6cfb5dd.d: crates/bench/src/bin/fig1.rs

/root/repo/target/debug/deps/fig1-4675f281c6cfb5dd: crates/bench/src/bin/fig1.rs

crates/bench/src/bin/fig1.rs:
