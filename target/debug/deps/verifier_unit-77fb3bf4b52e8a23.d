/root/repo/target/debug/deps/verifier_unit-77fb3bf4b52e8a23.d: crates/core/tests/verifier_unit.rs

/root/repo/target/debug/deps/verifier_unit-77fb3bf4b52e8a23: crates/core/tests/verifier_unit.rs

crates/core/tests/verifier_unit.rs:
