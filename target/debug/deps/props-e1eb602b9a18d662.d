/root/repo/target/debug/deps/props-e1eb602b9a18d662.d: crates/core/tests/props.rs

/root/repo/target/debug/deps/props-e1eb602b9a18d662: crates/core/tests/props.rs

crates/core/tests/props.rs:
