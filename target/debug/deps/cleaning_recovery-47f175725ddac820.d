/root/repo/target/debug/deps/cleaning_recovery-47f175725ddac820.d: crates/core/tests/cleaning_recovery.rs

/root/repo/target/debug/deps/cleaning_recovery-47f175725ddac820: crates/core/tests/cleaning_recovery.rs

crates/core/tests/cleaning_recovery.rs:
