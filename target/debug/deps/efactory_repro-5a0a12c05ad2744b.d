/root/repo/target/debug/deps/efactory_repro-5a0a12c05ad2744b.d: src/lib.rs

/root/repo/target/debug/deps/libefactory_repro-5a0a12c05ad2744b.rlib: src/lib.rs

/root/repo/target/debug/deps/libefactory_repro-5a0a12c05ad2744b.rmeta: src/lib.rs

src/lib.rs:
