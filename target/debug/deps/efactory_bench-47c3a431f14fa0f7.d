/root/repo/target/debug/deps/efactory_bench-47c3a431f14fa0f7.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libefactory_bench-47c3a431f14fa0f7.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
