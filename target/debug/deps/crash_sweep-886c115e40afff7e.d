/root/repo/target/debug/deps/crash_sweep-886c115e40afff7e.d: tests/crash_sweep.rs

/root/repo/target/debug/deps/crash_sweep-886c115e40afff7e: tests/crash_sweep.rs

tests/crash_sweep.rs:
