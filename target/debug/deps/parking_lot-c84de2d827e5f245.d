/root/repo/target/debug/deps/parking_lot-c84de2d827e5f245.d: /root/shims/parking_lot/src/lib.rs

/root/repo/target/debug/deps/libparking_lot-c84de2d827e5f245.rlib: /root/shims/parking_lot/src/lib.rs

/root/repo/target/debug/deps/libparking_lot-c84de2d827e5f245.rmeta: /root/shims/parking_lot/src/lib.rs

/root/shims/parking_lot/src/lib.rs:
