/root/repo/target/debug/deps/efactory_repro-08681b0e5a32924e.d: src/lib.rs

/root/repo/target/debug/deps/libefactory_repro-08681b0e5a32924e.rlib: src/lib.rs

/root/repo/target/debug/deps/libefactory_repro-08681b0e5a32924e.rmeta: src/lib.rs

src/lib.rs:
