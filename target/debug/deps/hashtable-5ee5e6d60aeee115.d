/root/repo/target/debug/deps/hashtable-5ee5e6d60aeee115.d: crates/bench/benches/hashtable.rs Cargo.toml

/root/repo/target/debug/deps/libhashtable-5ee5e6d60aeee115.rmeta: crates/bench/benches/hashtable.rs Cargo.toml

crates/bench/benches/hashtable.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
