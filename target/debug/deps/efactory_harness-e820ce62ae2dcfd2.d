/root/repo/target/debug/deps/efactory_harness-e820ce62ae2dcfd2.d: crates/harness/src/lib.rs crates/harness/src/cluster.rs crates/harness/src/stats.rs crates/harness/src/table.rs

/root/repo/target/debug/deps/libefactory_harness-e820ce62ae2dcfd2.rlib: crates/harness/src/lib.rs crates/harness/src/cluster.rs crates/harness/src/stats.rs crates/harness/src/table.rs

/root/repo/target/debug/deps/libefactory_harness-e820ce62ae2dcfd2.rmeta: crates/harness/src/lib.rs crates/harness/src/cluster.rs crates/harness/src/stats.rs crates/harness/src/table.rs

crates/harness/src/lib.rs:
crates/harness/src/cluster.rs:
crates/harness/src/stats.rs:
crates/harness/src/table.rs:
