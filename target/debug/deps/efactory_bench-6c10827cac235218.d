/root/repo/target/debug/deps/efactory_bench-6c10827cac235218.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/efactory_bench-6c10827cac235218: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
