/root/repo/target/debug/deps/efactory_harness-164ae70d97d8ec50.d: crates/harness/src/lib.rs crates/harness/src/cluster.rs crates/harness/src/report.rs crates/harness/src/stats.rs crates/harness/src/table.rs

/root/repo/target/debug/deps/libefactory_harness-164ae70d97d8ec50.rlib: crates/harness/src/lib.rs crates/harness/src/cluster.rs crates/harness/src/report.rs crates/harness/src/stats.rs crates/harness/src/table.rs

/root/repo/target/debug/deps/libefactory_harness-164ae70d97d8ec50.rmeta: crates/harness/src/lib.rs crates/harness/src/cluster.rs crates/harness/src/report.rs crates/harness/src/stats.rs crates/harness/src/table.rs

crates/harness/src/lib.rs:
crates/harness/src/cluster.rs:
crates/harness/src/report.rs:
crates/harness/src/stats.rs:
crates/harness/src/table.rs:
