/root/repo/target/debug/deps/efactory_checksum-cd63dfaf1944f2c0.d: crates/checksum/src/lib.rs

/root/repo/target/debug/deps/efactory_checksum-cd63dfaf1944f2c0: crates/checksum/src/lib.rs

crates/checksum/src/lib.rs:
