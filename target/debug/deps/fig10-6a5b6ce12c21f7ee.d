/root/repo/target/debug/deps/fig10-6a5b6ce12c21f7ee.d: crates/bench/src/bin/fig10.rs

/root/repo/target/debug/deps/fig10-6a5b6ce12c21f7ee: crates/bench/src/bin/fig10.rs

crates/bench/src/bin/fig10.rs:
