/root/repo/target/debug/deps/fabric_extra-a1dcff43ec161d52.d: crates/rnic/tests/fabric_extra.rs

/root/repo/target/debug/deps/fabric_extra-a1dcff43ec161d52: crates/rnic/tests/fabric_extra.rs

crates/rnic/tests/fabric_extra.rs:
