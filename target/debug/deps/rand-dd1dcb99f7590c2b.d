/root/repo/target/debug/deps/rand-dd1dcb99f7590c2b.d: /root/shims/rand/src/lib.rs

/root/repo/target/debug/deps/librand-dd1dcb99f7590c2b.rmeta: /root/shims/rand/src/lib.rs

/root/shims/rand/src/lib.rs:
