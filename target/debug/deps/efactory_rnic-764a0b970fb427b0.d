/root/repo/target/debug/deps/efactory_rnic-764a0b970fb427b0.d: crates/rnic/src/lib.rs crates/rnic/src/cost.rs crates/rnic/src/fabric.rs

/root/repo/target/debug/deps/efactory_rnic-764a0b970fb427b0: crates/rnic/src/lib.rs crates/rnic/src/cost.rs crates/rnic/src/fabric.rs

crates/rnic/src/lib.rs:
crates/rnic/src/cost.rs:
crates/rnic/src/fabric.rs:
