/root/repo/target/debug/deps/summary-1de1521a0b6d3bf7.d: crates/bench/src/bin/summary.rs

/root/repo/target/debug/deps/summary-1de1521a0b6d3bf7: crates/bench/src/bin/summary.rs

crates/bench/src/bin/summary.rs:
