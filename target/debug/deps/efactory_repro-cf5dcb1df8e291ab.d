/root/repo/target/debug/deps/efactory_repro-cf5dcb1df8e291ab.d: src/lib.rs

/root/repo/target/debug/deps/efactory_repro-cf5dcb1df8e291ab: src/lib.rs

src/lib.rs:
