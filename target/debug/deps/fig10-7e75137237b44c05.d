/root/repo/target/debug/deps/fig10-7e75137237b44c05.d: crates/bench/src/bin/fig10.rs

/root/repo/target/debug/deps/fig10-7e75137237b44c05: crates/bench/src/bin/fig10.rs

crates/bench/src/bin/fig10.rs:
