/root/repo/target/debug/deps/efactory_obs-2165dd0e53833b69.d: crates/obs/src/lib.rs crates/obs/src/hist.rs crates/obs/src/json.rs crates/obs/src/metrics.rs crates/obs/src/trace.rs Cargo.toml

/root/repo/target/debug/deps/libefactory_obs-2165dd0e53833b69.rmeta: crates/obs/src/lib.rs crates/obs/src/hist.rs crates/obs/src/json.rs crates/obs/src/metrics.rs crates/obs/src/trace.rs Cargo.toml

crates/obs/src/lib.rs:
crates/obs/src/hist.rs:
crates/obs/src/json.rs:
crates/obs/src/metrics.rs:
crates/obs/src/trace.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
