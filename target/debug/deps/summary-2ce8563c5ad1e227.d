/root/repo/target/debug/deps/summary-2ce8563c5ad1e227.d: crates/bench/src/bin/summary.rs

/root/repo/target/debug/deps/summary-2ce8563c5ad1e227: crates/bench/src/bin/summary.rs

crates/bench/src/bin/summary.rs:
