/root/repo/target/debug/deps/props-9ed1f51875baa825.d: crates/core/tests/props.rs Cargo.toml

/root/repo/target/debug/deps/libprops-9ed1f51875baa825.rmeta: crates/core/tests/props.rs Cargo.toml

crates/core/tests/props.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
