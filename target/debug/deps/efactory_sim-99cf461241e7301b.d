/root/repo/target/debug/deps/efactory_sim-99cf461241e7301b.d: crates/sim/src/lib.rs crates/sim/src/chan.rs crates/sim/src/kernel.rs crates/sim/src/time.rs

/root/repo/target/debug/deps/efactory_sim-99cf461241e7301b: crates/sim/src/lib.rs crates/sim/src/chan.rs crates/sim/src/kernel.rs crates/sim/src/time.rs

crates/sim/src/lib.rs:
crates/sim/src/chan.rs:
crates/sim/src/kernel.rs:
crates/sim/src/time.rs:
