/root/repo/target/debug/deps/fig1-f456d333a88623f1.d: crates/bench/src/bin/fig1.rs

/root/repo/target/debug/deps/fig1-f456d333a88623f1: crates/bench/src/bin/fig1.rs

crates/bench/src/bin/fig1.rs:
