/root/repo/target/debug/deps/efactory_baselines-d600e5e88835c907.d: crates/baselines/src/lib.rs crates/baselines/src/ca_noper.rs crates/baselines/src/common.rs crates/baselines/src/erda.rs crates/baselines/src/forca.rs crates/baselines/src/imm.rs crates/baselines/src/rpc_store.rs crates/baselines/src/saw.rs

/root/repo/target/debug/deps/libefactory_baselines-d600e5e88835c907.rlib: crates/baselines/src/lib.rs crates/baselines/src/ca_noper.rs crates/baselines/src/common.rs crates/baselines/src/erda.rs crates/baselines/src/forca.rs crates/baselines/src/imm.rs crates/baselines/src/rpc_store.rs crates/baselines/src/saw.rs

/root/repo/target/debug/deps/libefactory_baselines-d600e5e88835c907.rmeta: crates/baselines/src/lib.rs crates/baselines/src/ca_noper.rs crates/baselines/src/common.rs crates/baselines/src/erda.rs crates/baselines/src/forca.rs crates/baselines/src/imm.rs crates/baselines/src/rpc_store.rs crates/baselines/src/saw.rs

crates/baselines/src/lib.rs:
crates/baselines/src/ca_noper.rs:
crates/baselines/src/common.rs:
crates/baselines/src/erda.rs:
crates/baselines/src/forca.rs:
crates/baselines/src/imm.rs:
crates/baselines/src/rpc_store.rs:
crates/baselines/src/saw.rs:
