/root/repo/target/debug/deps/efactory_rnic-d5b73e4d8cb651df.d: crates/rnic/src/lib.rs crates/rnic/src/cost.rs crates/rnic/src/fabric.rs

/root/repo/target/debug/deps/libefactory_rnic-d5b73e4d8cb651df.rlib: crates/rnic/src/lib.rs crates/rnic/src/cost.rs crates/rnic/src/fabric.rs

/root/repo/target/debug/deps/libefactory_rnic-d5b73e4d8cb651df.rmeta: crates/rnic/src/lib.rs crates/rnic/src/cost.rs crates/rnic/src/fabric.rs

crates/rnic/src/lib.rs:
crates/rnic/src/cost.rs:
crates/rnic/src/fabric.rs:
