/root/repo/target/debug/deps/efactory_rnic-6a7e0eb7c3efd4a9.d: crates/rnic/src/lib.rs crates/rnic/src/cost.rs crates/rnic/src/fabric.rs Cargo.toml

/root/repo/target/debug/deps/libefactory_rnic-6a7e0eb7c3efd4a9.rmeta: crates/rnic/src/lib.rs crates/rnic/src/cost.rs crates/rnic/src/fabric.rs Cargo.toml

crates/rnic/src/lib.rs:
crates/rnic/src/cost.rs:
crates/rnic/src/fabric.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
