/root/repo/target/debug/deps/put_get-fca8035cebc8344a.d: crates/bench/src/bin/put_get.rs

/root/repo/target/debug/deps/put_get-fca8035cebc8344a: crates/bench/src/bin/put_get.rs

crates/bench/src/bin/put_get.rs:
