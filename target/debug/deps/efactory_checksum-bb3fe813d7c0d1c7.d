/root/repo/target/debug/deps/efactory_checksum-bb3fe813d7c0d1c7.d: crates/checksum/src/lib.rs

/root/repo/target/debug/deps/libefactory_checksum-bb3fe813d7c0d1c7.rlib: crates/checksum/src/lib.rs

/root/repo/target/debug/deps/libefactory_checksum-bb3fe813d7c0d1c7.rmeta: crates/checksum/src/lib.rs

crates/checksum/src/lib.rs:
