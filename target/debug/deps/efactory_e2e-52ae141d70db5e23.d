/root/repo/target/debug/deps/efactory_e2e-52ae141d70db5e23.d: crates/core/tests/efactory_e2e.rs Cargo.toml

/root/repo/target/debug/deps/libefactory_e2e-52ae141d70db5e23.rmeta: crates/core/tests/efactory_e2e.rs Cargo.toml

crates/core/tests/efactory_e2e.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
