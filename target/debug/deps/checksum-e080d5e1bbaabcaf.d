/root/repo/target/debug/deps/checksum-e080d5e1bbaabcaf.d: crates/bench/benches/checksum.rs Cargo.toml

/root/repo/target/debug/deps/libchecksum-e080d5e1bbaabcaf.rmeta: crates/bench/benches/checksum.rs Cargo.toml

crates/bench/benches/checksum.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
