/root/repo/target/debug/deps/efactory_rnic-2f318fdb9ef6bda6.d: crates/rnic/src/lib.rs crates/rnic/src/cost.rs crates/rnic/src/fabric.rs

/root/repo/target/debug/deps/libefactory_rnic-2f318fdb9ef6bda6.rlib: crates/rnic/src/lib.rs crates/rnic/src/cost.rs crates/rnic/src/fabric.rs

/root/repo/target/debug/deps/libefactory_rnic-2f318fdb9ef6bda6.rmeta: crates/rnic/src/lib.rs crates/rnic/src/cost.rs crates/rnic/src/fabric.rs

crates/rnic/src/lib.rs:
crates/rnic/src/cost.rs:
crates/rnic/src/fabric.rs:
