/root/repo/target/debug/deps/efactory_harness-ab32c1d42ae63be3.d: crates/harness/src/lib.rs crates/harness/src/cluster.rs crates/harness/src/report.rs crates/harness/src/stats.rs crates/harness/src/table.rs Cargo.toml

/root/repo/target/debug/deps/libefactory_harness-ab32c1d42ae63be3.rmeta: crates/harness/src/lib.rs crates/harness/src/cluster.rs crates/harness/src/report.rs crates/harness/src/stats.rs crates/harness/src/table.rs Cargo.toml

crates/harness/src/lib.rs:
crates/harness/src/cluster.rs:
crates/harness/src/report.rs:
crates/harness/src/stats.rs:
crates/harness/src/table.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
