/root/repo/target/debug/deps/efactory_pmem-ff0e6c51c74fda49.d: crates/pmem/src/lib.rs

/root/repo/target/debug/deps/libefactory_pmem-ff0e6c51c74fda49.rlib: crates/pmem/src/lib.rs

/root/repo/target/debug/deps/libefactory_pmem-ff0e6c51c74fda49.rmeta: crates/pmem/src/lib.rs

crates/pmem/src/lib.rs:
