/root/repo/target/debug/deps/rand-fcaed73b0caab719.d: /root/shims/rand/src/lib.rs

/root/repo/target/debug/deps/librand-fcaed73b0caab719.rlib: /root/shims/rand/src/lib.rs

/root/repo/target/debug/deps/librand-fcaed73b0caab719.rmeta: /root/shims/rand/src/lib.rs

/root/shims/rand/src/lib.rs:
