/root/repo/target/debug/deps/obs_trace-1ba71d48c491eed8.d: crates/core/tests/obs_trace.rs Cargo.toml

/root/repo/target/debug/deps/libobs_trace-1ba71d48c491eed8.rmeta: crates/core/tests/obs_trace.rs Cargo.toml

crates/core/tests/obs_trace.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
