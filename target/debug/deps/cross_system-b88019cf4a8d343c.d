/root/repo/target/debug/deps/cross_system-b88019cf4a8d343c.d: tests/cross_system.rs Cargo.toml

/root/repo/target/debug/deps/libcross_system-b88019cf4a8d343c.rmeta: tests/cross_system.rs Cargo.toml

tests/cross_system.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
