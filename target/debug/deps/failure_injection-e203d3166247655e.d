/root/repo/target/debug/deps/failure_injection-e203d3166247655e.d: crates/core/tests/failure_injection.rs Cargo.toml

/root/repo/target/debug/deps/libfailure_injection-e203d3166247655e.rmeta: crates/core/tests/failure_injection.rs Cargo.toml

crates/core/tests/failure_injection.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
