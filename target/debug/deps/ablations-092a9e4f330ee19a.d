/root/repo/target/debug/deps/ablations-092a9e4f330ee19a.d: crates/bench/src/bin/ablations.rs

/root/repo/target/debug/deps/ablations-092a9e4f330ee19a: crates/bench/src/bin/ablations.rs

crates/bench/src/bin/ablations.rs:
