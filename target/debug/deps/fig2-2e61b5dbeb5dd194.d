/root/repo/target/debug/deps/fig2-2e61b5dbeb5dd194.d: crates/bench/src/bin/fig2.rs

/root/repo/target/debug/deps/fig2-2e61b5dbeb5dd194: crates/bench/src/bin/fig2.rs

crates/bench/src/bin/fig2.rs:
