/root/repo/target/debug/deps/fig11-d6b693a4a100acde.d: crates/bench/src/bin/fig11.rs

/root/repo/target/debug/deps/fig11-d6b693a4a100acde: crates/bench/src/bin/fig11.rs

crates/bench/src/bin/fig11.rs:
