/root/repo/target/debug/deps/efactory_e2e-6b1474814562d705.d: crates/core/tests/efactory_e2e.rs

/root/repo/target/debug/deps/efactory_e2e-6b1474814562d705: crates/core/tests/efactory_e2e.rs

crates/core/tests/efactory_e2e.rs:
