/root/repo/target/debug/deps/efactory_checksum-847389930cc62339.d: crates/checksum/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libefactory_checksum-847389930cc62339.rmeta: crates/checksum/src/lib.rs Cargo.toml

crates/checksum/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
