/root/repo/target/debug/deps/efactory_bench-9cd168ef9fbe85f6.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libefactory_bench-9cd168ef9fbe85f6.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libefactory_bench-9cd168ef9fbe85f6.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
