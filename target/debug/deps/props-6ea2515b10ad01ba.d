/root/repo/target/debug/deps/props-6ea2515b10ad01ba.d: crates/core/tests/props.rs

/root/repo/target/debug/deps/props-6ea2515b10ad01ba: crates/core/tests/props.rs

crates/core/tests/props.rs:
