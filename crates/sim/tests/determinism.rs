//! Determinism is the kernel's core guarantee: identical setups must
//! produce bit-identical traces, regardless of host scheduling. These tests
//! stress that property with randomized (but seeded) process graphs.

use std::sync::{Arc, Mutex};

use efactory_sim::{self as sim, Nanos, RunOutcome, Sim};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

type Trace = Vec<(Nanos, String)>;

/// A random mesh of processes exchanging messages over random-latency
/// channels, logging every receive. Returns the full trace.
fn run_mesh(seed: u64, procs: usize, msgs: usize) -> Trace {
    let mut simu = Sim::new(seed);
    let trace: Arc<Mutex<Trace>> = Arc::default();
    // Fully connected ring of channels: process i sends to (i+1) % procs.
    let mut channels = Vec::new();
    for _ in 0..procs {
        channels.push(simu.channel::<u64>());
    }
    let rxs: Vec<_> = channels.iter().map(|(_, rx)| rx.clone()).collect();
    for i in 0..procs {
        let tx_next = channels[(i + 1) % procs].0.clone();
        let rx = rxs[i].clone();
        let trace = Arc::clone(&trace);
        let name = format!("p{i}");
        simu.spawn(&name.clone(), move || {
            let mut rng = StdRng::seed_from_u64(seed ^ (i as u64) << 8);
            if i == 0 {
                // Seed the ring with the first message.
                let _ = tx_next.send(0, rng.gen_range(1..500));
            }
            loop {
                match rx.recv_timeout(sim::micros(500)) {
                    Ok(v) => {
                        trace
                            .lock()
                            .unwrap()
                            .push((sim::now(), format!("{name}:{v}")));
                        if v as usize >= msgs {
                            return;
                        }
                        sim::sleep(rng.gen_range(0..200));
                        if tx_next.send(v + 1, rng.gen_range(1..500)).is_err() {
                            return;
                        }
                    }
                    Err(_) => return,
                }
            }
        });
    }
    drop(channels);
    match simu.run() {
        RunOutcome::Completed { .. } | RunOutcome::Idle { .. } => {}
        other => panic!("mesh run failed: {other:?}"),
    }
    let t = trace.lock().unwrap().clone();
    t
}

#[test]
fn message_ring_trace_is_reproducible() {
    for seed in [1u64, 42, 12345] {
        let a = run_mesh(seed, 5, 60);
        let b = run_mesh(seed, 5, 60);
        assert!(!a.is_empty());
        assert_eq!(a, b, "seed {seed}: traces diverged");
    }
}

#[test]
fn different_seeds_give_different_traces() {
    let a = run_mesh(7, 4, 40);
    let b = run_mesh(8, 4, 40);
    assert_ne!(
        a, b,
        "different seeds should explore different interleavings"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]
    #[test]
    fn arbitrary_meshes_are_deterministic(
        seed in any::<u64>(),
        procs in 2usize..7,
        msgs in 5usize..40,
    ) {
        prop_assert_eq!(run_mesh(seed, procs, msgs), run_mesh(seed, procs, msgs));
    }
}

/// Virtual time is causally consistent: a receiver never observes a message
/// before `send time + delay`.
#[test]
fn receive_times_respect_send_latency() {
    let mut simu = Sim::new(3);
    let (tx, rx) = simu.channel::<(Nanos, Nanos)>(); // (sent_at, delay)
    simu.spawn("tx", move || {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..200 {
            let delay = rng.gen_range(0..2_000);
            let _ = tx.send((sim::now(), delay), delay);
            sim::sleep(rng.gen_range(0..300));
        }
    });
    simu.spawn("rx", move || {
        while let Ok((sent_at, delay)) = rx.recv() {
            assert!(
                sim::now() >= sent_at + delay,
                "message received at {} but sent at {sent_at} with delay {delay}",
                sim::now()
            );
        }
    });
    simu.run().expect_ok();
}

/// Heavy fan-in: many producers, one consumer; total count and per-producer
/// FIFO order are preserved.
#[test]
fn fan_in_preserves_per_sender_order() {
    let mut simu = Sim::new(5);
    let (tx, rx) = simu.channel::<(usize, u32)>();
    const PRODUCERS: usize = 8;
    const PER: u32 = 50;
    for p in 0..PRODUCERS {
        let tx = tx.clone();
        simu.spawn(&format!("prod{p}"), move || {
            for i in 0..PER {
                // Constant per-sender delay keeps each sender's stream FIFO.
                tx.send((p, i), 100).unwrap();
                sim::sleep(30);
            }
        });
    }
    drop(tx);
    let got: Arc<Mutex<Vec<(usize, u32)>>> = Arc::default();
    let got2 = Arc::clone(&got);
    simu.spawn("consumer", move || {
        while let Ok(m) = rx.recv() {
            got2.lock().unwrap().push(m);
        }
    });
    simu.run().expect_ok();
    let got = got.lock().unwrap();
    assert_eq!(got.len(), PRODUCERS * PER as usize);
    let mut last = [0u32; PRODUCERS];
    let mut started = [false; PRODUCERS];
    for &(p, i) in got.iter() {
        if started[p] {
            assert!(i > last[p], "producer {p} reordered: {i} after {}", last[p]);
        }
        last[p] = i;
        started[p] = true;
    }
}
