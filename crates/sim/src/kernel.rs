//! The simulation kernel: virtual clock, event queue, and the process
//! scheduler.
//!
//! # Scheduling protocol
//!
//! Processes are OS threads, but only one ever executes simulated code at a
//! time. The *driver* (the thread that calls [`Sim::run`]) pops events in
//! `(time, seq)` order. A `Wake` event hands execution to one process and the
//! driver blocks until that process *yields* (parks in [`sleep`], a channel
//! receive, a join — or exits). A `Call` event runs a closure on the driver
//! thread itself; closures are used for effects that must happen at an exact
//! virtual instant without a dedicated process (e.g. a NIC applying DMA bytes
//! at message-arrival time).
//!
//! # Tickets
//!
//! A parked process may have several pending wake-ups (a receive timeout plus
//! a message delivery, say). Each park instance is identified by a *ticket*;
//! wake events carry the ticket they target and the driver silently discards
//! wakes whose ticket is stale. A process bumps its ticket every time it
//! prepares to park, which makes "wake me for reason A or reason B,
//! whichever is first" race-free without any cancellation machinery.

use std::cell::RefCell;
use std::collections::BinaryHeap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;
use std::thread::JoinHandle;

use parking_lot::{Condvar, Mutex};

use crate::time::Nanos;

/// Identifier of a simulated process, unique within one [`Sim`].
pub type Pid = usize;

// ---------------------------------------------------------------------------
// Events
// ---------------------------------------------------------------------------

/// Driver-thread closure payload of a `Call` event.
pub(crate) type CallFn = Box<dyn FnOnce(&Arc<Kernel>) + Send>;

pub(crate) enum EventKind {
    /// Grant execution to process `pid`, provided its park ticket still
    /// equals `ticket`.
    Wake { pid: Pid, ticket: u64 },
    /// Run a closure on the driver thread at the event's virtual time.
    Call(CallFn),
}

struct Event {
    at: Nanos,
    seq: u64,
    kind: EventKind,
}

// `BinaryHeap` is a max-heap; invert the ordering to pop the earliest
// `(at, seq)` first. `seq` is assigned by the kernel at scheduling time, so
// simultaneous events fire in the order they were scheduled — the property
// that makes the whole simulation deterministic.
impl PartialEq for Event {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl Eq for Event {}
impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Event {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (other.at, other.seq).cmp(&(self.at, self.seq))
    }
}

// ---------------------------------------------------------------------------
// Processes
// ---------------------------------------------------------------------------

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Phase {
    /// Parked, waiting for a grant.
    Idle,
    /// Granted execution; the driver is waiting for it to yield.
    Run,
    /// The process function returned (or panicked).
    Exited,
    /// The simulation is being torn down; parked processes must unwind.
    Abort,
}

struct ProcSync {
    phase: Phase,
    /// Current park ticket. Only the owning process increments it (while
    /// running); the driver reads it to discard stale wakes.
    ticket: u64,
}

struct Proc {
    name: String,
    sync: Mutex<ProcSync>,
    cv: Condvar,
}

struct ProcMeta {
    exited: bool,
    /// Processes blocked in `join` on this one: `(pid, ticket)` to wake.
    joiners: Vec<(Pid, u64)>,
}

// ---------------------------------------------------------------------------
// Kernel
// ---------------------------------------------------------------------------

pub(crate) struct Sched {
    pub(crate) now: Nanos,
    next_seq: u64,
    events: BinaryHeap<Event>,
    meta: Vec<ProcMeta>,
    live: usize,
    failure: Option<String>,
}

pub(crate) struct Kernel {
    pub(crate) sched: Mutex<Sched>,
    procs: Mutex<Vec<Arc<Proc>>>,
    threads: Mutex<Vec<JoinHandle<()>>>,
}

impl Kernel {
    fn new() -> Arc<Self> {
        Arc::new(Kernel {
            sched: Mutex::new(Sched {
                now: 0,
                next_seq: 0,
                events: BinaryHeap::new(),
                meta: Vec::new(),
                live: 0,
                failure: None,
            }),
            procs: Mutex::new(Vec::new()),
            threads: Mutex::new(Vec::new()),
        })
    }

    /// Current virtual time.
    pub(crate) fn now(&self) -> Nanos {
        self.sched.lock().now
    }

    /// Schedule `kind` at absolute virtual time `at` (clamped to `now` so an
    /// event can never fire in the past).
    pub(crate) fn schedule(&self, at: Nanos, kind: EventKind) {
        let mut s = self.sched.lock();
        let at = at.max(s.now);
        let seq = s.next_seq;
        s.next_seq += 1;
        s.events.push(Event { at, seq, kind });
    }

    fn record_failure(&self, msg: String) {
        let mut s = self.sched.lock();
        if s.failure.is_none() {
            s.failure = Some(msg);
        }
    }

    fn proc_arc(&self, pid: Pid) -> Arc<Proc> {
        self.procs.lock()[pid].clone()
    }

    fn spawn_process<F>(self: &Arc<Self>, name: &str, f: F) -> ProcessHandle
    where
        F: FnOnce() + Send + 'static,
    {
        let proc = Arc::new(Proc {
            name: name.to_string(),
            sync: Mutex::new(ProcSync {
                phase: Phase::Idle,
                ticket: 0,
            }),
            cv: Condvar::new(),
        });
        let pid = {
            let mut procs = self.procs.lock();
            procs.push(proc.clone());
            procs.len() - 1
        };
        {
            let mut s = self.sched.lock();
            s.meta.push(ProcMeta {
                exited: false,
                joiners: Vec::new(),
            });
            s.live += 1;
            let now = s.now;
            let seq = s.next_seq;
            s.next_seq += 1;
            s.events.push(Event {
                at: now,
                seq,
                kind: EventKind::Wake { pid, ticket: 0 },
            });
        }

        let kernel = Arc::clone(self);
        let thread_name = format!("sim:{name}");
        let handle = std::thread::Builder::new()
            .name(thread_name)
            .spawn(move || {
                // Wait for the first grant before touching user code.
                {
                    let mut st = proc.sync.lock();
                    while st.phase == Phase::Idle {
                        proc.cv.wait(&mut st);
                    }
                    if st.phase == Phase::Abort {
                        // Torn down before ever running.
                        st.phase = Phase::Exited;
                        proc.cv.notify_all();
                        return;
                    }
                }
                CURRENT.with(|c| *c.borrow_mut() = Some((Arc::clone(&kernel), pid)));
                let result = catch_unwind(AssertUnwindSafe(f));
                CURRENT.with(|c| *c.borrow_mut() = None);
                if let Err(payload) = result {
                    if payload.downcast_ref::<AbortToken>().is_none() {
                        let msg = payload_to_string(payload.as_ref());
                        kernel.record_failure(format!("process '{}' panicked: {msg}", proc.name));
                    }
                }
                // Mark exited and wake joiners at the current virtual time.
                {
                    let mut s = kernel.sched.lock();
                    s.live -= 1;
                    s.meta[pid].exited = true;
                    let joiners = std::mem::take(&mut s.meta[pid].joiners);
                    let now = s.now;
                    for (jpid, jticket) in joiners {
                        let seq = s.next_seq;
                        s.next_seq += 1;
                        s.events.push(Event {
                            at: now,
                            seq,
                            kind: EventKind::Wake {
                                pid: jpid,
                                ticket: jticket,
                            },
                        });
                    }
                }
                let mut st = proc.sync.lock();
                st.phase = Phase::Exited;
                proc.cv.notify_all();
            })
            .expect("failed to spawn simulation process thread");
        self.threads.lock().push(handle);
        ProcessHandle {
            kernel: Arc::clone(self),
            pid,
        }
    }

    // -- process-side primitives (called from within a simulated process) --

    /// Reserve the next park ticket. The caller must register every wake-up
    /// source with this ticket and then call [`Kernel::park`]. Between the
    /// two calls no other process runs (execution is serialized), so wakes
    /// cannot be lost.
    pub(crate) fn prepare_park(&self, pid: Pid) -> u64 {
        let proc = self.proc_arc(pid);
        let mut st = proc.sync.lock();
        st.ticket += 1;
        st.ticket
    }

    /// Park until a `Wake` with the current ticket is granted.
    pub(crate) fn park(&self, pid: Pid) {
        let proc = self.proc_arc(pid);
        let mut st = proc.sync.lock();
        st.phase = Phase::Idle;
        proc.cv.notify_all(); // release the driver
        while st.phase == Phase::Idle {
            proc.cv.wait(&mut st);
        }
        if st.phase == Phase::Abort {
            st.phase = Phase::Run; // let the unwind propagate out of park
            drop(st);
            // Unwind silently: this is teardown, not a failure.
            ABORTING.with(|a| a.set(true));
            std::panic::panic_any(AbortToken);
        }
    }

    /// Convenience: schedule a wake for `pid` at `at` and park.
    fn sleep_until(&self, pid: Pid, at: Nanos) {
        let ticket = self.prepare_park(pid);
        self.schedule(at, EventKind::Wake { pid, ticket });
        self.park(pid);
    }
}

/// Sentinel panic payload used to unwind parked processes during teardown.
struct AbortToken;

thread_local! {
    /// Set just before the teardown unwind so the panic hook stays silent.
    static ABORTING: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

/// Install (once, process-wide) a panic hook that suppresses the expected
/// teardown unwind but defers to the previous hook for real panics.
fn install_quiet_abort_hook() {
    use std::sync::Once;
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if ABORTING.with(|a| a.get()) {
                return;
            }
            previous(info);
        }));
    });
}

fn payload_to_string(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

// ---------------------------------------------------------------------------
// Thread-local current process
// ---------------------------------------------------------------------------

thread_local! {
    static CURRENT: RefCell<Option<(Arc<Kernel>, Pid)>> = const { RefCell::new(None) };
}

pub(crate) fn with_current<R>(f: impl FnOnce(&Arc<Kernel>, Pid) -> R) -> R {
    CURRENT.with(|c| {
        let b = c.borrow();
        let (kernel, pid) = b
            .as_ref()
            .expect("this operation must be called from within a simulated process");
        f(kernel, *pid)
    })
}

/// True if the calling thread is a simulated process.
pub fn in_process() -> bool {
    CURRENT.with(|c| c.borrow().is_some())
}

/// Pid of the calling simulated process.
///
/// # Panics
/// Panics when called from outside a simulated process.
pub fn current_pid() -> Pid {
    with_current(|_, pid| pid)
}

/// Current virtual time, callable only from within a simulated process.
/// (From the driver, use [`Sim::now`].)
pub fn now() -> Nanos {
    with_current(|k, _| k.now())
}

/// Current virtual time, or `None` when called from outside a simulated
/// process. Lets cross-cutting layers (tracing, metrics) stamp records
/// without caring whether they run inside the simulation.
pub fn try_now() -> Option<Nanos> {
    CURRENT.with(|c| c.borrow().as_ref().map(|(k, _)| k.now()))
}

/// Suspend the calling process for `d` virtual nanoseconds.
pub fn sleep(d: Nanos) {
    with_current(|k, pid| {
        let at = k.now() + d;
        k.sleep_until(pid, at)
    });
}

/// Suspend the calling process until virtual time `at`.
pub fn sleep_until(at: Nanos) {
    with_current(|k, pid| k.sleep_until(pid, at));
}

/// Account `d` nanoseconds of simulated CPU work.
///
/// Alias of [`sleep`]: each simulated process owns its core, so busy time and
/// idle time are indistinguishable to other processes.
#[inline]
pub fn work(d: Nanos) {
    sleep(d);
}

/// Yield to any other event scheduled at the current virtual instant.
pub fn yield_now() {
    sleep(0);
}

/// Schedule `f` to run on the driver thread at absolute virtual time `at`
/// (clamped to now). Callable only from within a simulated process; the
/// driver-side equivalent is [`Sim::call_at`].
///
/// Used for effects that must occur at an exact instant without a dedicated
/// process — e.g. the NIC applying DMA bytes at message-arrival time.
pub fn call_at<F>(at: Nanos, f: F)
where
    F: FnOnce() + Send + 'static,
{
    with_current(|k, _| k.schedule(at, EventKind::Call(Box::new(|_k| f()))));
}

/// Spawn a new simulated process from within a running one. The child starts
/// at the current virtual time, after the parent yields.
pub fn spawn<F>(name: &str, f: F) -> ProcessHandle
where
    F: FnOnce() + Send + 'static,
{
    with_current(|k, _| k.spawn_process(name, f))
}

// ---------------------------------------------------------------------------
// Public handles
// ---------------------------------------------------------------------------

/// Handle to a spawned process; lets other processes [`join`](Self::join) it.
pub struct ProcessHandle {
    kernel: Arc<Kernel>,
    pid: Pid,
}

impl ProcessHandle {
    /// Pid of the process this handle refers to.
    pub fn pid(&self) -> Pid {
        self.pid
    }

    /// Block (in virtual time) until the process exits. Must be called from
    /// within a simulated process.
    pub fn join(&self) {
        let (me_kernel, me) = with_current(|k, pid| (Arc::clone(k), pid));
        assert!(
            Arc::ptr_eq(&me_kernel, &self.kernel),
            "join across different simulations"
        );
        let ticket = {
            let mut s = self.kernel.sched.lock();
            if s.meta[self.pid].exited {
                return;
            }
            // Reserve the ticket *before* registering as a joiner; the
            // sched lock must be released in between because prepare_park
            // takes the proc lock.
            drop(s);
            let t = self.kernel.prepare_park(me);
            s = self.kernel.sched.lock();
            if s.meta[self.pid].exited {
                // Exited in the window — but nothing else ran (we hold
                // execution), so this is unreachable; keep it for safety.
                return;
            }
            s.meta[self.pid].joiners.push((me, t));
            t
        };
        let _ = ticket;
        self.kernel.park(me);
    }

    /// Whether the process has exited.
    pub fn is_finished(&self) -> bool {
        self.kernel.sched.lock().meta[self.pid].exited
    }
}

/// Result of driving a simulation with [`Sim::run`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RunOutcome {
    /// Every process exited; `now` is the final virtual time.
    Completed { now: Nanos },
    /// The event queue drained but some processes are still parked (e.g. a
    /// server blocked on a closed-wire receive). `parked` lists their names.
    Idle { now: Nanos, parked: Vec<String> },
    /// A process panicked; the message includes the process name.
    Failed { now: Nanos, error: String },
    /// `run_until` reached the requested time with events still pending.
    DeadlineReached { now: Nanos },
}

impl RunOutcome {
    /// Final virtual time of the run.
    pub fn now(&self) -> Nanos {
        match self {
            RunOutcome::Completed { now }
            | RunOutcome::Idle { now, .. }
            | RunOutcome::Failed { now, .. }
            | RunOutcome::DeadlineReached { now } => *now,
        }
    }

    /// Panics if the run failed; otherwise returns `self`.
    pub fn expect_ok(self) -> Self {
        if let RunOutcome::Failed { error, .. } = &self {
            panic!("simulation failed: {error}");
        }
        self
    }
}

/// A deterministic discrete-event simulation.
///
/// See the [crate docs](crate) for the execution model. The `seed` is carried
/// for components that want deterministic randomness; the kernel itself is
/// deterministic by construction.
pub struct Sim {
    kernel: Arc<Kernel>,
    seed: u64,
}

impl Sim {
    /// Create an empty simulation. `seed` is made available via
    /// [`Sim::seed`] for seeding workload/crash RNGs.
    pub fn new(seed: u64) -> Self {
        install_quiet_abort_hook();
        Sim {
            kernel: Kernel::new(),
            seed,
        }
    }

    /// The seed this simulation was created with.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Current virtual time.
    pub fn now(&self) -> Nanos {
        self.kernel.now()
    }

    /// Spawn a simulated process. It first runs when [`run`](Self::run) is
    /// called (at the current virtual time).
    pub fn spawn<F>(&self, name: &str, f: F) -> ProcessHandle
    where
        F: FnOnce() + Send + 'static,
    {
        self.kernel.spawn_process(name, f)
    }

    /// Create a virtual-latency channel tied to this simulation.
    pub fn channel<T: Send + 'static>(&self) -> (crate::Sender<T>, crate::Receiver<T>) {
        crate::chan::channel_on(&self.kernel)
    }

    /// Schedule a closure to run on the driver thread at absolute virtual
    /// time `at`. Used by the fabric to apply DMA effects at exact instants.
    pub fn call_at<F>(&self, at: Nanos, f: F)
    where
        F: FnOnce() + Send + 'static,
    {
        self.kernel
            .schedule(at, EventKind::Call(Box::new(|_k| f())));
    }

    /// Drive the simulation until no events remain (or a process panics).
    pub fn run(&mut self) -> RunOutcome {
        self.run_inner(None)
    }

    /// Drive the simulation until virtual time `deadline`. Events after the
    /// deadline stay queued; the clock is advanced to `deadline` if the run
    /// would otherwise end earlier... it is *not*: the clock stops at the
    /// last event processed, or at `deadline` when events remain.
    pub fn run_until(&mut self, deadline: Nanos) -> RunOutcome {
        self.run_inner(Some(deadline))
    }

    fn run_inner(&mut self, deadline: Option<Nanos>) -> RunOutcome {
        loop {
            // Pop the earliest event.
            let ev = {
                let mut s = self.kernel.sched.lock();
                if let Some(err) = s.failure.take() {
                    let now = s.now;
                    return RunOutcome::Failed { now, error: err };
                }
                match s.events.peek() {
                    Some(e) => {
                        if let Some(dl) = deadline {
                            if e.at > dl {
                                s.now = dl;
                                return RunOutcome::DeadlineReached { now: dl };
                            }
                        }
                        let e = s.events.pop().expect("peeked event vanished");
                        debug_assert!(e.at >= s.now, "event scheduled in the past");
                        s.now = e.at;
                        Some(e)
                    }
                    None => None,
                }
            };
            let Some(ev) = ev else { break };
            match ev.kind {
                EventKind::Call(f) => f(&self.kernel),
                EventKind::Wake { pid, ticket } => {
                    let proc = self.kernel.proc_arc(pid);
                    let mut st = proc.sync.lock();
                    if st.phase == Phase::Exited || st.ticket != ticket {
                        continue; // stale wake
                    }
                    debug_assert_eq!(st.phase, Phase::Idle, "waking a running process");
                    st.phase = Phase::Run;
                    proc.cv.notify_all();
                    while st.phase == Phase::Run {
                        proc.cv.wait(&mut st);
                    }
                }
            }
        }
        // Event queue drained.
        let s = self.kernel.sched.lock();
        if let Some(err) = s.failure.clone() {
            return RunOutcome::Failed {
                now: s.now,
                error: err,
            };
        }
        if s.live == 0 {
            RunOutcome::Completed { now: s.now }
        } else {
            let procs = self.kernel.procs.lock();
            let parked = s
                .meta
                .iter()
                .enumerate()
                .filter(|(_, m)| !m.exited)
                .map(|(pid, _)| procs[pid].name.clone())
                .collect();
            RunOutcome::Idle { now: s.now, parked }
        }
    }
}

impl Drop for Sim {
    fn drop(&mut self) {
        // Abort every parked process so its thread unwinds and exits, then
        // join the threads. Processes are never *running* here: the driver
        // (us) isn't inside run(), so all processes are parked or exited.
        let procs = self.kernel.procs.lock().clone();
        for proc in &procs {
            let mut st = proc.sync.lock();
            if st.phase == Phase::Idle {
                st.phase = Phase::Abort;
                proc.cv.notify_all();
            }
        }
        drop(procs);
        let threads = std::mem::take(&mut *self.kernel.threads.lock());
        for t in threads {
            let _ = t.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::micros;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Mutex as StdMutex;

    #[test]
    fn clock_starts_at_zero_and_advances_by_sleep() {
        let mut sim = Sim::new(0);
        let t = Arc::new(AtomicU64::new(u64::MAX));
        let t2 = t.clone();
        sim.spawn("p", move || {
            assert_eq!(now(), 0);
            sleep(micros(5));
            t2.store(now(), Ordering::SeqCst);
        });
        let out = sim.run().expect_ok();
        assert_eq!(out, RunOutcome::Completed { now: micros(5) });
        assert_eq!(t.load(Ordering::SeqCst), micros(5));
    }

    #[test]
    fn processes_interleave_in_time_order() {
        let mut sim = Sim::new(0);
        let log = Arc::new(StdMutex::new(Vec::new()));
        for (name, delay) in [("a", 300u64), ("b", 100), ("c", 200)] {
            let log = log.clone();
            sim.spawn(name, move || {
                sleep(delay);
                log.lock().unwrap().push((now(), name));
            });
        }
        sim.run().expect_ok();
        assert_eq!(
            *log.lock().unwrap(),
            vec![(100, "b"), (200, "c"), (300, "a")]
        );
    }

    #[test]
    fn simultaneous_wakes_fire_in_spawn_order() {
        let mut sim = Sim::new(0);
        let log = Arc::new(StdMutex::new(Vec::new()));
        for name in ["first", "second", "third"] {
            let log = log.clone();
            sim.spawn(name, move || {
                sleep(50);
                log.lock().unwrap().push(name);
            });
        }
        sim.run().expect_ok();
        assert_eq!(*log.lock().unwrap(), vec!["first", "second", "third"]);
    }

    #[test]
    fn spawn_from_process_starts_at_current_time() {
        let mut sim = Sim::new(0);
        let child_start = Arc::new(AtomicU64::new(u64::MAX));
        let cs = child_start.clone();
        sim.spawn("parent", move || {
            sleep(1_000);
            let cs = cs.clone();
            let h = spawn("child", move || {
                cs.store(now(), Ordering::SeqCst);
                sleep(500);
            });
            h.join();
            assert_eq!(now(), 1_500);
        });
        sim.run().expect_ok();
        assert_eq!(child_start.load(Ordering::SeqCst), 1_000);
    }

    #[test]
    fn join_on_already_exited_process_returns_immediately() {
        let mut sim = Sim::new(0);
        sim.spawn("root", || {
            let h = spawn("quick", || {});
            sleep(10_000); // child exits long before this
            h.join();
            assert_eq!(now(), 10_000);
        });
        sim.run().expect_ok();
    }

    #[test]
    fn panic_in_process_is_reported_with_name() {
        let mut sim = Sim::new(0);
        sim.spawn("doomed", || {
            sleep(10);
            panic!("boom");
        });
        match sim.run() {
            RunOutcome::Failed { error, now } => {
                assert!(error.contains("doomed"), "missing name: {error}");
                assert!(error.contains("boom"), "missing message: {error}");
                assert_eq!(now, 10);
            }
            other => panic!("expected failure, got {other:?}"),
        }
    }

    #[test]
    fn idle_reports_parked_process_names() {
        let mut sim = Sim::new(0);
        let (_tx, rx) = sim.channel::<()>();
        sim.spawn("server", move || {
            // _tx is still alive outside; recv blocks forever.
            let _ = rx.recv();
        });
        match sim.run() {
            RunOutcome::Idle { parked, .. } => assert_eq!(parked, vec!["server".to_string()]),
            other => panic!("expected Idle, got {other:?}"),
        }
    }

    #[test]
    fn run_until_stops_at_deadline() {
        let mut sim = Sim::new(0);
        let progressed = Arc::new(AtomicU64::new(0));
        let p = progressed.clone();
        sim.spawn("ticker", move || loop {
            sleep(1_000);
            p.fetch_add(1, Ordering::SeqCst);
            if now() > micros(100) {
                break;
            }
        });
        let out = sim.run_until(10_500);
        assert_eq!(out, RunOutcome::DeadlineReached { now: 10_500 });
        assert_eq!(progressed.load(Ordering::SeqCst), 10);
        // Resume to completion.
        sim.run().expect_ok();
        assert!(progressed.load(Ordering::SeqCst) > 100);
    }

    #[test]
    fn call_at_runs_at_exact_time_between_process_steps() {
        let mut sim = Sim::new(0);
        let log = Arc::new(StdMutex::new(Vec::new()));
        let l1 = log.clone();
        sim.spawn("p", move || {
            sleep(100);
            l1.lock().unwrap().push(("proc", now()));
        });
        let l2 = log.clone();
        sim.call_at(50, move || l2.lock().unwrap().push(("call", 50)));
        sim.run().expect_ok();
        assert_eq!(*log.lock().unwrap(), vec![("call", 50), ("proc", 100)]);
    }

    #[test]
    fn work_is_an_alias_for_sleep() {
        let mut sim = Sim::new(0);
        sim.spawn("w", || {
            work(123);
            assert_eq!(now(), 123);
        });
        sim.run().expect_ok();
    }

    #[test]
    fn dropping_sim_with_parked_processes_does_not_hang() {
        let mut sim = Sim::new(0);
        let (_tx, rx) = sim.channel::<()>();
        sim.spawn("stuck", move || {
            let _ = rx.recv();
        });
        let _ = sim.run(); // Idle
        drop(sim); // must abort + join the parked thread without deadlock
    }

    #[test]
    fn dropping_unrun_sim_with_spawned_processes_does_not_hang() {
        let sim = Sim::new(0);
        sim.spawn("never-ran", || {});
        drop(sim);
    }

    #[test]
    fn deterministic_trace_across_runs() {
        fn trace(seed: u64) -> Vec<(Nanos, String)> {
            let mut sim = Sim::new(seed);
            let log = Arc::new(StdMutex::new(Vec::new()));
            for i in 0..5 {
                let log = log.clone();
                sim.spawn(&format!("p{i}"), move || {
                    let mut d = (i as u64 * 37 + 11) % 97;
                    for _ in 0..20 {
                        sleep(d);
                        d = (d * 31 + 7) % 113;
                        log.lock().unwrap().push((now(), format!("p{i}")));
                    }
                });
            }
            sim.run().expect_ok();
            let v = log.lock().unwrap().clone();
            v
        }
        assert_eq!(trace(1), trace(1));
    }

    #[test]
    fn yield_now_lets_same_time_events_run() {
        let mut sim = Sim::new(0);
        let log = Arc::new(StdMutex::new(Vec::new()));
        let l1 = log.clone();
        let l2 = log.clone();
        sim.spawn("a", move || {
            l1.lock().unwrap().push("a1");
            yield_now();
            l1.lock().unwrap().push("a2");
        });
        sim.spawn("b", move || {
            l2.lock().unwrap().push("b1");
        });
        sim.run().expect_ok();
        // a runs first (spawned first), yields; b (scheduled at t=0) runs;
        // then a's wake (scheduled during its first step) fires.
        assert_eq!(*log.lock().unwrap(), vec!["a1", "b1", "a2"]);
    }
}
