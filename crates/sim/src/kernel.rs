//! The simulation kernel: virtual clock, event queue, and the process
//! scheduler.
//!
//! # Scheduling protocol
//!
//! Only one simulated process ever executes simulated code at a time. The
//! *driver* (the thread that calls [`Sim::run`]) pops events in `(time, seq)`
//! order. A `Wake` event hands execution to one process and the driver
//! regains control when that process *yields* (parks in [`sleep`], a channel
//! receive, a join — or exits). A `Call` event runs a closure on the driver
//! thread itself; closures are used for effects that must happen at an exact
//! virtual instant without a dedicated process (e.g. a NIC applying DMA bytes
//! at message-arrival time). A `WakeAll` event wakes every waiter parked on a
//! shared structure (a channel) without allocating a closure per send.
//!
//! # Execution backends
//!
//! Two interchangeable executors implement the grant/yield handoff (selected
//! by [`ExecModel`], see `EF_SIM_EXEC`):
//!
//! - **Fiber** (default): every process is a user-space stackful coroutine
//!   hosted *on the driver thread*; a grant is a register-swap context switch
//!   (see [`crate::fiber`] — tens of nanoseconds).
//! - **Thread**: the original executor — every process is an OS thread and a
//!   grant is a Condvar park/wake round trip (microseconds). Kept as the
//!   equivalence baseline and as the fallback on targets without a fiber
//!   context switch.
//!
//! Both backends drive the same event queue, ticket protocol, and process
//! lifecycle, so the observable execution — event order, virtual times,
//! trace bytes, run reports — is identical; `tests/sim_equivalence.rs` and
//! the in-crate tests pin that bit-for-bit.
//!
//! # Tickets
//!
//! A parked process may have several pending wake-ups (a receive timeout plus
//! a message delivery, say). Each park instance is identified by a *ticket*;
//! wake events carry the ticket they target and the driver silently discards
//! wakes whose ticket is stale. A process bumps its ticket every time it
//! prepares to park, which makes "wake me for reason A or reason B,
//! whichever is first" race-free without any cancellation machinery.
//!
//! # Allocation discipline
//!
//! The hot path recycles aggressively: event payloads live in a slab indexed
//! by the binary heap (slots are freelisted, so steady-state scheduling
//! allocates nothing), channel sends schedule an `Arc`-shared `WakeAll`
//! instead of boxing a closure, and same-tick events are drained in one
//! batch per queue-lock acquisition. [`Sim::counters`] exposes the resulting
//! [`SimCounters`] so benches and reports can audit both throughput
//! (`events_dispatched`) and allocator behavior (`allocs` vs `slab_reused`).

use std::cell::RefCell;
use std::collections::BinaryHeap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

use parking_lot::{Condvar, Mutex};

use crate::fiber::{self, FiberSlot};
use crate::time::Nanos;

/// Identifier of a simulated process, unique within one [`Sim`].
pub type Pid = usize;

// ---------------------------------------------------------------------------
// Execution model
// ---------------------------------------------------------------------------

/// Which executor hosts simulated processes. See the module docs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecModel {
    /// Stackful user-space fibers run inline by the driver thread. Default
    /// where supported (x86_64 SysV targets).
    Fiber,
    /// One OS thread per process, Condvar handoff per grant. The original
    /// executor; kept as the equivalence baseline and portable fallback.
    Thread,
}

impl ExecModel {
    /// The model requested by `EF_SIM_EXEC` (`fiber` / `thread`), or the
    /// target default (fiber where supported) when unset.
    pub fn from_env() -> ExecModel {
        match std::env::var("EF_SIM_EXEC").ok().as_deref() {
            Some("thread") | Some("threads") => ExecModel::Thread,
            Some("fiber") | Some("fibers") | None => ExecModel::Fiber,
            Some(other) => panic!("EF_SIM_EXEC must be 'fiber' or 'thread', got '{other}'"),
        }
    }

    /// Degrade to a supported model (fibers need the arch-specific switch).
    fn resolve(self) -> ExecModel {
        match self {
            ExecModel::Fiber if !fiber::SUPPORTED => ExecModel::Thread,
            m => m,
        }
    }
}

// ---------------------------------------------------------------------------
// Events
// ---------------------------------------------------------------------------

/// Driver-thread closure payload of a `Call` event.
pub(crate) type CallFn = Box<dyn FnOnce(&Arc<Kernel>) + Send>;

/// A structure whose parked waiters are woken by a `WakeAll` event — the
/// allocation-free replacement for the boxed closure a channel send used to
/// schedule (the `Arc` is shared with the channel itself, so scheduling a
/// send costs zero heap allocations at steady state).
pub(crate) trait WakeTarget: Send + Sync {
    /// Wake every waiter parked on `self` at the current virtual time.
    fn wake_all(&self, kernel: &Arc<Kernel>);
}

pub(crate) enum EventKind {
    /// Grant execution to process `pid`, provided its park ticket still
    /// equals `ticket`.
    Wake { pid: Pid, ticket: u64 },
    /// Wake every waiter of a shared structure (channel delivery).
    WakeAll(Arc<dyn WakeTarget>),
    /// Run a closure on the driver thread at the event's virtual time.
    Call(CallFn),
}

/// Heap entry: ordering key plus the slab slot holding the payload. Keeping
/// the payload out of the heap makes sift operations move 24 bytes instead
/// of a full event, and lets slots be freelisted.
struct HeapKey {
    at: Nanos,
    seq: u64,
    slot: u32,
}

// `BinaryHeap` is a max-heap; invert the ordering to pop the earliest
// `(at, seq)` first. `seq` is assigned by the kernel at scheduling time, so
// simultaneous events fire in the order they were scheduled — the property
// that makes the whole simulation deterministic.
impl PartialEq for HeapKey {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl Eq for HeapKey {}
impl PartialOrd for HeapKey {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for HeapKey {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (other.at, other.seq).cmp(&(self.at, self.seq))
    }
}

// ---------------------------------------------------------------------------
// Processes
// ---------------------------------------------------------------------------

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Phase {
    /// Parked, waiting for a grant.
    Idle,
    /// Granted execution; the driver is waiting for it to yield.
    Run,
    /// The process function returned (or panicked).
    Exited,
    /// The simulation is being torn down; parked processes must unwind.
    Abort,
}

struct ProcSync {
    phase: Phase,
    /// Current park ticket. Only the owning process increments it (while
    /// running); the driver reads it to discard stale wakes.
    ticket: u64,
}

/// Backend-specific half of a process: how the driver hands it execution.
enum ProcImpl {
    /// OS thread; the driver signals `cv` and waits on it for the yield.
    Thread { cv: Condvar },
    /// Fiber; the driver context-switches into it (see [`crate::fiber`]).
    Fiber(FiberSlot),
}

struct Proc {
    name: String,
    sync: Mutex<ProcSync>,
    imp: ProcImpl,
    /// Per-process context slot for cross-cutting layers (the tracer keeps
    /// the active op id here). With the fiber backend all processes share
    /// one OS thread, so "per-thread" state must live per *process*; the
    /// driver exposes it via [`op_ctx_get`]/[`op_ctx_replace`]. Atomic only
    /// because `Proc` is `Sync`; access is serialized by the grant protocol.
    op_ctx: AtomicU64,
}

struct ProcMeta {
    exited: bool,
    /// Processes blocked in `join` on this one: `(pid, ticket)` to wake.
    joiners: Vec<(Pid, u64)>,
}

// ---------------------------------------------------------------------------
// Counters
// ---------------------------------------------------------------------------

/// Kernel hot-path counters, monotone over the life of a [`Sim`].
///
/// Everything except `stack_bytes` is a function of the deterministic event
/// sequence alone and therefore identical across executors — run reports
/// embed these, and the cross-backend equivalence suite relies on that.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SimCounters {
    /// Events pushed into the queue (wakes, calls, channel deliveries).
    pub events_scheduled: u64,
    /// Events popped and acted on (includes stale wakes).
    pub events_dispatched: u64,
    /// Driver-thread `Call` closures run.
    pub calls: u64,
    /// `WakeAll` (channel delivery) events run.
    pub chan_wakes: u64,
    /// Wake events discarded because the park ticket was stale.
    pub wakes_stale: u64,
    /// Execution grants to a process (fiber switch or thread handoff).
    pub ctx_switches: u64,
    /// Event-slab slot allocations (slab growth). Steady state schedules
    /// into recycled slots, so this plateaus at the high-water mark of the
    /// event queue.
    pub allocs: u64,
    /// Events scheduled into a recycled slab slot.
    pub slab_reused: u64,
    /// Fiber stack bytes allocated (0 on the thread backend) — the one
    /// backend-dependent counter, excluded from equivalence comparisons.
    pub stack_bytes: u64,
}

impl SimCounters {
    /// The counters that must match bit-for-bit across executors (drops
    /// `stack_bytes`, the only backend-dependent field).
    pub fn backend_invariant(&self) -> SimCounters {
        SimCounters {
            stack_bytes: 0,
            ..*self
        }
    }
}

/// Counters updated outside the sched lock. The queue-shaped counters
/// (`events_scheduled`, `events_dispatched`, `allocs`, `slab_reused`) live as
/// plain integers on [`Sched`] instead — every update site already holds the
/// lock, so atomic RMWs there would be pure overhead.
#[derive(Default)]
struct KernelStats {
    calls: AtomicU64,
    chan_wakes: AtomicU64,
    wakes_stale: AtomicU64,
    ctx_switches: AtomicU64,
    stack_bytes: AtomicU64,
    /// Cheap failure flag mirroring `Sched::failure`, so the dispatch loop
    /// can poll without taking the queue lock.
    failed: AtomicBool,
}

impl KernelStats {
    fn snapshot(&self, sched: &Sched) -> SimCounters {
        SimCounters {
            events_scheduled: sched.events_scheduled,
            events_dispatched: sched.events_dispatched,
            calls: self.calls.load(Ordering::Relaxed),
            chan_wakes: self.chan_wakes.load(Ordering::Relaxed),
            wakes_stale: self.wakes_stale.load(Ordering::Relaxed),
            ctx_switches: self.ctx_switches.load(Ordering::Relaxed),
            allocs: sched.allocs,
            slab_reused: sched.slab_reused,
            stack_bytes: self.stack_bytes.load(Ordering::Relaxed),
        }
    }

    /// Fold the driver's per-run local tallies into the shared totals. The
    /// dispatch loop counts in plain locals and flushes here on every exit
    /// path, so the per-event cost is an ordinary increment, not an RMW.
    fn fold_dispatch(&self, d: &DispatchTally) {
        if d.calls > 0 {
            self.calls.fetch_add(d.calls, Ordering::Relaxed);
        }
        if d.chan_wakes > 0 {
            self.chan_wakes.fetch_add(d.chan_wakes, Ordering::Relaxed);
        }
        if d.wakes_stale > 0 {
            self.wakes_stale.fetch_add(d.wakes_stale, Ordering::Relaxed);
        }
        if d.ctx_switches > 0 {
            self.ctx_switches
                .fetch_add(d.ctx_switches, Ordering::Relaxed);
        }
    }
}

/// Per-run local counter tallies owned by the dispatch loop.
#[derive(Default)]
struct DispatchTally {
    calls: u64,
    chan_wakes: u64,
    wakes_stale: u64,
    ctx_switches: u64,
}

// ---------------------------------------------------------------------------
// Kernel
// ---------------------------------------------------------------------------

pub(crate) struct Sched {
    pub(crate) now: Nanos,
    next_seq: u64,
    /// Ordering keys; payloads live in `slots`.
    heap: BinaryHeap<HeapKey>,
    /// Event payload slab. `None` = free (on the freelist).
    slots: Vec<Option<EventKind>>,
    free_slots: Vec<u32>,
    meta: Vec<ProcMeta>,
    live: usize,
    failure: Option<String>,
    // Queue-shaped counters; every update site holds the sched lock, so
    // plain integers suffice (see `KernelStats`).
    events_scheduled: u64,
    events_dispatched: u64,
    allocs: u64,
    slab_reused: u64,
}

impl Sched {
    /// Assign the next `seq` and enqueue `kind` at `at` (already clamped).
    fn push(&mut self, at: Nanos, kind: EventKind) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.events_scheduled += 1;
        let slot = match self.free_slots.pop() {
            Some(s) => {
                self.slots[s as usize] = Some(kind);
                self.slab_reused += 1;
                s
            }
            None => {
                assert!(self.slots.len() < u32::MAX as usize, "event slab overflow");
                self.slots.push(Some(kind));
                self.allocs += 1;
                (self.slots.len() - 1) as u32
            }
        };
        self.heap.push(HeapKey { at, seq, slot });
    }

    /// Take the payload of a popped key and recycle its slot.
    fn take_slot(&mut self, slot: u32) -> EventKind {
        let kind = self.slots[slot as usize]
            .take()
            .expect("popped event slot is empty");
        self.free_slots.push(slot);
        kind
    }

    /// Re-enqueue an already-popped event with its original `(at, seq)` —
    /// used when a failure interrupts a dispatch batch, so undispatched
    /// events stay queued exactly as the one-at-a-time loop would leave
    /// them.
    fn requeue(&mut self, at: Nanos, seq: u64, kind: EventKind) {
        let slot = match self.free_slots.pop() {
            Some(s) => {
                self.slots[s as usize] = Some(kind);
                s
            }
            None => {
                self.slots.push(Some(kind));
                (self.slots.len() - 1) as u32
            }
        };
        self.heap.push(HeapKey { at, seq, slot });
    }
}

pub(crate) struct Kernel {
    exec: ExecModel,
    pub(crate) sched: Mutex<Sched>,
    procs: Mutex<Vec<Arc<Proc>>>,
    threads: Mutex<Vec<JoinHandle<()>>>,
    stats: KernelStats,
    /// Mirror of `Sched::now`, updated by the driver whenever the clock
    /// advances. Lets `now()` — called several times per op by tracing and
    /// timeout arithmetic — read the clock without taking the sched lock.
    now_cache: AtomicU64,
}

impl Kernel {
    fn new(exec: ExecModel) -> Arc<Self> {
        Arc::new(Kernel {
            exec,
            sched: Mutex::new(Sched {
                now: 0,
                next_seq: 0,
                heap: BinaryHeap::new(),
                slots: Vec::new(),
                free_slots: Vec::new(),
                meta: Vec::new(),
                live: 0,
                failure: None,
                events_scheduled: 0,
                events_dispatched: 0,
                allocs: 0,
                slab_reused: 0,
            }),
            procs: Mutex::new(Vec::new()),
            threads: Mutex::new(Vec::new()),
            stats: KernelStats::default(),
            now_cache: AtomicU64::new(0),
        })
    }

    /// Current virtual time.
    #[inline]
    pub(crate) fn now(&self) -> Nanos {
        self.now_cache.load(Ordering::Relaxed)
    }

    /// Schedule `kind` at absolute virtual time `at` (clamped to `now` so an
    /// event can never fire in the past).
    pub(crate) fn schedule(&self, at: Nanos, kind: EventKind) {
        let mut s = self.sched.lock();
        let at = at.max(s.now);
        s.push(at, kind);
    }

    fn record_failure(&self, msg: String) {
        let mut s = self.sched.lock();
        if s.failure.is_none() {
            s.failure = Some(msg);
            self.stats.failed.store(true, Ordering::Relaxed);
        }
    }

    fn proc_arc(&self, pid: Pid) -> Arc<Proc> {
        self.procs.lock()[pid].clone()
    }

    /// Shared exit bookkeeping: drop from `live`, mark exited, wake joiners
    /// at the current virtual time.
    fn finish_process(&self, pid: Pid) {
        let mut s = self.sched.lock();
        s.live -= 1;
        s.meta[pid].exited = true;
        let joiners = std::mem::take(&mut s.meta[pid].joiners);
        let now = s.now;
        for (jpid, jticket) in joiners {
            s.push(
                now,
                EventKind::Wake {
                    pid: jpid,
                    ticket: jticket,
                },
            );
        }
    }

    fn spawn_process<F>(self: &Arc<Self>, name: &str, f: F) -> ProcessHandle
    where
        F: FnOnce() + Send + 'static,
    {
        let proc = Arc::new(Proc {
            name: name.to_string(),
            sync: Mutex::new(ProcSync {
                phase: Phase::Idle,
                ticket: 0,
            }),
            imp: match self.exec {
                ExecModel::Thread => ProcImpl::Thread { cv: Condvar::new() },
                ExecModel::Fiber => ProcImpl::Fiber(FiberSlot::new()),
            },
            op_ctx: AtomicU64::new(0),
        });
        let pid = {
            let mut procs = self.procs.lock();
            procs.push(proc.clone());
            procs.len() - 1
        };
        {
            let mut s = self.sched.lock();
            s.meta.push(ProcMeta {
                exited: false,
                joiners: Vec::new(),
            });
            s.live += 1;
            let now = s.now;
            s.push(now, EventKind::Wake { pid, ticket: 0 });
        }

        match self.exec {
            ExecModel::Fiber => {
                let kernel = Arc::clone(self);
                let proc_ref = Arc::clone(&proc);
                let body: Box<dyn FnOnce() + Send> = Box::new(move || {
                    let result = catch_unwind(AssertUnwindSafe(f));
                    // The driver thread hosts every fiber, so the quiet-
                    // teardown flag must be re-armed after an AbortToken
                    // unwind (the thread backend simply let the dying
                    // thread take the flag with it).
                    ABORTING.with(|a| a.set(false));
                    if let Err(payload) = result {
                        if payload.downcast_ref::<AbortToken>().is_none() {
                            let msg = payload_to_string(payload.as_ref());
                            kernel.record_failure(format!(
                                "process '{}' panicked: {msg}",
                                proc_ref.name
                            ));
                        }
                    }
                    kernel.finish_process(pid);
                    proc_ref.sync.lock().phase = Phase::Exited;
                });
                let ProcImpl::Fiber(slot) = &proc.imp else {
                    unreachable!()
                };
                slot.set_body(body);
            }
            ExecModel::Thread => {
                let kernel = Arc::clone(self);
                let thread_name = format!("sim:{name}");
                let handle = std::thread::Builder::new()
                    .name(thread_name)
                    .spawn(move || {
                        let ProcImpl::Thread { cv } = &proc.imp else {
                            unreachable!()
                        };
                        // Wait for the first grant before touching user code.
                        {
                            let mut st = proc.sync.lock();
                            while st.phase == Phase::Idle {
                                cv.wait(&mut st);
                            }
                            if st.phase == Phase::Abort {
                                // Torn down before ever running.
                                st.phase = Phase::Exited;
                                cv.notify_all();
                                return;
                            }
                        }
                        CURRENT.with(|c| {
                            *c.borrow_mut() = Some(Current {
                                kernel: Arc::clone(&kernel),
                                pid,
                                proc: Arc::clone(&proc),
                            })
                        });
                        let result = catch_unwind(AssertUnwindSafe(f));
                        CURRENT.with(|c| *c.borrow_mut() = None);
                        if let Err(payload) = result {
                            if payload.downcast_ref::<AbortToken>().is_none() {
                                let msg = payload_to_string(payload.as_ref());
                                kernel.record_failure(format!(
                                    "process '{}' panicked: {msg}",
                                    proc.name
                                ));
                            }
                        }
                        kernel.finish_process(pid);
                        let ProcImpl::Thread { cv } = &proc.imp else {
                            unreachable!()
                        };
                        let mut st = proc.sync.lock();
                        st.phase = Phase::Exited;
                        cv.notify_all();
                    })
                    .expect("failed to spawn simulation process thread");
                self.threads.lock().push(handle);
            }
        }
        ProcessHandle {
            kernel: Arc::clone(self),
            pid,
        }
    }

    /// Grant execution to a parked fiber and return when it yields. Sets
    /// [`CURRENT`] around the switch so process-side primitives resolve.
    /// Callers account the context switch (the dispatch loop tallies it in
    /// a plain local; teardown bumps the atomic directly).
    fn resume_fiber(self: &Arc<Self>, pid: Pid, proc: &Arc<Proc>) {
        let ProcImpl::Fiber(slot) = &proc.imp else {
            unreachable!("resume_fiber on a thread-backed process")
        };
        CURRENT.with(|c| {
            *c.borrow_mut() = Some(Current {
                kernel: Arc::clone(self),
                pid,
                proc: Arc::clone(proc),
            })
        });
        let stack_allocated = unsafe { slot.resume() };
        CURRENT.with(|c| *c.borrow_mut() = None);
        if stack_allocated > 0 {
            self.stats
                .stack_bytes
                .fetch_add(stack_allocated as u64, Ordering::Relaxed);
        }
    }

    // -- process-side primitives (called from within a simulated process) --

    /// Reserve the next park ticket. The caller must register every wake-up
    /// source with this ticket and then call [`Kernel::park`]. Between the
    /// two calls no other process runs (execution is serialized), so wakes
    /// cannot be lost.
    pub(crate) fn prepare_park(&self, pid: Pid) -> u64 {
        let proc = self.proc_arc(pid);
        let mut st = proc.sync.lock();
        st.ticket += 1;
        st.ticket
    }

    /// Park until a `Wake` with the current ticket is granted.
    pub(crate) fn park(&self, pid: Pid) {
        let proc = self.proc_arc(pid);
        match &proc.imp {
            ProcImpl::Thread { cv } => {
                let mut st = proc.sync.lock();
                st.phase = Phase::Idle;
                cv.notify_all(); // release the driver
                while st.phase == Phase::Idle {
                    cv.wait(&mut st);
                }
                if st.phase == Phase::Abort {
                    st.phase = Phase::Run; // let the unwind propagate out of park
                    drop(st);
                    // Unwind silently: this is teardown, not a failure.
                    ABORTING.with(|a| a.set(true));
                    std::panic::panic_any(AbortToken);
                }
            }
            ProcImpl::Fiber(_) => {
                proc.sync.lock().phase = Phase::Idle;
                fiber::switch_to_driver();
                // Resumed: the driver granted us (Run) or is tearing the
                // simulation down (Abort).
                let mut st = proc.sync.lock();
                if st.phase == Phase::Abort {
                    st.phase = Phase::Run;
                    drop(st);
                    ABORTING.with(|a| a.set(true));
                    std::panic::panic_any(AbortToken);
                }
                debug_assert_eq!(st.phase, Phase::Run, "fiber resumed without a grant");
            }
        }
    }

    /// Convenience: schedule a wake for `pid` at `at` and park.
    fn sleep_until(&self, pid: Pid, at: Nanos) {
        let ticket = self.prepare_park(pid);
        self.schedule(at, EventKind::Wake { pid, ticket });
        self.park(pid);
    }
}

/// Sentinel panic payload used to unwind parked processes during teardown.
struct AbortToken;

thread_local! {
    /// Set just before the teardown unwind so the panic hook stays silent.
    static ABORTING: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

/// Install (once, process-wide) a panic hook that suppresses the expected
/// teardown unwind but defers to the previous hook for real panics.
fn install_quiet_abort_hook() {
    use std::sync::Once;
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if ABORTING.with(|a| a.get()) {
                return;
            }
            previous(info);
        }));
    });
}

fn payload_to_string(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

// ---------------------------------------------------------------------------
// Thread-local current process
// ---------------------------------------------------------------------------

struct Current {
    kernel: Arc<Kernel>,
    pid: Pid,
    proc: Arc<Proc>,
}

thread_local! {
    static CURRENT: RefCell<Option<Current>> = const { RefCell::new(None) };

    /// Per-thread op-context fallback for code running outside any
    /// simulated process (test drivers, bench setup).
    static FALLBACK_OP_CTX: std::cell::Cell<u64> = const { std::cell::Cell::new(0) };
}

pub(crate) fn with_current<R>(f: impl FnOnce(&Arc<Kernel>, Pid) -> R) -> R {
    // Clone out of the thread-local before running `f`: with the fiber
    // backend, `f` may park (a context switch back to the driver, which then
    // mutates CURRENT), so the borrow must not be held across it.
    let (kernel, pid) = CURRENT.with(|c| {
        let b = c.borrow();
        let cur = b
            .as_ref()
            .expect("this operation must be called from within a simulated process");
        (Arc::clone(&cur.kernel), cur.pid)
    });
    f(&kernel, pid)
}

/// True if the caller is executing as a simulated process.
pub fn in_process() -> bool {
    CURRENT.with(|c| c.borrow().is_some())
}

/// Pid of the calling simulated process.
///
/// # Panics
/// Panics when called from outside a simulated process.
pub fn current_pid() -> Pid {
    with_current(|_, pid| pid)
}

/// Read the current *process* context slot (see [`op_ctx_replace`]).
pub fn op_ctx_get() -> u64 {
    CURRENT.with(|c| match &*c.borrow() {
        Some(cur) => cur.proc.op_ctx.load(Ordering::Relaxed),
        None => FALLBACK_OP_CTX.with(|f| f.get()),
    })
}

/// Swap the current *process* context slot, returning the previous value.
///
/// This is per-process state that survives parks: cross-cutting layers (the
/// tracer's op-id scope) must not use a plain thread-local, because with the
/// fiber executor every process shares the driver thread and a thread-local
/// would leak one process's context into the next at every park point. Code
/// running outside a simulation falls back to a genuine thread-local.
pub fn op_ctx_replace(v: u64) -> u64 {
    CURRENT.with(|c| match &*c.borrow() {
        Some(cur) => cur.proc.op_ctx.swap(v, Ordering::Relaxed),
        None => FALLBACK_OP_CTX.with(|f| f.replace(v)),
    })
}

/// Current virtual time, callable only from within a simulated process.
/// (From the driver, use [`Sim::now`].)
pub fn now() -> Nanos {
    with_current(|k, _| k.now())
}

/// Current virtual time, or `None` when called from outside a simulated
/// process. Lets cross-cutting layers (tracing, metrics) stamp records
/// without caring whether they run inside the simulation.
pub fn try_now() -> Option<Nanos> {
    // No park can happen here, so reading under the borrow is fine (and
    // skips two Arc clones on a very hot path).
    CURRENT.with(|c| c.borrow().as_ref().map(|cur| cur.kernel.now()))
}

/// Suspend the calling process for `d` virtual nanoseconds.
pub fn sleep(d: Nanos) {
    with_current(|k, pid| {
        let at = k.now() + d;
        k.sleep_until(pid, at)
    });
}

/// Suspend the calling process until virtual time `at`.
pub fn sleep_until(at: Nanos) {
    with_current(|k, pid| k.sleep_until(pid, at));
}

/// Account `d` nanoseconds of simulated CPU work.
///
/// Alias of [`sleep`]: each simulated process owns its core, so busy time and
/// idle time are indistinguishable to other processes.
#[inline]
pub fn work(d: Nanos) {
    sleep(d);
}

/// Yield to any other event scheduled at the current virtual instant.
pub fn yield_now() {
    sleep(0);
}

/// Schedule `f` to run on the driver thread at absolute virtual time `at`
/// (clamped to now). Callable only from within a simulated process; the
/// driver-side equivalent is [`Sim::call_at`].
///
/// Used for effects that must occur at an exact instant without a dedicated
/// process — e.g. the NIC applying DMA bytes at message-arrival time.
pub fn call_at<F>(at: Nanos, f: F)
where
    F: FnOnce() + Send + 'static,
{
    with_current(|k, _| k.schedule(at, EventKind::Call(Box::new(|_k| f()))));
}

/// Spawn a new simulated process from within a running one. The child starts
/// at the current virtual time, after the parent yields.
pub fn spawn<F>(name: &str, f: F) -> ProcessHandle
where
    F: FnOnce() + Send + 'static,
{
    with_current(|k, _| k.spawn_process(name, f))
}

// ---------------------------------------------------------------------------
// Public handles
// ---------------------------------------------------------------------------

/// Handle to a spawned process; lets other processes [`join`](Self::join) it.
pub struct ProcessHandle {
    kernel: Arc<Kernel>,
    pid: Pid,
}

impl ProcessHandle {
    /// Pid of the process this handle refers to.
    pub fn pid(&self) -> Pid {
        self.pid
    }

    /// Block (in virtual time) until the process exits. Must be called from
    /// within a simulated process.
    pub fn join(&self) {
        let (me_kernel, me) = with_current(|k, pid| (Arc::clone(k), pid));
        assert!(
            Arc::ptr_eq(&me_kernel, &self.kernel),
            "join across different simulations"
        );
        let ticket = {
            let mut s = self.kernel.sched.lock();
            if s.meta[self.pid].exited {
                return;
            }
            // Reserve the ticket *before* registering as a joiner; the
            // sched lock must be released in between because prepare_park
            // takes the proc lock.
            drop(s);
            let t = self.kernel.prepare_park(me);
            s = self.kernel.sched.lock();
            if s.meta[self.pid].exited {
                // Exited in the window — but nothing else ran (we hold
                // execution), so this is unreachable; keep it for safety.
                return;
            }
            s.meta[self.pid].joiners.push((me, t));
            t
        };
        let _ = ticket;
        self.kernel.park(me);
    }

    /// Whether the process has exited.
    pub fn is_finished(&self) -> bool {
        self.kernel.sched.lock().meta[self.pid].exited
    }
}

/// Result of driving a simulation with [`Sim::run`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RunOutcome {
    /// Every process exited; `now` is the final virtual time.
    Completed { now: Nanos },
    /// The event queue drained but some processes are still parked (e.g. a
    /// server blocked on a closed-wire receive). `parked` lists their names.
    Idle { now: Nanos, parked: Vec<String> },
    /// A process panicked; the message includes the process name.
    Failed { now: Nanos, error: String },
    /// `run_until` reached the requested time with events still pending.
    DeadlineReached { now: Nanos },
}

impl RunOutcome {
    /// Final virtual time of the run.
    pub fn now(&self) -> Nanos {
        match self {
            RunOutcome::Completed { now }
            | RunOutcome::Idle { now, .. }
            | RunOutcome::Failed { now, .. }
            | RunOutcome::DeadlineReached { now } => *now,
        }
    }

    /// Panics if the run failed; otherwise returns `self`.
    pub fn expect_ok(self) -> Self {
        if let RunOutcome::Failed { error, .. } = &self {
            panic!("simulation failed: {error}");
        }
        self
    }
}

/// A deterministic discrete-event simulation.
///
/// See the [crate docs](crate) for the execution model. The `seed` is carried
/// for components that want deterministic randomness; the kernel itself is
/// deterministic by construction.
pub struct Sim {
    kernel: Arc<Kernel>,
    seed: u64,
}

/// Upper bound on events drained per queue-lock acquisition. Large enough
/// that thousand-client same-tick storms amortize the lock to nothing, small
/// enough to bound the scratch buffer.
const MAX_BATCH: usize = 1024;

impl Sim {
    /// Create an empty simulation with the default executor (`EF_SIM_EXEC`,
    /// fiber where supported). `seed` is made available via [`Sim::seed`]
    /// for seeding workload/crash RNGs.
    pub fn new(seed: u64) -> Self {
        Sim::with_exec(seed, ExecModel::from_env())
    }

    /// Create an empty simulation on a specific executor. Used by the
    /// equivalence suites and benches to compare backends directly.
    pub fn with_exec(seed: u64, exec: ExecModel) -> Self {
        install_quiet_abort_hook();
        Sim {
            kernel: Kernel::new(exec.resolve()),
            seed,
        }
    }

    /// The seed this simulation was created with.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The executor actually in use (after target fallback).
    pub fn exec(&self) -> ExecModel {
        self.kernel.exec
    }

    /// Current virtual time.
    pub fn now(&self) -> Nanos {
        self.kernel.now()
    }

    /// Kernel hot-path counters (events, allocations, context switches).
    pub fn counters(&self) -> SimCounters {
        let s = self.kernel.sched.lock();
        self.kernel.stats.snapshot(&s)
    }

    /// Spawn a simulated process. It first runs when [`run`](Self::run) is
    /// called (at the current virtual time).
    pub fn spawn<F>(&self, name: &str, f: F) -> ProcessHandle
    where
        F: FnOnce() + Send + 'static,
    {
        self.kernel.spawn_process(name, f)
    }

    /// Create a virtual-latency channel tied to this simulation.
    pub fn channel<T: Send + 'static>(&self) -> (crate::Sender<T>, crate::Receiver<T>) {
        crate::chan::channel_on(&self.kernel)
    }

    /// Schedule a closure to run on the driver thread at absolute virtual
    /// time `at`. Used by the fabric to apply DMA effects at exact instants.
    pub fn call_at<F>(&self, at: Nanos, f: F)
    where
        F: FnOnce() + Send + 'static,
    {
        self.kernel
            .schedule(at, EventKind::Call(Box::new(|_k| f())));
    }

    /// Drive the simulation until no events remain (or a process panics).
    pub fn run(&mut self) -> RunOutcome {
        self.run_inner(None)
    }

    /// Drive the simulation until virtual time `deadline`. Events after the
    /// deadline stay queued; the clock stops at the last event processed, or
    /// at `deadline` when events remain.
    pub fn run_until(&mut self, deadline: Nanos) -> RunOutcome {
        self.run_inner(Some(deadline))
    }

    fn run_inner(&mut self, deadline: Option<Nanos>) -> RunOutcome {
        let kernel = Arc::clone(&self.kernel);
        // Scratch batch of same-tick events, reused across refills so the
        // steady-state dispatch loop performs no allocation at all.
        let mut batch: Vec<(u64, EventKind)> = Vec::new();
        // Pid → proc lookaside. Pids are stable and the procs table is
        // append-only, so a cached Arc stays valid for the whole run and
        // the per-wake `procs` lock + Arc clone drops out of the hot loop.
        let mut proc_cache: Vec<Option<Arc<Proc>>> = Vec::new();
        // Per-run dispatch tallies, folded into the shared atomics on every
        // exit path (one RMW per counter per run, not per event).
        let mut tally = DispatchTally::default();
        loop {
            // Refill: drain every event scheduled for the earliest pending
            // tick in one lock acquisition. Order-safe: batch members are
            // already in `(at, seq)` order and any event scheduled *during*
            // the batch gets a later `seq` (same tick) or a later tick, so
            // it sorts after every batch member.
            let tick = {
                let mut s = kernel.sched.lock();
                if kernel.stats.failed.load(Ordering::Relaxed) {
                    if let Some(err) = s.failure.take() {
                        kernel.stats.failed.store(false, Ordering::Relaxed);
                        let now = s.now;
                        kernel.stats.fold_dispatch(&tally);
                        return RunOutcome::Failed { now, error: err };
                    }
                }
                let Some(head) = s.heap.peek() else { break };
                let tick = head.at;
                if let Some(dl) = deadline {
                    if tick > dl {
                        s.now = dl;
                        kernel.now_cache.store(dl, Ordering::Relaxed);
                        kernel.stats.fold_dispatch(&tally);
                        return RunOutcome::DeadlineReached { now: dl };
                    }
                }
                debug_assert!(tick >= s.now, "event scheduled in the past");
                s.now = tick;
                kernel.now_cache.store(tick, Ordering::Relaxed);
                while let Some(h) = s.heap.peek() {
                    if h.at != tick || batch.len() >= MAX_BATCH {
                        break;
                    }
                    let key = s.heap.pop().expect("peeked event vanished");
                    let kind = s.take_slot(key.slot);
                    batch.push((key.seq, kind));
                }
                s.events_dispatched += batch.len() as u64;
                tick
            };
            let stats = &kernel.stats;
            let mut pending = batch.drain(..);
            while let Some((_seq, kind)) = pending.next() {
                match kind {
                    EventKind::Call(f) => {
                        tally.calls += 1;
                        f(&kernel);
                    }
                    EventKind::WakeAll(target) => {
                        tally.chan_wakes += 1;
                        target.wake_all(&kernel);
                    }
                    EventKind::Wake { pid, ticket } => {
                        if proc_cache.len() <= pid {
                            proc_cache.resize(pid + 1, None);
                        }
                        let proc = proc_cache[pid].get_or_insert_with(|| kernel.proc_arc(pid));
                        let granted = {
                            let mut st = proc.sync.lock();
                            if st.phase == Phase::Exited || st.ticket != ticket {
                                tally.wakes_stale += 1;
                                false // stale wake
                            } else {
                                debug_assert_eq!(st.phase, Phase::Idle, "waking a running process");
                                st.phase = Phase::Run;
                                tally.ctx_switches += 1;
                                if let ProcImpl::Thread { cv } = &proc.imp {
                                    cv.notify_all();
                                    while st.phase == Phase::Run {
                                        cv.wait(&mut st);
                                    }
                                }
                                true
                            }
                        };
                        if granted {
                            if let ProcImpl::Fiber(_) = &proc.imp {
                                kernel.resume_fiber(pid, proc);
                            }
                        }
                    }
                }
                if stats.failed.load(Ordering::Relaxed) {
                    // A process panicked mid-batch. Put the undispatched
                    // remainder back so the queue state matches what a
                    // one-event-at-a-time loop would leave behind, then
                    // surface the failure.
                    let rest: Vec<(u64, EventKind)> = pending.collect();
                    let mut s = kernel.sched.lock();
                    for (seq, kind) in rest {
                        s.requeue(tick, seq, kind);
                    }
                    stats.failed.store(false, Ordering::Relaxed);
                    if let Some(err) = s.failure.take() {
                        let now = s.now;
                        stats.fold_dispatch(&tally);
                        return RunOutcome::Failed { now, error: err };
                    }
                    break;
                }
            }
        }
        // Event queue drained.
        self.kernel.stats.fold_dispatch(&tally);
        let s = self.kernel.sched.lock();
        if let Some(err) = s.failure.clone() {
            return RunOutcome::Failed {
                now: s.now,
                error: err,
            };
        }
        if s.live == 0 {
            RunOutcome::Completed { now: s.now }
        } else {
            let procs = self.kernel.procs.lock();
            let parked = s
                .meta
                .iter()
                .enumerate()
                .filter(|(_, m)| !m.exited)
                .map(|(pid, _)| procs[pid].name.clone())
                .collect();
            RunOutcome::Idle { now: s.now, parked }
        }
    }
}

impl Drop for Sim {
    fn drop(&mut self) {
        // Abort every parked process so it unwinds and exits. Processes are
        // never *running* here: the driver (us) isn't inside run(), so all
        // processes are parked, never-started, or exited.
        let procs = self.kernel.procs.lock().clone();
        for (pid, proc) in procs.iter().enumerate() {
            match &proc.imp {
                ProcImpl::Thread { cv } => {
                    let mut st = proc.sync.lock();
                    if st.phase == Phase::Idle {
                        st.phase = Phase::Abort;
                        cv.notify_all();
                    }
                }
                ProcImpl::Fiber(slot) => {
                    // Never started: just drop the stored body — no stack
                    // exists, nothing to unwind.
                    if slot.discard_unstarted() {
                        continue;
                    }
                    let parked = {
                        let mut st = proc.sync.lock();
                        if st.phase == Phase::Idle {
                            st.phase = Phase::Abort;
                            true
                        } else {
                            false
                        }
                    };
                    if parked {
                        // The resume runs the AbortToken unwind to
                        // completion on the fiber's own stack and frees it.
                        self.kernel
                            .stats
                            .ctx_switches
                            .fetch_add(1, Ordering::Relaxed);
                        self.kernel.resume_fiber(pid, proc);
                    }
                }
            }
        }
        drop(procs);
        let threads = std::mem::take(&mut *self.kernel.threads.lock());
        for t in threads {
            let _ = t.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::micros;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Mutex as StdMutex;

    /// Run `f` once per executor backend, so every semantic pin in this
    /// module covers both the fiber and thread implementations.
    fn for_each_exec(f: impl Fn(fn(u64) -> Sim)) {
        f(|seed| Sim::with_exec(seed, ExecModel::Fiber));
        f(|seed| Sim::with_exec(seed, ExecModel::Thread));
    }

    #[test]
    fn clock_starts_at_zero_and_advances_by_sleep() {
        for_each_exec(|mk| {
            let mut sim = mk(0);
            let t = Arc::new(AtomicU64::new(u64::MAX));
            let t2 = t.clone();
            sim.spawn("p", move || {
                assert_eq!(now(), 0);
                sleep(micros(5));
                t2.store(now(), Ordering::SeqCst);
            });
            let out = sim.run().expect_ok();
            assert_eq!(out, RunOutcome::Completed { now: micros(5) });
            assert_eq!(t.load(Ordering::SeqCst), micros(5));
        });
    }

    #[test]
    fn processes_interleave_in_time_order() {
        for_each_exec(|mk| {
            let mut sim = mk(0);
            let log = Arc::new(StdMutex::new(Vec::new()));
            for (name, delay) in [("a", 300u64), ("b", 100), ("c", 200)] {
                let log = log.clone();
                sim.spawn(name, move || {
                    sleep(delay);
                    log.lock().unwrap().push((now(), name));
                });
            }
            sim.run().expect_ok();
            assert_eq!(
                *log.lock().unwrap(),
                vec![(100, "b"), (200, "c"), (300, "a")]
            );
        });
    }

    #[test]
    fn simultaneous_wakes_fire_in_spawn_order() {
        for_each_exec(|mk| {
            let mut sim = mk(0);
            let log = Arc::new(StdMutex::new(Vec::new()));
            for name in ["first", "second", "third"] {
                let log = log.clone();
                sim.spawn(name, move || {
                    sleep(50);
                    log.lock().unwrap().push(name);
                });
            }
            sim.run().expect_ok();
            assert_eq!(*log.lock().unwrap(), vec!["first", "second", "third"]);
        });
    }

    #[test]
    fn spawn_from_process_starts_at_current_time() {
        for_each_exec(|mk| {
            let mut sim = mk(0);
            let child_start = Arc::new(AtomicU64::new(u64::MAX));
            let cs = child_start.clone();
            sim.spawn("parent", move || {
                sleep(1_000);
                let cs = cs.clone();
                let h = spawn("child", move || {
                    cs.store(now(), Ordering::SeqCst);
                    sleep(500);
                });
                h.join();
                assert_eq!(now(), 1_500);
            });
            sim.run().expect_ok();
            assert_eq!(child_start.load(Ordering::SeqCst), 1_000);
        });
    }

    #[test]
    fn join_on_already_exited_process_returns_immediately() {
        for_each_exec(|mk| {
            let mut sim = mk(0);
            sim.spawn("root", || {
                let h = spawn("quick", || {});
                sleep(10_000); // child exits long before this
                h.join();
                assert_eq!(now(), 10_000);
            });
            sim.run().expect_ok();
        });
    }

    #[test]
    fn panic_in_process_is_reported_with_name() {
        for_each_exec(|mk| {
            let mut sim = mk(0);
            sim.spawn("doomed", || {
                sleep(10);
                panic!("boom");
            });
            match sim.run() {
                RunOutcome::Failed { error, now } => {
                    assert!(error.contains("doomed"), "missing name: {error}");
                    assert!(error.contains("boom"), "missing message: {error}");
                    assert_eq!(now, 10);
                }
                other => panic!("expected failure, got {other:?}"),
            }
        });
    }

    #[test]
    fn idle_reports_parked_process_names() {
        for_each_exec(|mk| {
            let mut sim = mk(0);
            let (_tx, rx) = sim.channel::<()>();
            sim.spawn("server", move || {
                // _tx is still alive outside; recv blocks forever.
                let _ = rx.recv();
            });
            match sim.run() {
                RunOutcome::Idle { parked, .. } => {
                    assert_eq!(parked, vec!["server".to_string()])
                }
                other => panic!("expected Idle, got {other:?}"),
            }
        });
    }

    #[test]
    fn run_until_stops_at_deadline() {
        for_each_exec(|mk| {
            let mut sim = mk(0);
            let progressed = Arc::new(AtomicU64::new(0));
            let p = progressed.clone();
            sim.spawn("ticker", move || loop {
                sleep(1_000);
                p.fetch_add(1, Ordering::SeqCst);
                if now() > micros(100) {
                    break;
                }
            });
            let out = sim.run_until(10_500);
            assert_eq!(out, RunOutcome::DeadlineReached { now: 10_500 });
            assert_eq!(progressed.load(Ordering::SeqCst), 10);
            // Resume to completion.
            sim.run().expect_ok();
            assert!(progressed.load(Ordering::SeqCst) > 100);
        });
    }

    #[test]
    fn call_at_runs_at_exact_time_between_process_steps() {
        for_each_exec(|mk| {
            let mut sim = mk(0);
            let log = Arc::new(StdMutex::new(Vec::new()));
            let l1 = log.clone();
            sim.spawn("p", move || {
                sleep(100);
                l1.lock().unwrap().push(("proc", now()));
            });
            let l2 = log.clone();
            sim.call_at(50, move || l2.lock().unwrap().push(("call", 50)));
            sim.run().expect_ok();
            assert_eq!(*log.lock().unwrap(), vec![("call", 50), ("proc", 100)]);
        });
    }

    #[test]
    fn work_is_an_alias_for_sleep() {
        for_each_exec(|mk| {
            let mut sim = mk(0);
            sim.spawn("w", || {
                work(123);
                assert_eq!(now(), 123);
            });
            sim.run().expect_ok();
        });
    }

    #[test]
    fn dropping_sim_with_parked_processes_does_not_hang() {
        for_each_exec(|mk| {
            let mut sim = mk(0);
            let (_tx, rx) = sim.channel::<()>();
            sim.spawn("stuck", move || {
                let _ = rx.recv();
            });
            let _ = sim.run(); // Idle
            drop(sim); // must abort + unwind the parked process without deadlock
        });
    }

    #[test]
    fn dropping_unrun_sim_with_spawned_processes_does_not_hang() {
        for_each_exec(|mk| {
            let sim = mk(0);
            sim.spawn("never-ran", || {});
            drop(sim);
        });
    }

    #[test]
    fn teardown_unwind_runs_destructors_on_fiber_stacks() {
        // Locals owned by a parked fiber must be dropped during Sim drop
        // (the AbortToken unwind runs to completion on the fiber's stack).
        struct SetOnDrop(Arc<AtomicU64>);
        impl Drop for SetOnDrop {
            fn drop(&mut self) {
                self.0.fetch_add(1, Ordering::SeqCst);
            }
        }
        for_each_exec(|mk| {
            let mut sim = mk(0);
            let drops = Arc::new(AtomicU64::new(0));
            let (_tx, rx) = sim.channel::<()>();
            let d = drops.clone();
            sim.spawn("holder", move || {
                let _guard = SetOnDrop(d);
                let _ = rx.recv(); // parks forever
            });
            let _ = sim.run(); // Idle
            drop(sim);
            assert_eq!(drops.load(Ordering::SeqCst), 1);
        });
    }

    #[test]
    fn panic_after_teardown_is_still_reported() {
        // The quiet-abort flag must be re-armed after a teardown unwind on
        // the driver thread: a later real panic in a *new* Sim must still
        // surface as Failed (and its hook must not be suppressed).
        let mut sim = Sim::with_exec(0, ExecModel::Fiber);
        let (_tx, rx) = sim.channel::<()>();
        sim.spawn("stuck", move || {
            let _ = rx.recv();
        });
        let _ = sim.run();
        drop(sim); // teardown unwind on this thread

        let mut sim2 = Sim::with_exec(0, ExecModel::Fiber);
        sim2.spawn("boom", || panic!("real failure"));
        match sim2.run() {
            RunOutcome::Failed { error, .. } => assert!(error.contains("real failure")),
            other => panic!("expected Failed, got {other:?}"),
        }
    }

    #[test]
    fn deterministic_trace_across_runs() {
        fn trace(seed: u64, exec: ExecModel) -> Vec<(Nanos, String)> {
            let mut sim = Sim::with_exec(seed, exec);
            let log = Arc::new(StdMutex::new(Vec::new()));
            for i in 0..5 {
                let log = log.clone();
                sim.spawn(&format!("p{i}"), move || {
                    let mut d = (i as u64 * 37 + 11) % 97;
                    for _ in 0..20 {
                        sleep(d);
                        d = (d * 31 + 7) % 113;
                        log.lock().unwrap().push((now(), format!("p{i}")));
                    }
                });
            }
            sim.run().expect_ok();
            let v = log.lock().unwrap().clone();
            v
        }
        assert_eq!(trace(1, ExecModel::Fiber), trace(1, ExecModel::Fiber));
        // The executors must produce the identical event order, not merely
        // internally consistent ones.
        assert_eq!(trace(1, ExecModel::Fiber), trace(1, ExecModel::Thread));
    }

    #[test]
    fn backends_agree_on_counters() {
        fn counters(exec: ExecModel) -> SimCounters {
            let mut sim = Sim::with_exec(7, exec);
            let (tx, rx) = sim.channel::<u64>();
            sim.spawn("server", move || {
                while let Ok(v) = rx.recv() {
                    sleep(v % 13);
                }
            });
            sim.spawn("client", move || {
                for i in 0..50 {
                    tx.send(i, 10 + i % 7).unwrap();
                    sleep(5);
                }
            });
            sim.run().expect_ok();
            sim.counters()
        }
        let fiber = counters(ExecModel::Fiber);
        let thread = counters(ExecModel::Thread);
        assert_eq!(fiber.backend_invariant(), thread.backend_invariant());
        assert!(fiber.events_dispatched > 0);
        assert!(fiber.chan_wakes > 0);
        assert!(fiber.ctx_switches > 0);
    }

    #[test]
    fn event_slab_recycles_slots() {
        // A long-running ping-pong keeps the queue small; slab growth must
        // plateau while reuse keeps climbing.
        let mut sim = Sim::new(0);
        sim.spawn("p", || {
            for _ in 0..10_000 {
                sleep(3);
            }
        });
        sim.run().expect_ok();
        let c = sim.counters();
        assert!(
            c.allocs < 64,
            "slab should plateau at the queue high-water mark, grew {} slots",
            c.allocs
        );
        assert!(
            c.slab_reused > 9_000,
            "steady-state scheduling should recycle slots, reused {}",
            c.slab_reused
        );
    }

    #[test]
    fn op_ctx_is_per_process_not_per_thread() {
        // Two processes alternating on the (shared, under fibers) driver
        // thread must each see their own context value across parks.
        for_each_exec(|mk| {
            let mut sim = mk(0);
            for i in 1..=2u64 {
                sim.spawn(&format!("p{i}"), move || {
                    let prev = op_ctx_replace(i * 100);
                    assert_eq!(prev, 0);
                    for _ in 0..10 {
                        sleep(7);
                        assert_eq!(op_ctx_get(), i * 100);
                    }
                    op_ctx_replace(prev);
                });
            }
            sim.run().expect_ok();
            // Outside any process: the fallback slot, untouched.
            assert_eq!(op_ctx_get(), 0);
        });
    }

    #[test]
    fn yield_now_lets_same_time_events_run() {
        for_each_exec(|mk| {
            let mut sim = mk(0);
            let log = Arc::new(StdMutex::new(Vec::new()));
            let l1 = log.clone();
            let l2 = log.clone();
            sim.spawn("a", move || {
                l1.lock().unwrap().push("a1");
                yield_now();
                l1.lock().unwrap().push("a2");
            });
            sim.spawn("b", move || {
                l2.lock().unwrap().push("b1");
            });
            sim.run().expect_ok();
            // a runs first (spawned first), yields; b (scheduled at t=0) runs;
            // then a's wake (scheduled during its first step) fires.
            assert_eq!(*log.lock().unwrap(), vec!["a1", "b1", "a2"]);
        });
    }

    #[test]
    fn deep_recursion_fits_default_fiber_stack() {
        // ~100 levels of non-trivial frames with a park at the bottom —
        // representative of client→pipeline→fabric call depth.
        fn recurse(depth: usize, acc: u64) -> u64 {
            let local = [acc; 16]; // force a real frame
            if depth == 0 {
                sleep(5);
                return local.iter().sum();
            }
            recurse(depth - 1, acc + 1) + local[0]
        }
        let mut sim = Sim::with_exec(0, ExecModel::Fiber);
        sim.spawn("deep", || {
            let v = recurse(100, 1);
            assert!(v > 0);
        });
        sim.run().expect_ok();
    }
}
