//! User-space stackful coroutines ("fibers") for the simulation kernel.
//!
//! The fiber executor runs every simulated process on the *driver* thread:
//! granting an event to a process is a user-space context switch (save six
//! callee-saved registers + swap `rsp`, ~tens of nanoseconds) instead of a
//! Condvar park/wake round trip between two OS threads (~microseconds, plus
//! an OS scheduler trip). Processes keep their blocking call style —
//! `sleep`, `recv`, `join` — because each fiber owns a real stack; yielding
//! switches back to the driver's stack mid-call.
//!
//! # Safety model
//!
//! - Only the driver thread ever switches fibers, and only one fiber runs at
//!   a time, so fiber stacks need no synchronization.
//! - Panics never unwind across the assembly switch: the kernel wraps every
//!   process body in `catch_unwind` *inside* the fiber, so an unwind (user
//!   panic or teardown [`AbortToken`](super::kernel)) starts and stops on the
//!   fiber's own stack.
//! - Stacks are heap allocations (no `mmap` guard pages are available in
//!   this dependency-free build). A canary word at the low end is checked on
//!   every switch back to the driver; overflow fails loudly instead of
//!   corrupting silently. The default stack is deliberately generous
//!   (lazily committed by the OS) and tunable via `EF_SIM_STACK_KB`.
//!
//! The assembly is x86_64 System-V only. On other targets
//! [`SUPPORTED`] is `false` and the kernel falls back to the thread-backed
//! executor, which implements identical semantics.

#[cfg(all(target_arch = "x86_64", not(target_os = "windows")))]
mod imp {
    use std::alloc::{alloc, dealloc, Layout};
    use std::arch::naked_asm;
    use std::cell::Cell;

    pub(crate) const SUPPORTED: bool = true;

    /// Canary written at the lowest address of every fiber stack.
    const CANARY: u64 = 0xEFAC_510C_0F1B_E57A;

    /// Default stack size: 2 MiB, the same as the OS threads it replaces.
    /// Virtual, not resident — untouched pages are never committed.
    const DEFAULT_STACK: usize = 2 * 1024 * 1024;

    fn stack_size() -> usize {
        use std::sync::OnceLock;
        static SIZE: OnceLock<usize> = OnceLock::new();
        *SIZE.get_or_init(|| {
            std::env::var("EF_SIM_STACK_KB")
                .ok()
                .and_then(|v| v.parse::<usize>().ok())
                .map(|kb| kb * 1024)
                .unwrap_or(DEFAULT_STACK)
                .clamp(64 * 1024, 1 << 30)
                // Keep the stack top 16-aligned.
                & !15
        })
    }

    /// Save the six SysV callee-saved registers plus `rsp` into `*save`,
    /// then load `rsp` from `*load` and pop the same set. Falling off the
    /// end `ret`s into whatever the target stack has as a return address —
    /// either a previous `fiber_switch` frame or the entry thunk of a fresh
    /// fiber.
    #[unsafe(naked)]
    unsafe extern "C" fn fiber_switch(_save: *mut usize, _load: *const usize) {
        naked_asm!(
            "push rbp",
            "push rbx",
            "push r12",
            "push r13",
            "push r14",
            "push r15",
            "mov [rdi], rsp",
            "mov rsp, [rsi]",
            "pop r15",
            "pop r14",
            "pop r13",
            "pop r12",
            "pop rbx",
            "pop rbp",
            "ret",
        )
    }

    /// First code a fresh fiber executes. The initial frame parks the
    /// payload pointer in the saved-`r12` slot; move it to the first
    /// argument register and enter Rust. `fiber_entry` never returns, so
    /// the trailing `ud2` is unreachable.
    #[unsafe(naked)]
    unsafe extern "C" fn fiber_thunk() {
        naked_asm!(
            "mov rdi, r12",
            "call {entry}",
            "ud2",
            entry = sym fiber_entry,
        )
    }

    struct Payload {
        body: Box<dyn FnOnce() + Send>,
    }

    extern "C" fn fiber_entry(raw: *mut Payload) -> ! {
        // Re-box and run the process body. The body (built by the kernel)
        // contains its own `catch_unwind`, so no unwind escapes this frame.
        {
            let payload = unsafe { Box::from_raw(raw) };
            (payload.body)();
        }
        // Everything the body owned is dropped; hand the stack back to the
        // driver for good.
        let me = ACTIVE.with(|a| a.get());
        debug_assert!(!me.is_null(), "fiber finished with no active fiber");
        unsafe {
            (*me).done = true;
            loop {
                // `done` makes the driver free this stack instead of
                // resuming it; the loop only guards against a buggy resume.
                fiber_switch(&mut (*me).fiber_rsp, &(*me).driver_rsp);
            }
        }
    }

    thread_local! {
        /// The fiber currently executing on this thread (null on the
        /// driver's own stack). Set around every switch by [`raw_resume`].
        static ACTIVE: Cell<*mut Fiber> = const { Cell::new(std::ptr::null_mut()) };
    }

    struct StackMem {
        base: *mut u8,
        layout: Layout,
    }

    impl StackMem {
        fn new(size: usize) -> StackMem {
            let layout = Layout::from_size_align(size, 16).expect("bad stack layout");
            let base = unsafe { alloc(layout) };
            assert!(!base.is_null(), "fiber stack allocation failed");
            unsafe { (base as *mut u64).write(CANARY) };
            StackMem { base, layout }
        }

        fn top(&self) -> *mut u8 {
            unsafe { self.base.add(self.layout.size()) }
        }

        fn canary_intact(&self) -> bool {
            unsafe { (self.base as *const u64).read() == CANARY }
        }
    }

    impl Drop for StackMem {
        fn drop(&mut self) {
            unsafe { dealloc(self.base, self.layout) };
        }
    }

    pub(super) struct Fiber {
        stack: StackMem,
        /// Saved `rsp` of the suspended fiber.
        fiber_rsp: usize,
        /// Saved `rsp` of the driver while the fiber runs.
        driver_rsp: usize,
        done: bool,
    }

    impl Fiber {
        /// Build a fiber whose first resume runs `body` from the top of a
        /// fresh stack. Layout of the hand-crafted initial frame (slot `i`
        /// is `top - 8*i`), consumed by `fiber_switch`'s pop sequence:
        ///
        /// ```text
        ///   1: 0            terminal return address for stack walkers
        ///   2: 0            padding (keeps the thunk's `call` 16-aligned)
        ///   3: fiber_thunk  popped by `ret`
        ///   4: 0 (rbp)  5: 0 (rbx)  6: payload (r12)
        ///   7: 0 (r13)  8: 0 (r14)  9: 0 (r15)   <- initial rsp
        /// ```
        fn create(body: Box<dyn FnOnce() + Send>) -> Box<Fiber> {
            let stack = StackMem::new(stack_size());
            let payload = Box::into_raw(Box::new(Payload { body }));
            let top = stack.top();
            debug_assert_eq!(top as usize % 16, 0);
            unsafe {
                let slot = |i: usize| top.sub(8 * i) as *mut u64;
                slot(1).write(0);
                slot(2).write(0);
                slot(3).write(fiber_thunk as *const () as usize as u64);
                slot(4).write(0);
                slot(5).write(0);
                slot(6).write(payload as usize as u64);
                slot(7).write(0);
                slot(8).write(0);
                slot(9).write(0);
                Box::new(Fiber {
                    fiber_rsp: slot(9) as usize,
                    driver_rsp: 0,
                    stack,
                    done: false,
                })
            }
        }
    }

    /// Switch from the driver to `f` and back. Returns when `f` parks or
    /// finishes.
    ///
    /// # Safety
    /// Caller must be the only thread resuming fibers and `f` must be
    /// suspended (fresh or parked), never running or done.
    unsafe fn raw_resume(f: *mut Fiber) {
        let prev = ACTIVE.with(|a| a.replace(f));
        unsafe { fiber_switch(&mut (*f).driver_rsp, &(*f).fiber_rsp) };
        ACTIVE.with(|a| a.set(prev));
        assert!(
            unsafe { (*f).stack.canary_intact() },
            "fiber stack overflow detected (raise EF_SIM_STACK_KB)"
        );
    }

    /// Yield from the currently running fiber back to the driver. Returns
    /// when the driver resumes this fiber again.
    pub(crate) fn switch_to_driver() {
        let me = ACTIVE.with(|a| a.get());
        assert!(
            !me.is_null(),
            "fiber park outside a fiber (kernel/backend mismatch)"
        );
        unsafe { fiber_switch(&mut (*me).fiber_rsp, &(*me).driver_rsp) };
    }

    enum Slot {
        /// Spawned; body not yet installed (see `set_body`).
        Empty,
        /// Body installed, fiber not yet started: no stack exists.
        New(Box<dyn FnOnce() + Send>),
        Running(Box<Fiber>),
        Done,
    }

    /// Per-process fiber state, owned by the kernel's `Proc`.
    ///
    /// Wrapped in `UnsafeCell` because `Proc` is shared behind `Arc`, but
    /// every access funnels through the single driver thread (or the thread
    /// dropping the `Sim`, which runs strictly after the driver is out of
    /// `run`), so no synchronization is needed — mirroring how fiber stacks
    /// themselves are single-threaded.
    pub(crate) struct FiberSlot(std::cell::UnsafeCell<Slot>);

    unsafe impl Send for FiberSlot {}
    unsafe impl Sync for FiberSlot {}

    impl FiberSlot {
        pub(crate) fn new() -> FiberSlot {
            FiberSlot(std::cell::UnsafeCell::new(Slot::Empty))
        }

        /// Install the process body. Must happen before the first resume.
        pub(crate) fn set_body(&self, body: Box<dyn FnOnce() + Send>) {
            let slot = unsafe { &mut *self.0.get() };
            debug_assert!(matches!(slot, Slot::Empty), "fiber body set twice");
            *slot = Slot::New(body);
        }

        /// Run the fiber until it parks or finishes, returning the stack
        /// bytes allocated by this resume (nonzero on the first resume
        /// only). Lazily allocates the stack; frees it as soon as the
        /// fiber finishes.
        ///
        /// # Safety
        /// Driver-thread only; the fiber must currently be suspended.
        pub(crate) unsafe fn resume(&self) -> usize {
            let slot = unsafe { &mut *self.0.get() };
            let mut stack_allocated = 0;
            if matches!(slot, Slot::New(_)) {
                let Slot::New(body) = std::mem::replace(slot, Slot::Done) else {
                    unreachable!()
                };
                stack_allocated = stack_size();
                *slot = Slot::Running(Fiber::create(body));
            }
            match slot {
                Slot::Running(f) => {
                    let fp: *mut Fiber = &mut **f;
                    unsafe { raw_resume(fp) };
                    if unsafe { (*fp).done } {
                        *slot = Slot::Done; // drops the Box<Fiber> + stack
                    }
                    stack_allocated
                }
                Slot::Empty => panic!("fiber resumed before its body was set"),
                Slot::Done => stack_allocated,
                Slot::New(_) => unreachable!(),
            }
        }

        /// Drop a never-started body (teardown of a process that was
        /// spawned but never granted execution). Returns whether there was
        /// one. Breaks the `body -> Arc<Kernel> -> Proc -> body` cycle.
        pub(crate) fn discard_unstarted(&self) -> bool {
            let slot = unsafe { &mut *self.0.get() };
            if matches!(slot, Slot::Empty | Slot::New(_)) {
                *slot = Slot::Done;
                true
            } else {
                false
            }
        }
    }
}

#[cfg(not(all(target_arch = "x86_64", not(target_os = "windows"))))]
mod imp {
    //! Stub for targets without a context-switch implementation. The kernel
    //! resolves `ExecModel::Fiber` to `ExecModel::Thread` when
    //! `SUPPORTED` is false, so none of this is reachable.

    pub(crate) const SUPPORTED: bool = false;

    pub(crate) fn switch_to_driver() {
        unreachable!("fiber executor unsupported on this target")
    }

    pub(crate) struct FiberSlot(());

    impl FiberSlot {
        pub(crate) fn new() -> FiberSlot {
            FiberSlot(())
        }

        pub(crate) fn set_body(&self, _body: Box<dyn FnOnce() + Send>) {
            unreachable!("fiber executor unsupported on this target")
        }

        /// # Safety
        /// Never called: unsupported target.
        pub(crate) unsafe fn resume(&self) -> usize {
            unreachable!("fiber executor unsupported on this target")
        }

        pub(crate) fn discard_unstarted(&self) -> bool {
            true
        }
    }
}

pub(crate) use imp::{switch_to_driver, FiberSlot, SUPPORTED};
