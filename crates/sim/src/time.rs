//! Virtual time units.
//!
//! The simulation clock counts nanoseconds in a `u64`, which gives more than
//! five centuries of virtual time — overflow is not a practical concern.

/// Virtual nanoseconds — the unit of the simulation clock.
pub type Nanos = u64;

/// `n` microseconds in [`Nanos`].
#[inline]
pub const fn micros(n: u64) -> Nanos {
    n * 1_000
}

/// `n` milliseconds in [`Nanos`].
#[inline]
pub const fn millis(n: u64) -> Nanos {
    n * 1_000_000
}

/// `n` seconds in [`Nanos`].
#[inline]
pub const fn secs(n: u64) -> Nanos {
    n * 1_000_000_000
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_conversions_compose() {
        assert_eq!(micros(1), 1_000);
        assert_eq!(millis(1), micros(1_000));
        assert_eq!(secs(1), millis(1_000));
        assert_eq!(secs(3), 3_000_000_000);
    }
}
