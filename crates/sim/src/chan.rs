//! MPMC channels with per-send virtual latency.
//!
//! `tx.send(msg, delay)` makes `msg` visible to receivers `delay` virtual
//! nanoseconds after the send. Messages become receivable in
//! `(ready_time, send-sequence)` order, so two sends with different delays
//! may be received out of send order — exactly like packets on a wire.
//!
//! Channels are the only inter-process communication primitive in the
//! simulator; the RDMA fabric builds its send/recv queues and completion
//! queues out of them.

use std::collections::BinaryHeap;
use std::sync::Arc;

use parking_lot::Mutex;

use crate::kernel::{with_current, EventKind, Kernel, Pid, WakeTarget};
use crate::time::Nanos;

struct QueuedMsg<T> {
    ready_at: Nanos,
    seq: u64,
    msg: T,
}

// Min-heap by (ready_at, seq): invert ordering for BinaryHeap.
impl<T> PartialEq for QueuedMsg<T> {
    fn eq(&self, other: &Self) -> bool {
        self.ready_at == other.ready_at && self.seq == other.seq
    }
}
impl<T> Eq for QueuedMsg<T> {}
impl<T> PartialOrd for QueuedMsg<T> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<T> Ord for QueuedMsg<T> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (other.ready_at, other.seq).cmp(&(self.ready_at, self.seq))
    }
}

struct ChanState<T> {
    queue: BinaryHeap<QueuedMsg<T>>,
    next_seq: u64,
    /// Parked receivers: `(pid, park ticket)`.
    waiters: Vec<(Pid, u64)>,
    senders: usize,
    receivers: usize,
}

struct ChanInner<T> {
    state: Mutex<ChanState<T>>,
}

impl<T> ChanInner<T> {
    /// Wake every currently parked receiver (they re-register if still
    /// unsatisfied; stale tickets are discarded by the driver).
    fn wake_waiters(state: &mut ChanState<T>, kernel: &Kernel, at: Nanos) {
        for (pid, ticket) in state.waiters.drain(..) {
            kernel.schedule(at, EventKind::Wake { pid, ticket });
        }
    }
}

// Channel delivery is the hottest event in the simulator; implementing
// `WakeTarget` on the channel itself lets a send schedule an `Arc` clone
// instead of boxing a fresh closure per message.
impl<T: Send + 'static> WakeTarget for ChanInner<T> {
    fn wake_all(&self, kernel: &Arc<Kernel>) {
        let mut st = self.state.lock();
        let at = kernel.now();
        ChanInner::wake_waiters(&mut st, kernel, at);
    }
}

/// Error returned by [`Sender::send`] when every receiver has been dropped.
#[derive(Debug, PartialEq, Eq)]
pub struct SendError<T>(pub T);

/// Error returned by [`Receiver::recv`] when the channel is empty and every
/// sender has been dropped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecvError;

/// Error returned by [`Receiver::try_recv`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TryRecvError {
    /// No message is ready at the current virtual time.
    Empty,
    /// Empty and all senders dropped.
    Disconnected,
}

/// Error returned by [`Receiver::recv_deadline`] / `recv_timeout`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecvTimeoutError {
    /// The deadline passed with no ready message.
    Timeout,
    /// Empty and all senders dropped.
    Disconnected,
}

/// Sending half of a virtual-latency channel. Cloneable (MPMC).
pub struct Sender<T> {
    kernel: Arc<Kernel>,
    inner: Arc<ChanInner<T>>,
}

/// Receiving half of a virtual-latency channel. Cloneable (MPMC).
pub struct Receiver<T> {
    kernel: Arc<Kernel>,
    inner: Arc<ChanInner<T>>,
}

impl<T: Send + 'static> Sender<T> {
    /// Enqueue `msg`, receivable `delay` virtual nanoseconds from now.
    ///
    /// Fails only when every [`Receiver`] has been dropped.
    pub fn send(&self, msg: T, delay: Nanos) -> Result<(), SendError<T>> {
        let now = self.kernel.now();
        let ready_at = now + delay;
        let mut st = self.inner.state.lock();
        if st.receivers == 0 {
            return Err(SendError(msg));
        }
        let seq = st.next_seq;
        st.next_seq += 1;
        st.queue.push(QueuedMsg { ready_at, seq, msg });
        // Wake parked receivers at the instant the message becomes ready.
        // Scheduling an event (rather than draining waiters now) is
        // essential: a later send with a *smaller* delay must be able to
        // wake them earlier.
        drop(st);
        self.kernel.schedule(
            ready_at,
            EventKind::WakeAll(Arc::clone(&self.inner) as Arc<dyn WakeTarget>),
        );
        Ok(())
    }
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        self.inner.state.lock().senders += 1;
        Sender {
            kernel: Arc::clone(&self.kernel),
            inner: Arc::clone(&self.inner),
        }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        let mut st = self.inner.state.lock();
        st.senders -= 1;
        if st.senders == 0 {
            // Wake parked receivers so they can observe disconnection.
            let now = self.kernel.now();
            ChanInner::wake_waiters(&mut st, &self.kernel, now);
        }
    }
}

impl<T: Send + 'static> Receiver<T> {
    /// Pop a ready message if one exists at the current virtual time.
    fn pop_ready(st: &mut ChanState<T>, now: Nanos) -> Option<T> {
        if st.queue.peek().is_some_and(|m| m.ready_at <= now) {
            Some(st.queue.pop().expect("peeked message vanished").msg)
        } else {
            None
        }
    }

    /// Block (in virtual time) until a message is ready or the channel
    /// disconnects. Must be called from within a simulated process.
    pub fn recv(&self) -> Result<T, RecvError> {
        let pid = with_current(|_, pid| pid);
        loop {
            let mut st = self.inner.state.lock();
            let now = self.kernel.now();
            if let Some(msg) = Self::pop_ready(&mut st, now) {
                return Ok(msg);
            }
            if st.senders == 0 && st.queue.is_empty() {
                return Err(RecvError);
            }
            let ticket = self.kernel.prepare_park(pid);
            st.waiters.push((pid, ticket));
            // An in-flight (not yet ready) message will not emit another
            // wake Call for *this* waiter registration if its Call already
            // fired... it cannot have: ready_at > now means the Call is
            // still queued. So queued messages always wake us; only a
            // deadline needs explicit scheduling (see recv_deadline).
            drop(st);
            self.kernel.park(pid);
        }
    }

    /// Like [`recv`](Self::recv) but gives up at absolute virtual time
    /// `deadline`.
    pub fn recv_deadline(&self, deadline: Nanos) -> Result<T, RecvTimeoutError> {
        let pid = with_current(|_, pid| pid);
        loop {
            let mut st = self.inner.state.lock();
            let now = self.kernel.now();
            if let Some(msg) = Self::pop_ready(&mut st, now) {
                return Ok(msg);
            }
            if st.senders == 0 && st.queue.is_empty() {
                return Err(RecvTimeoutError::Disconnected);
            }
            if now >= deadline {
                return Err(RecvTimeoutError::Timeout);
            }
            let ticket = self.kernel.prepare_park(pid);
            st.waiters.push((pid, ticket));
            self.kernel
                .schedule(deadline, EventKind::Wake { pid, ticket });
            drop(st);
            self.kernel.park(pid);
        }
    }

    /// Like [`recv`](Self::recv) but gives up after `timeout` virtual
    /// nanoseconds.
    pub fn recv_timeout(&self, timeout: Nanos) -> Result<T, RecvTimeoutError> {
        let deadline = self.kernel.now() + timeout;
        self.recv_deadline(deadline)
    }

    /// Non-blocking receive of a message that is ready *now*.
    pub fn try_recv(&self) -> Result<T, TryRecvError> {
        let mut st = self.inner.state.lock();
        let now = self.kernel.now();
        if let Some(msg) = Self::pop_ready(&mut st, now) {
            return Ok(msg);
        }
        if st.senders == 0 && st.queue.is_empty() {
            Err(TryRecvError::Disconnected)
        } else {
            Err(TryRecvError::Empty)
        }
    }

    /// Number of queued messages (ready or in flight). Diagnostic only.
    pub fn len(&self) -> usize {
        self.inner.state.lock().queue.len()
    }

    /// True when no messages are queued (ready or in flight).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<T> Clone for Receiver<T> {
    fn clone(&self) -> Self {
        self.inner.state.lock().receivers += 1;
        Receiver {
            kernel: Arc::clone(&self.kernel),
            inner: Arc::clone(&self.inner),
        }
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        self.inner.state.lock().receivers -= 1;
    }
}

pub(crate) fn channel_on<T: Send + 'static>(kernel: &Arc<Kernel>) -> (Sender<T>, Receiver<T>) {
    let inner = Arc::new(ChanInner {
        state: Mutex::new(ChanState {
            queue: BinaryHeap::new(),
            next_seq: 0,
            waiters: Vec::new(),
            senders: 1,
            receivers: 1,
        }),
    });
    (
        Sender {
            kernel: Arc::clone(kernel),
            inner: Arc::clone(&inner),
        },
        Receiver {
            kernel: Arc::clone(kernel),
            inner,
        },
    )
}

/// Create a channel from within a simulated process (driver-side creation
/// goes through [`Sim::channel`](crate::Sim::channel)).
pub fn channel<T: Send + 'static>() -> (Sender<T>, Receiver<T>) {
    with_current(|k, _| channel_on(k))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::{now, sleep, RunOutcome, Sim};
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Mutex as StdMutex;

    #[test]
    fn message_arrives_after_delay() {
        let mut sim = Sim::new(0);
        let (tx, rx) = sim.channel::<u32>();
        sim.spawn("tx", move || {
            tx.send(1, 700).unwrap();
        });
        sim.spawn("rx", move || {
            assert_eq!(rx.recv(), Ok(1));
            assert_eq!(now(), 700);
        });
        sim.run().expect_ok();
    }

    #[test]
    fn smaller_delay_overtakes_larger() {
        let mut sim = Sim::new(0);
        let (tx, rx) = sim.channel::<u32>();
        sim.spawn("tx", move || {
            tx.send(1, 1_000).unwrap(); // ready at 1000
            tx.send(2, 100).unwrap(); // ready at 100 — overtakes
        });
        sim.spawn("rx", move || {
            assert_eq!(rx.recv(), Ok(2));
            assert_eq!(now(), 100);
            assert_eq!(rx.recv(), Ok(1));
            assert_eq!(now(), 1_000);
        });
        sim.run().expect_ok();
    }

    #[test]
    fn equal_ready_time_is_fifo_by_send_order() {
        let mut sim = Sim::new(0);
        let (tx, rx) = sim.channel::<u32>();
        sim.spawn("tx", move || {
            for i in 0..10 {
                tx.send(i, 500).unwrap();
            }
        });
        sim.spawn("rx", move || {
            for i in 0..10 {
                assert_eq!(rx.recv(), Ok(i));
            }
        });
        sim.run().expect_ok();
    }

    #[test]
    fn recv_blocks_until_send() {
        let mut sim = Sim::new(0);
        let (tx, rx) = sim.channel::<&str>();
        sim.spawn("rx", move || {
            assert_eq!(rx.recv(), Ok("hello"));
            assert_eq!(now(), 2_300);
        });
        sim.spawn("tx", move || {
            sleep(2_000);
            tx.send("hello", 300).unwrap();
        });
        sim.run().expect_ok();
    }

    #[test]
    fn receiver_woken_for_queued_but_not_ready_message() {
        // The receiver parks while a message is in flight; no other event
        // exists, so only the delivery Call can wake it.
        let mut sim = Sim::new(0);
        let (tx, rx) = sim.channel::<u8>();
        sim.spawn("both", move || {
            tx.send(9, 5_000).unwrap();
            assert_eq!(rx.recv(), Ok(9));
            assert_eq!(now(), 5_000);
        });
        sim.run().expect_ok();
    }

    #[test]
    fn disconnection_wakes_blocked_receiver() {
        let mut sim = Sim::new(0);
        let (tx, rx) = sim.channel::<u8>();
        sim.spawn("rx", move || {
            assert_eq!(rx.recv(), Err(RecvError));
            assert_eq!(now(), 400);
        });
        sim.spawn("tx", move || {
            sleep(400);
            drop(tx);
        });
        sim.run().expect_ok();
    }

    #[test]
    fn in_flight_messages_survive_sender_drop() {
        let mut sim = Sim::new(0);
        let (tx, rx) = sim.channel::<u8>();
        sim.spawn("tx", move || {
            tx.send(5, 1_000).unwrap();
            // tx dropped at t=0; message still in flight.
        });
        sim.spawn("rx", move || {
            assert_eq!(rx.recv(), Ok(5));
            assert_eq!(rx.recv(), Err(RecvError));
        });
        sim.run().expect_ok();
    }

    #[test]
    fn recv_timeout_times_out_then_succeeds() {
        let mut sim = Sim::new(0);
        let (tx, rx) = sim.channel::<u8>();
        sim.spawn("rx", move || {
            assert_eq!(rx.recv_timeout(100), Err(RecvTimeoutError::Timeout));
            assert_eq!(now(), 100);
            assert_eq!(rx.recv_timeout(10_000), Ok(3));
            assert_eq!(now(), 500);
        });
        sim.spawn("tx", move || {
            tx.send(3, 500).unwrap();
        });
        sim.run().expect_ok();
    }

    #[test]
    fn try_recv_sees_only_ready_messages() {
        let mut sim = Sim::new(0);
        let (tx, rx) = sim.channel::<u8>();
        sim.spawn("p", move || {
            tx.send(1, 100).unwrap();
            assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
            sleep(100);
            assert_eq!(rx.try_recv(), Ok(1));
            drop(tx);
            assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
        });
        sim.run().expect_ok();
    }

    #[test]
    fn send_to_dropped_receiver_fails() {
        let mut sim = Sim::new(0);
        let (tx, rx) = sim.channel::<u8>();
        drop(rx);
        sim.spawn("tx", move || {
            assert_eq!(tx.send(1, 0), Err(SendError(1)));
        });
        sim.run().expect_ok();
    }

    #[test]
    fn mpmc_each_message_delivered_exactly_once() {
        let mut sim = Sim::new(0);
        let (tx, rx) = sim.channel::<u64>();
        let total = Arc::new(AtomicU64::new(0));
        let count = Arc::new(AtomicU64::new(0));
        for c in 0..3 {
            let rx = rx.clone();
            let total = total.clone();
            let count = count.clone();
            sim.spawn(&format!("rx{c}"), move || {
                while let Ok(v) = rx.recv() {
                    total.fetch_add(v, Ordering::SeqCst);
                    count.fetch_add(1, Ordering::SeqCst);
                    sleep(10);
                }
            });
        }
        drop(rx);
        sim.spawn("tx", move || {
            for i in 1..=100u64 {
                tx.send(i, i % 7).unwrap();
                sleep(3);
            }
        });
        match sim.run() {
            RunOutcome::Completed { .. } => {}
            other => panic!("unexpected outcome {other:?}"),
        }
        assert_eq!(count.load(Ordering::SeqCst), 100);
        assert_eq!(total.load(Ordering::SeqCst), 5050);
    }

    #[test]
    fn rpc_round_trip_latency_adds_up() {
        // Classic request/response: client -> server (one-way 900ns),
        // server works 250ns, server -> client (900ns). Total 2050ns.
        let mut sim = Sim::new(0);
        let (req_tx, req_rx) = sim.channel::<u32>();
        let (resp_tx, resp_rx) = sim.channel::<u32>();
        sim.spawn("server", move || {
            while let Ok(x) = req_rx.recv() {
                sleep(250);
                if resp_tx.send(x * 2, 900).is_err() {
                    break;
                }
            }
        });
        sim.spawn("client", move || {
            for i in 0..10 {
                let t0 = now();
                req_tx.send(i, 900).unwrap();
                let r = resp_rx.recv().unwrap();
                assert_eq!(r, i * 2);
                assert_eq!(now() - t0, 2_050);
            }
        });
        // The client drops req_tx on exit, the server observes the
        // disconnect and exits too, so the whole run completes.
        match sim.run() {
            RunOutcome::Completed { now } => assert_eq!(now, 10 * 2_050),
            other => panic!("unexpected outcome {other:?}"),
        }
    }

    #[test]
    fn two_receivers_one_parked_stale_wake_goes_to_real_waiter() {
        // Regression guard for the wake-all design: a receiver that already
        // got a message must not swallow a wake destined for another.
        let mut sim = Sim::new(0);
        let (tx, rx) = sim.channel::<u8>();
        let got = Arc::new(StdMutex::new(Vec::new()));
        for i in 0..2 {
            let rx = rx.clone();
            let got = got.clone();
            sim.spawn(&format!("rx{i}"), move || {
                let v = rx.recv().unwrap();
                got.lock().unwrap().push((i, v, now()));
            });
        }
        drop(rx);
        sim.spawn("tx", move || {
            tx.send(10, 100).unwrap();
            tx.send(20, 100).unwrap();
        });
        sim.run().expect_ok();
        let got = got.lock().unwrap();
        assert_eq!(got.len(), 2);
        let vals: Vec<u8> = got.iter().map(|&(_, v, _)| v).collect();
        assert!(vals.contains(&10) && vals.contains(&20));
    }
}
