//! # efactory-sim — deterministic discrete-event simulation kernel
//!
//! The eFactory reproduction runs distributed-systems experiments (an RDMA
//! fabric, a persistent-memory server, many concurrent clients) on a single
//! host without the paper's hardware. This crate provides the substrate that
//! makes that possible: a **virtual clock** and a set of **simulated
//! processes** that execute one at a time in a deterministic order.
//!
//! ## Model
//!
//! * A [`Sim`] owns a virtual clock (nanoseconds, starting at 0) and an event
//!   queue ordered by `(time, sequence-number)`.
//! * A *process* ([`spawn`](Sim::spawn)) runs ordinary blocking Rust code,
//!   but every blocking operation — [`sleep`], [`Receiver::recv`],
//!   [`ProcessHandle::join`] — parks the process and hands control back to
//!   the driver. Exactly one process executes at any moment, so execution is
//!   fully serialized and deterministic, independent of the host's core
//!   count or scheduler. Processes are hosted either as user-space *fibers*
//!   on the driver thread (default — a grant costs one register-swap context
//!   switch) or as one OS thread each (the original executor, kept for
//!   equivalence testing and portability); see [`ExecModel`]. Both backends
//!   produce bit-identical event orders.
//! * [`channel`] / [`Sim::channel`] build MPMC channels whose sends carry a
//!   **virtual latency**: `tx.send(msg, delay)` makes the message visible to
//!   receivers `delay` virtual nanoseconds later. These model wires, NIC
//!   completion queues, and RPC transports.
//! * CPU time is modeled explicitly: a process calls [`work`] (an alias of
//!   [`sleep`]) to account for the virtual cost of a computation. Because
//!   processes never share a simulated core, `work` by one process does not
//!   slow another — mirroring the paper's testbed, where the request handler,
//!   background verifier, and cleaner each own a physical core.
//!
//! Time advances only through the event queue; wall-clock time is never
//! consulted. Running the same setup twice produces identical traces, which
//! the crash-consistency tests exploit to inject crashes at exact virtual
//! instants.
//!
//! ## Example
//!
//! ```
//! use efactory_sim::{Sim, RunOutcome};
//!
//! let mut sim = Sim::new(42);
//! let (tx, rx) = sim.channel::<u32>();
//! sim.spawn("producer", move || {
//!     efactory_sim::sleep(1_000);
//!     tx.send(7, 500).unwrap(); // arrives at t = 1_500
//! });
//! sim.spawn("consumer", move || {
//!     let v = rx.recv().unwrap();
//!     assert_eq!(v, 7);
//!     assert_eq!(efactory_sim::now(), 1_500);
//! });
//! assert!(matches!(sim.run(), RunOutcome::Completed { .. }));
//! ```

mod chan;
mod fiber;
mod kernel;
mod time;

pub use chan::{channel, Receiver, RecvError, RecvTimeoutError, SendError, Sender, TryRecvError};
pub use kernel::{
    call_at, current_pid, in_process, now, op_ctx_get, op_ctx_replace, sleep, sleep_until, spawn,
    try_now, work, yield_now, ExecModel, Pid, ProcessHandle, RunOutcome, Sim, SimCounters,
};
pub use time::{micros, millis, secs, Nanos};
