//! # efactory-checksum — CRC32C (Castagnoli)
//!
//! eFactory and the comparison systems (Erda, Forca) detect torn RDMA writes
//! by storing a CRC of the value in the object metadata and re-computing it
//! over the fetched/stored bytes. This crate provides the checksum: CRC32C
//! (polynomial `0x1EDC6A41`, reflected `0x82F63B78`), the variant used by
//! iSCSI and most storage systems.
//!
//! Two implementations are provided:
//!
//! * [`crc32c`] — table-driven *slice-by-8*, processing 8 bytes per step;
//!   this is the production path.
//! * [`crc32c_bitwise`] — the 1-bit-at-a-time reference used to validate the
//!   fast path in tests (including property tests over arbitrary inputs).
//!
//! An incremental [`Crc32c`] hasher supports streaming computation (the
//! background verifier checksums values in cache-line-sized chunks while
//! they may still be landing).
//!
//! Note: the *simulated CPU cost* of a verification in the experiments comes
//! from the cost model in `efactory-rnic` (the paper's CRC costs ≈1.07 ns/B),
//! not from how fast this code runs on the host.

/// Reflected CRC32C polynomial.
pub const POLY: u32 = 0x82F6_3B78;

/// Build the 8 lookup tables for slice-by-8 at compile time.
const fn build_tables() -> [[u32; 256]; 8] {
    let mut tables = [[0u32; 256]; 8];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut b = 0;
        while b < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ POLY
            } else {
                crc >> 1
            };
            b += 1;
        }
        tables[0][i] = crc;
        i += 1;
    }
    let mut t = 1;
    while t < 8 {
        let mut i = 0;
        while i < 256 {
            let prev = tables[t - 1][i];
            tables[t][i] = (prev >> 8) ^ tables[0][(prev & 0xFF) as usize];
            i += 1;
        }
        t += 1;
    }
    tables
}

static TABLES: [[u32; 256]; 8] = build_tables();

/// CRC32C of `data` (one-shot, slice-by-8).
#[inline]
pub fn crc32c(data: &[u8]) -> u32 {
    update(!0, data) ^ !0
}

/// Bit-at-a-time reference implementation. Slow; for verification only.
pub fn crc32c_bitwise(data: &[u8]) -> u32 {
    let mut crc = !0u32;
    for &byte in data {
        crc ^= byte as u32;
        for _ in 0..8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ POLY
            } else {
                crc >> 1
            };
        }
    }
    crc ^ !0
}

/// Advance the raw (pre/post-inverted) CRC state over `data`.
fn update(mut crc: u32, mut data: &[u8]) -> u32 {
    // Slice-by-8 main loop.
    while data.len() >= 8 {
        let lo = u32::from_le_bytes([data[0], data[1], data[2], data[3]]) ^ crc;
        let hi = u32::from_le_bytes([data[4], data[5], data[6], data[7]]);
        crc = TABLES[7][(lo & 0xFF) as usize]
            ^ TABLES[6][((lo >> 8) & 0xFF) as usize]
            ^ TABLES[5][((lo >> 16) & 0xFF) as usize]
            ^ TABLES[4][(lo >> 24) as usize]
            ^ TABLES[3][(hi & 0xFF) as usize]
            ^ TABLES[2][((hi >> 8) & 0xFF) as usize]
            ^ TABLES[1][((hi >> 16) & 0xFF) as usize]
            ^ TABLES[0][(hi >> 24) as usize];
        data = &data[8..];
    }
    for &byte in data {
        crc = (crc >> 8) ^ TABLES[0][((crc ^ byte as u32) & 0xFF) as usize];
    }
    crc
}

/// Incremental CRC32C hasher.
///
/// ```
/// use efactory_checksum::{crc32c, Crc32c};
/// let mut h = Crc32c::new();
/// h.update(b"hello ");
/// h.update(b"world");
/// assert_eq!(h.finalize(), crc32c(b"hello world"));
/// ```
#[derive(Clone, Copy, Debug)]
pub struct Crc32c {
    state: u32,
}

impl Crc32c {
    /// Start a fresh computation.
    pub fn new() -> Self {
        Crc32c { state: !0 }
    }

    /// Feed more bytes.
    pub fn update(&mut self, data: &[u8]) {
        self.state = update(self.state, data);
    }

    /// Finish and return the checksum. The hasher may keep being updated; a
    /// later `finalize` reflects all bytes fed so far.
    pub fn finalize(&self) -> u32 {
        self.state ^ !0
    }
}

impl Default for Crc32c {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    // Known-answer vectors for CRC32C (RFC 3720 appendix + common vectors).
    #[test]
    fn known_vectors() {
        assert_eq!(crc32c(b""), 0);
        assert_eq!(crc32c(b"a"), 0xC1D0_4330);
        assert_eq!(crc32c(b"abc"), 0x364B_3FB7);
        assert_eq!(crc32c(b"123456789"), 0xE306_9283);
        // 32 bytes of zeros (iSCSI test vector).
        assert_eq!(crc32c(&[0u8; 32]), 0x8A91_36AA);
        // 32 bytes of 0xFF.
        assert_eq!(crc32c(&[0xFFu8; 32]), 0x62A8_AB43);
        // 0..=31 ascending (iSCSI test vector).
        let asc: Vec<u8> = (0u8..32).collect();
        assert_eq!(crc32c(&asc), 0x46DD_794E);
    }

    #[test]
    fn bitwise_matches_known_vectors() {
        assert_eq!(crc32c_bitwise(b"123456789"), 0xE306_9283);
        assert_eq!(crc32c_bitwise(&[0u8; 32]), 0x8A91_36AA);
    }

    #[test]
    fn incremental_matches_oneshot_at_all_split_points() {
        let data: Vec<u8> = (0..100u8).cycle().take(300).collect();
        let expect = crc32c(&data);
        for split in 0..data.len() {
            let mut h = Crc32c::new();
            h.update(&data[..split]);
            h.update(&data[split..]);
            assert_eq!(h.finalize(), expect, "split at {split}");
        }
    }

    #[test]
    fn detects_single_bit_flips() {
        let data = vec![0x5Au8; 64];
        let base = crc32c(&data);
        for byte in 0..data.len() {
            for bit in 0..8 {
                let mut corrupted = data.clone();
                corrupted[byte] ^= 1 << bit;
                assert_ne!(crc32c(&corrupted), base, "missed flip at {byte}.{bit}");
            }
        }
    }

    #[test]
    fn detects_torn_8_byte_writes() {
        // The failure mode the stores care about: an RDMA write torn at
        // 8-byte granularity (some words new, some stale/zero).
        let new = vec![0xABu8; 64];
        let expect = crc32c(&new);
        for torn_words in 1..8 {
            let mut torn = new.clone();
            for w in torn_words..8 {
                torn[w * 8..(w + 1) * 8].fill(0);
            }
            assert_ne!(crc32c(&torn), expect, "torn at word {torn_words}");
        }
    }

    proptest! {
        #[test]
        fn slice_by_8_equals_bitwise(data in proptest::collection::vec(any::<u8>(), 0..1024)) {
            prop_assert_eq!(crc32c(&data), crc32c_bitwise(&data));
        }

        #[test]
        fn incremental_equals_oneshot(
            data in proptest::collection::vec(any::<u8>(), 0..512),
            splits in proptest::collection::vec(0usize..512, 0..8),
        ) {
            let mut bounds: Vec<usize> = splits.into_iter().map(|s| s % (data.len() + 1)).collect();
            bounds.sort_unstable();
            let mut h = Crc32c::new();
            let mut prev = 0;
            for b in bounds {
                h.update(&data[prev..b]);
                prev = b;
            }
            h.update(&data[prev..]);
            prop_assert_eq!(h.finalize(), crc32c(&data));
        }
    }
}
