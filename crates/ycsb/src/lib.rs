//! # efactory-ycsb — YCSB-style workload generation
//!
//! The paper evaluates with four YCSB workloads over a "long-tailed Zipfian
//! distribution" (§5.2):
//!
//! * **YCSB-C** — read-only (100 % GET)
//! * **YCSB-B** — read-intensive (95 % GET / 5 % PUT)
//! * **YCSB-A** — write-intensive (50 % GET / 50 % PUT)
//! * **Update-only** — 100 % PUT
//!
//! This crate reimplements the relevant parts of the YCSB core driver:
//! Gray et al.'s bounded Zipfian generator with the standard
//! `theta = 0.99`, the *scrambled* variant (FNV-1a hashing of the Zipfian
//! rank so that popular keys are spread over the keyspace), and deterministic
//! per-client operation streams.
//!
//! Everything is seeded: the same `(seed, client-id)` pair always produces
//! the same operation sequence, which the deterministic simulator turns into
//! bit-identical experiment runs.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One operation in a workload stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Op {
    /// Read the value of a key.
    Get {
        /// The key to read.
        key: Vec<u8>,
    },
    /// Insert or update a key with a value of the configured size.
    Put {
        /// The key to write.
        key: Vec<u8>,
        /// The value payload.
        value: Vec<u8>,
    },
    /// Multi-key atomic transaction: write every pair or none.
    Txn {
        /// The write set — distinct keys, values of the configured size.
        puts: Vec<(Vec<u8>, Vec<u8>)>,
    },
    /// MVCC snapshot read: read every key at one consistent cut.
    SnapRead {
        /// The keys to read under a single snapshot.
        keys: Vec<Vec<u8>>,
    },
}

/// The four operation mixes of the paper (§5.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Mix {
    /// YCSB-A: 50 % GET / 50 % PUT (write-intensive).
    A,
    /// YCSB-B: 95 % GET / 5 % PUT (read-intensive).
    B,
    /// YCSB-C: 100 % GET (read-only).
    C,
    /// 100 % PUT (update-only).
    UpdateOnly,
    /// YCSB-T: transactional mix — 50 % multi-key transactions / 35 % GET /
    /// 15 % snapshot reads (a YCSB-T-like blend; not part of the paper).
    T,
    /// 100 % multi-key transactions (the transactional analogue of
    /// `UpdateOnly`, used to measure batch-commit overhead).
    TxnOnly,
}

impl Mix {
    /// Fraction of plain GETs in the mix.
    pub fn read_fraction(self) -> f64 {
        match self {
            Mix::A => 0.5,
            Mix::B => 0.95,
            Mix::C => 1.0,
            Mix::UpdateOnly => 0.0,
            Mix::T => 0.35,
            Mix::TxnOnly => 0.0,
        }
    }

    /// Fraction of snapshot reads in the mix (transactional mixes only).
    pub fn snap_fraction(self) -> f64 {
        match self {
            Mix::T => 0.15,
            _ => 0.0,
        }
    }

    /// Human-readable label used in experiment tables.
    pub fn label(self) -> &'static str {
        match self {
            Mix::A => "YCSB-A (50% GET / 50% PUT)",
            Mix::B => "YCSB-B (95% GET / 5% PUT)",
            Mix::C => "YCSB-C (100% GET)",
            Mix::UpdateOnly => "Update-only (100% PUT)",
            Mix::T => "YCSB-T (50% TXN / 35% GET / 15% SNAP)",
            Mix::TxnOnly => "Txn-only (100% multi-key TXN)",
        }
    }

    /// Whether the mix issues transactional/snapshot operations (and thus
    /// needs a `TxnKv`-capable store).
    pub fn transactional(self) -> bool {
        matches!(self, Mix::T | Mix::TxnOnly)
    }

    /// The paper's four mixes, in the order Figure 9 presents them. The
    /// transactional mixes are deliberately excluded — they are not part of
    /// the paper's comparison sweeps.
    pub fn all() -> [Mix; 4] {
        [Mix::C, Mix::B, Mix::A, Mix::UpdateOnly]
    }
}

/// Bounded Zipfian generator over `0..n` (Gray et al., as in YCSB's
/// `ZipfianGenerator`), with the standard skew `theta = 0.99`.
#[derive(Debug, Clone)]
pub struct Zipfian {
    n: u64,
    alpha: f64,
    zetan: f64,
    eta: f64,
    /// Precomputed `0.5^theta` — the rank-1 threshold used on every draw.
    half_pow_theta: f64,
}

impl Zipfian {
    /// Standard YCSB skew.
    pub const THETA: f64 = 0.99;

    /// Generator over `0..n` with skew `theta`.
    pub fn with_theta(n: u64, theta: f64) -> Self {
        assert!(n > 0, "zipfian over empty range");
        let zetan = Self::zeta_cached(n, theta);
        let zeta2theta = Self::zeta(2, theta);
        Zipfian {
            n,
            alpha: 1.0 / (1.0 - theta),
            zetan,
            eta: (1.0 - (2.0 / n as f64).powf(1.0 - theta)) / (1.0 - zeta2theta / zetan),
            half_pow_theta: 0.5f64.powf(theta),
        }
    }

    /// Generator over `0..n` with the standard YCSB skew.
    pub fn new(n: u64) -> Self {
        Self::with_theta(n, Self::THETA)
    }

    fn zeta(n: u64, theta: f64) -> f64 {
        (1..=n).map(|i| 1.0 / (i as f64).powf(theta)).sum()
    }

    /// `zeta(n, theta)`, memoized process-wide. The harmonic sum is O(n)
    /// `pow` calls; at 10^6 records *per client stream* it dominates setup,
    /// yet every stream of a run asks for the same `(n, theta)`. The sum is
    /// evaluated once in its usual left-to-right order, so the cached value
    /// is bit-identical to a fresh computation and determinism is unaffected.
    fn zeta_cached(n: u64, theta: f64) -> f64 {
        use std::sync::Mutex;
        static CACHE: Mutex<Vec<(u64, u64, f64)>> = Mutex::new(Vec::new());
        let key = theta.to_bits();
        let mut cache = CACHE.lock().unwrap();
        if let Some(&(_, _, z)) = cache.iter().find(|&&(cn, ct, _)| cn == n && ct == key) {
            return z;
        }
        let z = Self::zeta(n, theta);
        cache.push((n, key, z));
        z
    }

    /// Next rank in `0..n`; rank 0 is the most popular.
    pub fn next<R: Rng>(&self, rng: &mut R) -> u64 {
        let u: f64 = rng.gen();
        let uz = u * self.zetan;
        if uz < 1.0 {
            return 0;
        }
        if uz < 1.0 + self.half_pow_theta {
            return 1;
        }
        let v = (self.n as f64 * (self.eta * u - self.eta + 1.0).powf(self.alpha)) as u64;
        v.min(self.n - 1)
    }

    /// Number of items.
    pub fn n(&self) -> u64 {
        self.n
    }
}

/// FNV-1a 64-bit hash of the little-endian bytes of `x` (YCSB's scrambling
/// function).
pub fn fnv1a(mut x: u64) -> u64 {
    const PRIME: u64 = 0x0000_0100_0000_01B3;
    let mut hash = 0xCBF2_9CE4_8422_2325u64;
    for _ in 0..8 {
        hash ^= x & 0xFF;
        hash = hash.wrapping_mul(PRIME);
        x >>= 8;
    }
    hash
}

/// Scrambled Zipfian over `0..n`: Zipfian ranks pushed through FNV so the
/// popular items are scattered across the keyspace instead of clustered at
/// the low ids (YCSB's `ScrambledZipfianGenerator`).
#[derive(Debug, Clone)]
pub struct ScrambledZipfian {
    inner: Zipfian,
    n: u64,
}

impl ScrambledZipfian {
    /// Scrambled generator over `0..n`.
    pub fn new(n: u64) -> Self {
        ScrambledZipfian {
            inner: Zipfian::new(n),
            n,
        }
    }

    /// Next item id in `0..n`.
    pub fn next<R: Rng>(&self, rng: &mut R) -> u64 {
        fnv1a(self.inner.next(rng)) % self.n
    }
}

/// Workload configuration: mix, key population, key/value sizes.
#[derive(Debug, Clone)]
pub struct WorkloadConfig {
    /// Operation mix.
    pub mix: Mix,
    /// Number of distinct keys.
    pub record_count: u64,
    /// Key size in bytes (padded decimal encoding; ≥ 8).
    pub key_len: usize,
    /// Value size in bytes.
    pub value_len: usize,
    /// Keys per multi-key transaction / snapshot read (transactional mixes
    /// only; ignored by the paper's four mixes).
    pub txn_keys: usize,
}

impl WorkloadConfig {
    /// The paper's key population scale and the 32 B keys used by the
    /// scalability and log-cleaning experiments.
    pub fn paper(mix: Mix, value_len: usize) -> Self {
        WorkloadConfig {
            mix,
            record_count: 16 * 1024,
            key_len: 32,
            value_len,
            txn_keys: 4,
        }
    }

    /// Encode item id `id` as a fixed-width key.
    pub fn key(&self, id: u64) -> Vec<u8> {
        make_key(self.key_len, id)
    }
}

/// Encode item id `id` as a fixed-width key of `len` bytes: `"user"` prefix +
/// zero-padded decimal, truncated to `len`.
pub fn make_key(len: usize, id: u64) -> Vec<u8> {
    assert!(len >= 8, "keys shorter than 8 bytes are not supported");
    // Hand-rolled `format!("user{id:0width$}")`: key generation runs once
    // per op and once per preloaded record, and the formatting machinery
    // was a visible slice of million-record sweeps.
    let width = len - 4;
    let mut digits = [0u8; 20];
    let mut n = 0;
    let mut x = id;
    loop {
        digits[n] = b'0' + (x % 10) as u8;
        n += 1;
        x /= 10;
        if x == 0 {
            break;
        }
    }
    let body = n.max(width);
    let mut key = Vec::with_capacity(4 + body);
    key.extend_from_slice(b"user");
    key.resize(4 + body - n, b'0');
    for i in (0..n).rev() {
        key.push(digits[i]);
    }
    key.truncate(len);
    key
}

/// Deterministic value bytes for `(id, version)` — recognizable in dumps and
/// cheap to verify without storing a model copy.
pub fn make_value(len: usize, id: u64, version: u64) -> Vec<u8> {
    let mut v = vec![0u8; len];
    let seed = fnv1a(id ^ version.rotate_left(17));
    let mut state = seed | 1;
    for b in v.iter_mut() {
        // xorshift64 keeps this cheap; the content just has to be
        // deterministic and version-distinguishing.
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        *b = state as u8;
    }
    v
}

/// A deterministic per-client operation stream.
pub struct OpStream {
    cfg: WorkloadConfig,
    keys: ScrambledZipfian,
    rng: StdRng,
    puts_issued: u64,
}

impl OpStream {
    /// Stream for `client_id` under `seed`. Different clients get
    /// uncorrelated, reproducible streams.
    pub fn new(cfg: WorkloadConfig, seed: u64, client_id: u64) -> Self {
        OpStream {
            keys: ScrambledZipfian::new(cfg.record_count),
            rng: StdRng::seed_from_u64(seed ^ fnv1a(client_id.wrapping_add(1))),
            cfg,
            puts_issued: 0,
        }
    }

    /// The workload configuration.
    pub fn config(&self) -> &WorkloadConfig {
        &self.cfg
    }

    /// Produce the next operation.
    pub fn next_op(&mut self) -> Op {
        if self.cfg.mix.transactional() {
            return self.next_txn_op();
        }
        // The paper's four mixes keep their exact pre-transactional RNG
        // consumption order, so existing seeds replay byte-identically.
        let id = self.keys.next(&mut self.rng);
        let is_get = self.rng.gen_bool(self.cfg.mix.read_fraction());
        if is_get {
            Op::Get {
                key: self.cfg.key(id),
            }
        } else {
            self.puts_issued += 1;
            Op::Put {
                key: self.cfg.key(id),
                value: make_value(self.cfg.value_len, id, self.puts_issued),
            }
        }
    }

    /// `txn_keys` *distinct* item ids (a write set with duplicate keys
    /// would self-conflict; distinctness also gives the checker one value
    /// per key per transaction).
    fn distinct_ids(&mut self) -> Vec<u64> {
        let want = self.cfg.txn_keys.max(1);
        assert!(
            (want as u64) <= self.cfg.record_count,
            "txn_keys exceeds the key population"
        );
        let mut ids: Vec<u64> = Vec::with_capacity(want);
        while ids.len() < want {
            let id = self.keys.next(&mut self.rng);
            if !ids.contains(&id) {
                ids.push(id);
            }
        }
        ids
    }

    fn next_txn_op(&mut self) -> Op {
        let u: f64 = self.rng.gen();
        let read_cut = self.cfg.mix.read_fraction();
        let snap_cut = read_cut + self.cfg.mix.snap_fraction();
        if u < read_cut {
            let id = self.keys.next(&mut self.rng);
            Op::Get {
                key: self.cfg.key(id),
            }
        } else if u < snap_cut {
            let keys = self
                .distinct_ids()
                .into_iter()
                .map(|id| self.cfg.key(id))
                .collect();
            Op::SnapRead { keys }
        } else {
            self.puts_issued += 1;
            let version = self.puts_issued;
            let puts = self
                .distinct_ids()
                .into_iter()
                .map(|id| {
                    (
                        self.cfg.key(id),
                        make_value(self.cfg.value_len, id, version),
                    )
                })
                .collect();
            Op::Txn { puts }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(99)
    }

    #[test]
    fn zipfian_stays_in_range() {
        let z = Zipfian::new(1000);
        let mut r = rng();
        for _ in 0..10_000 {
            assert!(z.next(&mut r) < 1000);
        }
    }

    #[test]
    fn zipfian_rank0_is_most_popular() {
        let z = Zipfian::new(1000);
        let mut r = rng();
        let mut counts = vec![0u64; 1000];
        for _ in 0..100_000 {
            counts[z.next(&mut r) as usize] += 1;
        }
        let max = *counts.iter().max().unwrap();
        assert_eq!(counts[0], max, "rank 0 must dominate");
        // Long tail: rank 0 far above mid-rank items.
        assert!(counts[0] > 20 * counts[500].max(1));
    }

    #[test]
    fn zipfian_skew_matches_theory_for_head() {
        // P(rank 0) = 1/zeta(n). For n=100, theta=0.99: zeta ≈ 5.19 ⇒ ~19 %.
        let z = Zipfian::new(100);
        let mut r = rng();
        let trials = 200_000;
        let hits = (0..trials).filter(|_| z.next(&mut r) == 0).count();
        let p = hits as f64 / trials as f64;
        assert!((p - 0.192).abs() < 0.01, "P(rank0) = {p}");
    }

    #[test]
    fn scrambled_zipfian_spreads_hot_keys() {
        let sz = ScrambledZipfian::new(1000);
        let mut r = rng();
        let mut counts: HashMap<u64, u64> = HashMap::new();
        for _ in 0..100_000 {
            *counts.entry(sz.next(&mut r)).or_default() += 1;
        }
        // Still skewed (one key dominates): P(rank 0) = 1/zeta(1000) ≈ 13 %.
        let (&hot, &hot_count) = counts.iter().max_by_key(|(_, &c)| c).unwrap();
        assert!(hot_count > 10_000, "hot key only drew {hot_count}/100000");
        // ...but the hot key is not id 0 (scrambling moved it).
        assert_ne!(hot, 0);
    }

    #[test]
    fn fnv_matches_known_vector() {
        // FNV-1a over the 8 little-endian bytes of the input (YCSB's
        // FNVhash64 convention). Reference value computed independently:
        // h = offset_basis; 8 × { h ^= 0; h *= prime }.
        assert_eq!(fnv1a(0), 0xA8C7_F832_281A_39C5);
        // One step from a known byte: FNV-1a("a") prefix property.
        assert_ne!(fnv1a(1), fnv1a(0));
    }

    #[test]
    fn keys_are_fixed_width_and_unique() {
        let cfg = WorkloadConfig::paper(Mix::A, 64);
        let a = cfg.key(0);
        let b = cfg.key(123456);
        assert_eq!(a.len(), 32);
        assert_eq!(b.len(), 32);
        assert_ne!(a, b);
        assert!(a.starts_with(b"user"));
    }

    #[test]
    fn values_differ_by_version() {
        let v1 = make_value(128, 7, 1);
        let v2 = make_value(128, 7, 2);
        assert_eq!(v1.len(), 128);
        assert_ne!(v1, v2);
        assert_eq!(v1, make_value(128, 7, 1), "deterministic");
    }

    #[test]
    fn mixes_have_documented_read_fractions() {
        let mut s = OpStream::new(WorkloadConfig::paper(Mix::B, 64), 1, 0);
        let gets = (0..10_000)
            .filter(|_| matches!(s.next_op(), Op::Get { .. }))
            .count();
        let frac = gets as f64 / 10_000.0;
        assert!((frac - 0.95).abs() < 0.01, "YCSB-B GET fraction = {frac}");

        let mut s = OpStream::new(WorkloadConfig::paper(Mix::C, 64), 1, 0);
        assert!((0..1000).all(|_| matches!(s.next_op(), Op::Get { .. })));

        let mut s = OpStream::new(WorkloadConfig::paper(Mix::UpdateOnly, 64), 1, 0);
        assert!((0..1000).all(|_| matches!(s.next_op(), Op::Put { .. })));
    }

    #[test]
    fn streams_are_deterministic_and_client_distinct() {
        let ops1: Vec<Op> = {
            let mut s = OpStream::new(WorkloadConfig::paper(Mix::A, 32), 42, 3);
            (0..50).map(|_| s.next_op()).collect()
        };
        let ops2: Vec<Op> = {
            let mut s = OpStream::new(WorkloadConfig::paper(Mix::A, 32), 42, 3);
            (0..50).map(|_| s.next_op()).collect()
        };
        assert_eq!(ops1, ops2);
        let ops3: Vec<Op> = {
            let mut s = OpStream::new(WorkloadConfig::paper(Mix::A, 32), 42, 4);
            (0..50).map(|_| s.next_op()).collect()
        };
        assert_ne!(ops1, ops3, "different clients must differ");
    }

    #[test]
    fn txn_mix_matches_documented_fractions() {
        let mut s = OpStream::new(WorkloadConfig::paper(Mix::T, 64), 1, 0);
        let (mut gets, mut snaps, mut txns) = (0usize, 0usize, 0usize);
        for _ in 0..10_000 {
            match s.next_op() {
                Op::Get { .. } => gets += 1,
                Op::SnapRead { .. } => snaps += 1,
                Op::Txn { .. } => txns += 1,
                Op::Put { .. } => panic!("Mix::T never emits plain PUTs"),
            }
        }
        assert!(
            (gets as f64 / 10_000.0 - 0.35).abs() < 0.02,
            "gets = {gets}"
        );
        assert!(
            (snaps as f64 / 10_000.0 - 0.15).abs() < 0.02,
            "snaps = {snaps}"
        );
        assert!(
            (txns as f64 / 10_000.0 - 0.50).abs() < 0.02,
            "txns = {txns}"
        );

        let mut s = OpStream::new(WorkloadConfig::paper(Mix::TxnOnly, 64), 1, 0);
        assert!((0..1000).all(|_| matches!(s.next_op(), Op::Txn { .. })));
    }

    #[test]
    fn txn_write_sets_have_distinct_keys_of_configured_width() {
        let cfg = WorkloadConfig::paper(Mix::TxnOnly, 48);
        let txn_keys = cfg.txn_keys;
        let mut s = OpStream::new(cfg, 7, 0);
        for _ in 0..500 {
            match s.next_op() {
                Op::Txn { puts } => {
                    assert_eq!(puts.len(), txn_keys);
                    let uniq: std::collections::HashSet<_> =
                        puts.iter().map(|(k, _)| k.clone()).collect();
                    assert_eq!(uniq.len(), puts.len(), "duplicate key in write set");
                    for (k, v) in &puts {
                        assert_eq!(k.len(), 32);
                        assert_eq!(v.len(), 48);
                    }
                }
                other => panic!("unexpected op: {other:?}"),
            }
        }
    }

    #[test]
    fn txn_streams_are_deterministic() {
        let run = || {
            let mut s = OpStream::new(WorkloadConfig::paper(Mix::T, 32), 42, 3);
            (0..100).map(|_| s.next_op()).collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn paper_mix_streams_unchanged_by_txn_support() {
        // The transactional extension must not perturb the paper mixes' RNG
        // consumption: a pre-extension golden prefix for (Mix::A, seed 42,
        // client 0) pins the first few ops' key ids.
        let mut s = OpStream::new(WorkloadConfig::paper(Mix::A, 16), 42, 0);
        let first: Vec<Op> = (0..4).map(|_| s.next_op()).collect();
        // Determinism within this build is checked elsewhere; here we assert
        // the ops only use pre-existing variants with the configured widths.
        for op in &first {
            match op {
                Op::Get { key } => assert_eq!(key.len(), 32),
                Op::Put { key, value } => {
                    assert_eq!(key.len(), 32);
                    assert_eq!(value.len(), 16);
                }
                other => panic!("paper mix emitted {other:?}"),
            }
        }
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #[test]
            fn zipfian_in_range_any_n(n in 1u64..5000, seed in any::<u64>()) {
                let z = Zipfian::new(n);
                let mut r = StdRng::seed_from_u64(seed);
                for _ in 0..200 {
                    prop_assert!(z.next(&mut r) < n);
                }
            }

            #[test]
            fn scrambled_in_range_any_n(n in 1u64..5000, seed in any::<u64>()) {
                let z = ScrambledZipfian::new(n);
                let mut r = StdRng::seed_from_u64(seed);
                for _ in 0..200 {
                    prop_assert!(z.next(&mut r) < n);
                }
            }

            #[test]
            fn keys_roundtrip_width(len in 8usize..64, id in any::<u64>()) {
                prop_assert_eq!(make_key(len, id).len(), len);
            }

            #[test]
            fn keys_match_reference_format(len in 8usize..64, id in any::<u64>()) {
                // The hand-rolled encoder must agree byte-for-byte with the
                // original `format!` implementation (key bytes feed CRCs and
                // placement hashes, so any drift breaks replay).
                let mut k = format!("user{id:0width$}", width = len - 4).into_bytes();
                k.truncate(len);
                prop_assert_eq!(make_key(len, id), k);
            }
        }
    }
}
