//! The cluster layer: multi-node placement, a replicated
//! membership/metadata service, and live shard migration.
//!
//! Everything below the [`shard`](crate::shard) layer treats a "store" as
//! N hash-partitioned shards on one implicit machine. This module hosts
//! those shards on **N independent server nodes** and makes ownership a
//! first-class, *changeable* fact:
//!
//! * [`placement::PlacementMap`] — the deterministic shard→node map,
//!   tagged with a monotonically increasing **placement epoch**;
//! * [`meta`] — a small leader-based, log-replicated metadata service
//!   (3 replicas over the same simulated fabric) that owns the placement
//!   map, detects node death via heartbeats on the virtual clock, and
//!   serializes every ownership change;
//! * [`migrate`] — **live shard migration**: snapshot-copy the shard's
//!   pool to the destination while client traffic keeps flowing, catch
//!   up through the verifier's delta stream, seal + drain, verify the
//!   copy byte-identical to the (now frozen) source, and only then flip
//!   ownership with an epoch bump;
//! * [`client::ClusterClient`] — clients cache the placement with its
//!   epoch and retarget transparently on `WrongEpoch` rejections.
//!
//! # Topology and naming
//!
//! The simulated fabric allows one listener per node, so a *cluster node*
//! `i` is a named family of fabric nodes: seat `n{i}.g{g}` hosts shard
//! `g` when node `i` owns it, and `n{i}.agent` is the node's agent — a
//! client-only endpoint that heartbeats the metadata leader (and lends
//! its identity to the migration driver). All `nodes × shards` seats are
//! created up front so names are stable across crashes, restarts, and
//! repeated migrations; [`efactory_rnic::Fabric::node_by_name`] is the
//! directory that resolves them.
//!
//! Cluster shards may run with cleaning enabled: the cleaner and the
//! migration engine exclude each other at pass granularity (the cleaner's
//! gate skips sealed or migrating shards; [`migrate`] waits for any
//! in-flight pass to finish or abort before parking its delta-stream
//! attachment — see [`migrate::MigrateError::CleanTimeout`]). A migrated
//! copy is taken from a sealed, drained source, so it is a crash-consistent
//! image and the standard recovery rules — including cleaning-progress
//! records — apply to it unchanged. Shards run without per-shard backups:
//! node death is survived the same way the single-node system survives
//! power failure — restart + recovery over the NVM pool — while *planned*
//! moves use live migration.

pub mod client;
pub mod meta;
pub mod migrate;
pub mod placement;

pub use client::ClusterClient;
pub use meta::{MetaClient, MetaCmd, MetaService, MetaState, MetaStats, MetaTiming};
pub use migrate::{MigrateError, MigrationReport};
pub use placement::{key_shard, PlacementMap};

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};

use efactory_obs::{Counter, Registry};
use efactory_pmem::{CrashSpec, PmemPool};
use efactory_rnic::{Fabric, Node};
use efactory_sim as sim;
use rand::rngs::StdRng;
use rand::SeedableRng;
use sim::Nanos;

use crate::log::StoreLayout;
use crate::recovery::{self, RecoveryReport};
use crate::repl::ReplStats;
use crate::server::{Server, ServerConfig, ServerShared, StoreDesc};

/// Tunables for a cluster.
#[derive(Clone)]
pub struct ClusterConfig {
    /// Data nodes (each may own any subset of shards).
    pub nodes: usize,
    /// Shards, hash-partitioned exactly like the single-node store.
    pub shards: usize,
    /// Metadata service replicas (odd; 3 is the default).
    pub meta_replicas: usize,
    /// Per-shard NVM geometry.
    pub layout: StoreLayout,
    /// Per-shard server template; the counter prefix is replaced with the
    /// seat name. `clean_enabled` is honored per shard (see module docs
    /// for how cleaning and migration serialize).
    pub server: ServerConfig,
    /// Metadata-service timing (heartbeats, elections, death timeout).
    pub meta_timing: MetaTiming,
    /// Agent heartbeat period.
    pub heartbeat_every: Nanos,
    /// Migration snapshot/fixup copy chunk (bytes).
    pub migrate_chunk: usize,
}

impl ClusterConfig {
    /// A cluster of `nodes` data nodes and `shards` shards with default
    /// control-plane timing.
    pub fn new(nodes: usize, shards: usize, layout: StoreLayout, server: ServerConfig) -> Self {
        ClusterConfig {
            nodes,
            shards,
            meta_replicas: 3,
            layout,
            server,
            meta_timing: MetaTiming::default(),
            heartbeat_every: sim::micros(40),
            migrate_chunk: 64 * 1024,
        }
    }
}

/// Counters for the cluster layer (migration driver + client routing).
#[derive(Debug, Default)]
pub struct ClusterStats {
    /// Migrations started (MigrateStart committed).
    pub migrations_started: Counter,
    /// Migrations committed (ownership flipped).
    pub migrations_committed: Counter,
    /// Migrations aborted (any phase).
    pub migrations_aborted: Counter,
    /// Snapshot-copy bytes shipped to destinations.
    pub snapshot_bytes: Counter,
    /// Snapshot-copy chunks shipped.
    pub snapshot_chunks: Counter,
    /// Bytes rewritten by the post-drain fixup pass.
    pub fixup_bytes: Counter,
    /// Byte differences found by the final verify pass (must stay 0 —
    /// a nonzero value means the copy was *not* stop-the-world-identical).
    pub verify_diff_bytes: Counter,
    /// Seal→drain waits completed.
    pub drain_waits: Counter,
    /// Data nodes power-failed through the cluster API.
    pub node_kills: Counter,
    /// Data nodes restarted + recovered through the cluster API.
    pub node_restarts: Counter,
    /// Client-side: ops retargeted after a `WrongEpoch` rejection.
    pub client_retargets: Counter,
    /// Client-side: placement refreshes from the metadata service.
    pub client_refreshes: Counter,
}

impl ClusterStats {
    /// Attach every counter to `reg` under `cluster.*` names.
    pub fn register(&self, reg: &Registry) {
        let pairs: [(&str, &Counter); 12] = [
            ("cluster.migrate.started", &self.migrations_started),
            ("cluster.migrate.committed", &self.migrations_committed),
            ("cluster.migrate.aborted", &self.migrations_aborted),
            ("cluster.migrate.snapshot_bytes", &self.snapshot_bytes),
            ("cluster.migrate.snapshot_chunks", &self.snapshot_chunks),
            ("cluster.migrate.fixup_bytes", &self.fixup_bytes),
            ("cluster.migrate.verify_diff_bytes", &self.verify_diff_bytes),
            ("cluster.migrate.drain_waits", &self.drain_waits),
            ("cluster.node_kills", &self.node_kills),
            ("cluster.node_restarts", &self.node_restarts),
            ("cluster.client.retargets", &self.client_retargets),
            ("cluster.client.refreshes", &self.client_refreshes),
        ];
        for (name, c) in pairs {
            reg.attach_counter(name, c);
        }
    }
}

/// Connection info for one shard's current home, published through
/// [`ClusterHandle`] — the data-plane rendezvous (the metadata service
/// stays authoritative for *ownership*; this carries the MR + geometry a
/// client needs once it knows the owner).
#[derive(Clone)]
pub struct SeatInfo {
    /// The owning cluster node index.
    pub owner: usize,
    /// The owning seat's fabric node.
    pub node: Node,
    /// Connection descriptor (MR + layout) of the serving instance.
    pub desc: StoreDesc,
    /// Shared state of the serving instance.
    pub shared: Arc<ServerShared>,
}

/// Shared seat table, updated by migration commit and node restart.
#[derive(Default)]
pub struct ClusterHandle {
    seats: Mutex<Vec<SeatInfo>>,
}

impl ClusterHandle {
    /// Shard `g`'s current seat.
    pub fn seat(&self, g: usize) -> SeatInfo {
        self.seats.lock().unwrap()[g].clone()
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.seats.lock().unwrap().len()
    }

    pub(crate) fn set_seat(&self, g: usize, info: SeatInfo) {
        self.seats.lock().unwrap()[g] = info;
    }
}

/// One shard's server-side bookkeeping.
struct SeatState {
    owner: usize,
    server: Server,
    pool: Arc<PmemPool>,
}

/// A migration's destination artifacts, parked in the cluster the moment
/// the copy begins. This models the destination machine's NVM: the pool
/// must outlive the migration *driver* (whose endpoint may die with the
/// destination machine) so that a `MigrateCommit` the driver never
/// learned the outcome of can still be settled afterwards — promoted
/// from this staging if the metadata service says the move committed,
/// abandoned if it aborted. See [`Cluster::reconcile`].
pub(crate) struct StagedMigration {
    shard: usize,
    to: usize,
    pool: Arc<PmemPool>,
    /// The recovered destination server, parked just before the commit
    /// window opens (present iff the driver reached step 6).
    server: Option<Server>,
}

/// A multi-node eFactory cluster: data seats, node agents, and the
/// replicated metadata service, all over one simulated fabric.
pub struct Cluster {
    fabric: Arc<Fabric>,
    cfg: ClusterConfig,
    /// `seat_nodes[i][g]` = fabric node `n{i}.g{g}`.
    seat_nodes: Vec<Vec<Node>>,
    /// `agent_nodes[i]` = fabric node `n{i}.agent`.
    agent_nodes: Vec<Node>,
    meta: MetaService,
    seats: Mutex<Vec<SeatState>>,
    handle: Arc<ClusterHandle>,
    stats: Arc<ClusterStats>,
    /// Delta-stream (migration mirror) counters, under `cluster.migrate.`.
    migrate_repl: Arc<ReplStats>,
    /// In-flight migration's destination artifacts (at most one — the
    /// metadata service serializes migrations).
    staged: Mutex<Option<StagedMigration>>,
    /// A `MigrateAbort` whose proposal never reached a metadata majority:
    /// `(shard, to)` of the dead migration still occupying the slot.
    /// With both endpoints alive the death sweep will never free it, so
    /// [`reconcile`](Self::reconcile) re-proposes it once a majority is
    /// reachable again.
    pending_abort: Mutex<Option<(u32, u32)>>,
    stop: Arc<AtomicBool>,
}

impl Cluster {
    /// The name of node `i`'s seat for shard `g`.
    pub fn seat_name(i: usize, g: usize) -> String {
        format!("n{i}.g{g}")
    }

    /// Create all fabric nodes, format the initial owners' shards
    /// (round-robin placement: shard `g` on node `g % nodes`), and build
    /// the unstarted metadata service.
    pub fn format(fabric: &Arc<Fabric>, cfg: ClusterConfig) -> Cluster {
        assert!(cfg.nodes >= 1 && cfg.shards >= 1);
        let server_cfg = cfg.server.clone();

        let seat_nodes: Vec<Vec<Node>> = (0..cfg.nodes)
            .map(|i| {
                (0..cfg.shards)
                    .map(|g| fabric.add_node(&Self::seat_name(i, g)))
                    .collect()
            })
            .collect();
        let agent_nodes: Vec<Node> = (0..cfg.nodes)
            .map(|i| fabric.add_node(&format!("n{i}.agent")))
            .collect();

        let stats = Arc::new(ClusterStats::default());
        stats.register(&server_cfg.obs.registry);
        let migrate_repl = Arc::new(ReplStats::default());
        migrate_repl.register_prefixed(&server_cfg.obs.registry, "cluster.migrate.");
        let meta_stats = Arc::new(MetaStats::default());
        meta_stats.register(&server_cfg.obs.registry);

        let stop = Arc::new(AtomicBool::new(false));
        let meta = MetaService::new(
            fabric,
            cfg.meta_replicas,
            cfg.nodes,
            MetaState::initial(cfg.shards, cfg.nodes),
            cfg.meta_timing.clone(),
            meta_stats,
            Arc::clone(&stop),
        );

        let mut seats = Vec::with_capacity(cfg.shards);
        let mut infos = Vec::with_capacity(cfg.shards);
        // `seat_nodes` is indexed [owner][shard], and the owner varies per
        // iteration — a plain index loop is the clear spelling.
        #[allow(clippy::needless_range_loop)]
        for g in 0..cfg.shards {
            let owner = g % cfg.nodes;
            let node = &seat_nodes[owner][g];
            let mut scfg = server_cfg.clone();
            scfg.counter_prefix = format!("{}.", Self::seat_name(owner, g));
            let server = Server::format(fabric, node, cfg.layout, scfg);
            let pool = Arc::clone(&server.shared().pool);
            infos.push(SeatInfo {
                owner,
                node: node.clone(),
                desc: server.desc(),
                shared: Arc::clone(server.shared()),
            });
            seats.push(SeatState {
                owner,
                server,
                pool,
            });
        }
        let handle = Arc::new(ClusterHandle {
            seats: Mutex::new(infos),
        });

        Cluster {
            fabric: Arc::clone(fabric),
            cfg: ClusterConfig {
                server: server_cfg,
                ..cfg
            },
            seat_nodes,
            agent_nodes,
            meta,
            seats: Mutex::new(seats),
            handle,
            stats,
            migrate_repl,
            staged: Mutex::new(None),
            pending_abort: Mutex::new(None),
            stop,
        }
    }

    /// Start everything: metadata replicas, every owned seat's server
    /// processes, and one agent per data node. Must run inside a
    /// simulated process.
    pub fn start(&self) {
        self.meta.start(&self.fabric);
        for seat in self.seats.lock().unwrap().iter() {
            seat.server.start(&self.fabric);
        }
        for i in 0..self.cfg.nodes {
            self.spawn_agent(i);
        }
    }

    /// The per-node agent: heartbeats the metadata leader so the death
    /// detector sees the node, for as long as the node is up. It survives
    /// crash/restart cycles of its node (heartbeats simply fail while the
    /// node is down), mirroring a host daemon that comes back with the
    /// machine.
    fn spawn_agent(&self, i: usize) {
        let fabric = Arc::clone(&self.fabric);
        let local = self.agent_nodes[i].clone();
        let meta_nodes = self.meta.nodes().to_vec();
        let stop = Arc::clone(&self.stop);
        let period = self.cfg.heartbeat_every;
        sim::spawn(&format!("efactory-agent-n{i}"), move || {
            let mut mc = MetaClient::new(&fabric, &local, &meta_nodes);
            while !stop.load(Ordering::Relaxed) {
                if !local.is_crashed() {
                    mc.heartbeat(i, sim::now() + period / 2);
                }
                sim::sleep(period);
            }
        });
    }

    /// The rendezvous clients connect through.
    pub fn handle(&self) -> &Arc<ClusterHandle> {
        &self.handle
    }

    /// The metadata replicas' fabric nodes.
    pub fn meta_nodes(&self) -> &[Node] {
        self.meta.nodes()
    }

    /// Cluster-layer counters.
    pub fn stats(&self) -> &Arc<ClusterStats> {
        &self.stats
    }

    /// Delta-stream (migration mirror) counters.
    pub fn migrate_repl_stats(&self) -> &Arc<ReplStats> {
        &self.migrate_repl
    }

    /// The cluster configuration.
    pub fn config(&self) -> &ClusterConfig {
        &self.cfg
    }

    /// The fabric.
    pub fn fabric(&self) -> &Arc<Fabric> {
        &self.fabric
    }

    /// Agent (client-only) fabric node of data node `i` — also the local
    /// endpoint the migration driver issues its copy verbs from.
    pub fn agent_node(&self, i: usize) -> &Node {
        &self.agent_nodes[i]
    }

    /// The seat fabric node for (`node`, `shard`).
    pub fn seat_node(&self, i: usize, g: usize) -> &Node {
        &self.seat_nodes[i][g]
    }

    /// Shard `g`'s current owner.
    pub fn owner_of(&self, g: usize) -> usize {
        self.seats.lock().unwrap()[g].owner
    }

    /// Shard `g`'s serving instance's shared state.
    pub fn shard_shared(&self, g: usize) -> Arc<ServerShared> {
        Arc::clone(self.seats.lock().unwrap()[g].server.shared())
    }

    /// Shard `g`'s pool (tests: byte-level assertions).
    pub fn shard_pool(&self, g: usize) -> Arc<PmemPool> {
        Arc::clone(&self.seats.lock().unwrap()[g].pool)
    }

    /// Sum a server counter across all owned seats.
    pub fn stat_sum(&self, pick: impl Fn(&crate::server::ServerStats) -> &Counter) -> u64 {
        self.seats
            .lock()
            .unwrap()
            .iter()
            .map(|s| pick(&s.server.shared().stats).get())
            .sum()
    }

    /// Install shard `g`'s new serving instance (migration commit or
    /// node-restart recovery): update the seat table and the rendezvous.
    pub(crate) fn install_seat(&self, g: usize, owner: usize, server: Server) {
        let info = SeatInfo {
            owner,
            node: server.shared().node.clone(),
            desc: server.desc(),
            shared: Arc::clone(server.shared()),
        };
        let pool = Arc::clone(&server.shared().pool);
        let retired = {
            let mut seats = self.seats.lock().unwrap();
            let old = &mut seats[g];
            old.owner = owner;
            old.pool = pool;
            std::mem::replace(&mut old.server, server)
        };
        // Decommission the replaced instance: its seal/poison already
        // stopped it serving, but its handler and verifier processes
        // would otherwise spin for the rest of the simulation.
        retired.shutdown();
        self.handle.set_seat(g, info);
    }

    /// Park a migration's destination pool (step 2 of the protocol; the
    /// pool is the destination machine's NVM and must outlive the
    /// driver).
    pub(crate) fn stage_pool(&self, shard: usize, to: usize, pool: Arc<PmemPool>) {
        // A dead driver's staging may still be parked here (its
        // migration was auto-aborted and this is the retry): wind it
        // down before installing ours.
        self.clear_staged();
        *self.staged.lock().unwrap() = Some(StagedMigration {
            shard,
            to,
            pool,
            server: None,
        });
    }

    /// Park the recovered destination server just before the commit
    /// window opens (step 7 of the protocol).
    pub(crate) fn stage_server(&self, server: Server) {
        if let Some(st) = self.staged.lock().unwrap().as_mut() {
            st.server = Some(server);
        }
    }

    /// Take the staged destination server back out (commit confirmed).
    pub(crate) fn take_staged_server(&self) -> Option<Server> {
        self.staged.lock().unwrap().take().and_then(|st| st.server)
    }

    /// Drop any staged migration (abort with a provably-uncommitted
    /// flip). The staged server, if recovery already produced one, is
    /// wound down.
    pub(crate) fn clear_staged(&self) {
        if let Some(st) = self.staged.lock().unwrap().take() {
            if let Some(server) = st.server {
                server.shutdown();
            }
        }
    }

    /// Record a `MigrateAbort` whose proposal found no metadata majority
    /// (see the field doc on `pending_abort`).
    pub(crate) fn note_unacked_abort(&self, shard: usize, to: usize) {
        *self.pending_abort.lock().unwrap() = Some((shard as u32, to as u32));
    }

    /// A new migration start supersedes any recorded unacked abort: the
    /// slot either freed in the meantime or was re-adopted by the new
    /// driver (same pair), and re-proposing the stale abort would kill
    /// the live migration.
    pub(crate) fn clear_pending_abort(&self) {
        *self.pending_abort.lock().unwrap() = None;
    }

    /// Re-propose a dropped `MigrateAbort` if the slot still holds that
    /// exact migration. Returns the (possibly post-abort) state staging
    /// reconciliation should judge against.
    fn resolve_pending_abort(&self, mc: &mut MetaClient, state: MetaState) -> MetaState {
        let Some((shard, to)) = *self.pending_abort.lock().unwrap() else {
            return state;
        };
        if state.migrating != Some((shard, to)) {
            // Settled without us: the death sweep's auto-abort fired, or
            // a new migration took the slot.
            self.clear_pending_abort();
            return state;
        }
        match mc.propose(
            &MetaCmd::MigrateAbort { shard },
            sim::now() + sim::millis(2),
        ) {
            meta::ProposeOutcome::Committed(s) => {
                self.clear_pending_abort();
                s
            }
            meta::ProposeOutcome::Rejected => {
                self.clear_pending_abort();
                state
            }
            meta::ProposeOutcome::Unavailable => state,
        }
    }

    /// Settle any staged migration against the authoritative placement:
    /// promote the staged destination if the metadata service says the
    /// move committed, abandon it (and unseal the surviving owner, which
    /// a dead driver may have left sealed) if it aborted, leave it
    /// parked while the migration is still marked in flight. Also
    /// re-proposes a `MigrateAbort` the metadata service never acked
    /// (the slot would otherwise stay occupied forever — no endpoint
    /// died, so the death sweep never auto-aborts).
    ///
    /// [`restart_data_node`](Self::restart_data_node) runs this
    /// automatically; call it directly after waiting out a convergence
    /// window when no node restart is involved. Must run inside a
    /// simulated process. No-op when nothing is staged or pending, or no
    /// metadata majority is reachable.
    pub fn reconcile(&self) {
        let staged_to = self.staged.lock().unwrap().as_ref().map(|st| st.to);
        let pending_to = self
            .pending_abort
            .lock()
            .unwrap()
            .map(|(_, to)| to as usize);
        let Some(local) = staged_to.or(pending_to) else {
            return;
        };
        let mut mc = MetaClient::new(&self.fabric, &self.agent_nodes[local], self.meta.nodes());
        if let Some(state) = mc.get_map(sim::now() + sim::millis(5)) {
            let state = self.resolve_pending_abort(&mut mc, state);
            self.reconcile_staged(&state);
        }
    }

    fn reconcile_staged(&self, state: &MetaState) {
        let st = match self.staged.lock().unwrap().take() {
            Some(st) => st,
            None => return,
        };
        if state.placement.node_of_shard(st.shard) == st.to {
            // The commit landed even though the driver never learned it.
            // The staged pool holds the verified byte-identical copy; the
            // staged server (if the destination machine survived) is
            // already serving it.
            match st.server {
                Some(server) if !self.seat_nodes[st.to][st.shard].is_crashed() => {
                    self.install_seat(st.shard, st.to, server);
                }
                _ => {
                    // The destination machine power-failed after the
                    // commit: this is its reboot path — ordinary recovery
                    // over the surviving NVM copy.
                    let node = &self.seat_nodes[st.to][st.shard];
                    self.fabric.restart_node(node);
                    let mut scfg = self.cfg.server.clone();
                    scfg.counter_prefix = format!("{}.", Self::seat_name(st.to, st.shard));
                    let (server, _report) =
                        recovery::recover(&self.fabric, node, st.pool, self.cfg.layout, scfg);
                    server.start(&self.fabric);
                    self.install_seat(st.shard, st.to, server);
                }
            }
        } else if state.migrating.is_none() {
            // Aborted (driver abort or the death detector's auto-abort):
            // the old owner keeps the shard. A driver that died inside
            // the commit window left it sealed — restore service.
            if let Some(server) = st.server {
                server.shutdown();
            }
            self.seats.lock().unwrap()[st.shard]
                .server
                .shared()
                .unseal();
        } else {
            // Still marked in flight; not ours to settle yet.
            *self.staged.lock().unwrap() = Some(st);
        }
    }

    /// Power-fail data node `i`: crash its agent endpoint and **every**
    /// seat endpoint the node hosts (in-flight DMA torn per `spec`) —
    /// the seats it currently owns, retired tombstone seats, and equally
    /// the scaffolding seat of a migration *to* this node, so a staged
    /// destination pool stops absorbing delta/snapshot writes the
    /// instant the machine dies. The metadata leader notices the
    /// heartbeat silence and commits `NodeDown`.
    pub fn crash_data_node(&self, i: usize, spec: CrashSpec, seed: u64) {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x0DD5_EED5);
        self.fabric.crash_node(&self.agent_nodes[i], spec, &mut rng);
        for g in 0..self.cfg.shards {
            if !self.seat_nodes[i][g].is_crashed() {
                self.fabric
                    .crash_node(&self.seat_nodes[i][g], spec, &mut rng);
            }
        }
        self.stats.node_kills.inc();
    }

    /// Restart data node `i`: restart its fabric endpoints and run
    /// recovery over every owned shard's surviving NVM pool, then start
    /// the recovered servers. The resuming agent heartbeats bring the
    /// node back to `alive` in the metadata service. Must run inside a
    /// simulated process. Returns one recovery report per recovered
    /// shard.
    pub fn restart_data_node(&self, i: usize) -> Vec<(usize, RecoveryReport)> {
        self.fabric.restart_node(&self.agent_nodes[i]);
        // Consult the authoritative placement before trusting the local
        // seat table: a migration whose driver died inside the commit
        // window may have flipped ownership without the table hearing.
        // Shards the metadata service says moved away are NOT recovered
        // here (recovering them would double-own the shard); a staged
        // destination copy this restart makes promotable is settled by
        // the reconciliation below. With no majority reachable the seat
        // table is the best available truth and recovery proceeds on it.
        let mut mc = MetaClient::new(&self.fabric, &self.agent_nodes[i], self.meta.nodes());
        let state = mc.get_map(sim::now() + sim::millis(5));
        let owned: Vec<(usize, Arc<PmemPool>)> = {
            let seats = self.seats.lock().unwrap();
            seats
                .iter()
                .enumerate()
                .filter(|(g, s)| {
                    s.owner == i
                        && state
                            .as_ref()
                            .is_none_or(|st| st.placement.node_of_shard(*g) == i)
                })
                .map(|(g, s)| (g, Arc::clone(&s.pool)))
                .collect()
        };
        if let Some(state) = state {
            let state = self.resolve_pending_abort(&mut mc, state);
            self.reconcile_staged(&state);
        }
        let mut reports = Vec::with_capacity(owned.len());
        for (g, pool) in owned {
            let node = &self.seat_nodes[i][g];
            self.fabric.restart_node(node);
            let mut scfg = self.cfg.server.clone();
            scfg.counter_prefix = format!("{}.", Self::seat_name(i, g));
            let (server, report) =
                recovery::recover(&self.fabric, node, pool, self.cfg.layout, scfg);
            server.start(&self.fabric);
            self.install_seat(g, i, server);
            reports.push((g, report));
        }
        // Reboot the node's remaining crashed endpoints (idle seats,
        // tombstones, a migration scaffolding seat the machine failure
        // took down) so future migrations can target them again. Runs
        // AFTER the staging reconciliation above: its is_crashed() check
        // must still observe the crash.
        for g in 0..self.cfg.shards {
            let node = &self.seat_nodes[i][g];
            if node.is_crashed() {
                self.fabric.restart_node(node);
            }
        }
        self.stats.node_restarts.inc();
        reports
    }

    /// Power-fail metadata replica `r` (volatile state lost).
    pub fn crash_meta_replica(&self, r: usize, seed: u64) {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x3E7A_0000);
        self.fabric
            .crash_node(&self.meta.nodes()[r], CrashSpec::DropAll, &mut rng);
    }

    /// Restart metadata replica `r` from its simulated stable storage:
    /// term, vote, snapshot, and log survive the power failure (see
    /// [`MetaService::restart_replica`]). Must run inside a simulated
    /// process.
    pub fn restart_meta_replica(&self, r: usize) {
        self.meta.restart_replica(&self.fabric, r);
    }

    /// Wind the whole cluster down.
    pub fn shutdown(&self) {
        self.stop.store(true, Ordering::Relaxed);
        for seat in self.seats.lock().unwrap().iter() {
            seat.server.shutdown();
        }
    }
}
