//! The cluster-aware client: placement-epoch-tagged routing with
//! transparent retargeting.
//!
//! A [`ClusterClient`] learns the shard→node placement (and its epoch)
//! from the metadata service, connects one [`Client`] per shard through
//! the [`ClusterHandle`] rendezvous, and then routes exactly like the
//! single-node [`ShardedClient`](crate::shard::ShardedClient). What's
//! new is that placement can *change* underneath it:
//!
//! * a **live migration** commits: the old owner answers every data op
//!   `WrongEpoch` (and its hash table is poisoned, so even the pure
//!   one-sided GET path falls back to RPC and sees the rejection);
//! * a **node restart** replaces a seat's serving instance: the old QP
//!   dies with the old listener and ops fail with a transport error.
//!
//! Both surface as an `Err` on a data op; the client then **refreshes**
//! — re-fetches the placement from the metadata service, reconnects
//! every seat whose owner changed (or whose QP broke), stamps the new
//! epoch into every per-shard connection's location cache (instantly
//! invalidating entries cached under the old epoch, PR 5's cache made
//! epoch-safe) — and retries. Retries are bounded; an unreachable
//! metadata service or a persistently dead owner surfaces the last
//! error to the caller.
//!
//! Transactions compose unchanged: a `WrongEpoch` from any 2PC
//! participant aborts the attempt (prepared siblings are actively
//! aborted by [`crate::txn::put_all_routed`]), and the retry runs with a
//! fresh transaction id against the refreshed placement.

use std::cell::{Cell, RefCell};
use std::sync::Arc;

use efactory_rnic::{Fabric, Node};
use efactory_sim as sim;
use sim::Nanos;

use super::meta::MetaClient;
use super::placement::key_shard;
use super::{ClusterHandle, ClusterStats};
use crate::client::{Client, ClientConfig, GetOutcome, RemoteKv};
use crate::protocol::{Status, StoreError};
use crate::txn::{self, TxnKv, TxnSnapshot};

/// Bounded data-op retries after a retarget/refresh. A migrating shard
/// answers `WrongEpoch` for its whole sealed window (drain + fixup +
/// verify + destination recovery), so the budget must outlast it: with
/// the capped backoff below this rides out ~7 ms of rejections while
/// still surfacing a persistently dead owner as an error.
const MAX_RETRIES: usize = 32;

/// Retry backoff cap (the budget above assumes this).
const MAX_BACKOFF: Nanos = 250_000;

/// Which seats [`ClusterClient::refresh`] reconnects even when the owner
/// index is unchanged.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Force {
    /// Only seats whose owner changed.
    No,
    /// One specific shard (its QP surfaced a transport error).
    Shard(usize),
    /// Every shard (a whole-placement op failed; the culprit is unknown).
    All,
}

impl Force {
    fn includes(self, g: usize) -> bool {
        match self {
            Force::No => false,
            Force::Shard(s) => s == g,
            Force::All => true,
        }
    }
}

/// A client connected to every shard of a [`Cluster`](super::Cluster),
/// retargeting transparently when placement changes.
pub struct ClusterClient {
    fabric: Arc<Fabric>,
    local: Node,
    handle: Arc<ClusterHandle>,
    stats: Arc<ClusterStats>,
    cfg: ClientConfig,
    meta: RefCell<MetaClient>,
    /// Placement epoch the current connections were built under.
    epoch: Cell<u64>,
    /// Owner node index each per-shard connection targets.
    owners: RefCell<Vec<usize>>,
    /// One connection per shard, kept in shard order.
    conns: RefCell<Vec<Client>>,
    /// Transaction-id source shared by all shard connections (one
    /// logical transaction = one id across its 2PC participants).
    next_txn_id: Cell<u64>,
}

impl ClusterClient {
    /// Connect `local` to every shard of the cluster behind `handle`,
    /// learning placement from the metadata service at `meta_nodes`.
    /// Must run inside a simulated process.
    pub fn connect(
        fabric: &Arc<Fabric>,
        local: &Node,
        meta_nodes: &[Node],
        handle: &Arc<ClusterHandle>,
        stats: &Arc<ClusterStats>,
        cfg: ClientConfig,
    ) -> Result<ClusterClient, StoreError> {
        let mut meta = MetaClient::new(fabric, local, meta_nodes);
        let state = meta
            .get_map(sim::now() + sim::millis(5))
            .ok_or(StoreError::Protocol)?;
        let epoch = state.placement.epoch;

        let shards = handle.shards();
        let mut conns = Vec::with_capacity(shards);
        let mut owners = Vec::with_capacity(shards);
        for g in 0..shards {
            let seat = handle.seat(g);
            let mut ccfg = cfg.clone();
            ccfg.shard = g as u32;
            let c = Client::connect(fabric, local, &seat.node, seat.desc, ccfg)?;
            c.set_placement_epoch(epoch);
            conns.push(c);
            owners.push(seat.owner);
        }

        Ok(ClusterClient {
            fabric: Arc::clone(fabric),
            local: local.clone(),
            handle: Arc::clone(handle),
            stats: Arc::clone(stats),
            cfg,
            meta: RefCell::new(meta),
            epoch: Cell::new(epoch),
            owners: RefCell::new(owners),
            conns: RefCell::new(conns),
            next_txn_id: Cell::new(1),
        })
    }

    /// The placement epoch the current connections were built under.
    pub fn epoch(&self) -> u64 {
        self.epoch.get()
    }

    /// The shard `key` routes to.
    pub fn shard_of(&self, key: &[u8]) -> usize {
        key_shard(key, self.conns.borrow().len())
    }

    /// Re-learn placement from the metadata service and reconnect every
    /// seat whose owner changed — plus whatever `force` names
    /// unconditionally (its QP broke: a restarted owner has a fresh
    /// listener and registration even though the owner index is
    /// unchanged). Stamps the fresh epoch into every connection's
    /// location cache. Returns `false` if the metadata service was
    /// unreachable or a reconnect failed (caller backs off and retries).
    fn refresh(&self, force: Force) -> bool {
        self.stats.client_refreshes.inc();
        let state = match self.meta.borrow_mut().get_map(sim::now() + sim::millis(2)) {
            Some(s) => s,
            None => return false,
        };
        self.epoch.set(state.placement.epoch);

        let mut ok = true;
        let mut conns = self.conns.borrow_mut();
        let mut owners = self.owners.borrow_mut();
        for g in 0..conns.len() {
            let seat = self.handle.seat(g);
            if seat.owner != owners[g] || force.includes(g) {
                let mut ccfg = self.cfg.clone();
                ccfg.shard = g as u32;
                match Client::connect(&self.fabric, &self.local, &seat.node, seat.desc, ccfg) {
                    Ok(c) => {
                        conns[g] = c;
                        owners[g] = seat.owner;
                    }
                    Err(_) => ok = false,
                }
            }
        }
        for c in conns.iter() {
            c.set_placement_epoch(self.epoch.get());
        }
        ok
    }

    /// Run `op` against `key`'s owning shard, retargeting on
    /// `WrongEpoch` and reconnecting on transport errors, bounded by
    /// [`MAX_RETRIES`].
    fn with_retry<T>(
        &self,
        key: &[u8],
        mut op: impl FnMut(&Client) -> Result<T, StoreError>,
    ) -> Result<T, StoreError> {
        let mut backoff = sim::micros(5);
        let mut last = StoreError::Protocol;
        for _ in 0..MAX_RETRIES {
            let g = self.shard_of(key);
            let result = op(&self.conns.borrow()[g]);
            match result {
                Ok(v) => return Ok(v),
                Err(StoreError::Status(Status::WrongEpoch)) => {
                    self.stats.client_retargets.inc();
                    last = StoreError::Status(Status::WrongEpoch);
                    self.refresh(Force::No);
                }
                Err(StoreError::Qp(e)) => {
                    last = StoreError::Qp(e);
                    self.refresh(Force::Shard(g));
                }
                Err(e) => return Err(e),
            }
            sim::sleep(backoff);
            backoff = (backoff * 2).min(MAX_BACKOFF);
        }
        Err(last)
    }

    /// Store `value` under `key` on the owning shard.
    pub fn put(&self, key: &[u8], value: &[u8]) -> Result<(), StoreError> {
        self.with_retry(key, |c| c.put(key, value))
    }

    /// Read `key` from the owning shard.
    pub fn get(&self, key: &[u8]) -> Result<Option<Vec<u8>>, StoreError> {
        self.with_retry(key, |c| c.get(key))
    }

    /// Like [`get`](Self::get), also reporting which path served it.
    pub fn get_traced(&self, key: &[u8]) -> Result<(Option<Vec<u8>>, GetOutcome), StoreError> {
        self.with_retry(key, |c| c.get_traced(key))
    }

    /// Delete `key` (tombstone) on the owning shard.
    pub fn del(&self, key: &[u8]) -> Result<(), StoreError> {
        self.with_retry(key, |c| c.del(key))
    }

    /// Run a whole-placement operation (transaction/snapshot), retrying
    /// with refreshed placement on `WrongEpoch` or transport errors.
    /// Each attempt sees a consistent connection set; retried
    /// transactions get a fresh id automatically.
    fn with_retry_all<T>(
        &self,
        mut op: impl FnMut(&[Client]) -> Result<T, StoreError>,
    ) -> Result<T, StoreError> {
        let mut backoff = sim::micros(5);
        let mut last = StoreError::Protocol;
        for _ in 0..MAX_RETRIES {
            let result = op(&self.conns.borrow());
            match result {
                Ok(v) => return Ok(v),
                Err(StoreError::Status(Status::WrongEpoch)) => {
                    self.stats.client_retargets.inc();
                    last = StoreError::Status(Status::WrongEpoch);
                    self.refresh(Force::No);
                }
                Err(StoreError::Qp(e)) => {
                    // Transport failure: some participant's owner
                    // restarted, but a multi-shard op doesn't say which
                    // QP broke — rebuild them all.
                    last = StoreError::Qp(e);
                    self.refresh(Force::All);
                }
                Err(e) => return Err(e),
            }
            sim::sleep(backoff);
            backoff = (backoff * 2).min(MAX_BACKOFF);
        }
        Err(last)
    }
}

impl RemoteKv for ClusterClient {
    fn kv_put(&self, key: &[u8], value: &[u8]) -> Result<(), StoreError> {
        self.put(key, value)
    }
    fn kv_get(&self, key: &[u8]) -> Result<Option<Vec<u8>>, StoreError> {
        self.get(key)
    }
}

impl TxnKv for ClusterClient {
    fn txn_put_all(&self, puts: &[(Vec<u8>, Vec<u8>)]) -> Result<u64, StoreError> {
        let first = puts.first().map(|(k, _)| k.as_slice()).unwrap_or(b"");
        let mut ctx = self.conns.borrow()[0].op_root(3, first);
        let result =
            self.with_retry_all(|conns| txn::put_all_routed(conns, &self.next_txn_id, puts));
        if let Ok(ts) = &result {
            self.conns.borrow()[0].txn_commit_ctr.inc();
            ctx.arg("commit_ts", *ts);
        }
        result
    }

    fn txn_rmw(
        &self,
        key: &[u8],
        f: &mut dyn FnMut(Option<Vec<u8>>) -> Vec<u8>,
    ) -> Result<u64, StoreError> {
        let mut ctx = self.conns.borrow()[0].op_root(3, key);
        let result = self.with_retry_all(|conns| txn::rmw_routed(conns, &self.next_txn_id, key, f));
        if let Ok(ts) = &result {
            self.conns.borrow()[0].txn_commit_ctr.inc();
            ctx.arg("commit_ts", *ts);
        }
        result
    }

    fn snapshot(&self) -> Result<TxnSnapshot, StoreError> {
        self.with_retry_all(txn::snapshot_all)
    }

    fn snap_get(&self, key: &[u8], snap: &TxnSnapshot) -> Result<Option<Vec<u8>>, StoreError> {
        let _ctx = self.conns.borrow()[0].op_root(4, key);
        self.with_retry_all(|conns| txn::snap_get_routed(conns, key, snap))
    }
}
