//! Live shard migration: move a shard's log + hash table to another node
//! while client traffic keeps flowing.
//!
//! # Protocol (the migration state machine)
//!
//! 1. **Start** — `MigrateStart{shard, to}` is committed through the
//!    metadata log (rejected if a migration is already in flight, the
//!    destination is down, or it already owns the shard). Ownership does
//!    NOT change yet; the source keeps serving.
//! 2. **Attach** — the driver parks a delta-stream target in the source
//!    server's [`MigrateSlot`](crate::server::MigrateSlot); the source's
//!    *verifier* (the replication point, exactly as in [`crate::repl`])
//!    connects a [`Mirror`](crate::repl::Mirror) to the destination pool
//!    and acks with its cursor — the **attach cursor**. From here, every
//!    object the verifier advances past at or above that cursor is
//!    shipped to the destination as it becomes durable. Traffic flows.
//! 3. **Snapshot copy** — the driver bulk-copies the stable prefix: the
//!    hash-table region and the log below the attach cursor, in chunks,
//!    with one-sided reads from the source and writes into the
//!    destination pool. Log bytes below the cursor are stable (verified
//!    objects never change their payload), so this copy races nothing;
//!    the churning hash table is copied best-effort and reconciled in
//!    step 5. Traffic still flows.
//! 4. **Seal + drain** — the source is sealed: every client data op is
//!    answered `WrongEpoch` (the retarget signal); `TxnDecide` stays
//!    admissible so 2PC transactions prepared before the seal still
//!    resolve (PR 7's atomicity composes unchanged). The driver waits for
//!    the verifier to drain to the log head — in-flight one-sided value
//!    writes either land (verified + delta-shipped) or time out
//!    (invalidated + delta-shipped); in-doubt transactions resolve by
//!    decide or presumed-abort. Bounded by `verify_timeout` +
//!    `txn_abort_timeout`. The delta stream is then flushed and detached;
//!    the source pool is now frozen.
//! 5. **Fixup + verify** — one chunked compare-and-rewrite pass over the
//!    whole pool catches everything the live copy could not pin down
//!    (hash-table churn, flag-word updates below the cursor, delta runs
//!    lost to transient faults). A second pass asserts **zero**
//!    differences: the destination is byte-identical to the frozen
//!    source — exactly what a stop-the-world copy would have produced.
//! 6. **Adopt** — ordinary [`crate::recovery`] runs over the copied pool
//!    (the same code path a rebooted owner would run) and the destination
//!    server starts.
//! 7. **Decommission + commit** — the source's hash-table entries are
//!    poisoned (`new_valid`), pushing any straggler's pure one-sided read
//!    onto the RPC fallback where the seal answers `WrongEpoch`, and a
//!    `CleanStart` event pins polling clients off the pure path entirely.
//!    Then `MigrateCommit` flips ownership in the metadata service with
//!    an **epoch bump**, and the new seat is published. The sealed source
//!    stays up as a tombstone answering `WrongEpoch` — the retarget
//!    signal for every client that has not yet refreshed.
//!
//! Aborting at any step before 7 leaves the source the one owner: the
//! driver unseals it, detaches the delta stream, and commits
//! `MigrateAbort`. If the abort proposal itself finds no metadata
//! majority, the driver parks it ([`Cluster::note_unacked_abort`]) and
//! [`Cluster::reconcile`] re-proposes it once a majority is reachable —
//! otherwise the slot would stay occupied forever, since with both
//! endpoints alive the death sweep never auto-aborts. A crash of either
//! endpoint mid-migration is detected by the metadata service's death
//! sweep, which auto-aborts the migration; the invariant "exactly one
//! owner per shard" holds at every instant because ownership only ever
//! changes inside `MigrateCommit`.

use std::sync::Arc;

use efactory_pmem::PmemPool;
use efactory_rnic::{ClientQp, Node, QpError, RemoteMr};
use efactory_sim as sim;
use sim::Nanos;

use super::meta::{MetaClient, MetaCmd, ProposeOutcome};
use super::Cluster;
use crate::protocol::Event;
use crate::recovery::{self, RecoveryReport};
use crate::repl::ReplTarget;
use crate::server::{CleanPhase, MigrateSlot, ServerShared};

/// Why a migration did not commit. In every case the source remains the
/// owner (the metadata service never saw, or refused, the commit).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MigrateError {
    /// The metadata service refused `MigrateStart` (migration already in
    /// flight, destination down, or destination already owns the shard).
    Rejected,
    /// No metadata leader/majority reachable within the deadline.
    MetaUnavailable,
    /// The source verifier could not connect the delta stream to the
    /// destination (source dead or link down).
    AttachFailed,
    /// The snapshot/fixup copy failed (an endpoint died or a partition
    /// outlasted the retry budget).
    CopyFailed,
    /// The sealed source did not drain within the bound (its verifier
    /// died — e.g. the source was power-failed mid-migration).
    DrainTimeout,
    /// The copy verified, but the metadata service refused the commit —
    /// the migration was auto-aborted under us (endpoint declared dead).
    CommitRefused,
    /// The source's log cleaner kept a pass in flight past the wait
    /// bound, so the delta stream was never attached. Cleaning rewrites
    /// the log (and ultimately swaps pools) under the mirror's feet;
    /// migration serializes behind it rather than racing it.
    CleanTimeout,
}

/// What a committed migration did.
#[derive(Debug, Clone)]
pub struct MigrationReport {
    /// The migrated shard.
    pub shard: usize,
    /// Previous owner.
    pub from: usize,
    /// New owner.
    pub to: usize,
    /// Placement epoch after the commit.
    pub epoch: u64,
    /// Verifier cursor at delta attach (exclusive upper bound of the
    /// stable snapshot prefix).
    pub attach_cursor: u64,
    /// Bytes bulk-copied while traffic flowed.
    pub snapshot_bytes: u64,
    /// Objects shipped by the delta stream.
    pub delta_objects: u64,
    /// Bytes rewritten by the post-drain fixup pass.
    pub fixup_bytes: u64,
    /// Differences found by the final verify pass — 0 by construction;
    /// the driver fails the migration otherwise.
    pub verify_diff_bytes: u64,
    /// Virtual time spent sealed (the client-visible unavailability
    /// window of this shard).
    pub sealed_ns: Nanos,
    /// Whole-migration virtual time (start committed → commit).
    pub total_ns: Nanos,
    /// What recovery over the copied pool found (expected: all keys
    /// intact — the source was drained before the copy froze).
    pub recovery: RecoveryReport,
}

/// Bounded one-sided op with timeout retries (transient partitions).
fn read_retry(qp: &ClientQp, mr: &RemoteMr, off: usize, len: usize) -> Result<Vec<u8>, QpError> {
    let mut backoff = sim::micros(2);
    for _ in 0..4 {
        match qp.rdma_read(mr, off, len) {
            Ok(b) => return Ok(b),
            Err(QpError::Timeout) => {
                sim::sleep(backoff);
                backoff *= 2;
            }
            Err(e) => return Err(e),
        }
    }
    Err(QpError::Timeout)
}

fn write_retry(qp: &ClientQp, mr: &RemoteMr, off: usize, data: &[u8]) -> Result<(), QpError> {
    let mut backoff = sim::micros(2);
    for _ in 0..4 {
        match qp.rdma_write(mr, off, data.to_vec()) {
            Ok(()) => return Ok(()),
            Err(QpError::Timeout) => {
                sim::sleep(backoff);
                backoff *= 2;
            }
            Err(e) => return Err(e),
        }
    }
    Err(QpError::Timeout)
}

/// Everything the abort path needs to unwind.
struct Unwind<'a> {
    mc: &'a mut MetaClient,
    shard: usize,
    to: usize,
    src: &'a Arc<ServerShared>,
    sealed: bool,
    attached: bool,
}

impl Unwind<'_> {
    fn abort(self, cluster: &Cluster, err: MigrateError) -> MigrateError {
        if self.attached {
            // Best effort: if the verifier is alive it flushes + drops the
            // delta mirror; if it died with the node, the slot is inert.
            *self.src.migrate_out.lock().unwrap() = MigrateSlot::Detach;
        }
        if self.sealed {
            self.src.unseal();
        }
        cluster.clear_staged();
        let deadline = sim::now() + sim::millis(2);
        let outcome = self.mc.propose(
            &MetaCmd::MigrateAbort {
                shard: self.shard as u32,
            },
            deadline,
        );
        if matches!(outcome, ProposeOutcome::Unavailable) {
            // The abort may never have reached the log. Both endpoints
            // are (or may be) alive, so the death sweep will never free
            // the slot for us — park the abort for `Cluster::reconcile`
            // to re-propose once a metadata majority is reachable.
            cluster.note_unacked_abort(self.shard, self.to);
        }
        cluster.stats().migrations_aborted.inc();
        err
    }
}

/// The commit proposal came back `Unavailable` — ambiguous: the command
/// may have replicated before the ack was lost (or the leader died and
/// the command died with it). Resolve against the authoritative log: an
/// owner flip to `to` means it committed; a slot that is no longer ours
/// means it provably did not and can no longer (the death sweep's
/// auto-abort won the race); a slot still holding this exact migration
/// is resolved by **re-proposing the commit** — `MigrateCommit` is
/// idempotent against its own slot, so the first application flips
/// ownership and a resurfacing original finds the slot cleared and
/// no-ops. `None` means the metadata service stayed unreachable for the
/// whole bound and the outcome is still unknown.
fn resolve_commit(mc: &mut MetaClient, shard: usize, to: usize) -> Option<Result<u64, ()>> {
    let deadline = sim::now() + sim::millis(3);
    while sim::now() < deadline {
        if let Some(state) = mc.get_map(sim::now() + sim::millis(1)) {
            if state.placement.node_of_shard(shard) == to {
                return Some(Ok(state.placement.epoch));
            }
            if state.migrating != Some((shard as u32, to as u32)) {
                return Some(Err(()));
            }
            if let ProposeOutcome::Committed(state) = mc.propose(
                &MetaCmd::MigrateCommit {
                    shard: shard as u32,
                },
                sim::now() + sim::millis(1),
            ) {
                return Some(if state.placement.node_of_shard(shard) == to {
                    Ok(state.placement.epoch)
                } else {
                    Err(())
                });
            }
        }
        sim::sleep(sim::micros(20));
    }
    None
}

impl Cluster {
    /// Live-migrate `shard` to data node `to`. Runs the full protocol in
    /// the calling (simulated) process; client traffic may keep flowing
    /// throughout. On success the destination serves the shard and every
    /// byte of its pool provably matches what a stop-the-world copy of
    /// the drained source would hold.
    pub fn migrate(&self, shard: usize, to: usize) -> Result<MigrationReport, MigrateError> {
        let t_begin = sim::now();
        let cfg = self.config().clone();
        let seat = self.handle().seat(shard);
        let from = seat.owner;
        let src = seat.shared;
        let src_node = seat.node;
        let src_mr = seat.desc.mr;

        // The driver borrows the destination agent's fabric identity for
        // the control RPCs and the copy verbs.
        let local = self.agent_node(to).clone();
        let mut mc = MetaClient::new(self.fabric(), &local, self.meta_nodes());

        // Step 1: replicate the intent.
        match mc.propose(
            &MetaCmd::MigrateStart {
                shard: shard as u32,
                to: to as u32,
            },
            sim::now() + sim::millis(2),
        ) {
            // `apply` is total: a conflicting entry ahead of ours in the
            // log can no-op our command even though the proposal itself
            // "committed". Trust the returned state, not the status.
            ProposeOutcome::Committed(state)
                if state.migrating == Some((shard as u32, to as u32)) => {}
            ProposeOutcome::Committed(_) => return Err(MigrateError::Rejected),
            ProposeOutcome::Rejected => {
                // A driver that died after its start committed — or our
                // own start whose ack was lost and which a retry now
                // collides with — leaves the slot occupied. If the
                // occupied slot IS this exact migration, adopt it
                // instead of failing.
                let ours = mc
                    .get_map(sim::now() + sim::millis(1))
                    .is_some_and(|s| s.migrating == Some((shard as u32, to as u32)));
                if !ours {
                    return Err(MigrateError::Rejected);
                }
            }
            ProposeOutcome::Unavailable => return Err(MigrateError::MetaUnavailable),
        }
        // The slot is (again) ours: any abort a previous driver failed to
        // deliver is obsolete, and re-proposing it would kill this run.
        self.clear_pending_abort();
        self.stats().migrations_started.inc();

        // Destination scaffolding: fresh pool, a listener so QPs (the
        // delta mirror's and the driver's) can connect, and a
        // registration covering the whole pool. Offsets line up 1:1 with
        // the source — both pools share one layout.
        let dest_node: Node = self.seat_node(to, shard).clone();
        let dest_pool = Arc::new(PmemPool::new(cfg.layout.total_len()));
        let _dest_listener = dest_node.listen_with(self.fabric(), false, 0);
        let dest_mr = dest_node.register_mr(&dest_pool, 0, cfg.layout.total_len());
        // Park the pool in the cluster: it is the destination machine's
        // NVM and must outlive this driver, whose borrowed endpoint may
        // die with the destination mid-commit. See `Cluster::reconcile`.
        self.stage_pool(shard, to, Arc::clone(&dest_pool));

        let mut unwind = Unwind {
            mc: &mut mc,
            shard,
            to,
            src: &src,
            sealed: false,
            attached: false,
        };

        // Step 2: attach the delta stream through the verifier — but only
        // once no cleaning pass is in flight. The cleaner relocates
        // objects and swaps pools, which would invalidate the snapshot
        // cursor and the 1:1 offset mapping the delta mirror relies on.
        // Its run() gate refuses to start a pass while `migrate_out` is
        // non-Idle, and a pass claims its phase without yielding, so after
        // this loop observes `Normal` the Attach store below (no yields in
        // between) parks the slot before any new pass can begin: exactly
        // one side wins the race.
        let clean_deadline = sim::now() + sim::millis(100);
        loop {
            if src.phase() == CleanPhase::Normal {
                break;
            }
            if sim::now() >= clean_deadline {
                return Err(unwind.abort(self, MigrateError::CleanTimeout));
            }
            sim::sleep(sim::micros(50));
        }

        let delta_objs_before = self.migrate_repl_stats().mirror_objects.get();
        *src.migrate_out.lock().unwrap() = MigrateSlot::Attach(ReplTarget {
            backup: dest_node.clone(),
            mr: dest_mr,
            stats: Arc::clone(self.migrate_repl_stats()),
            batch: cfg.server.doorbell_batch.max(1),
        });
        unwind.attached = true;
        let attach_deadline = sim::now() + sim::millis(2);
        let attach_cursor = loop {
            // Scope the guard: sleeping while holding the slot lock would
            // wedge the verifier, which takes it every loop iteration.
            let state = match *src.migrate_out.lock().unwrap() {
                MigrateSlot::Active { cursor } => Some(Ok(cursor)),
                MigrateSlot::Failed => Some(Err(())),
                _ => None,
            };
            match state {
                Some(Ok(cursor)) => break cursor,
                Some(Err(())) => {
                    unwind.attached = false;
                    return Err(unwind.abort(self, MigrateError::AttachFailed));
                }
                None if sim::now() >= attach_deadline => {
                    return Err(unwind.abort(self, MigrateError::AttachFailed));
                }
                None => sim::sleep(sim::micros(2)),
            }
        };

        // Step 3: snapshot-copy the stable prefix while traffic flows.
        // [0, log base) covers the hash table (+ any metadata);
        // [log base, attach cursor) is the settled log prefix. The log at
        // or above the cursor is the delta stream's job — copying it here
        // would race the delta writes.
        let src_qp = match self.fabric().connect(&local, &src_node) {
            Ok(qp) => qp,
            Err(_) => return Err(unwind.abort(self, MigrateError::CopyFailed)),
        };
        let dest_qp = match self.fabric().connect(&local, &dest_node) {
            Ok(qp) => qp,
            Err(_) => return Err(unwind.abort(self, MigrateError::CopyFailed)),
        };
        let mut snapshot_bytes = 0u64;
        let log_base = cfg.layout.regions()[0].base();
        let prefix_end = (attach_cursor as usize).max(log_base);
        for (lo, hi) in [(0usize, log_base), (log_base, prefix_end)] {
            let mut off = lo;
            while off < hi {
                let len = cfg.migrate_chunk.min(hi - off);
                let chunk = match read_retry(&src_qp, &src_mr, off, len) {
                    Ok(c) => c,
                    Err(_) => return Err(unwind.abort(self, MigrateError::CopyFailed)),
                };
                if write_retry(&dest_qp, &dest_mr, off, &chunk).is_err() {
                    return Err(unwind.abort(self, MigrateError::CopyFailed));
                }
                snapshot_bytes += len as u64;
                self.stats().snapshot_bytes.add(len as u64);
                self.stats().snapshot_chunks.inc();
                off += len;
            }
        }

        // Step 4: seal, then drain the verifier to the log head.
        src.seal();
        unwind.sealed = true;
        let t_sealed = sim::now();
        let drain_deadline =
            sim::now() + cfg.server.verify_timeout + cfg.server.txn_abort_timeout + sim::millis(2);
        loop {
            let active = src.active.load(std::sync::atomic::Ordering::Relaxed);
            let head = src.logs[active].head() as u64;
            if src.cursor.load(std::sync::atomic::Ordering::Relaxed) >= head {
                break;
            }
            if sim::now() >= drain_deadline || src.node.is_crashed() {
                return Err(unwind.abort(self, MigrateError::DrainTimeout));
            }
            sim::sleep(sim::micros(5));
        }
        self.stats().drain_waits.inc();

        // Flush + detach the delta stream (the verifier services the
        // slot; Idle means the flush happened).
        *src.migrate_out.lock().unwrap() = MigrateSlot::Detach;
        let detach_deadline = sim::now() + sim::millis(2);
        loop {
            if matches!(*src.migrate_out.lock().unwrap(), MigrateSlot::Idle) {
                unwind.attached = false;
                break;
            }
            if sim::now() >= detach_deadline || src.node.is_crashed() {
                return Err(unwind.abort(self, MigrateError::DrainTimeout));
            }
            sim::sleep(sim::micros(2));
        }
        let delta_objects = self.migrate_repl_stats().mirror_objects.get() - delta_objs_before;

        // Step 5: fixup + verify against the frozen source.
        let total = cfg.layout.total_len();
        let mut fixup_bytes = 0u64;
        let mut verify_diff_bytes = 0u64;
        for pass in 0..2 {
            let mut off = 0usize;
            while off < total {
                let len = cfg.migrate_chunk.min(total - off);
                let want = match read_retry(&src_qp, &src_mr, off, len) {
                    Ok(c) => c,
                    Err(_) => return Err(unwind.abort(self, MigrateError::CopyFailed)),
                };
                let mut have = vec![0u8; len];
                dest_pool.read(off, &mut have);
                if want != have {
                    if pass == 0 {
                        if write_retry(&dest_qp, &dest_mr, off, &want).is_err() {
                            return Err(unwind.abort(self, MigrateError::CopyFailed));
                        }
                        fixup_bytes += len as u64;
                        self.stats().fixup_bytes.add(len as u64);
                    } else {
                        let diff = want.iter().zip(&have).filter(|(a, b)| a != b).count() as u64;
                        verify_diff_bytes += diff;
                        self.stats().verify_diff_bytes.add(diff);
                    }
                }
                off += len;
            }
        }
        if verify_diff_bytes != 0 {
            // The copy is not byte-identical to the frozen source: never
            // flip ownership onto it.
            return Err(unwind.abort(self, MigrateError::CopyFailed));
        }

        // Step 6: adopt — ordinary recovery over the copied pool, then
        // start serving (replaces the driver's scaffolding listener).
        let mut dest_cfg = cfg.server.clone();
        dest_cfg.counter_prefix = format!("{}.", Cluster::seat_name(to, shard));
        let (dest_server, recovery_report) = recovery::recover(
            self.fabric(),
            &dest_node,
            Arc::clone(&dest_pool),
            cfg.layout,
            dest_cfg,
        );
        dest_server.start(self.fabric());

        // Step 7a: decommission the source's read paths *before* the
        // flip, so no straggler can be served stale bytes afterwards:
        // poison every occupied hash entry (pure probes fall back to RPC,
        // where the seal answers `WrongEpoch`) and pin polling clients
        // off the pure path entirely.
        src.ht.for_each_occupied(&src.pool, |idx, e| {
            src.ht.set_ctl(&src.pool, idx, e.ctl.with_new_valid(true));
        });
        if let Some(n) = src.notifier.lock().unwrap().as_ref() {
            let _ = n.notify_all(&Event::CleanStart.encode());
        }

        // Park the recovered server beside its pool: if the commit's
        // outcome is lost below, reconciliation can still promote (or
        // wind down) a complete destination.
        self.stage_server(dest_server);

        // Step 7b: the commit point — ownership flips here and only here.
        let outcome = unwind.mc.propose(
            &MetaCmd::MigrateCommit {
                shard: shard as u32,
            },
            sim::now() + sim::millis(2),
        );
        let resolved = match outcome {
            // Believe the flip only if the returned state shows it (apply
            // is total, so a conflicting entry ahead of ours can no-op
            // the command under a "committed" status).
            ProposeOutcome::Committed(state) if state.placement.node_of_shard(shard) == to => {
                Some(Ok(state.placement.epoch))
            }
            // Everything else is ambiguous, not refused: `Unavailable`
            // may have replicated before the ack was lost, and `Rejected`
            // may be our own commit landing in a previous leader's log
            // and the retry reaching its successor as a duplicate. Settle
            // against the authoritative log.
            _ => resolve_commit(unwind.mc, shard, to),
        };
        let epoch = match resolved {
            Some(Ok(epoch)) => epoch,
            Some(Err(())) => {
                // Provably not committed and no longer committable.
                return Err(unwind.abort(self, MigrateError::CommitRefused));
            }
            None => {
                // Outcome unknown within the bound: consistency over
                // availability. Serving the source could double-own the
                // shard if the commit did land, so it stays sealed and
                // the destination stays staged; `Cluster::reconcile`
                // settles both once a metadata majority is reachable
                // again.
                return Err(MigrateError::MetaUnavailable);
            }
        };
        // A concurrent reconciliation (a node restart racing this commit)
        // may have settled the staging already; otherwise install the
        // destination ourselves.
        if let Some(dest_server) = self.take_staged_server() {
            self.install_seat(shard, to, dest_server);
        }
        self.stats().migrations_committed.inc();

        Ok(MigrationReport {
            shard,
            from,
            to,
            epoch,
            attach_cursor,
            snapshot_bytes,
            delta_objects,
            fixup_bytes,
            verify_diff_bytes,
            sealed_ns: sim::now() - t_sealed,
            total_ns: sim::now() - t_begin,
            recovery: recovery_report,
        })
    }
}
