//! Replicated cluster metadata/membership service.
//!
//! Three (by default) replica processes, each on its own fabric node
//! (`meta{r}`), keep the cluster's control-plane state — the placement
//! map, per-node liveness, and the at-most-one in-flight migration —
//! consistent through a small leader-based replicated log:
//!
//! * **Terms + election.** Replicas start as followers. A follower that
//!   hears nothing from a leader for its (deterministically staggered)
//!   election timeout campaigns: it bumps its term, votes for itself, and
//!   requests votes from its peers. A vote is granted at most once per
//!   term and only to a candidate whose log is at least as up-to-date
//!   (last term, then length) — the classic rule that keeps committed
//!   entries on whoever wins. Majority grants make a leader.
//! * **Log replication.** The leader appends commands from `Propose`
//!   RPCs and replicates synchronously: every `Append` carries the
//!   leader's *entire* log (the control-plane log is tiny — node
//!   up/downs and migration edges — so wholesale shipping buys a much
//!   simpler consistency argument: a follower with a stale or divergent
//!   suffix is simply overwritten by the authoritative log). An entry is
//!   committed once a majority (leader included) holds it; only then is
//!   it applied and the proposer answered.
//! * **Death detection via the virtual clock.** Each data node's agent
//!   heartbeats the leader. The leader sweeps `last_seen` on its
//!   heartbeat tick and proposes `NodeDown` through the log when a node
//!   has been silent past the death timeout; a heartbeat from a down
//!   node proposes `NodeUp`. Liveness transitions are therefore
//!   replicated facts, not per-replica opinions.
//!
//! Simplifications vs. full Raft, on purpose (and documented in
//! DESIGN.md §10): full-suffix `Append` instead of per-follower
//! nextIndex repair (each `Append` ships the latest snapshot plus every
//! entry above it, so a stale or divergent follower is simply
//! overwritten), and no commit-from-previous-term subtlety (wholesale
//! replacement makes the follower's log equal the leader's before the
//! ack that commits). Two load-bearing rules the simplifications do NOT
//! relax:
//!
//! * **Persistence.** Term, vote, snapshot, and log are written to the
//!   replica's simulated stable storage before they are acted on over
//!   the network, and a power-failed replica reboots *from* that
//!   storage. Without this, a restarted replica could double-vote in a
//!   term it already voted in, or grant a vote to a candidate missing a
//!   committed entry — letting an acknowledged command be erased.
//! * **Read-index + step-down.** The leader only answers `GetMap` after
//!   a replication round confirms a majority still follows it, and any
//!   round that loses its majority makes it step down — so a deposed
//!   leader on the wrong side of a partition can never serve a stale
//!   placement map as authoritative.
//!
//! The log is compacted: once the applied prefix passes a threshold it
//! is folded into a `MetaState` snapshot and truncated, keeping
//! heartbeat `Append`s O(recent history) instead of O(all history).

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};

use efactory_obs::{Counter, Registry};
use efactory_rnic::{ClientQp, Fabric, Incoming, Listener, Node, QpError};
use efactory_sim as sim;
use sim::Nanos;

use super::placement::PlacementMap;

/// Control-plane commands, totally ordered by the replicated log.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MetaCmd {
    /// `node` stopped heartbeating: mark it dead. Aborts an in-flight
    /// migration touching it (the driver observes and gives up).
    NodeDown(u32),
    /// `node` is heartbeating again (restarted + recovered).
    NodeUp(u32),
    /// Begin migrating `shard` to `to`. At most one migration is in
    /// flight cluster-wide.
    MigrateStart { shard: u32, to: u32 },
    /// The copy is verified: flip ownership of `shard` to the migration
    /// destination and bump the placement epoch.
    MigrateCommit { shard: u32 },
    /// Abandon the in-flight migration of `shard`; the source stays the
    /// one owner.
    MigrateAbort { shard: u32 },
}

impl MetaCmd {
    fn encode(&self) -> Vec<u8> {
        let mut b = Vec::with_capacity(9);
        match self {
            MetaCmd::NodeDown(n) => {
                b.push(1);
                b.extend_from_slice(&n.to_le_bytes());
            }
            MetaCmd::NodeUp(n) => {
                b.push(2);
                b.extend_from_slice(&n.to_le_bytes());
            }
            MetaCmd::MigrateStart { shard, to } => {
                b.push(3);
                b.extend_from_slice(&shard.to_le_bytes());
                b.extend_from_slice(&to.to_le_bytes());
            }
            MetaCmd::MigrateCommit { shard } => {
                b.push(4);
                b.extend_from_slice(&shard.to_le_bytes());
            }
            MetaCmd::MigrateAbort { shard } => {
                b.push(5);
                b.extend_from_slice(&shard.to_le_bytes());
            }
        }
        b
    }

    fn decode(b: &[u8]) -> Option<(MetaCmd, usize)> {
        let u32_at = |off: usize| -> Option<u32> {
            b.get(off..off + 4)
                .map(|s| u32::from_le_bytes(s.try_into().unwrap()))
        };
        match *b.first()? {
            1 => Some((MetaCmd::NodeDown(u32_at(1)?), 5)),
            2 => Some((MetaCmd::NodeUp(u32_at(1)?), 5)),
            3 => Some((
                MetaCmd::MigrateStart {
                    shard: u32_at(1)?,
                    to: u32_at(5)?,
                },
                9,
            )),
            4 => Some((MetaCmd::MigrateCommit { shard: u32_at(1)? }, 5)),
            5 => Some((MetaCmd::MigrateAbort { shard: u32_at(1)? }, 5)),
            _ => None,
        }
    }
}

/// The applied (committed-prefix) control-plane state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MetaState {
    /// Who owns which shard, tagged with the placement epoch.
    pub placement: PlacementMap,
    /// Per data node liveness, as decided through the log.
    pub alive: Vec<bool>,
    /// The at-most-one in-flight migration: `(shard, destination)`.
    pub migrating: Option<(u32, u32)>,
}

impl MetaState {
    /// The initial state every replica boots with: round-robin placement,
    /// everyone alive, nothing migrating.
    pub fn initial(shards: usize, nodes: usize) -> MetaState {
        MetaState {
            placement: PlacementMap::initial(shards, nodes),
            alive: vec![true; nodes],
            migrating: None,
        }
    }

    /// Apply one committed command. Total and deterministic: invalid
    /// commands (e.g. a commit for a migration that was already aborted)
    /// are no-ops, so every replica's applied state is a pure function of
    /// the committed log prefix.
    pub fn apply(&mut self, cmd: &MetaCmd) {
        match *cmd {
            MetaCmd::NodeDown(n) => {
                if let Some(a) = self.alive.get_mut(n as usize) {
                    *a = false;
                }
                // A migration whose source or destination died cannot
                // finish: auto-abort so the slot frees up.
                if let Some((g, to)) = self.migrating {
                    let from = self.placement.node_of_shard(g as usize);
                    if to == n || from == n as usize {
                        self.migrating = None;
                    }
                }
            }
            MetaCmd::NodeUp(n) => {
                if let Some(a) = self.alive.get_mut(n as usize) {
                    *a = true;
                }
            }
            MetaCmd::MigrateStart { shard, to } => {
                let valid = self.migrating.is_none()
                    && (shard as usize) < self.placement.shards()
                    && (to as usize) < self.alive.len()
                    && self.alive[to as usize]
                    && self.placement.node_of_shard(shard as usize) != to as usize;
                if valid {
                    self.migrating = Some((shard, to));
                }
            }
            MetaCmd::MigrateCommit { shard } => {
                if let Some((g, to)) = self.migrating {
                    if g == shard {
                        self.placement.reassign(g as usize, to as usize);
                        self.migrating = None;
                    }
                }
            }
            MetaCmd::MigrateAbort { shard } => {
                if let Some((g, _)) = self.migrating {
                    if g == shard {
                        self.migrating = None;
                    }
                }
            }
        }
    }

    fn encode(&self) -> Vec<u8> {
        let mut b = self.placement.encode();
        b.extend_from_slice(&(self.alive.len() as u32).to_le_bytes());
        b.extend(self.alive.iter().map(|&a| a as u8));
        match self.migrating {
            Some((g, to)) => {
                b.push(1);
                b.extend_from_slice(&g.to_le_bytes());
                b.extend_from_slice(&to.to_le_bytes());
            }
            None => b.push(0),
        }
        b
    }

    fn decode(b: &[u8]) -> Option<MetaState> {
        let placement = PlacementMap::decode(b)?;
        let mut off = 12 + 4 * placement.shards();
        let n = u32::from_le_bytes(b.get(off..off + 4)?.try_into().unwrap()) as usize;
        off += 4;
        let alive: Vec<bool> = b.get(off..off + n)?.iter().map(|&x| x != 0).collect();
        off += n;
        let migrating = match *b.get(off)? {
            1 => {
                let g = u32::from_le_bytes(b.get(off + 1..off + 5)?.try_into().unwrap());
                let to = u32::from_le_bytes(b.get(off + 5..off + 9)?.try_into().unwrap());
                Some((g, to))
            }
            _ => None,
        };
        Some(MetaState {
            placement,
            alive,
            migrating,
        })
    }
}

/// Aggregate counters for the metadata service (shared by all replicas —
/// the audit cares about service-level activity, not per-replica splits).
#[derive(Debug, Default)]
pub struct MetaStats {
    /// Leader elections won (across all replicas and terms).
    pub elections: Counter,
    /// Highest term ever adopted (gauge-as-counter: monotone max).
    pub terms: Counter,
    /// Log entries committed (majority-acked) by a leader.
    pub commits: Counter,
    /// Committed entries applied to a replica's state machine.
    pub applies: Counter,
    /// Append RPCs sent by leaders (heartbeats included).
    pub appends: Counter,
    /// Data-node heartbeats processed by a leader.
    pub heartbeats: Counter,
    /// `NodeDown` transitions committed.
    pub node_downs: Counter,
    /// `NodeUp` transitions committed.
    pub node_ups: Counter,
    /// Proposals rejected by leader-side validation.
    pub rejects: Counter,
    /// `GetMap` reads served by a leader.
    pub getmaps: Counter,
}

impl MetaStats {
    /// Attach every counter to `reg` under `meta.*` names.
    pub fn register(&self, reg: &Registry) {
        let pairs: [(&str, &Counter); 10] = [
            ("meta.elections", &self.elections),
            ("meta.terms", &self.terms),
            ("meta.commits", &self.commits),
            ("meta.applies", &self.applies),
            ("meta.appends", &self.appends),
            ("meta.heartbeats", &self.heartbeats),
            ("meta.node_downs", &self.node_downs),
            ("meta.node_ups", &self.node_ups),
            ("meta.rejects", &self.rejects),
            ("meta.getmaps", &self.getmaps),
        ];
        for (name, c) in pairs {
            reg.attach_counter(name, c);
        }
    }
}

/// Timing knobs for the service. All deterministic; the election timeout
/// is staggered per replica so campaigns never tie.
#[derive(Debug, Clone)]
pub struct MetaTiming {
    /// Replica loop tick (listener receive deadline).
    pub tick: Nanos,
    /// Leader heartbeat (empty `Append`) period; also the death-sweep
    /// cadence.
    pub heartbeat_every: Nanos,
    /// Base election timeout; replica `r` waits `base + r * stagger`.
    pub election_base: Nanos,
    /// Per-replica election stagger.
    pub election_stagger: Nanos,
    /// Peer RPC reply deadline (votes, append acks).
    pub peer_rpc: Nanos,
    /// A data node silent for this long is proposed down.
    pub death_timeout: Nanos,
}

impl Default for MetaTiming {
    fn default() -> Self {
        MetaTiming {
            tick: sim::micros(10),
            heartbeat_every: sim::micros(40),
            election_base: sim::micros(200),
            election_stagger: sim::micros(80),
            peer_rpc: sim::micros(50),
            death_timeout: sim::micros(400),
        }
    }
}

// ---------------------------------------------------------------------
// Wire protocol. Peer messages (replica <-> replica) and client messages
// (agents, drivers, cluster clients) share one listener per replica.
// ---------------------------------------------------------------------

const M_REQUEST_VOTE: u8 = 0x01;
const M_APPEND: u8 = 0x02;
const M_GET_MAP: u8 = 0x10;
const M_PROPOSE: u8 = 0x11;
const M_HEARTBEAT: u8 = 0x12;

const R_VOTE: u8 = 0x81;
const R_APPEND_ACK: u8 = 0x82;
const R_MAP: u8 = 0x90;
const R_PROPOSE: u8 = 0x91;
const R_HEARTBEAT_ACK: u8 = 0x92;

/// Reply status for client-facing RPCs.
const S_OK: u8 = 0;
const S_NOT_LEADER: u8 = 1;
const S_REJECTED: u8 = 2;
const S_UNAVAILABLE: u8 = 3;

fn put_u64(b: &mut Vec<u8>, v: u64) {
    b.extend_from_slice(&v.to_le_bytes());
}

fn get_u64(b: &[u8], off: usize) -> Option<u64> {
    b.get(off..off + 8)
        .map(|s| u64::from_le_bytes(s.try_into().unwrap()))
}

/// Fold the applied prefix into the snapshot once this many applied
/// entries sit above it (keeps every `Append` O(recent history)).
const COMPACT_AT: usize = 32;

/// A replica's simulated stable storage: exactly the state Raft requires
/// to survive a power failure — current term, vote, and the log (here:
/// snapshot + suffix). The [`MetaService`] owns one cell per replica; a
/// restarted replica process reboots from it, so a vote it granted or an
/// entry it acknowledged can never be un-acknowledged by a crash. The
/// store is atomic (the sim's cooperative scheduling cannot preempt it),
/// modelling an fsync'd write that completes before the next message is
/// sent.
#[derive(Clone)]
struct Durable {
    term: u64,
    voted_for: Option<u32>,
    snap_base: usize,
    snap_last_term: u64,
    snap_state: MetaState,
    log: Vec<(u64, MetaCmd)>,
}

impl Durable {
    fn fresh(init: &MetaState) -> Durable {
        Durable {
            term: 0,
            voted_for: None,
            snap_base: 0,
            snap_last_term: 0,
            snap_state: init.clone(),
            log: Vec::new(),
        }
    }
}

/// One replica of the metadata service.
struct Replica {
    r: usize,
    n_replicas: usize,
    data_nodes: usize,
    node: Node,
    fabric: Arc<Fabric>,
    peers: Vec<Option<ClientQp>>,
    peer_nodes: Vec<Node>,
    /// Do not contact peer `p` again before this instant. A peer that
    /// just timed out costs a full `peer_rpc` deadline of *blocking* per
    /// attempt (a partitioned link swallows the request silently), so
    /// probing it on every round would leave the leader wedged in dead
    /// RPCs instead of serving — back off and re-probe periodically.
    peer_backoff: Vec<Nanos>,

    term: u64,
    voted_for: Option<u32>,
    is_leader: bool,
    leader_hint: u32,
    /// Entries compacted into `snap_state` (absolute count) and the term
    /// of the last one — the log below this index no longer exists.
    snap_base: usize,
    snap_last_term: u64,
    /// The applied state at exactly `snap_base` entries.
    snap_state: MetaState,
    /// Log suffix: entry `i` here has absolute index `snap_base + i`.
    log: Vec<(u64, MetaCmd)>,
    /// Committed / applied prefixes, in absolute entry counts.
    commit: usize,
    applied: usize,
    state: MetaState,

    last_contact: Nanos,
    next_heartbeat: Nanos,
    last_seen: Vec<Nanos>,

    durable: Arc<Mutex<Durable>>,
    timing: MetaTiming,
    stats: Arc<MetaStats>,
    stop: Arc<AtomicBool>,
}

/// The service handle: replica nodes + shared state, owned by the
/// [`Cluster`](super::Cluster).
pub struct MetaService {
    nodes: Vec<Node>,
    /// Per-replica simulated stable storage (survives power failure).
    durable: Vec<Arc<Mutex<Durable>>>,
    data_nodes: usize,
    timing: MetaTiming,
    stats: Arc<MetaStats>,
    stop: Arc<AtomicBool>,
}

impl MetaService {
    /// Create `replicas` replica nodes (named `meta{r}`) on `fabric`.
    /// Processes start in [`start`](Self::start).
    pub fn new(
        fabric: &Fabric,
        replicas: usize,
        data_nodes: usize,
        init: MetaState,
        timing: MetaTiming,
        stats: Arc<MetaStats>,
        stop: Arc<AtomicBool>,
    ) -> MetaService {
        assert!(replicas >= 1 && replicas % 2 == 1, "odd replica count");
        let nodes = (0..replicas)
            .map(|r| fabric.add_node(&format!("meta{r}")))
            .collect();
        let durable = (0..replicas)
            .map(|_| Arc::new(Mutex::new(Durable::fresh(&init))))
            .collect();
        MetaService {
            nodes,
            durable,
            data_nodes,
            timing,
            stats,
            stop,
        }
    }

    /// The replica fabric nodes (clients round-robin these to find the
    /// leader).
    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// Spawn every replica process. Must run inside a simulated process
    /// (listeners are created here, so replicas are addressable when this
    /// returns).
    pub fn start(&self, fabric: &Arc<Fabric>) {
        for r in 0..self.nodes.len() {
            self.spawn_replica(fabric, r);
        }
    }

    /// Re-admit a power-failed replica: restart its node and reboot the
    /// process from its simulated stable storage. Term, vote, snapshot,
    /// and log survive the failure — the classic Raft requirement — so
    /// the restarted replica can neither double-vote in a term it
    /// already voted in nor elect a candidate missing a committed entry.
    /// Only the commit/applied cursors are volatile; they are relearned
    /// from the next leader `Append` (or re-established by winning an
    /// election and replicating).
    pub fn restart_replica(&self, fabric: &Arc<Fabric>, r: usize) {
        fabric.restart_node(&self.nodes[r]);
        self.spawn_replica(fabric, r);
    }

    fn spawn_replica(&self, fabric: &Arc<Fabric>, r: usize) {
        let node = &self.nodes[r];
        let listener = node.listen_with(fabric, false, 0);
        let d = self.durable[r].lock().unwrap().clone();
        let mut rep = Replica {
            r,
            n_replicas: self.nodes.len(),
            data_nodes: self.data_nodes,
            node: node.clone(),
            fabric: Arc::clone(fabric),
            peers: (0..self.nodes.len()).map(|_| None).collect(),
            peer_nodes: self.nodes.clone(),
            peer_backoff: vec![0; self.nodes.len()],
            term: d.term,
            voted_for: d.voted_for,
            is_leader: false,
            leader_hint: 0,
            snap_base: d.snap_base,
            snap_last_term: d.snap_last_term,
            // Commit knowledge is volatile: resume applied at the
            // snapshot and relearn the commit point from the next leader
            // round. Entries in the restored suffix re-apply then.
            commit: d.snap_base,
            applied: d.snap_base,
            state: d.snap_state.clone(),
            snap_state: d.snap_state,
            log: d.log,
            last_contact: sim::now(),
            next_heartbeat: 0,
            last_seen: vec![sim::now(); self.data_nodes],
            durable: Arc::clone(&self.durable[r]),
            timing: self.timing.clone(),
            stats: Arc::clone(&self.stats),
            stop: Arc::clone(&self.stop),
        };
        sim::spawn(&format!("efactory-meta{r}"), move || rep.run(listener));
    }
}

impl Replica {
    fn stopping(&self) -> bool {
        self.stop.load(Ordering::Relaxed) || self.node.is_crashed()
    }

    fn election_timeout(&self) -> Nanos {
        self.timing.election_base + self.r as Nanos * self.timing.election_stagger
    }

    fn majority(&self) -> usize {
        self.n_replicas / 2 + 1
    }

    /// Absolute log length: snapshot-covered entries + live suffix.
    fn abs_len(&self) -> usize {
        self.snap_base + self.log.len()
    }

    /// Term of the last log entry (falling back to the snapshot's).
    fn last_log_term(&self) -> u64 {
        self.log.last().map_or(self.snap_last_term, |e| e.0)
    }

    /// Write the Raft-persistent state (term, vote, snapshot, log) to
    /// stable storage. Must run after every mutation of those fields and
    /// before the mutation is acted on over the network.
    fn persist(&self) {
        *self.durable.lock().unwrap() = Durable {
            term: self.term,
            voted_for: self.voted_for,
            snap_base: self.snap_base,
            snap_last_term: self.snap_last_term,
            snap_state: self.snap_state.clone(),
            log: self.log.clone(),
        };
    }

    fn run(&mut self, listener: Listener) {
        loop {
            if self.stopping() {
                return;
            }
            match listener.recv_deadline(sim::now() + self.timing.tick) {
                Ok(Incoming::Send { from, payload }) => {
                    self.dispatch(&listener, from, &payload);
                }
                Ok(_) => {}
                Err(QpError::Timeout) => {}
                Err(_) => return,
            }
            self.tick_duties();
        }
    }

    /// Time-driven work: elections for followers, heartbeats + death
    /// sweep for the leader. A heartbeat round that loses its majority
    /// steps the leader down (see [`replicate`](Self::replicate)), so the
    /// death sweep never runs on deposed state.
    fn tick_duties(&mut self) {
        let now = sim::now();
        if self.is_leader {
            if now >= self.next_heartbeat {
                self.next_heartbeat = now + self.timing.heartbeat_every;
                if self.replicate() {
                    self.death_sweep();
                }
            }
        } else if now.saturating_sub(self.last_contact) > self.election_timeout() {
            self.campaign();
        }
    }

    /// A replica-crash epoch guard wrapper: peer QPs die with the peer;
    /// drop and lazily re-dial.
    fn peer_qp(&mut self, p: usize) -> Option<&ClientQp> {
        if self.peers[p].is_none() {
            self.peers[p] = self.fabric.connect(&self.node, &self.peer_nodes[p]).ok();
        }
        self.peers[p].as_ref()
    }

    fn adopt_term(&mut self, term: u64) {
        if term > self.term {
            self.term = term;
            self.voted_for = None;
            self.is_leader = false;
            self.persist();
            // Track the max term as a monotone counter.
            while self.stats.terms.get() < term {
                self.stats.terms.inc();
            }
        }
    }

    fn campaign(&mut self) {
        self.adopt_term(self.term + 1);
        self.voted_for = Some(self.r as u32);
        self.persist();
        self.last_contact = sim::now();
        let (last_term, last_len) = (self.last_log_term(), self.abs_len());
        let mut req = vec![M_REQUEST_VOTE];
        put_u64(&mut req, self.term);
        req.extend_from_slice(&(self.r as u32).to_le_bytes());
        put_u64(&mut req, last_term);
        put_u64(&mut req, last_len as u64);

        let mut votes = 1usize; // self
        for p in 0..self.n_replicas {
            if p == self.r {
                continue;
            }
            let deadline = sim::now() + self.timing.peer_rpc;
            let reply = (|| {
                let qp = self.peer_qp(p)?;
                qp.send(req.clone()).ok()?;
                qp.recv_reply_deadline(deadline).ok()
            })();
            match reply {
                Some(b) if b.first() == Some(&R_VOTE) => {
                    let term = get_u64(&b, 1).unwrap_or(0);
                    if term > self.term {
                        self.adopt_term(term);
                        return;
                    }
                    if b.get(9) == Some(&1) {
                        votes += 1;
                    }
                }
                Some(_) => {}
                None => self.peers[p] = None,
            }
        }
        if votes >= self.majority() {
            self.is_leader = true;
            self.leader_hint = self.r as u32;
            // A fresh mandate probes every peer, whatever its history.
            self.peer_backoff.iter_mut().for_each(|b| *b = 0);
            self.next_heartbeat = 0; // heartbeat immediately
                                     // Fresh grace for every data node so a new leader does not
                                     // instantly declare the world dead.
            let now = sim::now();
            self.last_seen.iter_mut().for_each(|t| *t = now);
            self.stats.elections.inc();
            // Establish the committed prefix BEFORE serving: the log
            // entries inherited from the previous term are not known
            // committed (or applied) until a replication round succeeds,
            // and a read or proposal validated against the lagging state
            // in that window would be answered from the past — e.g. a
            // `MigrateCommit` rejected because the already-majority-held
            // `MigrateStart` has not been applied here yet.
            self.replicate();
        }
    }

    /// Ship the snapshot + log suffix to every peer; commit once a
    /// majority holds it. Doubles as the heartbeat AND as the leadership
    /// confirmation: returns `true` iff a majority acked this round. A
    /// round that loses its majority steps the leader down — a quorum on
    /// the other side of a partition may already follow a newer leader,
    /// so continuing to serve reads or validate proposals here would use
    /// stale state.
    fn replicate(&mut self) -> bool {
        let mut msg = vec![M_APPEND];
        put_u64(&mut msg, self.term);
        msg.extend_from_slice(&(self.r as u32).to_le_bytes());
        put_u64(&mut msg, self.commit as u64);
        put_u64(&mut msg, self.snap_base as u64);
        put_u64(&mut msg, self.snap_last_term);
        let snap = self.snap_state.encode();
        msg.extend_from_slice(&(snap.len() as u32).to_le_bytes());
        msg.extend_from_slice(&snap);
        put_u64(&mut msg, self.log.len() as u64);
        for (term, cmd) in &self.log {
            put_u64(&mut msg, *term);
            let c = cmd.encode();
            msg.extend_from_slice(&(c.len() as u16).to_le_bytes());
            msg.extend_from_slice(&c);
        }

        let mut acks = 1usize; // self
        for p in 0..self.n_replicas {
            if p == self.r {
                continue;
            }
            // A backed-off peer counts as silent (no ack) this round —
            // conservative for both the commit and the majority
            // confirmation, never optimistic.
            if sim::now() < self.peer_backoff[p] {
                continue;
            }
            self.stats.appends.inc();
            let deadline = sim::now() + self.timing.peer_rpc;
            let reply = (|| {
                let qp = self.peer_qp(p)?;
                qp.send(msg.clone()).ok()?;
                qp.recv_reply_deadline(deadline).ok()
            })();
            match reply {
                Some(b) if b.first() == Some(&R_APPEND_ACK) => {
                    self.peer_backoff[p] = 0;
                    let term = get_u64(&b, 1).unwrap_or(0);
                    if term > self.term {
                        self.adopt_term(term);
                        return false;
                    }
                    if b.get(9) == Some(&1) {
                        acks += 1;
                    }
                }
                Some(_) => {}
                None => {
                    self.peers[p] = None;
                    self.peer_backoff[p] = sim::now() + 3 * self.timing.heartbeat_every;
                }
            }
        }
        if acks < self.majority() {
            self.is_leader = false;
            self.last_contact = sim::now();
            return false;
        }
        if self.commit < self.abs_len() {
            let newly = self.abs_len() - self.commit;
            self.commit = self.abs_len();
            self.stats.commits.add(newly as u64);
            self.apply_committed();
        }
        true
    }

    fn apply_committed(&mut self) {
        while self.applied < self.commit {
            let cmd = self.log[self.applied - self.snap_base].1.clone();
            match cmd {
                MetaCmd::NodeDown(_) => self.stats.node_downs.inc(),
                MetaCmd::NodeUp(_) => self.stats.node_ups.inc(),
                _ => {}
            }
            self.state.apply(&cmd);
            self.applied += 1;
            self.stats.applies.inc();
        }
        self.maybe_compact();
    }

    /// Fold the applied prefix into the snapshot once it outgrows the
    /// threshold and truncate it from the log, so `Append` traffic stays
    /// proportional to recent history rather than all history.
    fn maybe_compact(&mut self) {
        let applied_suffix = self.applied - self.snap_base;
        if applied_suffix < COMPACT_AT {
            return;
        }
        self.snap_last_term = self.log[applied_suffix - 1].0;
        self.log.drain(..applied_suffix);
        self.snap_base = self.applied;
        self.snap_state = self.state.clone();
        self.persist();
    }

    /// Is `cmd` already sitting in the uncommitted tail? Re-proposing an
    /// identical command while one is in flight (e.g. a `NodeDown` per
    /// sweep tick during a no-majority window) would only grow the log.
    fn has_pending(&self, cmd: &MetaCmd) -> bool {
        self.log[self.commit - self.snap_base..]
            .iter()
            .any(|(_, c)| c == cmd)
    }

    /// Leader-side proposal: validate against applied state, append,
    /// replicate synchronously. `true` iff committed.
    fn propose(&mut self, cmd: MetaCmd) -> bool {
        if !self.is_leader {
            return false;
        }
        // Leader-side validation keeps obviously-invalid commands out of
        // the log; apply() is still total for safety.
        let mut probe = self.state.clone();
        let before = probe.clone();
        probe.apply(&cmd);
        if probe == before && !matches!(cmd, MetaCmd::NodeUp(_) | MetaCmd::NodeDown(_)) {
            self.stats.rejects.inc();
            return false;
        }
        self.log.push((self.term, cmd));
        self.persist();
        self.replicate();
        self.commit >= self.abs_len()
    }

    fn death_sweep(&mut self) {
        let now = sim::now();
        for i in 0..self.data_nodes {
            if !self.is_leader {
                return; // a failed propose round deposed us mid-sweep
            }
            if self.state.alive[i]
                && now.saturating_sub(self.last_seen[i]) > self.timing.death_timeout
            {
                let cmd = MetaCmd::NodeDown(i as u32);
                if !self.has_pending(&cmd) {
                    self.propose(cmd);
                }
            }
        }
    }

    fn dispatch(&mut self, listener: &Listener, from: efactory_rnic::QpId, payload: &[u8]) {
        let reply = match payload.first() {
            Some(&M_REQUEST_VOTE) => self.on_request_vote(payload),
            Some(&M_APPEND) => self.on_append(payload),
            Some(&M_GET_MAP) => self.on_get_map(),
            Some(&M_PROPOSE) => self.on_propose(payload),
            Some(&M_HEARTBEAT) => self.on_heartbeat(payload),
            _ => return,
        };
        let _ = listener.reply(from, reply);
    }

    fn on_request_vote(&mut self, b: &[u8]) -> Vec<u8> {
        let term = get_u64(b, 1).unwrap_or(0);
        let cand = b
            .get(9..13)
            .map(|s| u32::from_le_bytes(s.try_into().unwrap()))
            .unwrap_or(0);
        let cand_last_term = get_u64(b, 13).unwrap_or(0);
        let cand_len = get_u64(b, 21).unwrap_or(0) as usize;
        self.adopt_term(term);
        let up_to_date = (cand_last_term, cand_len) >= (self.last_log_term(), self.abs_len());
        let grant = term == self.term
            && up_to_date
            && (self.voted_for.is_none() || self.voted_for == Some(cand));
        if grant {
            self.voted_for = Some(cand);
            self.persist();
            self.last_contact = sim::now();
        }
        let mut r = vec![R_VOTE];
        put_u64(&mut r, self.term);
        r.push(grant as u8);
        r
    }

    fn on_append(&mut self, b: &[u8]) -> Vec<u8> {
        let term = get_u64(b, 1).unwrap_or(0);
        let leader = b
            .get(9..13)
            .map(|s| u32::from_le_bytes(s.try_into().unwrap()))
            .unwrap_or(0);
        let mut ok = false;
        if term >= self.term {
            self.adopt_term(term);
            self.is_leader = false;
            self.leader_hint = leader;
            self.last_contact = sim::now();
            if let Some(m) = decode_append(b) {
                self.snap_base = m.snap_base;
                self.snap_last_term = m.snap_last_term;
                self.log = m.log;
                if self.applied < m.snap_base {
                    // Our applied prefix ends inside the leader's
                    // snapshot: jump straight to the snapshot state.
                    self.state = m.snap_state.clone();
                    self.applied = m.snap_base;
                }
                self.snap_state = m.snap_state;
                // Committed prefixes agree, so entries we already applied
                // stay committed even under a leader whose commit
                // knowledge lags ours (hence the `max`).
                self.commit = m.commit.min(self.abs_len()).max(self.applied);
                self.apply_committed();
                self.persist();
                ok = true;
            }
        }
        let mut r = vec![R_APPEND_ACK];
        put_u64(&mut r, self.term);
        r.push(ok as u8);
        r
    }

    fn on_get_map(&mut self) -> Vec<u8> {
        let mut r = vec![R_MAP];
        // Read-index: confirm leadership with a majority round before
        // answering. A deposed leader partitioned away from the quorum
        // otherwise serves a placement map that predates commits on the
        // other side — e.g. telling a migration driver its commit
        // "provably did not land" while the real leader flipped
        // ownership, double-owning the shard.
        if self.is_leader && self.replicate() {
            self.stats.getmaps.inc();
            r.push(S_OK);
            r.extend_from_slice(&self.state.encode());
        } else {
            r.push(S_NOT_LEADER);
            r.extend_from_slice(&self.leader_hint.to_le_bytes());
        }
        r
    }

    fn on_propose(&mut self, b: &[u8]) -> Vec<u8> {
        let mut r = vec![R_PROPOSE];
        if !self.is_leader {
            r.push(S_NOT_LEADER);
            r.extend_from_slice(&self.leader_hint.to_le_bytes());
            return r;
        }
        let Some((cmd, _)) = MetaCmd::decode(&b[1..]) else {
            r.push(S_REJECTED);
            return r;
        };
        // Distinguish "invalid" from "no majority reachable".
        let mut probe = self.state.clone();
        let before = probe.clone();
        probe.apply(&cmd);
        if probe == before {
            self.stats.rejects.inc();
            r.push(S_REJECTED);
            return r;
        }
        if self.propose(cmd) {
            r.push(S_OK);
            r.extend_from_slice(&self.state.encode());
        } else {
            r.push(S_UNAVAILABLE);
        }
        r
    }

    fn on_heartbeat(&mut self, b: &[u8]) -> Vec<u8> {
        let mut r = vec![R_HEARTBEAT_ACK];
        if !self.is_leader {
            r.push(S_NOT_LEADER);
            r.extend_from_slice(&self.leader_hint.to_le_bytes());
            return r;
        }
        let node = b
            .get(1..5)
            .map(|s| u32::from_le_bytes(s.try_into().unwrap()))
            .unwrap_or(u32::MAX) as usize;
        if node < self.data_nodes {
            self.stats.heartbeats.inc();
            self.last_seen[node] = sim::now();
            if !self.state.alive[node] {
                let cmd = MetaCmd::NodeUp(node as u32);
                if !self.has_pending(&cmd) {
                    self.propose(cmd);
                }
            }
        }
        r.push(S_OK);
        r
    }
}

/// Decoded body of an `Append`: the leader's snapshot plus every entry
/// above it, and its commit point.
struct AppendMsg {
    commit: usize,
    snap_base: usize,
    snap_last_term: u64,
    snap_state: MetaState,
    log: Vec<(u64, MetaCmd)>,
}

fn decode_append(b: &[u8]) -> Option<AppendMsg> {
    let commit = get_u64(b, 13)? as usize;
    let snap_base = get_u64(b, 21)? as usize;
    let snap_last_term = get_u64(b, 29)?;
    let snap_len = b
        .get(37..41)
        .map(|s| u32::from_le_bytes(s.try_into().unwrap()))? as usize;
    let snap_state = MetaState::decode(b.get(41..41 + snap_len)?)?;
    let mut off = 41 + snap_len;
    let n = get_u64(b, off)? as usize;
    off += 8;
    let mut log = Vec::with_capacity(n);
    for _ in 0..n {
        let term = get_u64(b, off)?;
        off += 8;
        let len = u16::from_le_bytes(b.get(off..off + 2)?.try_into().unwrap()) as usize;
        off += 2;
        let (cmd, used) = MetaCmd::decode(b.get(off..off + len)?)?;
        debug_assert_eq!(used, len);
        off += len;
        log.push((term, cmd));
    }
    Some(AppendMsg {
        commit,
        snap_base,
        snap_last_term,
        snap_state,
        log,
    })
}

// ---------------------------------------------------------------------
// Client side: a small leader-following RPC wrapper shared by node
// agents, the migration driver, and the cluster client.
// ---------------------------------------------------------------------

/// Outcome of a proposal as seen by a client.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProposeOutcome {
    /// Committed; the reply carries the post-apply state.
    Committed(MetaState),
    /// Leader-side validation rejected it (e.g. a migration is already in
    /// flight, or the destination is down).
    Rejected,
    /// No leader reachable / no majority within the deadline.
    Unavailable,
}

/// A connection to the metadata service that tracks the current leader.
pub struct MetaClient {
    fabric: Arc<Fabric>,
    local: Node,
    nodes: Vec<Node>,
    /// Cached (replica index, qp) of the presumed leader.
    conn: Option<(usize, ClientQp)>,
    /// Per-try reply deadline.
    rpc_timeout: Nanos,
}

impl MetaClient {
    /// A client of the service, issuing RPCs from `local`.
    pub fn new(fabric: &Arc<Fabric>, local: &Node, meta_nodes: &[Node]) -> MetaClient {
        MetaClient {
            fabric: Arc::clone(fabric),
            local: local.clone(),
            nodes: meta_nodes.to_vec(),
            conn: None,
            rpc_timeout: sim::micros(100),
        }
    }

    /// One RPC against the presumed leader; `Err(hint)` asks the caller
    /// to re-dial `hint` (or the next replica when `None`).
    fn try_rpc(&mut self, r: usize, req: &[u8]) -> Result<Vec<u8>, Option<usize>> {
        if self.conn.as_ref().map(|(i, _)| *i) != Some(r) {
            match self.fabric.connect(&self.local, &self.nodes[r]) {
                Ok(qp) => self.conn = Some((r, qp)),
                Err(_) => {
                    self.conn = None;
                    return Err(None);
                }
            }
        }
        let qp = &self.conn.as_ref().unwrap().1;
        let deadline = sim::now() + self.rpc_timeout;
        if qp.send(req.to_vec()).is_err() {
            self.conn = None;
            return Err(None);
        }
        match qp.recv_reply_deadline(deadline) {
            Ok(b) => Ok(b),
            Err(_) => {
                self.conn = None;
                Err(None)
            }
        }
    }

    /// Run `req` against the service, following `NotLeader` hints, until
    /// `deadline`. The closure maps a raw leader reply to `Some(T)` or
    /// `None` (= malformed / retry).
    fn leader_rpc<T>(
        &mut self,
        req: &[u8],
        deadline: Nanos,
        mut parse: impl FnMut(&[u8]) -> Option<LeaderReply<T>>,
    ) -> Option<T> {
        let mut r = self.conn.as_ref().map(|(i, _)| *i).unwrap_or(0);
        loop {
            if sim::now() >= deadline {
                return None;
            }
            match self.try_rpc(r, req) {
                Ok(b) => match parse(&b) {
                    Some(LeaderReply::Done(t)) => return Some(t),
                    Some(LeaderReply::NotLeader(hint)) => {
                        let hint = hint as usize;
                        r = if hint < self.nodes.len() && hint != r {
                            hint
                        } else {
                            (r + 1) % self.nodes.len()
                        };
                        self.conn = None;
                        sim::sleep(sim::micros(5));
                    }
                    None => {
                        r = (r + 1) % self.nodes.len();
                        self.conn = None;
                        sim::sleep(sim::micros(5));
                    }
                },
                Err(_) => {
                    r = (r + 1) % self.nodes.len();
                    sim::sleep(sim::micros(5));
                }
            }
        }
    }

    /// Fetch the committed control-plane state from the leader.
    pub fn get_map(&mut self, deadline: Nanos) -> Option<MetaState> {
        self.leader_rpc(&[M_GET_MAP], deadline, |b| {
            if b.first() != Some(&R_MAP) {
                return None;
            }
            match b.get(1) {
                Some(&S_OK) => MetaState::decode(&b[2..]).map(LeaderReply::Done),
                Some(&S_NOT_LEADER) => Some(LeaderReply::NotLeader(
                    b.get(2..6)
                        .map(|s| u32::from_le_bytes(s.try_into().unwrap()))
                        .unwrap_or(u32::MAX),
                )),
                _ => None,
            }
        })
    }

    /// Propose `cmd`; `Committed` carries the post-apply state.
    pub fn propose(&mut self, cmd: &MetaCmd, deadline: Nanos) -> ProposeOutcome {
        let mut req = vec![M_PROPOSE];
        req.extend_from_slice(&cmd.encode());
        let out = self.leader_rpc(&req, deadline, |b| {
            if b.first() != Some(&R_PROPOSE) {
                return None;
            }
            match b.get(1) {
                Some(&S_OK) => MetaState::decode(&b[2..])
                    .map(|s| LeaderReply::Done(ProposeOutcome::Committed(s))),
                Some(&S_REJECTED) => Some(LeaderReply::Done(ProposeOutcome::Rejected)),
                Some(&S_UNAVAILABLE) => Some(LeaderReply::Done(ProposeOutcome::Unavailable)),
                Some(&S_NOT_LEADER) => Some(LeaderReply::NotLeader(
                    b.get(2..6)
                        .map(|s| u32::from_le_bytes(s.try_into().unwrap()))
                        .unwrap_or(u32::MAX),
                )),
                _ => None,
            }
        });
        out.unwrap_or(ProposeOutcome::Unavailable)
    }

    /// One heartbeat for data node `node`. `false` when no leader
    /// acknowledged (caller just tries again next period).
    pub fn heartbeat(&mut self, node: usize, deadline: Nanos) -> bool {
        let mut req = vec![M_HEARTBEAT];
        req.extend_from_slice(&(node as u32).to_le_bytes());
        self.leader_rpc(&req, deadline, |b| {
            if b.first() != Some(&R_HEARTBEAT_ACK) {
                return None;
            }
            match b.get(1) {
                Some(&S_OK) => Some(LeaderReply::Done(())),
                Some(&S_NOT_LEADER) => Some(LeaderReply::NotLeader(
                    b.get(2..6)
                        .map(|s| u32::from_le_bytes(s.try_into().unwrap()))
                        .unwrap_or(u32::MAX),
                )),
                _ => None,
            }
        })
        .is_some()
    }
}

enum LeaderReply<T> {
    Done(T),
    NotLeader(u32),
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cmd_encoding_roundtrips() {
        let cmds = [
            MetaCmd::NodeDown(3),
            MetaCmd::NodeUp(0),
            MetaCmd::MigrateStart { shard: 7, to: 2 },
            MetaCmd::MigrateCommit { shard: 7 },
            MetaCmd::MigrateAbort { shard: 1 },
        ];
        for c in &cmds {
            let b = c.encode();
            let (d, used) = MetaCmd::decode(&b).unwrap();
            assert_eq!(&d, c);
            assert_eq!(used, b.len());
        }
    }

    #[test]
    fn state_encoding_roundtrips() {
        let mut s = MetaState::initial(8, 4);
        s.alive[2] = false;
        s.migrating = Some((5, 3));
        let b = s.encode();
        assert_eq!(MetaState::decode(&b).unwrap(), s);
    }

    #[test]
    fn apply_is_total_and_guards_invariants() {
        let mut s = MetaState::initial(4, 3);
        // Start to a dead node: rejected (no-op).
        s.alive[2] = false;
        s.apply(&MetaCmd::MigrateStart { shard: 0, to: 2 });
        assert_eq!(s.migrating, None);
        s.alive[2] = true;
        // Start to self: no-op (shard 1 lives on node 1 initially).
        s.apply(&MetaCmd::MigrateStart { shard: 1, to: 1 });
        assert_eq!(s.migrating, None);
        // Valid start, then a second start is refused.
        s.apply(&MetaCmd::MigrateStart { shard: 0, to: 2 });
        assert_eq!(s.migrating, Some((0, 2)));
        s.apply(&MetaCmd::MigrateStart { shard: 3, to: 1 });
        assert_eq!(s.migrating, Some((0, 2)));
        // Commit flips ownership and bumps the epoch.
        let e0 = s.placement.epoch;
        s.apply(&MetaCmd::MigrateCommit { shard: 0 });
        assert_eq!(s.placement.node_of_shard(0), 2);
        assert_eq!(s.placement.epoch, e0 + 1);
        assert_eq!(s.migrating, None);
        // Death of a migration endpoint aborts the migration.
        s.apply(&MetaCmd::MigrateStart { shard: 3, to: 2 });
        s.apply(&MetaCmd::NodeDown(2));
        assert_eq!(s.migrating, None);
        assert!(!s.alive[2]);
        s.apply(&MetaCmd::NodeUp(2));
        assert!(s.alive[2]);
    }
}
