//! The placement map: the one routing implementation.
//!
//! Routing happens in two layers that this module keeps separate on
//! purpose:
//!
//! * **key → shard** is *static*: [`key_shard`] hashes the key through a
//!   second splitmix64 round (decorrelated from the in-shard bucket
//!   [`fingerprint`](crate::hashtable::fingerprint)), and the shard count
//!   never changes over the life of a store. Every legacy single-node
//!   path ([`crate::shard::shard_of`], the replicated sharded client, the
//!   routed transaction drivers) delegates here, so a key maps to the
//!   same shard on every client, every connection, and every run.
//! * **shard → node** is *dynamic*: a [`PlacementMap`] assigns each shard
//!   to a cluster node and carries an **epoch** that the replicated
//!   metadata service bumps on every reassignment (migration flip,
//!   failover). Clients cache the map tagged with its epoch and learn of
//!   staleness through `WrongEpoch` rejections.
//!
//! The legacy single-node topologies are the degenerate map with every
//! shard on node 0 at epoch 0 — they never see an epoch bump, which is
//! what keeps their replay byte-identical across this refactor.

use crate::hashtable::fingerprint;

/// Deterministic, total key → shard routing: `hash(key) % shards`.
///
/// The hash re-mixes the table fingerprint through a second splitmix64
/// round with an odd salt, decorrelating the shard choice from the bucket
/// choice inside each shard.
pub fn key_shard(key: &[u8], shards: usize) -> usize {
    assert!(shards >= 1, "a store has at least one shard");
    if shards == 1 {
        return 0;
    }
    let mut z = fingerprint(key) ^ 0xA076_1D64_78BD_642F;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    (z % shards as u64) as usize
}

/// An epoch-tagged shard → node assignment. Owned by the metadata
/// service; clients hold snapshots and treat the epoch as the cache tag.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlacementMap {
    /// Bumped by the metadata service on every reassignment. A server
    /// whose placement is older than a client's (or vice versa) answers
    /// `WrongEpoch`, which is the retarget signal.
    pub epoch: u64,
    /// `assignment[shard]` = index of the cluster node hosting it.
    pub assignment: Vec<u32>,
}

impl PlacementMap {
    /// The initial deterministic placement: shard `g` on node `g % nodes`
    /// (round-robin), epoch 0.
    pub fn initial(shards: usize, nodes: usize) -> PlacementMap {
        assert!(shards >= 1 && nodes >= 1);
        PlacementMap {
            epoch: 0,
            assignment: (0..shards).map(|g| (g % nodes) as u32).collect(),
        }
    }

    /// The degenerate map the legacy single-node topologies live on:
    /// every shard on node 0, epoch 0.
    pub fn single_node(shards: usize) -> PlacementMap {
        PlacementMap::initial(shards, 1)
    }

    /// Number of shards (fixed for the life of the store).
    pub fn shards(&self) -> usize {
        self.assignment.len()
    }

    /// The shard owning `key` (static; see [`key_shard`]).
    pub fn shard_of(&self, key: &[u8]) -> usize {
        key_shard(key, self.assignment.len())
    }

    /// The node hosting `shard` under this map.
    pub fn node_of_shard(&self, shard: usize) -> usize {
        self.assignment[shard] as usize
    }

    /// The node hosting `key` under this map.
    pub fn node_of(&self, key: &[u8]) -> usize {
        self.node_of_shard(self.shard_of(key))
    }

    /// Reassign `shard` to `node` and bump the epoch (metadata-service
    /// apply path for migration flips and failovers).
    pub fn reassign(&mut self, shard: usize, node: usize) {
        self.assignment[shard] = node as u32;
        self.epoch += 1;
    }

    /// Wire encoding: `epoch | shards | assignment...` (u64 LE each slot
    /// padded to u32). Carried in metadata-service replies.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(12 + 4 * self.assignment.len());
        out.extend_from_slice(&self.epoch.to_le_bytes());
        out.extend_from_slice(&(self.assignment.len() as u32).to_le_bytes());
        for a in &self.assignment {
            out.extend_from_slice(&a.to_le_bytes());
        }
        out
    }

    /// Decode the [`encode`](Self::encode) form. `None` on malformed or
    /// truncated input.
    pub fn decode(buf: &[u8]) -> Option<PlacementMap> {
        if buf.len() < 12 {
            return None;
        }
        let epoch = u64::from_le_bytes(buf[0..8].try_into().ok()?);
        let n = u32::from_le_bytes(buf[8..12].try_into().ok()?) as usize;
        // Trailing bytes are allowed: containing encodings (e.g.
        // `MetaState`) lay further fields after the map.
        if n == 0 || buf.len() < 12 + 4 * n {
            return None;
        }
        let assignment = (0..n)
            .map(|i| u32::from_le_bytes(buf[12 + 4 * i..16 + 4 * i].try_into().unwrap()))
            .collect();
        Some(PlacementMap { epoch, assignment })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn initial_round_robin() {
        let m = PlacementMap::initial(8, 3);
        assert_eq!(m.epoch, 0);
        assert_eq!(m.assignment, vec![0, 1, 2, 0, 1, 2, 0, 1]);
    }

    #[test]
    fn reassign_bumps_epoch() {
        let mut m = PlacementMap::initial(4, 2);
        m.reassign(2, 1);
        assert_eq!(m.epoch, 1);
        assert_eq!(m.node_of_shard(2), 1);
    }

    #[test]
    fn encode_roundtrip() {
        let mut m = PlacementMap::initial(5, 4);
        m.reassign(3, 0);
        m.reassign(0, 2);
        assert_eq!(PlacementMap::decode(&m.encode()), Some(m));
        assert_eq!(PlacementMap::decode(&[]), None);
        assert_eq!(PlacementMap::decode(&[0; 11]), None);
    }

    #[test]
    fn single_node_is_degenerate() {
        let m = PlacementMap::single_node(6);
        for g in 0..6 {
            assert_eq!(m.node_of_shard(g), 0);
        }
        assert_eq!(m.epoch, 0);
    }
}
