//! The eFactory client: PUT with asynchronous durability, and the hybrid
//! read scheme for GET (paper §4.3, Figures 5 and 6).
//!
//! * **PUT** — one SEND-based RPC to allocate (the server persists the
//!   object metadata and links the hash entry), then a one-sided RDMA write
//!   of the value. The client does *not* wait for durability; the server's
//!   background process provides it asynchronously.
//! * **GET (hybrid)** — optimistically pure one-sided: read the hash-entry
//!   probe window, locate the entry, read the whole object, and check the
//!   durability flag embedded in it. If the flag shows the object is not
//!   yet fully durable (or any validation fails), fall back to the
//!   RPC+RDMA read scheme, where the server guarantees durability before
//!   exposing the offset.
//! * During **log cleaning** the server broadcasts `CleanStart`/`CleanEnd`
//!   events and the client pins itself to the RPC+RDMA scheme (§4.4).

use std::cell::Cell;
use std::sync::Arc;

use efactory_checksum::crc32c;
use efactory_obs::{Obs, Subsystem};
use efactory_rnic::{ClientQp, Fabric, Node};

use crate::hashtable::{find_in_window, fingerprint, BUCKET_LEN, NPROBE};
use crate::layout::{self, flags, ObjHeader};
use crate::protocol::{Event, Request, Response, Status, StoreError};
use crate::server::StoreDesc;

/// The uniform client interface the experiment harness drives. All six
/// systems of the paper's comparison (eFactory and the five baselines)
/// implement it, so workloads are system-agnostic.
pub trait RemoteKv {
    /// Store `value` under `key` with whatever durability contract the
    /// system provides.
    fn kv_put(&self, key: &[u8], value: &[u8]) -> Result<(), StoreError>;
    /// Read `key`; `Ok(None)` means absent.
    fn kv_get(&self, key: &[u8]) -> Result<Option<Vec<u8>>, StoreError>;
}

/// Client knobs.
#[derive(Debug, Clone)]
pub struct ClientConfig {
    /// Use the hybrid read scheme; `false` gives "eFactory w/o hr" (always
    /// RPC+RDMA read), the factor-analysis configuration of §6.1.
    pub hybrid_read: bool,
    /// Bounded retries for the RPC read path (validation hiccups).
    pub max_rpc_retries: usize,
    /// Observability context; the harness passes the same one the server
    /// uses so client and server phases land in a single trace.
    pub obs: Obs,
}

impl Default for ClientConfig {
    fn default() -> Self {
        ClientConfig {
            hybrid_read: true,
            max_rpc_retries: 3,
            obs: Obs::new(),
        }
    }
}

/// Which path served a GET (exposed for tests and the factor analysis).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GetOutcome {
    /// Pure RDMA read path succeeded (durability flag was set).
    Pure,
    /// Fell back to the RPC+RDMA read scheme.
    Fallback,
    /// RPC+RDMA was used directly (hybrid disabled or cleaning active).
    RpcOnly,
}

/// Per-client counters.
#[derive(Debug, Default)]
pub struct ClientStats {
    /// GETs served by the pure one-sided path.
    pub pure_hits: Cell<u64>,
    /// GETs that started pure and fell back to RPC.
    pub fallbacks: Cell<u64>,
    /// GETs that went straight to RPC (cleaning / hybrid disabled).
    pub rpc_only: Cell<u64>,
    /// PUTs completed.
    pub puts: Cell<u64>,
}

/// A connected eFactory client. Not `Sync`: one client per simulated
/// process, like one QP per thread in the paper's testbed.
pub struct Client {
    qp: ClientQp,
    desc: StoreDesc,
    cfg: ClientConfig,
    /// Set between CleanStart and CleanEnd notifications.
    cleaning: Cell<bool>,
    stats: ClientStats,
}

impl Client {
    /// Connect `local` to the server on `server_node` described by `desc`.
    /// Must run inside a simulated process.
    pub fn connect(
        fabric: &Arc<Fabric>,
        local: &Node,
        server_node: &Node,
        desc: StoreDesc,
        cfg: ClientConfig,
    ) -> Result<Client, StoreError> {
        let qp = fabric.connect(local, server_node)?;
        Ok(Client {
            qp,
            desc,
            cfg,
            cleaning: Cell::new(false),
            stats: ClientStats::default(),
        })
    }

    /// Counters.
    pub fn stats(&self) -> &ClientStats {
        &self.stats
    }

    /// Drain pending server notifications (cleaning state).
    fn poll_events(&self) {
        while let Some(ev) = self.qp.try_event() {
            match Event::decode(&ev) {
                Some(Event::CleanStart) => self.cleaning.set(true),
                Some(Event::CleanEnd) => self.cleaning.set(false),
                None => {}
            }
        }
    }

    fn rpc(&self, req: &Request) -> Result<Response, StoreError> {
        let raw = self.qp.rpc(req.encode())?;
        Response::decode(&raw).ok_or(StoreError::Protocol)
    }

    /// Store `value` under `key`. Returns when the RDMA write is acked —
    /// durability is asynchronous (the paper's client-active scheme).
    pub fn put(&self, key: &[u8], value: &[u8]) -> Result<(), StoreError> {
        self.poll_events();
        let req = Request::Put {
            key: key.to_vec(),
            vlen: value.len() as u32,
            crc: crc32c(value),
        };
        match self.rpc(&req)? {
            Response::Put {
                status: Status::Ok,
                value_off,
                ..
            } => {
                if !value.is_empty() {
                    let mut sp = self.cfg.obs.tracer.span(Subsystem::Client, "rdma_write");
                    sp.arg("vlen", value.len() as u64);
                    self.qp
                        .rdma_write(&self.desc.mr, value_off as usize, value.to_vec())?;
                }
                self.stats.puts.set(self.stats.puts.get() + 1);
                Ok(())
            }
            Response::Put { status, .. } => Err(StoreError::Status(status)),
            _ => Err(StoreError::Protocol),
        }
    }

    /// Delete `key` (tombstone).
    pub fn del(&self, key: &[u8]) -> Result<(), StoreError> {
        self.poll_events();
        match self.rpc(&Request::Del { key: key.to_vec() })? {
            Response::Ack { status: Status::Ok } => Ok(()),
            Response::Ack { status } => Err(StoreError::Status(status)),
            _ => Err(StoreError::Protocol),
        }
    }

    /// Read `key`. `Ok(None)` means not found (or deleted).
    pub fn get(&self, key: &[u8]) -> Result<Option<Vec<u8>>, StoreError> {
        Ok(self.get_traced(key)?.0)
    }

    /// Like [`get`](Self::get), also reporting which path served the read.
    pub fn get_traced(&self, key: &[u8]) -> Result<(Option<Vec<u8>>, GetOutcome), StoreError> {
        self.poll_events();
        if self.cfg.hybrid_read && !self.cleaning.get() {
            // Step 1-4 of Figure 6: the optimistic pure RDMA read path.
            let pure = {
                let _sp = self.cfg.obs.tracer.span(Subsystem::Client, "pure_read");
                self.try_pure_get(key)?
            };
            match pure {
                PureOutcome::Hit(v) => {
                    self.stats.pure_hits.set(self.stats.pure_hits.get() + 1);
                    return Ok((v, GetOutcome::Pure));
                }
                PureOutcome::NotFound => {
                    self.stats.pure_hits.set(self.stats.pure_hits.get() + 1);
                    return Ok((None, GetOutcome::Pure));
                }
                PureOutcome::Fallback => {
                    self.stats.fallbacks.set(self.stats.fallbacks.get() + 1);
                    let _sp = self.cfg.obs.tracer.span(Subsystem::Client, "fallback_rpc");
                    let v = self.rpc_get(key)?;
                    return Ok((v, GetOutcome::Fallback));
                }
            }
        }
        self.stats.rpc_only.set(self.stats.rpc_only.get() + 1);
        let _sp = self.cfg.obs.tracer.span(Subsystem::Client, "rpc_read");
        let v = self.rpc_get(key)?;
        Ok((v, GetOutcome::RpcOnly))
    }

    fn try_pure_get(&self, key: &[u8]) -> Result<PureOutcome, StoreError> {
        let ht = self.desc.layout.hashtable();
        let fp = fingerprint(key);
        let home = ht.home(fp);
        // Step 2: fetch the probe window with one RDMA read.
        let window = self
            .qp
            .rdma_read(&self.desc.mr, ht.entry_off(home), NPROBE * BUCKET_LEN)?;
        let Some((_, entry)) = find_in_window(&window, fp) else {
            // Fingerprint absent: the key was never inserted. (Entries are
            // only removed by cleaning, during which we don't take this
            // path.)
            return Ok(PureOutcome::NotFound);
        };
        if entry.ctl.new_valid() {
            // Cleaning is (or just was) rearranging this key; be safe.
            return Ok(PureOutcome::Fallback);
        }
        let off = entry.current();
        if off == 0 {
            return Ok(PureOutcome::Fallback);
        }
        // Step 3: fetch the object (header + key + value) with one read.
        let size = layout::object_size(entry.klen as usize, entry.vlen as usize);
        let obj = self.qp.rdma_read(&self.desc.mr, off as usize, size)?;
        let Some(hdr) = ObjHeader::decode(&obj) else {
            return Ok(PureOutcome::Fallback);
        };
        // Step 4: validations + the durability flag check.
        if hdr.klen != entry.klen
            || hdr.vlen != entry.vlen
            || hdr.klen as usize != key.len()
            || !hdr.has(flags::VALID)
            || !hdr.has(flags::DURABLE)
        {
            return Ok(PureOutcome::Fallback);
        }
        let key_start = hdr.key_off();
        if &obj[key_start..key_start + key.len()] != key {
            return Ok(PureOutcome::Fallback);
        }
        if hdr.has(flags::TOMBSTONE) {
            return Ok(PureOutcome::NotFound);
        }
        let v_start = hdr.value_off();
        Ok(PureOutcome::Hit(Some(
            obj[v_start..v_start + hdr.vlen as usize].to_vec(),
        )))
    }

    /// Steps 5–9 of Figure 6: RPC to the server (which guarantees
    /// durability before answering), then a one-sided read of the object.
    fn rpc_get(&self, key: &[u8]) -> Result<Option<Vec<u8>>, StoreError> {
        for _ in 0..=self.cfg.max_rpc_retries {
            let resp = self.rpc(&Request::Get { key: key.to_vec() })?;
            let Response::Get {
                status,
                obj_off,
                klen,
                vlen,
            } = resp
            else {
                return Err(StoreError::Protocol);
            };
            match status {
                Status::NotFound => return Ok(None),
                Status::Busy => continue,
                Status::Ok => {}
                s => return Err(StoreError::Status(s)),
            }
            let size = layout::object_size(klen as usize, vlen as usize);
            let obj = self.qp.rdma_read(&self.desc.mr, obj_off as usize, size)?;
            let Some(hdr) = ObjHeader::decode(&obj) else {
                continue;
            };
            // The server persisted before replying. The returned version's
            // key must match, but it may be an *older* version with a
            // different value length; anything inconsistent is a race with
            // cleaning — retry through the server.
            if !hdr.has(flags::DURABLE)
                || hdr.klen != klen
                || hdr.vlen != vlen
                || hdr.klen as usize != key.len()
            {
                continue;
            }
            let key_start = hdr.key_off();
            if &obj[key_start..key_start + key.len()] != key {
                continue;
            }
            if hdr.has(flags::TOMBSTONE) {
                return Ok(None);
            }
            let v_start = hdr.value_off();
            return Ok(Some(obj[v_start..v_start + hdr.vlen as usize].to_vec()));
        }
        Err(StoreError::Protocol)
    }
}

enum PureOutcome {
    Hit(Option<Vec<u8>>),
    NotFound,
    Fallback,
}

impl RemoteKv for Client {
    fn kv_put(&self, key: &[u8], value: &[u8]) -> Result<(), StoreError> {
        self.put(key, value)
    }
    fn kv_get(&self, key: &[u8]) -> Result<Option<Vec<u8>>, StoreError> {
        self.get(key)
    }
}
