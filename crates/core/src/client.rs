//! The eFactory client: PUT with asynchronous durability, and the hybrid
//! read scheme for GET (paper §4.3, Figures 5 and 6).
//!
//! * **PUT** — one SEND-based RPC to allocate (the server persists the
//!   object metadata and links the hash entry), then a one-sided RDMA write
//!   of the value. The client does *not* wait for durability; the server's
//!   background process provides it asynchronously.
//! * **GET (hybrid)** — optimistically pure one-sided: read the hash-entry
//!   probe window, locate the entry, read the whole object, and check the
//!   durability flag embedded in it. If the flag shows the object is not
//!   yet fully durable (or any validation fails), fall back to the
//!   RPC+RDMA read scheme, where the server guarantees durability before
//!   exposing the offset.
//! * During **log cleaning** the server broadcasts `CleanStart`/`CleanEnd`
//!   events and the client pins itself to the RPC+RDMA scheme (§4.4).
//!
//! **End-to-end retry (chaos hardening).** The fabric may drop, duplicate,
//! or delay messages (see `efactory_rnic::FaultPlan`). Every SEND-based RPC
//! therefore carries a monotonic per-client request id and runs under a
//! per-attempt deadline with bounded, deterministic exponential backoff
//! (virtual time). Retries of one logical operation reuse the *same* id, so
//! the server can execute at most once and resend the recorded reply —
//! exactly-once effects over an at-least-once fabric. Stale replies (from
//! an attempt whose deadline already fired) are discarded by id. One-sided
//! reads additionally verify the value CRC embedded in the object header:
//! a mismatch (mid-clean or bit-rotted object) degrades to the RPC path
//! instead of returning corrupt data.

use std::cell::{Cell, RefCell};
use std::collections::HashMap;
use std::sync::Arc;

use efactory_checksum::crc32c;
use efactory_obs::trace::current_op;
use efactory_obs::{Counter, Obs, OpScope, SpanGuard, Subsystem};
use efactory_rnic::{ClientQp, Fabric, Node, QpError};
use efactory_sim as sim;
use efactory_sim::Nanos;

use crate::hashtable::{find_in_window, fingerprint, BUCKET_LEN, NPROBE};
use crate::layout::{self, flags, ObjHeader};
use crate::protocol::{Event, Request, Response, Status, StoreError};
use crate::server::StoreDesc;
use crate::txn::{self, SnapOutcome, TxnKv, TxnShard, TxnSnapshot};

/// The uniform client interface the experiment harness drives. All six
/// systems of the paper's comparison (eFactory and the five baselines)
/// implement it, so workloads are system-agnostic.
pub trait RemoteKv {
    /// Store `value` under `key` with whatever durability contract the
    /// system provides.
    fn kv_put(&self, key: &[u8], value: &[u8]) -> Result<(), StoreError>;
    /// Read `key`; `Ok(None)` means absent.
    fn kv_get(&self, key: &[u8]) -> Result<Option<Vec<u8>>, StoreError>;
}

/// Client knobs.
#[derive(Debug, Clone)]
pub struct ClientConfig {
    /// Use the hybrid read scheme; `false` gives "eFactory w/o hr" (always
    /// RPC+RDMA read), the factor-analysis configuration of §6.1.
    pub hybrid_read: bool,
    /// Bounded retries for the RPC read path (validation hiccups).
    pub max_rpc_retries: usize,
    /// Send attempts per RPC (first try + retries). Retries reuse the same
    /// request id, so the server dedups re-executions. With the default
    /// per-attempt deadline, 6 attempts ride out ~5% message loss with a
    /// residual failure probability around 1e-6 per operation.
    pub rpc_attempts: usize,
    /// Per-attempt reply deadline (virtual time). Service times are
    /// microsecond-scale, so 1 ms comfortably covers a loaded server while
    /// keeping loss recovery fast.
    pub rpc_deadline: Nanos,
    /// Initial retry backoff, doubled per attempt (deterministic
    /// exponential backoff in virtual time; no randomized jitter, so runs
    /// replay byte-identically).
    pub retry_backoff: Nanos,
    /// Bounded retries for an idempotent one-sided write that timed out
    /// (transient partition ride-out).
    pub op_retries: usize,
    /// Initial backoff for those one-sided retries, doubled per attempt.
    pub op_backoff: Nanos,
    /// Client-side bound on the server's verifier timeout: when the
    /// allocation-RPC-to-write-ack window of a PUT reaches this much
    /// virtual time, the client re-reads the version's flag word to detect
    /// a verifier invalidation before reporting success. Measured from
    /// *before* the allocation request is sent, so it upper-bounds the
    /// server-side time since allocation; must not exceed the server's
    /// `verify_timeout` (the default is half of the server default).
    pub verify_grace: Nanos,
    /// Verify the value CRC on one-sided GET paths; a mismatch falls back
    /// to the RPC path (which re-validates server-side) instead of
    /// returning silently corrupted bytes.
    pub verify_value_crc: bool,
    /// Keep a client-side **location cache** (key → object offset +
    /// lengths + version floor) so repeat GETs skip the bucket-probe RDMA
    /// read and go straight to the optimistic object read. Entries are
    /// validated by the same embedded durability-flag/CRC checks as the
    /// pure path — any mismatch falls through to the normal probe (and on
    /// a *structural* mismatch evicts the entry) — and the whole cache is
    /// flushed on `CleanStart`/`CleanEnd` since cleaning relocates
    /// objects. The cache trades strict freshness for latency: a cached
    /// read may return the last version *this client* located even after
    /// another client overwrote the key (reads stay monotonic per client;
    /// the next probe or RPC read refreshes the entry).
    pub loc_cache: bool,
    /// Entry cap for the location cache; at capacity, new keys are simply
    /// not cached (deterministic, no eviction order to replay).
    pub loc_cache_cap: usize,
    /// Shard index this client routes to; recorded on every op's root
    /// trace span so the latency decomposition can attribute per shard.
    pub shard: u32,
    /// Observability context; the harness passes the same one the server
    /// uses so client and server phases land in a single trace.
    pub obs: Obs,
}

impl Default for ClientConfig {
    fn default() -> Self {
        ClientConfig {
            hybrid_read: true,
            max_rpc_retries: 3,
            rpc_attempts: 6,
            rpc_deadline: efactory_sim::millis(1),
            retry_backoff: efactory_sim::micros(10),
            op_retries: 5,
            op_backoff: efactory_sim::micros(100),
            verify_grace: efactory_sim::micros(100),
            verify_value_crc: true,
            loc_cache: false,
            loc_cache_cap: 65_536,
            shard: 0,
            obs: Obs::new(),
        }
    }
}

/// Which path served a GET (exposed for tests and the factor analysis).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GetOutcome {
    /// Pure RDMA read path succeeded (durability flag was set).
    Pure,
    /// Fell back to the RPC+RDMA read scheme.
    Fallback,
    /// RPC+RDMA was used directly (hybrid disabled or cleaning active).
    RpcOnly,
}

/// Per-client counters.
#[derive(Debug, Default)]
pub struct ClientStats {
    /// GETs served by the pure one-sided path.
    pub pure_hits: Cell<u64>,
    /// GETs that started pure and fell back to RPC.
    pub fallbacks: Cell<u64>,
    /// GETs that went straight to RPC (cleaning / hybrid disabled).
    pub rpc_only: Cell<u64>,
    /// PUTs completed.
    pub puts: Cell<u64>,
    /// RPC send attempts beyond the first (lost request/reply ride-out).
    pub rpc_retries: Cell<u64>,
    /// One-sided verb retries after a timeout (transient-partition
    /// ride-out of the value write / liveness re-read) — a different
    /// failure signal than `rpc_retries`, kept separate.
    pub op_retries: Cell<u64>,
    /// GET retries through the server (validation/CRC mismatch re-reads).
    pub get_retries: Cell<u64>,
    /// PUTs re-issued as fresh logical requests because the allocated
    /// version was invalidated while the allocation reply was being
    /// retried (verifier timeout raced a lossy fabric).
    pub put_reissues: Cell<u64>,
    /// GETs served straight from a location-cache entry (probe skipped).
    pub loc_hits: Cell<u64>,
    /// Location-cache lookups that missed or failed validation and fell
    /// through to the normal probe.
    pub loc_misses: Cell<u64>,
    /// Location-cache entries written (new or refreshed).
    pub loc_fills: Cell<u64>,
    /// Location-cache entries evicted on a structural mismatch (stale
    /// offset after cleaning/invalidation, CRC rot, wrong key bytes).
    pub loc_invalidations: Cell<u64>,
}

/// A connected eFactory client. Not `Sync`: one client per simulated
/// process, like one QP per thread in the paper's testbed.
pub struct Client {
    qp: ClientQp,
    desc: StoreDesc,
    cfg: ClientConfig,
    /// Set between CleanStart and CleanEnd notifications.
    cleaning: Cell<bool>,
    /// Monotonic request-id source; each logical RPC takes the next id and
    /// reuses it across its retry attempts.
    next_req_id: Cell<u64>,
    stats: ClientStats,
    /// Registry counter mirroring [`ClientStats::get_retries`] (shared by
    /// name across all clients of one run).
    get_retry_ctr: Counter,
    /// Registry counter mirroring [`ClientStats::rpc_retries`].
    rpc_retry_ctr: Counter,
    /// Registry counter mirroring [`ClientStats::op_retries`].
    op_retry_ctr: Counter,
    /// Registry counter mirroring [`ClientStats::put_reissues`].
    put_reissue_ctr: Counter,
    /// Registry counters mirroring the GET-path outcome fields and
    /// [`ClientStats::puts`], so the run report covers every client
    /// counter without reaching into per-client stats.
    pure_hit_ctr: Counter,
    fallback_ctr: Counter,
    rpc_only_ctr: Counter,
    put_ctr: Counter,
    /// Location cache: key → last located object version. Only consulted
    /// when `cfg.loc_cache` is set; flushed whenever cleaning starts or
    /// ends (cleaning is the only thing that *moves* objects).
    loc_cache: RefCell<HashMap<Vec<u8>, LocEntry>>,
    /// Current placement epoch (cluster runs; 0 forever on single-node
    /// topologies). Entries stamped with an older epoch are evicted on
    /// lookup instead of dereferenced — see [`LocEntry::epoch`].
    placement_epoch: Cell<u64>,
    /// Registry counters mirroring the `loc_*` fields of [`ClientStats`].
    loc_hit_ctr: Counter,
    loc_miss_ctr: Counter,
    loc_fill_ctr: Counter,
    loc_inval_ctr: Counter,
    /// Monotonic transaction-id source. Distinct from `next_req_id`: every
    /// *attempt* of a transaction gets a fresh txn id (a retried commit is
    /// a new transaction), while the RPCs inside one attempt reuse their
    /// request ids across fabric retries as usual.
    next_txn_id: Cell<u64>,
    /// Registry counters for the transactional surface. `pub(crate)` so
    /// the sharded/replicated wrappers count their own logical commits.
    pub(crate) txn_commit_ctr: Counter,
    pub(crate) txn_conflict_ctr: Counter,
    pub(crate) snap_capture_ctr: Counter,
    pub(crate) snap_get_ctr: Counter,
    pub(crate) snap_retry_ctr: Counter,
}

/// One location-cache entry: where this client last found a key's object,
/// and the minimum version sequence a cached read may accept (guards
/// against a recycled offset presenting an older-but-well-formed version
/// of the same key).
#[derive(Clone, Copy, Debug)]
struct LocEntry {
    off: u64,
    klen: u16,
    vlen: u32,
    min_seq: u32,
    /// Placement epoch the entry was filled under. A shard move bumps the
    /// client's epoch, so every pre-move offset — which would dereference
    /// the **old node's** pool — fails the tag check and is evicted.
    epoch: u64,
}

/// What a cached one-sided read produced.
enum CachedOutcome {
    /// Entry validated; value (or tombstone ⇒ `None`) served.
    Hit(Option<Vec<u8>>),
    /// No entry, or the entry failed validation — take the normal probe.
    Miss,
}

/// RAII context for one logical client operation: owns the root `"op"`
/// trace span and the thread's op-id attribution scope. When an outer
/// scope already owns the op (the pipelined client measures its own
/// submit→completion window), the context records an `"exec"` child span
/// instead of a second root.
pub(crate) struct OpCtx {
    root: Option<SpanGuard>,
    _scope: Option<OpScope>,
}

impl OpCtx {
    /// Attach the op's observed retry count to the root span (set just
    /// before the context drops and the span records).
    pub(crate) fn set_retries(&mut self, retries: u64) {
        if let Some(sp) = &mut self.root {
            sp.arg("retries", retries);
        }
    }

    /// Attach an arbitrary arg to the root span (e.g. the transaction's
    /// commit timestamp, joining the op to the server's txn spans).
    pub(crate) fn arg(&mut self, key: &'static str, value: u64) {
        if let Some(sp) = &mut self.root {
            sp.arg(key, value);
        }
    }
}

impl Client {
    /// Connect `local` to the server on `server_node` described by `desc`.
    /// Must run inside a simulated process.
    pub fn connect(
        fabric: &Arc<Fabric>,
        local: &Node,
        server_node: &Node,
        desc: StoreDesc,
        cfg: ClientConfig,
    ) -> Result<Client, StoreError> {
        let qp = fabric.connect(local, server_node)?;
        let get_retry_ctr = cfg.obs.registry.counter("client.get_retry");
        let rpc_retry_ctr = cfg.obs.registry.counter("client.rpc_retry");
        let op_retry_ctr = cfg.obs.registry.counter("client.op_retry");
        let put_reissue_ctr = cfg.obs.registry.counter("client.put_reissue");
        let pure_hit_ctr = cfg.obs.registry.counter("client.pure_hits");
        let fallback_ctr = cfg.obs.registry.counter("client.fallbacks");
        let rpc_only_ctr = cfg.obs.registry.counter("client.rpc_only");
        let put_ctr = cfg.obs.registry.counter("client.puts");
        let loc_hit_ctr = cfg.obs.registry.counter("client.loc_cache.hits");
        let loc_miss_ctr = cfg.obs.registry.counter("client.loc_cache.misses");
        let loc_fill_ctr = cfg.obs.registry.counter("client.loc_cache.fills");
        let loc_inval_ctr = cfg.obs.registry.counter("client.loc_cache.invalidations");
        let txn_commit_ctr = cfg.obs.registry.counter("client.txn.commits");
        let txn_conflict_ctr = cfg.obs.registry.counter("client.txn.conflicts");
        let snap_capture_ctr = cfg.obs.registry.counter("client.txn.snap_captures");
        let snap_get_ctr = cfg.obs.registry.counter("client.txn.snap_gets");
        let snap_retry_ctr = cfg.obs.registry.counter("client.txn.snap_retries");
        Ok(Client {
            qp,
            desc,
            cfg,
            cleaning: Cell::new(false),
            next_req_id: Cell::new(1),
            stats: ClientStats::default(),
            get_retry_ctr,
            rpc_retry_ctr,
            op_retry_ctr,
            put_reissue_ctr,
            pure_hit_ctr,
            fallback_ctr,
            rpc_only_ctr,
            put_ctr,
            loc_cache: RefCell::new(HashMap::new()),
            placement_epoch: Cell::new(0),
            loc_hit_ctr,
            loc_miss_ctr,
            loc_fill_ctr,
            loc_inval_ctr,
            next_txn_id: Cell::new(1),
            txn_commit_ctr,
            txn_conflict_ctr,
            snap_capture_ctr,
            snap_get_ctr,
            snap_retry_ctr,
        })
    }

    /// Counters.
    pub fn stats(&self) -> &ClientStats {
        &self.stats
    }

    /// Open the per-op attribution context. `kind`: 0 = GET, 1 = PUT,
    /// 2 = DEL, 3 = TXN, 4 = SNAP (the `critical_path` encoding).
    /// `pub(crate)` so the sharded/replicated transactional wrappers can
    /// open one root spanning their multi-shard fan-out.
    pub(crate) fn op_root(&self, kind: u64, key: &[u8]) -> OpCtx {
        if current_op() != 0 {
            // Already inside an op (pipelined slot): record execution as a
            // child phase of the owning op instead of opening a new root.
            return OpCtx {
                root: Some(self.cfg.obs.tracer.span(Subsystem::Client, "exec")),
                _scope: None,
            };
        }
        let scope = OpScope::enter(self.cfg.obs.next_op_id());
        let mut sp = self.cfg.obs.tracer.span(Subsystem::Client, "op");
        sp.arg("kind", kind);
        sp.arg("shard", self.cfg.shard as u64);
        sp.arg("key_fp", fingerprint(key));
        OpCtx {
            root: Some(sp),
            _scope: Some(scope),
        }
    }

    /// Sum of every retry counter; deltas across an op give its root
    /// span's `retries` arg. `pub(crate)` so the pipelined client can
    /// compute the same delta around a slot execution.
    pub(crate) fn retry_total(&self) -> u64 {
        self.stats.rpc_retries.get()
            + self.stats.op_retries.get()
            + self.stats.get_retries.get()
            + self.stats.put_reissues.get()
    }

    /// A backoff sleep, recorded as a retry-classified phase of the
    /// current op.
    fn backoff_sleep(&self, backoff: Nanos) {
        let _sp = self.cfg.obs.tracer.span(Subsystem::Client, "backoff");
        sim::sleep(backoff);
    }

    /// Drain pending server notifications (cleaning state). Cleaning
    /// relocates objects, so both edges flush the location cache — every
    /// cached offset may be stale the moment the cleaner runs.
    fn poll_events(&self) {
        while let Some(ev) = self.qp.try_event() {
            match Event::decode(&ev) {
                Some(Event::CleanStart) => {
                    self.cleaning.set(true);
                    self.loc_cache.borrow_mut().clear();
                }
                Some(Event::CleanEnd) => {
                    self.cleaning.set(false);
                    self.loc_cache.borrow_mut().clear();
                }
                None => {}
            }
        }
    }

    /// Record (or refresh) the location of `key`'s current version. At
    /// capacity new keys are simply not cached — deterministic, and the
    /// default cap is far above the paper's working-set sizes.
    fn loc_fill(&self, key: &[u8], off: u64, klen: u16, vlen: u32, min_seq: u32) {
        if !self.cfg.loc_cache {
            return;
        }
        let mut cache = self.loc_cache.borrow_mut();
        if cache.len() >= self.cfg.loc_cache_cap && !cache.contains_key(key) {
            return;
        }
        cache.insert(
            key.to_vec(),
            LocEntry {
                off,
                klen,
                vlen,
                min_seq,
                epoch: self.placement_epoch.get(),
            },
        );
        self.stats.loc_fills.set(self.stats.loc_fills.get() + 1);
        self.loc_fill_ctr.inc();
    }

    /// Adopt a new placement epoch (the cluster client calls this after a
    /// router flip). Entries filled under older epochs fail the tag check
    /// and are evicted lazily on their next lookup.
    pub fn set_placement_epoch(&self, epoch: u64) {
        self.placement_epoch.set(epoch);
    }

    /// The placement epoch this connection currently trusts.
    pub fn placement_epoch(&self) -> u64 {
        self.placement_epoch.get()
    }

    /// Evict `key`'s entry after a structural validation failure.
    fn loc_invalidate(&self, key: &[u8]) {
        if self.loc_cache.borrow_mut().remove(key).is_some() {
            self.stats
                .loc_invalidations
                .set(self.stats.loc_invalidations.get() + 1);
            self.loc_inval_ctr.inc();
        }
    }

    fn note_loc_miss(&self) {
        self.stats.loc_misses.set(self.stats.loc_misses.get() + 1);
        self.loc_miss_ctr.inc();
    }

    /// Try to serve a GET from the location cache with a single one-sided
    /// object read — no bucket probe. The read is validated exactly like
    /// the pure path (lengths, key bytes, VALID+DURABLE, CRC) plus a
    /// version floor (`min_seq`); any failure falls through to the probe,
    /// evicting the entry when the failure is structural (the offset no
    /// longer holds what it held — cleaning or invalidation) rather than
    /// transient (not yet durable).
    fn try_cached_get(&self, key: &[u8]) -> Result<CachedOutcome, StoreError> {
        let Some(entry) = self.loc_cache.borrow().get(key).copied() else {
            self.note_loc_miss();
            return Ok(CachedOutcome::Miss);
        };
        if entry.epoch != self.placement_epoch.get() {
            // Filled under an older placement: the offset belongs to a
            // node that may no longer own the shard. Never dereference it.
            self.loc_invalidate(key);
            self.note_loc_miss();
            return Ok(CachedOutcome::Miss);
        }
        let _sp = self.cfg.obs.tracer.span(Subsystem::Client, "cached_read");
        let size = layout::object_size(entry.klen as usize, entry.vlen as usize);
        let obj = self.qp.rdma_read(&self.desc.mr, entry.off as usize, size)?;
        let Some(hdr) = ObjHeader::decode(&obj) else {
            self.loc_invalidate(key);
            self.note_loc_miss();
            return Ok(CachedOutcome::Miss);
        };
        if hdr.klen != entry.klen
            || hdr.vlen != entry.vlen
            || hdr.klen as usize != key.len()
            || hdr.seq < entry.min_seq
            || !hdr.has(flags::VALID)
        {
            // The offset no longer holds the cached version.
            self.loc_invalidate(key);
            self.note_loc_miss();
            return Ok(CachedOutcome::Miss);
        }
        let key_start = hdr.key_off();
        if &obj[key_start..key_start + key.len()] != key {
            self.loc_invalidate(key);
            self.note_loc_miss();
            return Ok(CachedOutcome::Miss);
        }
        if !hdr.has(flags::DURABLE) || hdr.has(flags::PENDING) {
            // Transient: the verifier hasn't reached this version yet, or
            // an in-doubt transactional head was staged over it. Keep the
            // entry — it will validate once durable/resolved.
            self.note_loc_miss();
            return Ok(CachedOutcome::Miss);
        }
        if hdr.has(flags::TOMBSTONE) {
            self.stats.loc_hits.set(self.stats.loc_hits.get() + 1);
            self.loc_hit_ctr.inc();
            return Ok(CachedOutcome::Hit(None));
        }
        let v_start = hdr.value_off();
        let value = &obj[v_start..v_start + hdr.vlen as usize];
        if self.cfg.verify_value_crc && crc32c(value) != hdr.crc {
            self.loc_invalidate(key);
            self.note_loc_miss();
            return Ok(CachedOutcome::Miss);
        }
        self.stats.loc_hits.set(self.stats.loc_hits.get() + 1);
        self.loc_hit_ctr.inc();
        Ok(CachedOutcome::Hit(Some(value.to_vec())))
    }

    /// One logical RPC: framed with a fresh request id, retried with
    /// deterministic exponential backoff until an attempt's deadline is
    /// answered. Every attempt reuses the id, so the server executes at
    /// most once; replies carrying an older id (stragglers from a timed-out
    /// attempt, or fault-injected duplicates) are discarded.
    fn rpc(&self, req: &Request) -> Result<Response, StoreError> {
        let id = self.next_req_id.get();
        self.next_req_id.set(id + 1);
        // The span covers all attempts; its (qp, req) args join it to the
        // server's handler span in the critical-path fold.
        let mut rpc_sp = self.cfg.obs.tracer.span(Subsystem::Client, "rpc");
        rpc_sp.arg("qp", self.qp.id());
        rpc_sp.arg("req", id);
        let payload = req.encode_framed(id);
        let mut backoff = self.cfg.retry_backoff;
        for attempt in 0..self.cfg.rpc_attempts.max(1) {
            if attempt > 0 {
                self.stats.rpc_retries.set(self.stats.rpc_retries.get() + 1);
                self.rpc_retry_ctr.inc();
                self.backoff_sleep(backoff);
                backoff = backoff.saturating_mul(2);
            }
            self.qp.send(payload.clone())?;
            let deadline = sim::now() + self.cfg.rpc_deadline;
            loop {
                match self.qp.recv_reply_deadline(deadline) {
                    Ok(raw) => {
                        let Some((rid, resp)) = Response::decode_any(&raw) else {
                            return Err(StoreError::Protocol);
                        };
                        match rid {
                            Some(rid) if rid == id => return Ok(resp),
                            // A stale or duplicated reply for an earlier id:
                            // keep draining until this attempt's deadline.
                            Some(_) => continue,
                            // Unframed reply: this client always sends
                            // framed requests and the server mirrors the
                            // framing, so an id-less reply can only be
                            // garbage or a foreign straggler — never the
                            // answer to *this* request. Drain past it.
                            None => continue,
                        }
                    }
                    Err(QpError::Timeout) => break,
                    Err(e) => return Err(StoreError::Qp(e)),
                }
            }
        }
        Err(StoreError::Qp(QpError::Timeout))
    }

    /// Count one one-sided retry (timeout ride-out), in both the
    /// per-client stats and the run-wide `client.op_retry` registry
    /// counter. Deliberately distinct from `rpc_retries`: an RPC resend
    /// and a one-sided redo are different failure signals, and the former
    /// gates PUT's liveness re-check.
    fn note_op_retry(&self) {
        self.stats.op_retries.set(self.stats.op_retries.get() + 1);
        self.op_retry_ctr.inc();
    }

    /// Idempotent one-sided write with bounded timeout retries (rides out
    /// transient partitions; re-writing the same bytes to the same offset
    /// is harmless).
    fn one_sided_write_retry(&self, off: usize, value: &[u8]) -> Result<(), StoreError> {
        let mut backoff = self.cfg.op_backoff;
        let mut attempt = 0;
        loop {
            match self.qp.rdma_write(&self.desc.mr, off, value.to_vec()) {
                Ok(()) => return Ok(()),
                Err(QpError::Timeout) if attempt < self.cfg.op_retries => {
                    attempt += 1;
                    self.note_op_retry();
                    self.backoff_sleep(backoff);
                    backoff = backoff.saturating_mul(2);
                }
                Err(e) => return Err(StoreError::Qp(e)),
            }
        }
    }

    /// Store `value` under `key`. Returns when the RDMA write is acked —
    /// durability is asynchronous (the paper's client-active scheme).
    ///
    /// If the value write lands after the verifier timed the still-empty
    /// version out (it invalidates versions whose value never arrives
    /// within `verify_timeout`) — because the allocation reply was being
    /// retried, the write itself was retried across a partition, or a
    /// fault-injected delay held the write in flight — the write lands in
    /// a dead version and would be silently lost. `put` detects that case
    /// with a one-sided re-read of the version's flag word whenever the
    /// allocation-to-ack window could have crossed the timeout, and
    /// re-issues the whole operation as a *fresh* logical request, bounded
    /// by `op_retries`.
    pub fn put(&self, key: &[u8], value: &[u8]) -> Result<(), StoreError> {
        self.poll_events();
        let mut ctx = self.op_root(1, key);
        let retries_before = self.retry_total();
        let result = self.put_inner(key, value);
        ctx.set_retries(self.retry_total() - retries_before);
        result
    }

    fn put_inner(&self, key: &[u8], value: &[u8]) -> Result<(), StoreError> {
        let mut backoff = self.cfg.op_backoff;
        for attempt in 0..=self.cfg.op_retries {
            if attempt > 0 {
                self.stats
                    .put_reissues
                    .set(self.stats.put_reissues.get() + 1);
                self.put_reissue_ctr.inc();
                self.backoff_sleep(backoff);
                backoff = backoff.saturating_mul(2);
            }
            if self.put_once(key, value)? {
                self.stats.puts.set(self.stats.puts.get() + 1);
                self.put_ctr.inc();
                return Ok(());
            }
        }
        Err(StoreError::Qp(QpError::Timeout))
    }

    /// One allocation RPC + value write. `Ok(false)` means the allocated
    /// version was invalidated while the reply was being retried — the
    /// caller must re-issue the PUT under a fresh request id.
    fn put_once(&self, key: &[u8], value: &[u8]) -> Result<bool, StoreError> {
        let req = Request::Put {
            key: key.to_vec(),
            vlen: value.len() as u32,
            crc: crc32c(value),
        };
        let rpc_retries_before = self.stats.rpc_retries.get();
        let op_retries_before = self.stats.op_retries.get();
        // Taken *before* the request leaves: the server allocates strictly
        // later, so client-elapsed time from here upper-bounds the
        // verifier's time-since-allocation.
        let t_start = sim::now();
        match self.rpc(&req)? {
            Response::Put {
                status: Status::Ok,
                obj_off,
                value_off,
            } => {
                // Join key for the op's off-path durable-ization work
                // (verifier CRC/flush, replication mirror).
                self.cfg
                    .obs
                    .tracer
                    .event_args(Subsystem::Client, "alloc_off", &[("off", obj_off)]);
                if !value.is_empty() {
                    let mut sp = self.cfg.obs.tracer.span(Subsystem::Client, "rdma_write");
                    sp.arg("vlen", value.len() as u64);
                    self.one_sided_write_retry(value_off as usize, value)?;
                }
                // Fast path: when the whole allocation-to-write-ack window
                // stayed inside `verify_grace` (≤ the server's
                // `verify_timeout`), the verifier cannot have timed the
                // version out. Anything that could have stretched it past
                // the timeout — a retried RPC, a retried (partitioned)
                // value write, or plain elapsed virtual time (a delayed
                // write lands late without any retry) — forces a liveness
                // re-check. (Once the write above is acked the check is
                // race-free: the verifier only invalidates on a CRC
                // mismatch at visit time, and a landed value always
                // matches.)
                let risky = self.stats.rpc_retries.get() != rpc_retries_before
                    || self.stats.op_retries.get() != op_retries_before
                    || sim::now().saturating_sub(t_start) >= self.cfg.verify_grace;
                if risky && !self.version_still_valid(obj_off as usize)? {
                    return Ok(false);
                }
                // The freshest location this client can know: its own
                // write. Sequence floor 0 — the server assigned the seq and
                // the offset is version-unique until cleaning (which
                // flushes the cache).
                self.loc_fill(key, obj_off, key.len() as u16, value.len() as u32, 0);
                Ok(true)
            }
            Response::Put { status, .. } => Err(StoreError::Status(status)),
            _ => Err(StoreError::Protocol),
        }
    }

    /// One-sided read of the object's flag word, with the same bounded
    /// timeout retry as the value write. `false` when the verifier
    /// invalidated the version before the value arrived.
    fn version_still_valid(&self, obj_off: usize) -> Result<bool, StoreError> {
        let mut backoff = self.cfg.op_backoff;
        let mut attempt = 0;
        let raw = loop {
            match self.qp.rdma_read(&self.desc.mr, obj_off, 8) {
                Ok(b) => break b,
                Err(QpError::Timeout) if attempt < self.cfg.op_retries => {
                    attempt += 1;
                    self.note_op_retry();
                    self.backoff_sleep(backoff);
                    backoff = backoff.saturating_mul(2);
                }
                Err(e) => return Err(StoreError::Qp(e)),
            }
        };
        let w0 = u64::from_le_bytes(raw[..8].try_into().unwrap());
        let (_, _, fl) = ObjHeader::from_word0(w0);
        Ok(fl & flags::VALID != 0)
    }

    /// Delete `key` (tombstone).
    pub fn del(&self, key: &[u8]) -> Result<(), StoreError> {
        self.poll_events();
        let mut ctx = self.op_root(2, key);
        let retries_before = self.retry_total();
        // The cached location now points at a superseded version; drop it
        // (not counted as an invalidation — nothing went stale underneath
        // us, we made it stale).
        self.loc_cache.borrow_mut().remove(key);
        let result = match self.rpc(&Request::Del { key: key.to_vec() }) {
            Ok(Response::Ack { status: Status::Ok }) => Ok(()),
            Ok(Response::Ack { status }) => Err(StoreError::Status(status)),
            Ok(_) => Err(StoreError::Protocol),
            Err(e) => Err(e),
        };
        ctx.set_retries(self.retry_total() - retries_before);
        result
    }

    /// Read `key`. `Ok(None)` means not found (or deleted).
    pub fn get(&self, key: &[u8]) -> Result<Option<Vec<u8>>, StoreError> {
        Ok(self.get_traced(key)?.0)
    }

    /// Like [`get`](Self::get), also reporting which path served the read.
    pub fn get_traced(&self, key: &[u8]) -> Result<(Option<Vec<u8>>, GetOutcome), StoreError> {
        self.poll_events();
        let mut ctx = self.op_root(0, key);
        let retries_before = self.retry_total();
        let result = self.get_inner(key);
        ctx.set_retries(self.retry_total() - retries_before);
        result
    }

    fn get_inner(&self, key: &[u8]) -> Result<(Option<Vec<u8>>, GetOutcome), StoreError> {
        if self.cfg.hybrid_read && !self.cleaning.get() {
            // Step 1-4 of Figure 6: the optimistic pure RDMA read path.
            let pure = {
                let _sp = self.cfg.obs.tracer.span(Subsystem::Client, "pure_read");
                match self.try_pure_get(key) {
                    Ok(p) => p,
                    // A transient partition timed the one-sided reads out;
                    // the RPC path below rides it out with retries.
                    Err(StoreError::Qp(QpError::Timeout)) => PureOutcome::Fallback,
                    Err(e) => return Err(e),
                }
            };
            match pure {
                PureOutcome::Hit(v) => {
                    self.stats.pure_hits.set(self.stats.pure_hits.get() + 1);
                    self.pure_hit_ctr.inc();
                    return Ok((v, GetOutcome::Pure));
                }
                PureOutcome::NotFound => {
                    self.stats.pure_hits.set(self.stats.pure_hits.get() + 1);
                    self.pure_hit_ctr.inc();
                    return Ok((None, GetOutcome::Pure));
                }
                PureOutcome::Fallback => {
                    self.stats.fallbacks.set(self.stats.fallbacks.get() + 1);
                    self.fallback_ctr.inc();
                    let _sp = self.cfg.obs.tracer.span(Subsystem::Client, "fallback_rpc");
                    let v = self.rpc_get(key)?;
                    return Ok((v, GetOutcome::Fallback));
                }
            }
        }
        self.stats.rpc_only.set(self.stats.rpc_only.get() + 1);
        self.rpc_only_ctr.inc();
        let _sp = self.cfg.obs.tracer.span(Subsystem::Client, "rpc_read");
        let v = self.rpc_get(key)?;
        Ok((v, GetOutcome::RpcOnly))
    }

    fn try_pure_get(&self, key: &[u8]) -> Result<PureOutcome, StoreError> {
        if self.cfg.loc_cache {
            if let CachedOutcome::Hit(v) = self.try_cached_get(key)? {
                return Ok(match v {
                    Some(v) => PureOutcome::Hit(Some(v)),
                    None => PureOutcome::NotFound,
                });
            }
        }
        let ht = self.desc.layout.hashtable();
        let fp = fingerprint(key);
        let home = ht.home(fp);
        // Step 2: fetch the probe window with one RDMA read.
        let window = self
            .qp
            .rdma_read(&self.desc.mr, ht.entry_off(home), NPROBE * BUCKET_LEN)?;
        let Some((_, entry)) = find_in_window(&window, fp) else {
            // Fingerprint absent: the key was never inserted. (Entries are
            // only removed by cleaning, during which we don't take this
            // path.)
            return Ok(PureOutcome::NotFound);
        };
        if entry.ctl.new_valid() {
            // Cleaning is (or just was) rearranging this key; be safe.
            return Ok(PureOutcome::Fallback);
        }
        let off = entry.current();
        if off == 0 {
            return Ok(PureOutcome::Fallback);
        }
        // Step 3: fetch the object (header + key + value) with one read.
        let size = layout::object_size(entry.klen as usize, entry.vlen as usize);
        let obj = self.qp.rdma_read(&self.desc.mr, off as usize, size)?;
        let Some(hdr) = ObjHeader::decode(&obj) else {
            return Ok(PureOutcome::Fallback);
        };
        // Step 4: validations + the durability flag check.
        if hdr.klen != entry.klen
            || hdr.vlen != entry.vlen
            || hdr.klen as usize != key.len()
            || !hdr.has(flags::VALID)
            || !hdr.has(flags::DURABLE)
            || hdr.has(flags::PENDING)
        {
            // PENDING: an in-doubt transactional head — the RPC path walks
            // back to the newest committed version.
            return Ok(PureOutcome::Fallback);
        }
        let key_start = hdr.key_off();
        if &obj[key_start..key_start + key.len()] != key {
            return Ok(PureOutcome::Fallback);
        }
        if hdr.has(flags::TOMBSTONE) {
            // Cache the tombstone too: repeat reads of a deleted key are
            // then a single validated object read.
            self.loc_fill(key, off, hdr.klen, hdr.vlen, hdr.seq);
            return Ok(PureOutcome::NotFound);
        }
        let v_start = hdr.value_off();
        let value = &obj[v_start..v_start + hdr.vlen as usize];
        if self.cfg.verify_value_crc && crc32c(value) != hdr.crc {
            // Mid-clean, torn, or bit-rotted object: never hand unverified
            // bytes to the application — degrade to the RPC path.
            return Ok(PureOutcome::Fallback);
        }
        self.loc_fill(key, off, hdr.klen, hdr.vlen, hdr.seq);
        Ok(PureOutcome::Hit(Some(value.to_vec())))
    }

    /// Count one GET retry through the server (bounded by
    /// `max_rpc_retries`), in both the per-client stats and the run-wide
    /// `client.get_retry` registry counter.
    fn note_get_retry(&self) {
        self.stats.get_retries.set(self.stats.get_retries.get() + 1);
        self.get_retry_ctr.inc();
    }

    /// Steps 5–9 of Figure 6: RPC to the server (which guarantees
    /// durability before answering), then a one-sided read of the object.
    fn rpc_get(&self, key: &[u8]) -> Result<Option<Vec<u8>>, StoreError> {
        Ok(self.rpc_get_seq(key)?.0)
    }

    /// The RPC read path, also reporting the served version's sequence
    /// number — the read-set fingerprint a transactional read-modify-write
    /// validates at commit. `0` means absent or tombstoned (matching the
    /// server's read-set validation convention).
    fn rpc_get_seq(&self, key: &[u8]) -> Result<(Option<Vec<u8>>, u32), StoreError> {
        for _ in 0..=self.cfg.max_rpc_retries {
            let resp = self.rpc(&Request::Get { key: key.to_vec() })?;
            let Response::Get {
                status,
                obj_off,
                klen,
                vlen,
            } = resp
            else {
                return Err(StoreError::Protocol);
            };
            match status {
                Status::NotFound => return Ok((None, 0)),
                Status::Busy => {
                    self.note_get_retry();
                    continue;
                }
                Status::Ok => {}
                s => return Err(StoreError::Status(s)),
            }
            let size = layout::object_size(klen as usize, vlen as usize);
            let obj = match self.qp.rdma_read(&self.desc.mr, obj_off as usize, size) {
                Ok(obj) => obj,
                Err(QpError::Timeout) => {
                    // Transient partition: retry through the server.
                    self.note_get_retry();
                    continue;
                }
                Err(e) => return Err(StoreError::Qp(e)),
            };
            let Some(hdr) = ObjHeader::decode(&obj) else {
                self.note_get_retry();
                continue;
            };
            // The server persisted before replying. The returned version's
            // key must match, but it may be an *older* version with a
            // different value length; anything inconsistent is a race with
            // cleaning — retry through the server. (The server never
            // returns an in-doubt PENDING version; seeing one means the
            // offset was reused under us.)
            if !hdr.has(flags::DURABLE)
                || hdr.has(flags::PENDING)
                || hdr.klen != klen
                || hdr.vlen != vlen
                || hdr.klen as usize != key.len()
            {
                self.note_get_retry();
                continue;
            }
            let key_start = hdr.key_off();
            if &obj[key_start..key_start + key.len()] != key {
                self.note_get_retry();
                continue;
            }
            if hdr.has(flags::TOMBSTONE) {
                self.loc_fill(key, obj_off, hdr.klen, hdr.vlen, hdr.seq);
                return Ok((None, 0));
            }
            let v_start = hdr.value_off();
            let value = &obj[v_start..v_start + hdr.vlen as usize];
            if self.cfg.verify_value_crc && crc32c(value) != hdr.crc {
                // The server's copy failed the end-to-end check (bit-rot
                // not yet scrubbed, or a clean racing us): bounded retry.
                self.note_get_retry();
                continue;
            }
            self.loc_fill(key, obj_off, hdr.klen, hdr.vlen, hdr.seq);
            return Ok((Some(value.to_vec()), hdr.seq));
        }
        Err(StoreError::Protocol)
    }
}

enum PureOutcome {
    Hit(Option<Vec<u8>>),
    NotFound,
    Fallback,
}

impl RemoteKv for Client {
    fn kv_put(&self, key: &[u8], value: &[u8]) -> Result<(), StoreError> {
        self.put(key, value)
    }
    fn kv_get(&self, key: &[u8]) -> Result<Option<Vec<u8>>, StoreError> {
        self.get(key)
    }
}

impl TxnShard for Client {
    fn shard_txn_commit(
        &self,
        txn_id: u64,
        reads: &[(Vec<u8>, u32)],
        puts: &[(Vec<u8>, Vec<u8>)],
    ) -> Result<(Status, u64), StoreError> {
        match self.rpc(&Request::TxnCommit {
            txn_id,
            reads: reads.to_vec(),
            puts: puts.to_vec(),
        })? {
            Response::TxnAck { status, commit_ts } => {
                if status == Status::Conflict {
                    self.txn_conflict_ctr.inc();
                }
                Ok((status, commit_ts))
            }
            _ => Err(StoreError::Protocol),
        }
    }

    fn shard_txn_prepare(
        &self,
        txn_id: u64,
        reads: &[(Vec<u8>, u32)],
        puts: &[(Vec<u8>, Vec<u8>)],
    ) -> Result<(Status, u64), StoreError> {
        match self.rpc(&Request::TxnPrepare {
            txn_id,
            reads: reads.to_vec(),
            puts: puts.to_vec(),
        })? {
            Response::TxnAck { status, commit_ts } => {
                if status == Status::Conflict {
                    self.txn_conflict_ctr.inc();
                }
                Ok((status, commit_ts))
            }
            _ => Err(StoreError::Protocol),
        }
    }

    fn shard_txn_decide(
        &self,
        txn_id: u64,
        commit: bool,
        commit_ts: u64,
    ) -> Result<Status, StoreError> {
        match self.rpc(&Request::TxnDecide {
            txn_id,
            commit,
            commit_ts,
        })? {
            Response::TxnAck { status, .. } => Ok(status),
            _ => Err(StoreError::Protocol),
        }
    }

    fn shard_snap_capture(&self) -> Result<(Status, u64), StoreError> {
        match self.rpc(&Request::SnapCapture)? {
            Response::Snap { status, watermark } => {
                if status == Status::Ok {
                    self.snap_capture_ctr.inc();
                }
                Ok((status, watermark))
            }
            _ => Err(StoreError::Protocol),
        }
    }

    /// Snapshot read: RPC chooses the version visible at `snap_ts`, then a
    /// validated one-sided read fetches it — the same two-step shape as
    /// the RPC GET path, but a validation mismatch reports `Busy` instead
    /// of falling forward to a fresher version (that would break the
    /// snapshot cut).
    fn shard_snap_get(&self, key: &[u8], snap_ts: u64) -> Result<SnapOutcome, StoreError> {
        self.snap_get_ctr.inc();
        let busy = |c: &Client| {
            c.snap_retry_ctr.inc();
            Ok(SnapOutcome::Busy)
        };
        let resp = self.rpc(&Request::SnapGet {
            key: key.to_vec(),
            snap_ts,
        })?;
        let Response::Get {
            status,
            obj_off,
            klen,
            vlen,
        } = resp
        else {
            return Err(StoreError::Protocol);
        };
        match status {
            Status::NotFound => return Ok(SnapOutcome::NotFound),
            Status::Busy => return busy(self),
            Status::Expired => return Ok(SnapOutcome::Expired),
            Status::Ok => {}
            s => return Err(StoreError::Status(s)),
        }
        let size = layout::object_size(klen as usize, vlen as usize);
        let obj = match self.qp.rdma_read(&self.desc.mr, obj_off as usize, size) {
            Ok(obj) => obj,
            Err(QpError::Timeout) => {
                self.note_op_retry();
                return busy(self);
            }
            Err(e) => return Err(StoreError::Qp(e)),
        };
        let Some(hdr) = ObjHeader::decode(&obj) else {
            return busy(self);
        };
        if !hdr.has(flags::VALID)
            || !hdr.has(flags::DURABLE)
            || hdr.has(flags::PENDING)
            || hdr.klen != klen
            || hdr.vlen != vlen
            || hdr.klen as usize != key.len()
        {
            return busy(self);
        }
        let key_start = hdr.key_off();
        if &obj[key_start..key_start + key.len()] != key {
            return busy(self);
        }
        let v_start = hdr.value_off();
        let value = &obj[v_start..v_start + hdr.vlen as usize];
        if self.cfg.verify_value_crc && crc32c(value) != hdr.crc {
            return busy(self);
        }
        Ok(SnapOutcome::Value(value.to_vec()))
    }

    fn shard_get_with_seq(&self, key: &[u8]) -> Result<(Option<Vec<u8>>, u32), StoreError> {
        self.rpc_get_seq(key)
    }
}

impl TxnKv for Client {
    fn txn_put_all(&self, puts: &[(Vec<u8>, Vec<u8>)]) -> Result<u64, StoreError> {
        self.poll_events();
        let first = puts.first().map(|(k, _)| k.as_slice()).unwrap_or(b"");
        let mut ctx = self.op_root(3, first);
        let retries_before = self.retry_total();
        let result = txn::put_all_routed(std::slice::from_ref(self), &self.next_txn_id, puts);
        ctx.set_retries(self.retry_total() - retries_before);
        if let Ok(ts) = &result {
            self.txn_commit_ctr.inc();
            ctx.arg("commit_ts", *ts);
        }
        result
    }

    fn txn_rmw(
        &self,
        key: &[u8],
        f: &mut dyn FnMut(Option<Vec<u8>>) -> Vec<u8>,
    ) -> Result<u64, StoreError> {
        self.poll_events();
        let mut ctx = self.op_root(3, key);
        let retries_before = self.retry_total();
        let result = txn::rmw_routed(std::slice::from_ref(self), &self.next_txn_id, key, f);
        ctx.set_retries(self.retry_total() - retries_before);
        if let Ok(ts) = &result {
            self.txn_commit_ctr.inc();
            ctx.arg("commit_ts", *ts);
        }
        result
    }

    fn snapshot(&self) -> Result<TxnSnapshot, StoreError> {
        self.poll_events();
        txn::snapshot_all(std::slice::from_ref(self))
    }

    fn snap_get(&self, key: &[u8], snap: &TxnSnapshot) -> Result<Option<Vec<u8>>, StoreError> {
        self.poll_events();
        let mut ctx = self.op_root(4, key);
        let retries_before = self.retry_total();
        let result = txn::snap_get_routed(std::slice::from_ref(self), key, snap);
        ctx.set_retries(self.retry_total() - retries_before);
        result
    }
}
