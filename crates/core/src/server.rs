//! The eFactory server: shared state, the PUT/GET/DEL request handler, and
//! process startup.
//!
//! Three simulated processes share one [`ServerShared`]:
//!
//! * the **request handler** (this module) — SEND-based RPCs: PUT
//!   allocation, the RPC+RDMA GET fallback with the *selective durability
//!   guarantee*, DELETE tombstones;
//! * the **background verifier** ([`crate::verifier`]) — CRC verification
//!   and persisting off the critical path;
//! * the **log cleaner** ([`crate::cleaner`]) — two-stage compress/merge
//!   reclamation.
//!
//! # Concurrency discipline
//!
//! State is shared exclusively through atomics (the pmem pool is
//! word-atomic; counters/cursors are `AtomicU64`). The simulator serializes
//! execution, so the only interleaving points are *simulated-time yields*
//! (`sim::work` / `sim::sleep`). Every multi-word mutation (filling an
//! object header, updating a hash entry) therefore runs **without any yield
//! in the middle**, making it atomic as observed by the other server
//! processes and by clients' one-sided reads. CPU costs are charged before
//! or after a mutation block, never inside one. Violating this rule is the
//! one way to corrupt this server — keep it in mind when editing.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, AtomicUsize, Ordering};
use std::sync::Arc;

use efactory_checksum::crc32c;
use efactory_obs::{Counter, Obs, Registry, Subsystem};
use efactory_pmem::PmemPool;
use efactory_rnic::{CostModel, Fabric, Incoming, Listener, Node, QpId, RemoteMr};
use efactory_sim as sim;
use efactory_sim::Nanos;

use crate::hashtable::{Entry, HashTable, HtError};
use crate::layout::{self, flags, ObjHeader, NIL};
use crate::log::{LogRegion, StoreLayout};
use crate::protocol::{Request, Response, Status};

/// Cleaning phase (paper §4.4).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum CleanPhase {
    /// No cleaning in progress.
    Normal = 0,
    /// Stage 1: reverse-scan the old pool, relocate latest versions. New
    /// writes still go to the old pool.
    Compress = 1,
    /// Stage 2: merge writes that happened during compression. New writes
    /// go to the new pool.
    Merge = 2,
}

impl CleanPhase {
    fn from_u8(v: u8) -> CleanPhase {
        match v {
            1 => CleanPhase::Compress,
            2 => CleanPhase::Merge,
            _ => CleanPhase::Normal,
        }
    }
}

/// Tunables for an eFactory server.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Verifier timeout: an object whose CRC has not matched for this long
    /// after allocation is marked invalid (paper §4.3.2).
    pub verify_timeout: Nanos,
    /// Verifier sleep when it has nothing to do (or is head-of-line
    /// blocked on an in-flight object).
    pub verify_idle: Nanos,
    /// Fixed CPU charge per object the verifier touches.
    pub verify_step_cost: Nanos,
    /// Start log cleaning when the active pool passes this fill fraction.
    pub clean_threshold: f64,
    /// Whether the cleaner process runs at all (needs a second pool).
    pub clean_enabled: bool,
    /// Cleaner poll period while idle.
    pub clean_poll: Nanos,
    /// Use the batched receive-region ring (eFactory's optimization).
    pub batched_recv: bool,
    /// Doorbell batching: post recv WRs (and issue the verifier's flush
    /// fences) in chains of this length, amortizing the per-post MMIO cost.
    /// `0` or `1` keeps the flat per-message charging selected by
    /// `batched_recv` and per-object verifier fences.
    pub doorbell_batch: usize,
    /// Recovery scan sanity bounds.
    pub max_klen: usize,
    /// Recovery scan sanity bounds.
    pub max_vlen: usize,
    /// Run the background CRC scrubber ([`crate::scrub`]). Off by default:
    /// it only earns its keep when media faults are being injected (or
    /// modeled), and every experiment that wants it opts in.
    pub scrub_enabled: bool,
    /// Scrubber sleep between passes over the log (and while cleaning is
    /// in progress).
    pub scrub_interval: Nanos,
    /// Fixed CPU charge per object the scrubber touches.
    pub scrub_step_cost: Nanos,
    /// Presumed-abort timeout for prepared (in-doubt) transactions: a 2PC
    /// participant whose coordinator has not decided within this window is
    /// unilaterally aborted by the handler's sweep. Must exceed the
    /// worst-case prepare→decide gap (including chaos retries).
    pub txn_abort_timeout: Nanos,
    /// **Test-only fault injection**: snapshot GETs skip the newest
    /// eligible version and serve its predecessor — a deliberate
    /// stale-read mutation the consistency checker must catch.
    pub snap_serve_stale: bool,
    /// Prefix for registry counter names (e.g. `"shard3."` in a
    /// [`crate::shard::ShardedServer`]); empty for the plain `server.*`
    /// names.
    pub counter_prefix: String,
    /// Observability context (tracer + metrics registry). The default is a
    /// private fully-enabled context; the harness injects one per run.
    pub obs: Obs,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            verify_timeout: sim::micros(200),
            verify_idle: sim::micros(2),
            verify_step_cost: 50,
            clean_threshold: 0.7,
            clean_enabled: true,
            clean_poll: sim::micros(20),
            batched_recv: true,
            doorbell_batch: 0,
            max_klen: 256,
            max_vlen: 16 << 20,
            scrub_enabled: false,
            scrub_interval: sim::micros(50),
            scrub_step_cost: 50,
            txn_abort_timeout: sim::millis(5),
            snap_serve_stale: false,
            counter_prefix: String::new(),
            obs: Obs::new(),
        }
    }
}

/// Counters exposed by the server (all monotonically increasing). Each field
/// is a shareable [`Counter`] so the same values can be read through a
/// metrics [`Registry`] (see [`ServerStats::register`]).
#[derive(Debug, Default)]
pub struct ServerStats {
    /// PUT requests handled.
    pub puts: Counter,
    /// DELETE requests handled.
    pub dels: Counter,
    /// GET requests handled via RPC (the fallback path).
    pub gets: Counter,
    /// RPC GETs that found the object already durable (fast durability
    /// check — the "selective durability guarantee").
    pub gets_already_durable: Counter,
    /// RPC GETs where the handler verified + persisted on demand.
    pub gets_persisted_on_demand: Counter,
    /// RPC GETs served from a previous version (torn head).
    pub gets_from_previous_version: Counter,
    /// Objects verified + persisted by the background process.
    pub bg_verified: Counter,
    /// Objects invalidated after the verify timeout.
    pub bg_timeouts: Counter,
    /// Log cleanings completed.
    pub cleanings: Counter,
    /// Objects relocated by cleaning (compress + merge).
    pub relocated: Counter,
    /// Stale versions skipped by cleaning.
    pub reclaimed_versions: Counter,
    /// Cleaner stalls: the destination pool ran out of space mid-clean and
    /// the cleaner parked (writes answer `Busy` until it resumes or
    /// unwinds).
    pub cleaner_stalls: Counter,
    /// Total virtual ns the cleaner spent parked on destination-pool
    /// space.
    pub cleaner_park_ns: Counter,
    /// Allocation failures (table full / no space), PUT or DEL.
    pub put_failures: Counter,
    /// Retried requests answered from the dedup table (the retry's request
    /// id matched the last one executed for that connection, so the stored
    /// reply was resent instead of re-executing).
    pub dup_hits: Counter,
    /// Retried requests older than the connection's dedup window (request
    /// id below the last executed one) — dropped without a reply.
    pub dup_stale: Counter,
    /// Transactions committed (fused or 2PC-decided) on this shard.
    pub txn_commits: Counter,
    /// Transactions aborted on this shard (explicit decide-abort, staging
    /// failure, or presumed-abort sweep).
    pub txn_aborts: Counter,
    /// 2PC prepare requests handled.
    pub txn_prepares: Counter,
    /// 2PC decide requests handled.
    pub txn_decides: Counter,
    /// Transactional conflicts: read-set validation failures and in-doubt
    /// write-write collisions.
    pub txn_conflicts: Counter,
    /// Snapshot-clock captures.
    pub snap_captures: Counter,
    /// Snapshot GETs handled.
    pub snap_gets: Counter,
    /// Snapshot GETs answered `Busy` (in-doubt head or in-flight value).
    pub snap_busy: Counter,
    /// Client data ops rejected with `WrongEpoch` while the shard was
    /// sealed for migration (the cluster client's retarget signal).
    pub wrong_epoch: Counter,
}

impl ServerStats {
    /// Attach every counter to `reg` under `server.*` names (sharing the
    /// underlying values, so the registry always reads live).
    pub fn register(&self, reg: &Registry) {
        self.register_prefixed(reg, "");
    }

    /// Like [`register`](Self::register) but under `{prefix}server.*`
    /// names — each shard of a sharded store registers its own counters
    /// (e.g. `shard2.server.puts`) in the one shared registry.
    pub fn register_prefixed(&self, reg: &Registry, prefix: &str) {
        let pairs: [(&str, &Counter); 25] = [
            ("server.puts", &self.puts),
            ("server.dels", &self.dels),
            ("server.gets", &self.gets),
            ("server.gets_already_durable", &self.gets_already_durable),
            (
                "server.gets_persisted_on_demand",
                &self.gets_persisted_on_demand,
            ),
            (
                "server.gets_from_previous_version",
                &self.gets_from_previous_version,
            ),
            ("server.bg_verified", &self.bg_verified),
            ("server.bg_timeouts", &self.bg_timeouts),
            ("server.cleanings", &self.cleanings),
            ("server.relocated", &self.relocated),
            ("server.reclaimed_versions", &self.reclaimed_versions),
            ("server.cleaner.stalls", &self.cleaner_stalls),
            ("server.cleaner.park_ns", &self.cleaner_park_ns),
            ("server.put_failures", &self.put_failures),
            ("server.dup_hits", &self.dup_hits),
            ("server.dup_stale", &self.dup_stale),
            ("server.txn.commits", &self.txn_commits),
            ("server.txn.aborts", &self.txn_aborts),
            ("server.txn.prepares", &self.txn_prepares),
            ("server.txn.decides", &self.txn_decides),
            ("server.txn.conflicts", &self.txn_conflicts),
            ("server.txn.snap_captures", &self.snap_captures),
            ("server.txn.snap_gets", &self.snap_gets),
            ("server.txn.snap_busy", &self.snap_busy),
            ("server.wrong_epoch", &self.wrong_epoch),
        ];
        for (name, c) in pairs {
            reg.attach_counter(&format!("{prefix}{name}"), c);
        }
    }
}

/// State shared by the handler, verifier, and cleaner processes.
pub struct ServerShared {
    /// The fabric node this server runs on.
    pub node: Node,
    /// The NVM device.
    pub pool: Arc<PmemPool>,
    /// Virtual-hardware cost model (copied from the fabric).
    pub cost: CostModel,
    /// NVM geometry.
    pub layout: StoreLayout,
    /// The hash index.
    pub ht: HashTable,
    /// Data pools A and B (B may be zero-sized).
    pub logs: [LogRegion; 2],
    /// Index of the pool taking new writes outside the merge phase.
    pub active: AtomicUsize,
    /// Current cleaning phase.
    pub clean_phase: AtomicU8,
    /// Bumped whenever the cleaner swaps pools; the verifier revalidates
    /// its cursor against it.
    pub clean_epoch: AtomicU64,
    /// Background-verifier position: absolute offset within `cursor_pool`.
    pub cursor: AtomicU64,
    /// Which pool the verifier is scanning.
    pub cursor_pool: AtomicUsize,
    /// Configuration.
    pub cfg: ServerConfig,
    /// Counters.
    pub stats: ServerStats,
    /// Scrubber counters (live even when the scrubber is disabled — they
    /// just stay zero).
    pub scrub: crate::scrub::ScrubStats,
    /// Cooperative shutdown flag (in addition to crash detection).
    pub stop: AtomicBool,
    /// One-shot manual cleaning trigger (experiments force cleaning at a
    /// chosen instant; normally the fill threshold drives it).
    pub clean_request: AtomicBool,
    /// The cleaner is parked on destination-pool space: the handler
    /// answers PUT/DEL with `Busy` (retryable backpressure) instead of
    /// consuming the bytes the stalled clean needs to make progress.
    pub clean_stalled: AtomicBool,
    /// Node crash epoch at server creation; a later epoch means this server
    /// instance died with a crash and must never touch state again (even if
    /// the node was restarted for a recovered instance).
    pub born_epoch: u64,
    /// Transactional state: commit watermark, per-offset commit
    /// timestamps, in-doubt 2PC participants. A `std::sync` mutex is safe
    /// here: only the handler process and recovery take it, never across a
    /// simulated yield.
    pub txn: std::sync::Mutex<crate::txn::TxnState>,
    /// Sealed for migration: the handler answers every client data op
    /// with `WrongEpoch` (the retarget signal) while the verifier drains.
    /// `TxnDecide` stays admissible — it resolves already-prepared 2PC
    /// state, and rejecting it would break atomicity for transactions
    /// whose other shards already committed.
    pub sealed: AtomicBool,
    /// Live-migration delta-stream rendezvous between the migration
    /// driver and this server's verifier (see [`MigrateSlot`]).
    pub migrate_out: std::sync::Mutex<MigrateSlot>,
    /// Event-broadcast handle for this server's listener, stashed by
    /// [`Server::start_with`] so the migration decommission step can push
    /// a `CleanStart` to connected clients (pinning them off the pure
    /// one-sided read path) without owning the handler's listener.
    pub notifier: std::sync::Mutex<Option<efactory_rnic::Notifier>>,
}

/// Handshake cell for attaching a live-migration delta stream to the
/// verifier. The driver parks a [`ReplTarget`](crate::repl::ReplTarget)
/// aimed at the destination pool; the verifier (the only process that may
/// own the connection) connects a second [`Mirror`](crate::repl::Mirror)
/// and acks with its cursor at attach time — the exclusive upper bound of
/// the snapshot copy, and the point from which the delta stream is
/// hole-free.
pub enum MigrateSlot {
    /// No migration in progress.
    Idle,
    /// Driver request: connect a delta mirror to this target.
    Attach(crate::repl::ReplTarget),
    /// Verifier ack: delta stream live; `cursor` was the verifier position
    /// at attach (everything below it is the snapshot copy's job).
    Active { cursor: u64 },
    /// Verifier could not connect to the destination; driver must abort.
    Failed,
    /// Driver request: flush and drop the delta mirror.
    Detach,
}

impl ServerShared {
    /// Current cleaning phase.
    pub fn phase(&self) -> CleanPhase {
        CleanPhase::from_u8(self.clean_phase.load(Ordering::Relaxed))
    }

    /// True when the handler/verifier/cleaner should exit.
    pub fn stopping(&self) -> bool {
        self.stop.load(Ordering::Relaxed)
            || self.node.is_crashed()
            || self.node.epoch() != self.born_epoch
    }

    /// Seal the shard for migration: every client data op is answered
    /// `WrongEpoch` from here on (`TxnDecide` excepted — see [`Self::sealed`]).
    pub fn seal(&self) {
        self.sealed.store(true, Ordering::Relaxed);
    }

    /// Reopen a sealed shard (migration aborted; the source remains the
    /// one owner).
    pub fn unseal(&self) {
        self.sealed.store(false, Ordering::Relaxed);
    }

    /// Whether the shard is sealed.
    pub fn is_sealed(&self) -> bool {
        self.sealed.load(Ordering::Relaxed)
    }

    /// Pool index new allocations go to, given the cleaning phase: the old
    /// pool through compression, the new pool during merging (§4.4).
    pub fn alloc_pool(&self) -> usize {
        let active = self.active.load(Ordering::Relaxed);
        match self.phase() {
            CleanPhase::Merge => 1 - active,
            _ => active,
        }
    }

    /// The newest version's offset for `entry`. The `new_valid` bit always
    /// means "the current version lives in the non-mark slot": set by
    /// merge-phase writes and by relocation (where the copy duplicates the
    /// mark-slot head, so either slot serves the same bytes), and — after a
    /// mid-clean crash leaves anchors in both regions — by plain writes to
    /// the active pool of keys whose recovered mark points at the other
    /// pool. Honoring it unconditionally keeps reads on the newest version
    /// in every one of those states.
    pub fn current_off(&self, entry: &Entry) -> u64 {
        if entry.ctl.new_valid() {
            entry.other()
        } else {
            entry.current()
        }
    }

    /// Verify the value bytes of the object at `off` against its recorded
    /// CRC (pure computation — callers charge `cost.crc(vlen)` themselves).
    pub fn crc_matches(&self, off: usize, hdr: &ObjHeader) -> bool {
        let value = layout::read_value(&self.pool, off, hdr);
        crc32c(&value) == hdr.crc
    }

    /// Persist the object at `off` and set its durability flag. Returns the
    /// number of cache lines actually flushed (for cost charging).
    pub fn persist_object(&self, off: usize, hdr: &ObjHeader) -> usize {
        let mut lines = self.pool.flush(off, hdr.object_size());
        layout::update_flags(&self.pool, off, flags::DURABLE, 0);
        lines += self.pool.flush(off, 8);
        self.pool.drain();
        lines
    }

    /// The "durability guarantee" step of the hybrid-read fallback
    /// (§4.3.3, step 7): make the object at `off` durable if it is intact,
    /// walking to previous versions otherwise. Returns the offset + header
    /// served, or `None` when no intact version exists.
    ///
    /// Charges CRC/flush costs; must be called from a server process.
    pub fn ensure_durable_version(&self, mut off: u64) -> Option<(u64, ObjHeader)> {
        let mut first = true;
        loop {
            if off == 0 || off == NIL {
                return None;
            }
            let hdr = ObjHeader::read_from(&self.pool, off as usize);
            // In-doubt (PENDING) versions are not readable: serve the
            // previous committed version, like plain readers do.
            if hdr.has(flags::VALID) && !hdr.has(flags::PENDING) {
                // Durability check first — the selective durability
                // guarantee that distinguishes eFactory from Forca.
                if hdr.has(flags::DURABLE) {
                    if first {
                        self.stats.gets_already_durable.inc();
                    } else {
                        self.stats.gets_from_previous_version.inc();
                    }
                    return Some((off, hdr));
                }
                sim::work(self.cost.crc_hw(hdr.vlen as usize));
                if self.crc_matches(off as usize, &hdr) {
                    let mut sp = self.cfg.obs.tracer.span(Subsystem::Pmem, "flush_drain");
                    let lines = self.persist_object(off as usize, &hdr);
                    sim::work(self.cost.flush(lines * efactory_pmem::LINE));
                    sp.arg("off", off);
                    sp.arg("lines", lines as u64);
                    drop(sp);
                    if first {
                        self.stats.gets_persisted_on_demand.inc();
                    } else {
                        self.stats.gets_from_previous_version.inc();
                    }
                    return Some((off, hdr));
                }
            }
            first = false;
            off = hdr.pre_ptr;
        }
    }
}

/// Everything a client needs to talk to a store: the memory registration
/// and the geometry. Handed out at connection setup, like the paper's
/// "addresses and corresponding registration keys" (§4.3).
#[derive(Debug, Clone, Copy)]
pub struct StoreDesc {
    /// Registration covering the whole NVM region.
    pub mr: RemoteMr,
    /// Geometry (hash table + pools).
    pub layout: StoreLayout,
}

/// An eFactory server instance.
pub struct Server {
    shared: Arc<ServerShared>,
    desc: StoreDesc,
}

impl Server {
    /// Create a fresh (formatted) store on `node`, registering the NVM
    /// region on the fabric.
    pub fn format(fabric: &Fabric, node: &Node, layout: StoreLayout, cfg: ServerConfig) -> Server {
        let pool = Arc::new(PmemPool::new(layout.total_len()));
        Self::with_pool(fabric, node, pool, layout, cfg)
    }

    /// Create a server over an existing pool (used by recovery).
    pub fn with_pool(
        fabric: &Fabric,
        node: &Node,
        pool: Arc<PmemPool>,
        layout: StoreLayout,
        cfg: ServerConfig,
    ) -> Server {
        let mr = node.register_mr(&pool, 0, layout.total_len());
        let logs = layout.regions();
        let cursor0 = logs[0].base() as u64;
        let shared = Arc::new(ServerShared {
            node: node.clone(),
            pool,
            cost: fabric.cost().clone(),
            ht: layout.hashtable(),
            logs,
            layout,
            active: AtomicUsize::new(0),
            clean_phase: AtomicU8::new(CleanPhase::Normal as u8),
            clean_epoch: AtomicU64::new(0),
            cursor: AtomicU64::new(cursor0),
            cursor_pool: AtomicUsize::new(0),
            cfg,
            stats: ServerStats::default(),
            scrub: crate::scrub::ScrubStats::default(),
            stop: AtomicBool::new(false),
            clean_request: AtomicBool::new(false),
            clean_stalled: AtomicBool::new(false),
            born_epoch: node.epoch(),
            txn: std::sync::Mutex::new(crate::txn::TxnState::default()),
            sealed: AtomicBool::new(false),
            migrate_out: std::sync::Mutex::new(MigrateSlot::Idle),
            notifier: std::sync::Mutex::new(None),
        });
        shared
            .stats
            .register_prefixed(&shared.cfg.obs.registry, &shared.cfg.counter_prefix);
        shared
            .scrub
            .register_prefixed(&shared.cfg.obs.registry, &shared.cfg.counter_prefix);
        Server {
            shared,
            desc: StoreDesc { mr, layout },
        }
    }

    /// The descriptor clients connect with.
    pub fn desc(&self) -> StoreDesc {
        self.desc
    }

    /// Shared state (verifier/cleaner/tests).
    pub fn shared(&self) -> &Arc<ServerShared> {
        &self.shared
    }

    /// Ask all server processes to wind down (they notice on their next
    /// wakeup or request).
    pub fn shutdown(&self) {
        self.shared.stop.store(true, Ordering::Relaxed);
    }

    /// Spawn the server's processes (request handler, background verifier,
    /// log cleaner). Must be called from within a simulated process so the
    /// listener channels can be created. The listener exists when this
    /// returns, so clients may connect immediately after.
    pub fn start(&self, fabric: &Arc<Fabric>) -> Arc<ServerShared> {
        self.start_with(fabric, None)
    }

    /// Like [`start`](Self::start), with an optional replication target:
    /// the verifier connects to the backup and mirrors every object it
    /// advances past (see [`crate::repl`]).
    pub fn start_with(
        &self,
        fabric: &Arc<Fabric>,
        repl: Option<crate::repl::ReplTarget>,
    ) -> Arc<ServerShared> {
        let shared = Arc::clone(&self.shared);
        let listener =
            shared
                .node
                .listen_with(fabric, shared.cfg.batched_recv, shared.cfg.doorbell_batch);
        let notifier = listener.notifier();
        *shared.notifier.lock().unwrap() = Some(listener.notifier());
        // Per-shard process names give each shard its own lane in the
        // trace (the tracer keys spans by simulated process).
        let tag = shared.cfg.counter_prefix.trim_end_matches('.');
        let suffix = if tag.is_empty() {
            String::new()
        } else {
            format!("-{tag}")
        };

        let h_shared = Arc::clone(&shared);
        sim::spawn(&format!("efactory-handler{suffix}"), move || {
            run_handler(&h_shared, &listener);
        });

        let scrub_repl = shared.cfg.scrub_enabled.then(|| repl.clone()).flatten();

        let v_shared = Arc::clone(&shared);
        let v_fabric = Arc::clone(fabric);
        sim::spawn(&format!("efactory-verifier{suffix}"), move || {
            let mirror = repl
                .as_ref()
                .and_then(|t| crate::repl::Mirror::connect(&v_fabric, &v_shared, t));
            crate::verifier::run_with_mirror(&v_shared, Some(&v_fabric), mirror);
        });

        if shared.cfg.scrub_enabled {
            let s_shared = Arc::clone(&shared);
            let s_fabric = Arc::clone(fabric);
            sim::spawn(&format!("efactory-scrubber{suffix}"), move || {
                crate::scrub::run(&s_shared, &s_fabric, scrub_repl.as_ref());
            });
        }

        if shared.cfg.clean_enabled && !shared.logs[1].is_empty() {
            let c_shared = Arc::clone(&shared);
            sim::spawn(&format!("efactory-cleaner{suffix}"), move || {
                crate::cleaner::run(&c_shared, &notifier);
            });
        }
        shared
    }
}

/// The request-handler loop.
///
/// Requests arrive either in the legacy unframed encoding (baselines) or
/// in the framed at-most-once envelope (the eFactory client): a per-QP
/// monotonic request id the client *reuses across retries* of one logical
/// operation. The handler keeps, per connection, the last executed id and
/// its reply; a retry with the same id resends the stored reply instead of
/// re-executing (a retried PUT must return the *same* allocation so the
/// client rewrites the same offsets), and an id below the last executed
/// one is a stale duplicate still bouncing around the fabric — dropped.
/// This is what turns the lossy fabric's at-least-once delivery into
/// exactly-once request execution.
fn run_handler(shared: &ServerShared, listener: &Listener) {
    // (last executed request id, its encoded framed reply) per connection.
    let mut dedup: HashMap<QpId, (u64, Vec<u8>)> = HashMap::new();
    // Presumed-abort sweep deadline for in-doubt 2PC transactions. The
    // sweep is free (no virtual time) while no transaction is prepared, so
    // non-transactional workloads replay byte-identically.
    let mut next_sweep = sim::now() + shared.cfg.txn_abort_timeout;
    loop {
        // A periodic deadline lets the handler observe `stop` even when no
        // requests arrive.
        let msg = match listener.recv_deadline(sim::now() + sim::micros(100)) {
            Ok(m) => m,
            Err(efactory_rnic::QpError::Timeout) => {
                if shared.stopping() {
                    return;
                }
                if sim::now() >= next_sweep {
                    crate::txn::sweep_expired(shared);
                    next_sweep = sim::now() + shared.cfg.txn_abort_timeout;
                }
                continue;
            }
            Err(_) => return, // disconnected or crashed
        };
        if shared.stopping() {
            return;
        }
        if sim::now() >= next_sweep {
            crate::txn::sweep_expired(shared);
            next_sweep = sim::now() + shared.cfg.txn_abort_timeout;
        }
        let Incoming::Send { from, payload } = msg else {
            continue; // eFactory does not use write_with_imm
        };
        let Some((req_id, req)) = Request::decode_any(&payload) else {
            continue;
        };
        if let Some(id) = req_id {
            match dedup.get(&from) {
                Some((last, reply)) if *last == id => {
                    shared.stats.dup_hits.inc();
                    if listener.reply(from, reply.clone()).is_err() {
                        return;
                    }
                    continue;
                }
                Some((last, _)) if *last > id => {
                    shared.stats.dup_stale.inc();
                    continue;
                }
                _ => {}
            }
        }
        // (qp, request-id) args on the handler spans join server-side
        // handling to the issuing client op in the critical-path fold.
        let rpc = (from, req_id.unwrap_or(0));
        let resp =
            if shared.sealed.load(Ordering::Relaxed) && !matches!(req, Request::TxnDecide { .. }) {
                // Sealed for migration: reject with the retarget signal, in
                // the response shape the issuing op expects. TxnDecide passes
                // through — it resolves already-prepared 2PC state.
                sim::work(shared.cost.cpu_req_handle_ns);
                shared.stats.wrong_epoch.inc();
                reject_wrong_epoch(&req)
            } else {
                match req {
                    Request::Put { key, vlen, crc } => handle_put(shared, rpc, &key, vlen, crc),
                    Request::Get { key } => handle_get(shared, rpc, &key),
                    Request::Del { key } => handle_del(shared, rpc, &key),
                    Request::TxnCommit {
                        txn_id,
                        ref reads,
                        ref puts,
                    } => crate::txn::handle_txn_commit(shared, rpc, txn_id, reads, puts),
                    Request::TxnPrepare {
                        txn_id,
                        ref reads,
                        ref puts,
                    } => crate::txn::handle_txn_prepare(shared, rpc, txn_id, reads, puts),
                    Request::TxnDecide {
                        txn_id,
                        commit,
                        commit_ts,
                    } => crate::txn::handle_txn_decide(shared, rpc, txn_id, commit, commit_ts),
                    Request::SnapCapture => crate::txn::handle_snap_capture(shared, rpc),
                    Request::SnapGet { ref key, snap_ts } => {
                        crate::txn::handle_snap_get(shared, rpc, key, snap_ts)
                    }
                    // SAW/RPC-baseline opcodes are not part of eFactory.
                    Request::Persist { .. } | Request::RpcPut { .. } => Response::Ack {
                        status: Status::Corrupt,
                    },
                }
            };
        let encoded = match req_id {
            Some(id) => {
                let framed = resp.encode_framed(id);
                dedup.insert(from, (id, framed.clone()));
                framed
            }
            None => resp.encode(),
        };
        if listener.reply(from, encoded).is_err() {
            return;
        }
    }
}

/// The `WrongEpoch` rejection for a sealed shard, shaped to match the
/// response variant each request's client-side decode expects.
fn reject_wrong_epoch(req: &Request) -> Response {
    let status = Status::WrongEpoch;
    match req {
        Request::Put { .. } | Request::RpcPut { .. } => Response::Put {
            status,
            obj_off: 0,
            value_off: 0,
        },
        Request::Get { .. } | Request::SnapGet { .. } => Response::Get {
            status,
            obj_off: 0,
            klen: 0,
            vlen: 0,
        },
        Request::TxnCommit { .. } | Request::TxnPrepare { .. } | Request::TxnDecide { .. } => {
            Response::TxnAck {
                status,
                commit_ts: 0,
            }
        }
        Request::SnapCapture => Response::Snap {
            status,
            watermark: 0,
        },
        Request::Del { .. } | Request::Persist { .. } => Response::Ack { status },
    }
}

/// PUT (paper §4.3.1, Figure 5): allocate in the log, fill the object
/// metadata + key, persist them, link the hash entry, and return the value
/// offset. The client then RDMA-writes the value with **no** durability
/// wait — the background verifier takes over.
fn handle_put(
    shared: &ServerShared,
    rpc: (QpId, u64),
    key: &[u8],
    vlen: u32,
    crc: u32,
) -> Response {
    let mut sp = shared.cfg.obs.tracer.span(Subsystem::Server, "rpc_alloc");
    sp.arg("vlen", vlen as u64);
    sp.arg("qp", rpc.0);
    sp.arg("req", rpc.1);
    let resp = insert_version(shared, key, vlen, crc);
    if matches!(
        resp,
        Response::Put {
            status: Status::Ok,
            ..
        }
    ) {
        shared.stats.puts.inc();
    }
    resp
}

/// Shared PUT/DEL insert path: allocate a new version in the log, persist
/// its metadata + key, and link the hash entry. Does not bump the
/// per-operation counters — `handle_put`/`handle_del` own those.
fn insert_version(shared: &ServerShared, key: &[u8], vlen: u32, crc: u32) -> Response {
    sim::work(shared.cost.cpu_req_handle_ns + shared.cost.cpu_hash_ns + shared.cost.cpu_alloc_ns);

    let fail = |status: Status| {
        shared.stats.put_failures.inc();
        Response::Put {
            status,
            obj_off: 0,
            value_off: 0,
        }
    };

    // A stalled cleaner is parked on destination-pool space: consuming
    // more bytes here would starve it, so push back with a retryable Busy
    // (no failure counter — the client backs off and retries).
    if shared.clean_stalled.load(Ordering::Relaxed) {
        return Response::Put {
            status: Status::Busy,
            obj_off: 0,
            value_off: 0,
        };
    }

    let fp = crate::hashtable::fingerprint(key);
    let size = layout::object_size(key.len(), vlen as usize);

    // ---- mutation block: no yields until the entry is linked ----
    let (idx, entry) = match shared.ht.lookup_or_claim(&shared.pool, fp) {
        Ok(v) => v,
        Err(HtError::TableFull) => return fail(Status::TableFull),
    };
    let prev = shared.current_off(&entry);
    if prev != 0 && prev != NIL {
        // An in-doubt transactional head: linking above it would break the
        // chain-order == commit-timestamp-order invariant snapshots rely
        // on. Back off until the transaction decides (no failure counter —
        // the client retries, bounded by the presumed-abort timeout).
        let ph = ObjHeader::read_from(&shared.pool, prev as usize);
        if ph.has(flags::VALID) && ph.has(flags::PENDING) {
            return Response::Put {
                status: Status::Busy,
                obj_off: 0,
                value_off: 0,
            };
        }
    }
    let pool_idx = shared.alloc_pool();
    let Some(off) = shared.logs[pool_idx].alloc(size) else {
        // Mid-clean the shortage is transient — the in-flight clean (or
        // the follow-up pass it triggers) frees the pool — so degrade to
        // retryable backpressure instead of a hard failure.
        if shared.phase() != CleanPhase::Normal {
            return Response::Put {
                status: Status::Busy,
                obj_off: 0,
                value_off: 0,
            };
        }
        return fail(Status::NoSpace);
    };
    let hdr = ObjHeader {
        klen: key.len() as u16,
        vlen,
        flags: flags::VALID,
        pre_ptr: if prev == 0 { NIL } else { prev },
        next_ptr: NIL,
        crc,
        seq: entry.ctl.seq() as u32 + 1,
        alloc_time: sim::now(),
    };
    hdr.write_to(&shared.pool, off);
    shared.pool.write(off + hdr.key_off(), key);
    if prev != 0 && prev != NIL {
        // Maintain the forward link used by log cleaning. Not flushed —
        // recovery rebuilds chains from pre_ptrs.
        layout::set_next_ptr(&shared.pool, prev as usize, off as u64);
    }
    // Persist object metadata + key before exposing the object (§4.3.1
    // step 4: "after all the metadata has been updated and persisted ...").
    let mut lines = shared
        .pool
        .flush(off, layout::HDR_LEN + layout::pad8(key.len()));
    shared.pool.drain();
    // Link the hash entry. Slots correspond to pools 1:1; the new-valid
    // bit flags a current version living in the non-mark slot (merge-phase
    // writes land in the new pool before the mark flips at finish).
    let slot = pool_idx;
    let ctl = if slot == entry.ctl.mark() {
        entry.ctl.bumped().with_new_valid(false)
    } else if entry.current() == 0 {
        // Fresh (or cleaning-reclaimed) bucket whose default mark points at
        // the inactive pool: repoint the mark instead of flagging new-valid
        // — there is no old version to keep reachable.
        entry.ctl.with_mark(slot).with_new_valid(false).bumped()
    } else {
        entry.ctl.bumped().with_new_valid(true)
    };
    shared.ht.set_slot(&shared.pool, idx, slot, off as u64);
    shared
        .ht
        .set_sizes(&shared.pool, idx, key.len() as u16, vlen);
    shared.ht.set_ctl(&shared.pool, idx, ctl);
    lines += shared.ht.persist_entry(&shared.pool, idx);
    // Stamp the commit timestamp while still inside the no-yield block, so
    // the version's visibility ordering matches its chain position.
    crate::txn::note_plain_commit(shared, off as u64);
    // ---- end mutation block ----

    sim::work(shared.cost.flush(lines * efactory_pmem::LINE));
    Response::Put {
        status: Status::Ok,
        obj_off: off as u64,
        value_off: (off + hdr.value_off()) as u64,
    }
}

/// GET fallback (paper §4.3.3, steps 5–8): look up the entry, run the
/// durability check / durability guarantee, and return the offset of an
/// intact version for the client to RDMA-read.
fn handle_get(shared: &ServerShared, rpc: (QpId, u64), key: &[u8]) -> Response {
    let mut sp = shared.cfg.obs.tracer.span(Subsystem::Server, "rpc_get");
    sp.arg("qp", rpc.0);
    sp.arg("req", rpc.1);
    sim::work(shared.cost.cpu_req_handle_ns + shared.cost.cpu_hash_ns);
    shared.stats.gets.inc();
    let not_found = Response::Get {
        status: Status::NotFound,
        obj_off: 0,
        klen: 0,
        vlen: 0,
    };
    let fp = crate::hashtable::fingerprint(key);
    let Some((_idx, entry)) = shared.ht.lookup(&shared.pool, fp) else {
        return not_found;
    };
    let off = shared.current_off(&entry);
    match shared.ensure_durable_version(off) {
        Some((off, hdr)) => {
            if hdr.has(flags::TOMBSTONE) {
                not_found
            } else {
                Response::Get {
                    status: Status::Ok,
                    obj_off: off,
                    klen: hdr.klen,
                    vlen: hdr.vlen,
                }
            }
        }
        None => not_found,
    }
}

/// DELETE: append a tombstone version. Tombstones carry no client value, so
/// they are made durable immediately. Shares the insert path with PUT but
/// has its own dispatch and counter — `puts` never sees a DEL.
fn handle_del(shared: &ServerShared, rpc: (QpId, u64), key: &[u8]) -> Response {
    let mut sp = shared.cfg.obs.tracer.span(Subsystem::Server, "rpc_del");
    sp.arg("qp", rpc.0);
    sp.arg("req", rpc.1);
    // A tombstone is a PUT of an empty value whose CRC is crc32c(b"") == 0.
    let resp = insert_version(shared, key, 0, crc32c(b""));
    let Response::Put {
        status: Status::Ok,
        obj_off,
        ..
    } = resp
    else {
        let Response::Put { status, .. } = resp else {
            unreachable!()
        };
        return Response::Ack { status };
    };
    let off = obj_off as usize;
    layout::update_flags(&shared.pool, off, flags::TOMBSTONE | flags::DURABLE, 0);
    let lines = shared.pool.flush(off, 8);
    shared.pool.drain();
    sim::work(shared.cost.flush(lines * efactory_pmem::LINE));
    shared.stats.dels.inc();
    Response::Ack { status: Status::Ok }
}
