//! Backup-side apply loop and promotion.
//!
//! The backup is a passive replica: a single process drains `WriteImm`
//! completions from the primary's mirror, and for each mirrored run walks
//! the objects, **re-verifies the CRC**, flushes the bytes to its own
//! media, and links its own hash entry — so an object is visible on the
//! backup only after remote persistence, matching the primary's
//! durability-flag discipline.
//!
//! When the primary dies (detected as a receive deadline firing with the
//! primary's node marked crashed), the backup drains the in-flight mirror
//! tail and *promotes*: it runs the ordinary [`crate::recovery`] replay
//! over the mirrored log — the exact code path a rebooted primary runs —
//! starts serving, and publishes itself through [`ReplHandle`] for clients
//! to re-resolve.

use std::sync::atomic::Ordering;
use std::sync::Arc;

use efactory_obs::Subsystem;
use efactory_pmem::{PmemPool, LINE};
use efactory_rnic::{CostModel, Fabric, Incoming, Listener, Node, QpError};
use efactory_sim as sim;

use super::{PromotedStore, ReplHandle, ReplStats};
use crate::hashtable::{fingerprint, HashTable};
use crate::layout::{self, flags, ObjHeader, HDR_LEN};
use crate::log::{LogRegion, StoreLayout};
use crate::server::ServerConfig;

/// Everything the backup's apply process needs.
pub(crate) struct BackupCtx {
    pub fabric: Arc<Fabric>,
    /// The primary being mirrored (watched for crash detection).
    pub primary: Node,
    /// The backup's own node.
    pub node: Node,
    /// The backup's own NVM pool (same layout as the primary's).
    pub pool: Arc<PmemPool>,
    pub layout: StoreLayout,
    /// The primary's config — promotion reuses it (with a `promoted.`
    /// counter prefix so both servers' counters coexist in one registry).
    pub cfg: ServerConfig,
    pub cost: CostModel,
    pub stats: Arc<ReplStats>,
    pub handle: Arc<ReplHandle>,
    pub stop: Arc<std::sync::atomic::AtomicBool>,
}

/// The backup apply loop. Runs until shutdown, or until the primary dies —
/// in which case it promotes and exits (the promoted server's own
/// processes take over).
pub(crate) fn run(ctx: BackupCtx, listener: Listener) {
    let ht = ctx.layout.hashtable();
    let regions = ctx.layout.regions();
    let born = ctx.node.epoch();
    loop {
        if ctx.stop.load(Ordering::Relaxed) || ctx.node.is_crashed() || ctx.node.epoch() != born {
            return;
        }
        match listener.recv_deadline(sim::now() + sim::micros(100)) {
            Ok(Incoming::WriteImm { imm, len, .. }) => {
                apply_range(&ctx, &ht, &regions, imm as usize, len);
            }
            Ok(Incoming::Send { .. }) => {
                // The mirror never uses two-sided sends; ignore strays.
            }
            Err(QpError::Timeout) => {
                if ctx.primary.is_crashed() && !ctx.stop.load(Ordering::Relaxed) {
                    drain_and_promote(ctx, listener, &ht, &regions);
                    return;
                }
            }
            Err(_) => {
                // Listener torn down (backup crash/restart): exit; a
                // restarted backup is recovered explicitly by the operator
                // (see the double-fault test).
                return;
            }
        }
    }
}

/// The primary is dead: drain in-flight mirror batches (they land at their
/// wire-arrival instants, which may still be in the future), then promote.
fn drain_and_promote(ctx: BackupCtx, listener: Listener, ht: &HashTable, regions: &[LogRegion; 2]) {
    loop {
        match listener.recv_deadline(sim::now() + sim::micros(20)) {
            Ok(Incoming::WriteImm { imm, len, .. }) => {
                apply_range(&ctx, ht, regions, imm as usize, len);
            }
            Ok(_) => {}
            Err(_) => break,
        }
    }
    promote(ctx);
}

/// Replay the mirrored log through the standard recovery path and start
/// serving. The recovered server gets a `promoted.`-prefixed counter
/// namespace.
///
/// Cleaning-progress records are erased first: the mirror re-sends a
/// swapped pool lowest-offset-first, so the backup image can hold a
/// `Done` record whose relocated data never arrived — recovery's record
/// rules assume a crash-consistent primary image and would zero the
/// fully-mirrored old region. With the records gone, recovery falls back
/// to the fill heuristic + dual-slot candidate walks, which handle the
/// mixed image correctly.
fn promote(ctx: BackupCtx) {
    let tracer = ctx.cfg.obs.tracer.clone();
    let mut sp = tracer.span(Subsystem::Repl, "promote");
    let mut cfg = ctx.cfg.clone();
    cfg.counter_prefix = format!("{}promoted.", ctx.cfg.counter_prefix);
    let erased = crate::recovery::neutralize_clean_records(&ctx.pool, &ctx.layout, &cfg);
    sp.arg("clean_records_erased", erased as u64);
    let (srv, report) = crate::recovery::recover(
        &ctx.fabric,
        &ctx.node,
        Arc::clone(&ctx.pool),
        ctx.layout,
        cfg,
    );
    sp.arg("keys_intact", report.keys_intact as u64);
    sp.arg("keys_rolled_back", report.keys_rolled_back as u64);
    sp.arg("keys_lost", report.keys_lost as u64);
    let shared = srv.start(&ctx.fabric);
    ctx.stats.promotions.inc();
    ctx.handle.publish(PromotedStore {
        node: ctx.node.clone(),
        desc: srv.desc(),
        shared,
    });
}

/// Apply one mirrored run: walk the objects in `[start, start+len)` and
/// apply each. The run is a contiguous slice of the primary's log, so the
/// walk uses the same header-chasing as recovery scans.
fn apply_range(
    ctx: &BackupCtx,
    ht: &HashTable,
    regions: &[LogRegion; 2],
    start: usize,
    len: usize,
) {
    let end = start + len;
    let mut off = start;
    let mut objs = 0u64;
    while off + HDR_LEN <= end {
        let hdr = ObjHeader::read_from(&ctx.pool, off);
        let size = hdr.object_size();
        if size <= HDR_LEN || off + size > end {
            // Truncated tail or garbage header: a torn mirror write. Stop;
            // promotion's recovery scan will also stop here.
            break;
        }
        if hdr.klen as usize > ctx.cfg.max_klen || hdr.vlen as usize > ctx.cfg.max_vlen {
            ctx.stats.apply_failures.inc();
            break;
        }
        apply_object(ctx, ht, regions, off, &hdr);
        off += size;
        objs += 1;
    }
    ctx.stats.applied_objects.add(objs);
    ctx.stats.applied_bytes.add((off - start) as u64);
}

/// Apply one mirrored object: re-verify its CRC, persist the bytes, and —
/// only if intact — link the backup's own hash entry. Invalidated or torn
/// objects keep their bytes (the log prefix must stay hole-free for
/// promotion's replay) but are never indexed.
fn apply_object(
    ctx: &BackupCtx,
    ht: &HashTable,
    regions: &[LogRegion; 2],
    off: usize,
    hdr: &ObjHeader,
) {
    // Same CRC the primary's verifier paid: the backup re-verifies before
    // persisting, which is what makes its durability promise *remote*.
    sim::work(ctx.cfg.verify_step_cost + ctx.cost.crc_hw(hdr.vlen as usize));
    let intact = hdr.has(flags::VALID) && {
        let value = layout::read_value(&ctx.pool, off, hdr);
        efactory_checksum::crc32c(&value) == hdr.crc
    };
    let mut lines = ctx.pool.flush(off, hdr.object_size());
    ctx.pool.drain();
    if !intact {
        sim::work(ctx.cost.flush(lines * LINE));
        return;
    }
    let key = layout::read_key(&ctx.pool, off, hdr);
    let fp = fingerprint(&key);
    match ht.lookup_or_claim(&ctx.pool, fp) {
        Ok((idx, entry)) => {
            // Mutation block (no yields): mirror the primary's index state
            // for this key — newest version wins, single live slot.
            let slot = if regions[1].contains(off) { 1 } else { 0 };
            ht.set_slot(&ctx.pool, idx, slot, off as u64);
            ht.set_slot(&ctx.pool, idx, 1 - slot, 0);
            ht.set_sizes(&ctx.pool, idx, hdr.klen, hdr.vlen);
            ht.set_ctl(
                &ctx.pool,
                idx,
                entry.ctl.with_mark(slot).with_new_valid(false).bumped(),
            );
            lines += ht.persist_entry(&ctx.pool, idx);
        }
        Err(_) => {
            ctx.stats.apply_failures.inc();
        }
    }
    sim::work(ctx.cost.flush(lines * LINE));
}
