//! Primary-side mirroring: ship verified log runs to the backup.

use std::sync::Arc;

use efactory_obs::Subsystem;
use efactory_rnic::{ClientQp, Fabric, RemoteMr};

use super::{ReplStats, ReplTarget};
use crate::server::ServerShared;

/// The verifier's outbound replication channel. Owned by the verifier
/// process; [`push`](Mirror::push) coalesces the objects the cursor
/// advances past into contiguous runs, and [`flush`](Mirror::flush) ships
/// each run to the backup with a single `rdma_write_imm` whose immediate
/// carries the run's log offset (so the backup knows where the bytes
/// landed without any metadata exchange).
///
/// The mirror degrades, never blocks: if a write to the backup fails
/// (backup crashed, link partitioned), the mirror marks itself dead and the
/// primary continues unreplicated — availability of the primary is never
/// held hostage to the replica.
pub struct Mirror {
    qp: ClientQp,
    mr: RemoteMr,
    stats: Arc<ReplStats>,
    /// Flush after this many objects accumulate (doorbell batching).
    batch: usize,
    /// Pending contiguous run: (start offset, byte length, object count).
    run: Option<(usize, usize, u64)>,
    dead: bool,
}

impl Mirror {
    /// Connect the verifier's QP to the backup. Must run inside a simulated
    /// process (the verifier's own). Returns `None` — unreplicated
    /// operation — if the backup is unreachable.
    pub fn connect(
        fabric: &Arc<Fabric>,
        shared: &ServerShared,
        target: &ReplTarget,
    ) -> Option<Mirror> {
        match fabric.connect(&shared.node, &target.backup) {
            Ok(qp) => Some(Mirror {
                qp,
                mr: target.mr,
                stats: Arc::clone(&target.stats),
                batch: target.batch.max(1),
                run: None,
                dead: false,
            }),
            Err(_) => {
                target.stats.mirror_failures.inc();
                None
            }
        }
    }

    /// Record that the verifier advanced past the object at `off`
    /// (`size` bytes). Contiguous objects extend the pending run; a gap
    /// flushes the old run and starts a new one.
    pub fn push(&mut self, shared: &ServerShared, off: usize, size: usize) {
        if self.dead {
            return;
        }
        match &mut self.run {
            Some((start, len, objs)) if *start + *len == off => {
                *len += size;
                *objs += 1;
            }
            Some(_) => {
                self.flush(shared);
                self.run = Some((off, size, 1));
            }
            None => self.run = Some((off, size, 1)),
        }
        if self.run.map_or(0, |(_, _, o)| o) >= self.batch as u64 {
            self.flush(shared);
        }
    }

    /// Ship the pending run, if any. Called on batch-full, on a gap, and
    /// before every verifier idle sleep (so a quiescent primary never sits
    /// on an unshipped tail).
    pub fn flush(&mut self, shared: &ServerShared) {
        let Some((start, len, objs)) = self.run.take() else {
            return;
        };
        if self.dead {
            return;
        }
        let mut data = vec![0u8; len];
        shared.pool.read(start, &mut data);
        let mut sp = shared.cfg.obs.tracer.span(Subsystem::Repl, "repl_mirror");
        sp.arg("off", start as u64);
        sp.arg("bytes", len as u64);
        sp.arg("objects", objs);
        debug_assert!(
            start <= u32::MAX as usize,
            "log offset must fit the immediate"
        );
        match self.qp.rdma_write_imm(&self.mr, start, data, start as u32) {
            Ok(()) => {
                self.stats.mirror_batches.inc();
                self.stats.mirror_objects.add(objs);
                self.stats.mirror_bytes.add(len as u64);
            }
            Err(_) => {
                // Backup gone: degrade to unreplicated operation.
                self.dead = true;
                self.stats.mirror_failures.inc();
            }
        }
    }
}
