//! Primary–backup replication: synchronous mirroring of durable objects
//! with deterministic failover.
//!
//! eFactory makes a single server crash-*consistent*; this module makes it
//! *available*: each server gets a *backup node* on the same simulated
//! fabric, holding a byte-identical copy of the primary's log in its own
//! NVM pool, indexed by its own hash table.
//!
//! # Replication point: the verifier
//!
//! The background verifier is already the place where an object becomes
//! durable (CRC verified + flushed), so it doubles as the replication
//! point. Every object the verifier's cursor advances past is pushed into a
//! [`Mirror`]: contiguous objects coalesce into runs, and each run ships to
//! the backup with a single doorbell-batched `rdma_write_imm` whose
//! immediate carries the run's log offset. Mirroring therefore sits
//! entirely **off the client's critical path** — a PUT still completes at
//! RDMA-write ack, and the mirror rides behind the verifier exactly like
//! durability does.
//!
//! The backup runs its own apply loop ([`backup`]): on each `WriteImm`
//! completion it walks the mirrored run object by object, *re-verifies the
//! CRC*, flushes the bytes to its own media, and only then links its own
//! hash entry — so an object is indexed on the backup only after **remote
//! persistence**, mirroring the primary's durability-flag discipline.
//!
//! # Failover
//!
//! A fault-injection hook ([`efactory_rnic::Fabric::schedule_crash`]) kills
//! the primary's node at a chosen virtual instant. The backup's apply loop
//! notices (its receive deadline fires with the primary marked crashed),
//! drains the in-flight mirror tail, and **promotes**: it runs the ordinary
//! [`crate::recovery`] replay over its mirrored log — the same code path a
//! rebooted primary would run — and starts serving as a full server.
//! Clients detect the failure (RPC deadline / one-sided read error),
//! re-resolve through the shared [`ReplHandle`] (the simulated metadata
//! service), and reconnect to the promoted store ([`ReplClient`]).
//!
//! # Consistency contract
//!
//! The mirrored log is a **hole-free prefix** of the primary's log (every
//! advanced object is mirrored, including invalidated ones, so the backup's
//! recovery scan never stops early). Failover therefore preserves the
//! paper's old-or-new guarantee per key: a version is readable on the
//! promoted backup iff it was mirrored and intact — never torn. Versions
//! the primary acknowledged but had not yet verified+mirrored roll back to
//! the previous durable version, the same contract a primary-local crash
//! gives.
//!
//! # Cleaning under replication
//!
//! The backup does **not** mirror by offset: it re-indexes every mirrored
//! object into its own hash table (last-mirrored-wins), so primary-side
//! log cleaning composes with mirroring. After a pool swap the verifier's
//! cursor re-bases to the new pool and re-walks it from the base,
//! re-mirroring every relocated object; until that re-walk completes the
//! backup serves a mixed image (old-pool copies still indexed). Promotion
//! erases any mirrored cleaning-progress records first
//! ([`crate::recovery::neutralize_clean_records`]) because the mirror
//! ships a swapped pool lowest-offset-first — a `Done` record can arrive
//! before the relocations it describes, and recovery's record rules only
//! hold for crash-consistent primary images. Merge-phase writes the
//! primary acknowledged but had not yet re-mirrored roll back on
//! promotion, the same bounded-loss contract as any unverified write.

mod backup;
mod client;
mod mirror;

pub use client::{ReplClient, ReplShardedClient};
pub use mirror::Mirror;

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};

use efactory_obs::{Counter, Registry};
use efactory_pmem::PmemPool;
use efactory_rnic::{Fabric, Node, RemoteMr};
use efactory_sim as sim;

use crate::log::StoreLayout;
use crate::server::{Server, ServerConfig, ServerShared, StoreDesc};

/// Counters exposed by the replication tier (primary-side mirroring,
/// backup-side apply, promotion). All monotonically increasing.
#[derive(Debug, Default)]
pub struct ReplStats {
    /// Mirror batches shipped (one `rdma_write_imm` each).
    pub mirror_batches: Counter,
    /// Objects mirrored to the backup.
    pub mirror_objects: Counter,
    /// Log bytes mirrored to the backup.
    pub mirror_bytes: Counter,
    /// Mirror writes that failed (backup unreachable; mirroring degrades
    /// to unreplicated operation).
    pub mirror_failures: Counter,
    /// Objects the backup verified, persisted, and indexed.
    pub applied_objects: Counter,
    /// Mirrored bytes the backup persisted.
    pub applied_bytes: Counter,
    /// Apply-side rejections (CRC mismatch on an invalidated object is
    /// expected; table-full is not).
    pub apply_failures: Counter,
    /// Backup promotions completed (0 or 1 per backup).
    pub promotions: Counter,
}

impl ReplStats {
    /// Attach every counter to `reg` under `{prefix}repl.*` names.
    pub fn register_prefixed(&self, reg: &Registry, prefix: &str) {
        let pairs: [(&str, &Counter); 8] = [
            ("repl.mirror_batches", &self.mirror_batches),
            ("repl.mirror_objects", &self.mirror_objects),
            ("repl.mirror_bytes", &self.mirror_bytes),
            ("repl.mirror_failures", &self.mirror_failures),
            ("repl.applied_objects", &self.applied_objects),
            ("repl.applied_bytes", &self.applied_bytes),
            ("repl.apply_failures", &self.apply_failures),
            ("repl.promotions", &self.promotions),
        ];
        for (name, c) in pairs {
            reg.attach_counter(&format!("{prefix}{name}"), c);
        }
    }
}

/// Where a primary's verifier mirrors to. Handed to
/// [`Server::start_with`]; the verifier process connects its own QP to the
/// backup at startup.
#[derive(Clone)]
pub struct ReplTarget {
    /// The backup's fabric node (must be listening).
    pub backup: Node,
    /// Registration covering the backup's whole pool (offsets line up 1:1
    /// with the primary's, since both pools share one layout).
    pub mr: RemoteMr,
    /// Shared replication counters.
    pub stats: Arc<ReplStats>,
    /// Mirror batch length in objects (doorbell batching; >= 1).
    pub batch: usize,
}

/// A promoted backup, published through [`ReplHandle`] for clients to
/// re-resolve to.
#[derive(Clone)]
pub struct PromotedStore {
    /// The backup's node (now serving).
    pub node: Node,
    /// Connection descriptor of the promoted store.
    pub desc: StoreDesc,
    /// Shared state of the promoted server (shutdown, stats, tests).
    pub shared: Arc<ServerShared>,
}

/// The failover rendezvous — a stand-in for the metadata service a real
/// deployment would query: the backup publishes itself here after
/// promotion, and clients poll it when the primary stops answering.
#[derive(Default)]
pub struct ReplHandle {
    promoted: Mutex<Option<PromotedStore>>,
}

impl ReplHandle {
    /// The promoted backup, if promotion has happened.
    pub fn promoted(&self) -> Option<PromotedStore> {
        self.promoted.lock().unwrap().clone()
    }

    pub(crate) fn publish(&self, p: PromotedStore) {
        *self.promoted.lock().unwrap() = Some(p);
    }
}

/// Everything a client needs to talk to a replicated store: the primary's
/// connection info plus the failover handle.
#[derive(Clone)]
pub struct ReplicatedDesc {
    /// The primary's fabric node.
    pub primary_node: Node,
    /// The primary's store descriptor.
    pub desc: StoreDesc,
    /// Failover rendezvous (shared with the backup).
    pub handle: Arc<ReplHandle>,
}

/// A primary [`Server`] plus its backup replica on a second fabric node.
pub struct ReplicatedServer {
    primary: Server,
    primary_node: Node,
    backup_node: Node,
    backup_pool: Arc<PmemPool>,
    backup_mr: RemoteMr,
    layout: StoreLayout,
    cfg: ServerConfig,
    stats: Arc<ReplStats>,
    handle: Arc<ReplHandle>,
    stop: Arc<AtomicBool>,
}

impl ReplicatedServer {
    /// Create a fresh primary on `node` plus a backup on a new node named
    /// `{node}-backup`, with an identical layout over its own pool.
    ///
    /// Log cleaning (when `cfg.clean_enabled`) runs on the primary as in a
    /// standalone store; the backup re-indexes mirrored objects by content
    /// rather than offset, so relocation is transparent to it (see the
    /// module docs for the swap re-mirror and promotion rules).
    pub fn format(
        fabric: &Fabric,
        node: &Node,
        layout: StoreLayout,
        cfg: ServerConfig,
    ) -> ReplicatedServer {
        let primary = Server::format(fabric, node, layout, cfg.clone());
        let backup_node = fabric.add_node(&format!("{}-backup", node.name()));
        let backup_pool = Arc::new(PmemPool::new(layout.total_len()));
        let backup_mr = backup_node.register_mr(&backup_pool, 0, layout.total_len());
        let stats = Arc::new(ReplStats::default());
        stats.register_prefixed(&cfg.obs.registry, &cfg.counter_prefix);
        ReplicatedServer {
            primary,
            primary_node: node.clone(),
            backup_node,
            backup_pool,
            backup_mr,
            layout,
            cfg,
            stats,
            handle: Arc::new(ReplHandle::default()),
            stop: Arc::new(AtomicBool::new(false)),
        }
    }

    /// The primary server.
    pub fn primary(&self) -> &Server {
        &self.primary
    }

    /// The primary's shared state (drain checks, stats).
    pub fn shared(&self) -> &Arc<ServerShared> {
        self.primary.shared()
    }

    /// The primary's fabric node.
    pub fn primary_node(&self) -> &Node {
        &self.primary_node
    }

    /// The backup's fabric node.
    pub fn backup_node(&self) -> &Node {
        &self.backup_node
    }

    /// The backup's NVM pool (tests, double-fault recovery).
    pub fn backup_pool(&self) -> &Arc<PmemPool> {
        &self.backup_pool
    }

    /// Replication counters.
    pub fn stats(&self) -> &Arc<ReplStats> {
        &self.stats
    }

    /// Failover rendezvous handle.
    pub fn handle(&self) -> &Arc<ReplHandle> {
        &self.handle
    }

    /// The geometry shared by primary and backup.
    pub fn layout(&self) -> StoreLayout {
        self.layout
    }

    /// What clients connect with.
    pub fn desc(&self) -> ReplicatedDesc {
        ReplicatedDesc {
            primary_node: self.primary_node.clone(),
            desc: self.primary.desc(),
            handle: Arc::clone(&self.handle),
        }
    }

    /// Start the backup's apply loop and the primary's processes (with the
    /// verifier mirroring). Must run inside a simulated process; the
    /// backup's listener exists when the primary's verifier connects.
    pub fn start(&self, fabric: &Arc<Fabric>) -> Arc<ServerShared> {
        let listener =
            self.backup_node
                .listen_with(fabric, self.cfg.batched_recv, self.cfg.doorbell_batch);
        let ctx = backup::BackupCtx {
            fabric: Arc::clone(fabric),
            primary: self.primary_node.clone(),
            node: self.backup_node.clone(),
            pool: Arc::clone(&self.backup_pool),
            layout: self.layout,
            cfg: self.cfg.clone(),
            cost: fabric.cost().clone(),
            stats: Arc::clone(&self.stats),
            handle: Arc::clone(&self.handle),
            stop: Arc::clone(&self.stop),
        };
        let tag = self.cfg.counter_prefix.trim_end_matches('.');
        let suffix = if tag.is_empty() {
            String::new()
        } else {
            format!("-{tag}")
        };
        sim::spawn(&format!("efactory-backup{suffix}"), move || {
            backup::run(ctx, listener);
        });
        self.primary.start_with(
            fabric,
            Some(ReplTarget {
                backup: self.backup_node.clone(),
                mr: self.backup_mr,
                stats: Arc::clone(&self.stats),
                batch: self.cfg.doorbell_batch.max(1),
            }),
        )
    }

    /// Wind down the primary, the backup applier, and (if promotion
    /// happened) the promoted server.
    pub fn shutdown(&self) {
        self.primary.shutdown();
        self.stop.store(true, Ordering::Relaxed);
        if let Some(p) = self.handle.promoted() {
            p.shared.stop.store(true, Ordering::Relaxed);
        }
    }
}

/// N independent [`ReplicatedServer`] shards over one fabric — the
/// replicated analog of [`crate::shard::ShardedServer`]: same hash router,
/// same per-shard isolation, plus one backup per shard.
pub struct ReplicatedCluster {
    servers: Vec<ReplicatedServer>,
}

impl ReplicatedCluster {
    /// Create `shards` replicated shards. Primary nodes are named
    /// `{name}-shard{i}`, backups `{name}-shard{i}-backup`; counters get a
    /// `shard{i}.` prefix when `shards > 1` (matching `ShardedServer`).
    pub fn format(
        fabric: &Fabric,
        name: &str,
        layout: StoreLayout,
        cfg: ServerConfig,
        shards: usize,
    ) -> ReplicatedCluster {
        assert!(shards >= 1, "a store has at least one shard");
        let mut servers = Vec::with_capacity(shards);
        for i in 0..shards {
            let node = fabric.add_node(&format!("{name}-shard{i}"));
            let mut scfg = cfg.clone();
            if shards > 1 {
                scfg.counter_prefix = format!("{}shard{i}.", cfg.counter_prefix);
            }
            servers.push(ReplicatedServer::format(fabric, &node, layout, scfg));
        }
        ReplicatedCluster { servers }
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.servers.len()
    }

    /// Shard `i`'s replicated server.
    pub fn server(&self, i: usize) -> &ReplicatedServer {
        &self.servers[i]
    }

    /// Per-shard connection info for [`ReplShardedClient`].
    pub fn descs(&self) -> Vec<ReplicatedDesc> {
        self.servers.iter().map(|s| s.desc()).collect()
    }

    /// Every shard's primary shared state.
    pub fn shared_all(&self) -> Vec<&Arc<ServerShared>> {
        self.servers.iter().map(|s| s.shared()).collect()
    }

    /// Start every shard (backup applier + mirrored primary).
    pub fn start(&self, fabric: &Arc<Fabric>) {
        for s in &self.servers {
            s.start(fabric);
        }
    }

    /// Wind down every shard.
    pub fn shutdown(&self) {
        for s in &self.servers {
            s.shutdown();
        }
    }

    /// Sum a primary server counter across shards.
    pub fn stat_sum(&self, pick: impl Fn(&crate::server::ServerStats) -> &Counter) -> u64 {
        self.servers
            .iter()
            .map(|s| pick(&s.shared().stats).get())
            .sum()
    }

    /// Sum a replication counter across shards.
    pub fn repl_stat_sum(&self, pick: impl Fn(&ReplStats) -> &Counter) -> u64 {
        self.servers.iter().map(|s| pick(s.stats()).get()).sum()
    }
}
