//! Failover-aware clients for replicated stores.

use std::cell::{Cell, RefCell};
use std::sync::Arc;

use efactory_rnic::{Fabric, Node, QpError};
use efactory_sim as sim;

use super::ReplicatedDesc;
use crate::client::{Client, ClientConfig, RemoteKv};
use crate::protocol::{Status, StoreError};
use crate::shard::shard_of;
use crate::txn::{self, SnapOutcome, TxnKv, TxnShard, TxnSnapshot};

/// A client that talks to a [`super::ReplicatedServer`]: it behaves exactly
/// like [`Client`] until the primary stops answering (RPC deadline,
/// one-sided verb error), then re-resolves through the replication handle —
/// the simulated metadata service — to the promoted backup, reconnects, and
/// retries the operation.
pub struct ReplClient {
    fabric: Arc<Fabric>,
    local: Node,
    rdesc: ReplicatedDesc,
    cfg: ClientConfig,
    cur: RefCell<Client>,
    on_backup: Cell<bool>,
    failovers: Cell<u64>,
    /// Transaction-id source surviving reconnects (a fresh [`Client`] would
    /// restart its ids, and a replayed txn id must never alias an earlier
    /// in-doubt transaction on the promoted backup).
    next_txn_id: Cell<u64>,
}

/// How long a client polls the handle for a promotion before giving up.
/// Comfortably covers crash detection (the backup's 100 µs receive
/// deadline) plus drain and replay.
const FAILOVER_DEADLINE: sim::Nanos = 200_000_000; // 200 virtual ms

impl ReplClient {
    /// Connect to the replicated store — to the primary, or directly to the
    /// promoted backup if failover already happened.
    pub fn connect(
        fabric: &Arc<Fabric>,
        local: &Node,
        rdesc: &ReplicatedDesc,
        cfg: ClientConfig,
    ) -> Result<ReplClient, StoreError> {
        let (cur, on_backup) = match rdesc.handle.promoted() {
            Some(p) => (
                Client::connect(fabric, local, &p.node, p.desc, cfg.clone())?,
                true,
            ),
            None => (
                Client::connect(fabric, local, &rdesc.primary_node, rdesc.desc, cfg.clone())?,
                false,
            ),
        };
        Ok(ReplClient {
            fabric: Arc::clone(fabric),
            local: local.clone(),
            rdesc: rdesc.clone(),
            cfg,
            cur: RefCell::new(cur),
            on_backup: Cell::new(on_backup),
            failovers: Cell::new(0),
            next_txn_id: Cell::new(1),
        })
    }

    /// Whether this client has failed over to the backup.
    pub fn on_backup(&self) -> bool {
        self.on_backup.get()
    }

    /// How many times this client re-resolved to a promoted backup.
    pub fn failovers(&self) -> u64 {
        self.failovers.get()
    }

    /// Wait (bounded) for the backup to finish promoting, then reconnect.
    fn failover(&self) -> Result<(), StoreError> {
        let deadline = sim::now() + FAILOVER_DEADLINE;
        loop {
            if let Some(p) = self.rdesc.handle.promoted() {
                let c =
                    Client::connect(&self.fabric, &self.local, &p.node, p.desc, self.cfg.clone())?;
                *self.cur.borrow_mut() = c;
                self.on_backup.set(true);
                self.failovers.set(self.failovers.get() + 1);
                return Ok(());
            }
            if sim::now() >= deadline {
                return Err(StoreError::Qp(QpError::Timeout));
            }
            sim::sleep(sim::micros(100));
        }
    }

    fn with_retry<T>(
        &self,
        op: impl Fn(&Client) -> Result<T, StoreError>,
    ) -> Result<T, StoreError> {
        let mut failovers = 0;
        loop {
            let r = {
                let c = self.cur.borrow();
                op(&c)
            };
            match r {
                Err(StoreError::Qp(
                    QpError::Crashed | QpError::Timeout | QpError::Disconnected,
                )) if failovers < 2 => {
                    failovers += 1;
                    self.failover()?;
                }
                other => return other,
            }
        }
    }

    /// PUT with transparent failover.
    pub fn put(&self, key: &[u8], value: &[u8]) -> Result<(), StoreError> {
        self.with_retry(|c| c.put(key, value))
    }

    /// GET with transparent failover.
    pub fn get(&self, key: &[u8]) -> Result<Option<Vec<u8>>, StoreError> {
        self.with_retry(|c| c.get(key))
    }

    /// DELETE with transparent failover.
    pub fn del(&self, key: &[u8]) -> Result<(), StoreError> {
        self.with_retry(|c| c.del(key))
    }
}

impl RemoteKv for ReplClient {
    fn kv_put(&self, key: &[u8], value: &[u8]) -> Result<(), StoreError> {
        self.put(key, value)
    }
    fn kv_get(&self, key: &[u8]) -> Result<Option<Vec<u8>>, StoreError> {
        self.get(key)
    }
}

/// Per-shard transactional RPCs with transparent failover. After a
/// failover the retried attempt runs under a *new* QP, outside the old
/// connection's exactly-once window: a blind-write transaction may
/// re-execute (same values, new versions — like a replayed plain PUT),
/// while read-modify-writes stay correct through read-set re-validation.
impl TxnShard for ReplClient {
    fn shard_txn_commit(
        &self,
        txn_id: u64,
        reads: &[(Vec<u8>, u32)],
        puts: &[(Vec<u8>, Vec<u8>)],
    ) -> Result<(Status, u64), StoreError> {
        self.with_retry(|c| c.shard_txn_commit(txn_id, reads, puts))
    }

    fn shard_txn_prepare(
        &self,
        txn_id: u64,
        reads: &[(Vec<u8>, u32)],
        puts: &[(Vec<u8>, Vec<u8>)],
    ) -> Result<(Status, u64), StoreError> {
        self.with_retry(|c| c.shard_txn_prepare(txn_id, reads, puts))
    }

    fn shard_txn_decide(
        &self,
        txn_id: u64,
        commit: bool,
        commit_ts: u64,
    ) -> Result<Status, StoreError> {
        self.with_retry(|c| c.shard_txn_decide(txn_id, commit, commit_ts))
    }

    fn shard_snap_capture(&self) -> Result<(Status, u64), StoreError> {
        self.with_retry(|c| c.shard_snap_capture())
    }

    fn shard_snap_get(&self, key: &[u8], snap_ts: u64) -> Result<SnapOutcome, StoreError> {
        self.with_retry(|c| c.shard_snap_get(key, snap_ts))
    }

    fn shard_get_with_seq(&self, key: &[u8]) -> Result<(Option<Vec<u8>>, u32), StoreError> {
        self.with_retry(|c| c.shard_get_with_seq(key))
    }
}

impl TxnKv for ReplClient {
    fn txn_put_all(&self, puts: &[(Vec<u8>, Vec<u8>)]) -> Result<u64, StoreError> {
        let result = txn::put_all_routed(std::slice::from_ref(self), &self.next_txn_id, puts);
        if result.is_ok() {
            self.cur.borrow().txn_commit_ctr.inc();
        }
        result
    }

    fn txn_rmw(
        &self,
        key: &[u8],
        f: &mut dyn FnMut(Option<Vec<u8>>) -> Vec<u8>,
    ) -> Result<u64, StoreError> {
        let result = txn::rmw_routed(std::slice::from_ref(self), &self.next_txn_id, key, f);
        if result.is_ok() {
            self.cur.borrow().txn_commit_ctr.inc();
        }
        result
    }

    fn snapshot(&self) -> Result<TxnSnapshot, StoreError> {
        txn::snapshot_all(std::slice::from_ref(self))
    }

    fn snap_get(&self, key: &[u8], snap: &TxnSnapshot) -> Result<Option<Vec<u8>>, StoreError> {
        txn::snap_get_routed(std::slice::from_ref(self), key, snap)
    }
}

/// [`ReplClient`] per shard, routed by the same hash router as
/// [`crate::shard::ShardedClient`].
pub struct ReplShardedClient {
    clients: Vec<ReplClient>,
    /// Transaction-id source shared across shard connections (one id per
    /// logical transaction, like [`crate::shard::ShardedClient`]).
    next_txn_id: Cell<u64>,
}

impl ReplShardedClient {
    /// Connect one failover-aware client per shard.
    pub fn connect(
        fabric: &Arc<Fabric>,
        local: &Node,
        descs: &[ReplicatedDesc],
        cfg: ClientConfig,
    ) -> Result<ReplShardedClient, StoreError> {
        assert!(
            !descs.is_empty(),
            "a replicated store has at least one shard"
        );
        let mut clients = Vec::with_capacity(descs.len());
        for (i, d) in descs.iter().enumerate() {
            let mut cfg = cfg.clone();
            cfg.shard = i as u32;
            clients.push(ReplClient::connect(fabric, local, d, cfg)?);
        }
        Ok(ReplShardedClient {
            clients,
            next_txn_id: Cell::new(1),
        })
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.clients.len()
    }

    /// The shard client owning `key`.
    pub fn route(&self, key: &[u8]) -> &ReplClient {
        &self.clients[shard_of(key, self.clients.len())]
    }

    /// PUT routed to the owning shard.
    pub fn put(&self, key: &[u8], value: &[u8]) -> Result<(), StoreError> {
        self.route(key).put(key, value)
    }

    /// GET routed to the owning shard.
    pub fn get(&self, key: &[u8]) -> Result<Option<Vec<u8>>, StoreError> {
        self.route(key).get(key)
    }

    /// DELETE routed to the owning shard.
    pub fn del(&self, key: &[u8]) -> Result<(), StoreError> {
        self.route(key).del(key)
    }
}

impl RemoteKv for ReplShardedClient {
    fn kv_put(&self, key: &[u8], value: &[u8]) -> Result<(), StoreError> {
        self.put(key, value)
    }
    fn kv_get(&self, key: &[u8]) -> Result<Option<Vec<u8>>, StoreError> {
        self.get(key)
    }
}

impl TxnKv for ReplShardedClient {
    fn txn_put_all(&self, puts: &[(Vec<u8>, Vec<u8>)]) -> Result<u64, StoreError> {
        let result = txn::put_all_routed(&self.clients, &self.next_txn_id, puts);
        if result.is_ok() {
            self.clients[0].cur.borrow().txn_commit_ctr.inc();
        }
        result
    }

    fn txn_rmw(
        &self,
        key: &[u8],
        f: &mut dyn FnMut(Option<Vec<u8>>) -> Vec<u8>,
    ) -> Result<u64, StoreError> {
        let result = txn::rmw_routed(&self.clients, &self.next_txn_id, key, f);
        if result.is_ok() {
            self.clients[0].cur.borrow().txn_commit_ctr.inc();
        }
        result
    }

    fn snapshot(&self) -> Result<TxnSnapshot, StoreError> {
        txn::snapshot_all(&self.clients)
    }

    fn snap_get(&self, key: &[u8], snap: &TxnSnapshot) -> Result<Option<Vec<u8>>, StoreError> {
        txn::snap_get_routed(&self.clients, key, snap)
    }
}
