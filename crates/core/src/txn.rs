//! Multi-key atomic transactions and MVCC snapshot reads over the
//! multi-version log.
//!
//! # Protocol
//!
//! A transaction is a read set (`(key, observed seq)` pairs) plus a write
//! set (full key/value pairs). Values ride the two-sided RPC (like the RPC
//! baseline's `RpcPut`), so the server stages them durably in one step —
//! the client-active one-sided write scheme is not used for transactional
//! writes, which keeps staging failure-atomic without a second round trip.
//!
//! **Staging** appends each write as a normal log version linked at the
//! head of its key's chain, flagged `VALID | PENDING | DURABLE`. A
//! `PENDING` head is *in-doubt*: plain reads serve the previous committed
//! version, snapshot reads wait, and writers back off (`Busy` / `Conflict`)
//! — which preserves the invariant that chain order equals commit-timestamp
//! order.
//!
//! **Commit point** is a durable *commit record*: a normal log allocation
//! (never linked into the hash table) whose key is a magic prefix + txn id
//! and whose CRC-protected value lists the staged offsets. Recovery keeps a
//! `PENDING` version iff a durable commit record names it — all-or-nothing
//! visibility at every crash instant.
//!
//! **Publishing** clears the `PENDING` bits in one no-yield block (atomic
//! as observed by every other process and by clients' one-sided reads) and
//! assigns the transaction a single commit timestamp.
//!
//! Single-shard transactions use the fused one-RPC `TxnCommit`; cross-shard
//! ones run client-coordinated two-phase commit (`TxnPrepare` per shard,
//! then `TxnDecide`), with a presumed-abort sweep reclaiming prepares whose
//! coordinator died.
//!
//! # Snapshots
//!
//! Each shard keeps a commit watermark `W`: every commit gets
//! `ts = max(W+1, now)` and advances `W`. `SnapCapture` bumps `W` to `now`
//! and returns it, so every *later* commit is strictly above the captured
//! clock, and every commit acknowledged *before* the capture is at or
//! below it. A multi-shard snapshot captures every shard's clock and reads
//! at `S = min(vector)`: a version is visible iff its commit timestamp is
//! `<= S`. Timestamps live in a per-shard in-memory map (rebuilt empty
//! after a crash — recovered versions read as timestamp 0, i.e. visible in
//! every snapshot, which is sound because recovery discards everything that
//! was not durably committed).

use std::cell::Cell;
use std::collections::{HashMap, HashSet};

use efactory_checksum::crc32c;
use efactory_obs::Subsystem;
use efactory_pmem::PmemPool;
use efactory_rnic::QpId;
use efactory_sim as sim;

use crate::hashtable::{fingerprint, HtError};
use crate::layout::{self, flags, ObjHeader, NIL};
use crate::protocol::{Response, Status, StoreError};
use crate::server::{CleanPhase, ServerShared};
use crate::shard::shard_of;

/// Magic key prefix identifying a commit record in the log. NUL-framed so
/// it can never collide with workload keys (which are printable).
pub const COMMIT_MAGIC: &[u8; 8] = b"\0efctxn\0";

/// Key bytes of the commit record for `txn_id`.
fn commit_record_key(txn_id: u64) -> [u8; 16] {
    let mut k = [0u8; 16];
    k[..8].copy_from_slice(COMMIT_MAGIC);
    k[8..].copy_from_slice(&txn_id.to_le_bytes());
    k
}

/// A transaction prepared on this shard, awaiting the coordinator's
/// decision.
#[derive(Debug, Clone)]
pub struct Prepared {
    /// Offsets of the staged (PENDING) versions, in write-set order.
    pub offs: Vec<u64>,
    /// Virtual time the prepare completed — the presumed-abort sweep
    /// reclaims entries older than [`crate::server::ServerConfig::txn_abort_timeout`].
    pub staged_at: sim::Nanos,
}

/// Per-shard transactional state (in-memory; rebuilt empty after a crash).
#[derive(Debug, Default)]
pub struct TxnState {
    /// Commit watermark: every commit so far has `ts <= watermark`, every
    /// future commit gets `ts >` any snapshot clock already handed out.
    pub watermark: u64,
    /// Commit timestamp per published version offset. Missing entries
    /// (recovered versions, pre-txn-layer writes) read as 0: visible in
    /// every snapshot.
    pub commit_ts: HashMap<u64, u64>,
    /// In-doubt two-phase-commit participants, keyed by (client QP, txn id).
    pub prepared: HashMap<(QpId, u64), Prepared>,
    /// Oldest snapshot timestamp still servable. Log cleaning relocates
    /// versions to new offsets whose timestamps read as 0 ("visible in
    /// every snapshot") — correct for *current* reads but a time-travel
    /// hazard for snapshots captured before the pass. The cleaner bumps
    /// this to the watermark at every pool swap (and pass abort); older
    /// snapshots are answered `Expired` and re-captured by the client.
    pub min_snap_ts: u64,
}

/// Expire every snapshot captured before now: after relocation, versions a
/// pre-pass snapshot should *not* see carry timestamp 0 and would leak in.
/// Called by the cleaner (no yields — safe inside its mutation blocks).
pub(crate) fn expire_snapshots(shared: &ServerShared) {
    let mut txn = shared.txn.lock().unwrap();
    txn.min_snap_ts = txn.watermark;
}

/// Pool-swap hook: expire pre-pass snapshots *and* drop the offset-keyed
/// commit timestamps — the old pool is about to be zeroed and its offsets
/// recycled, so stale map entries would alias future allocations.
/// Relocated versions intentionally read as timestamp 0.
pub(crate) fn on_clean_swap(shared: &ServerShared) {
    let mut txn = shared.txn.lock().unwrap();
    txn.min_snap_ts = txn.watermark;
    txn.commit_ts.clear();
}

/// Earliest deadline after which `sweep_expired` may have work to do; the
/// handler calls it from its receive loop.
pub(crate) fn sweep_expired(shared: &ServerShared) {
    let now = sim::now();
    let timeout = shared.cfg.txn_abort_timeout;
    let expired: Vec<Prepared> = {
        let mut txn = shared.txn.lock().unwrap();
        if txn.prepared.is_empty() {
            return;
        }
        let keys: Vec<(QpId, u64)> = txn
            .prepared
            .iter()
            .filter(|(_, p)| p.staged_at + timeout <= now)
            .map(|(k, _)| *k)
            .collect();
        keys.iter().filter_map(|k| txn.prepared.remove(k)).collect()
    };
    for p in expired {
        abort_staged(shared, &p.offs);
        shared.stats.txn_aborts.inc();
        shared.cfg.obs.tracer.event_args(
            Subsystem::Server,
            "txn_presumed_abort",
            &[("staged", p.offs.len() as u64)],
        );
    }
}

/// Validate a read set: each key's newest committed version must still
/// carry the observed `seq` (0 = key absent or deleted). A `PENDING` head
/// on a read key is a conflict — the in-doubt writer may commit first.
fn validate_reads(shared: &ServerShared, reads: &[(Vec<u8>, u32)]) -> Status {
    for (key, want) in reads {
        let fp = fingerprint(key);
        let cur_seq = match shared.ht.lookup(&shared.pool, fp) {
            None => 0,
            Some((_idx, entry)) => {
                let mut off = shared.current_off(&entry);
                let mut seq = 0u32;
                while off != 0 && off != NIL {
                    let hdr = ObjHeader::read_from(&shared.pool, off as usize);
                    if hdr.has(flags::VALID) {
                        if hdr.has(flags::PENDING) {
                            return Status::Conflict;
                        }
                        if !hdr.has(flags::TOMBSTONE) {
                            seq = hdr.seq;
                        }
                        break;
                    }
                    off = hdr.pre_ptr;
                }
                seq
            }
        };
        if cur_seq != *want {
            return Status::Conflict;
        }
    }
    Status::Ok
}

/// Stage one transactional write: append a fully persisted
/// `VALID | PENDING | DURABLE` version at the head of the key's chain.
/// Mirrors the plain-PUT insert path, except the value is written and
/// flushed server-side (it rode the RPC) and the version stays in-doubt
/// until published.
fn stage_put(shared: &ServerShared, key: &[u8], value: &[u8]) -> Result<u64, Status> {
    let fp = fingerprint(key);
    let size = layout::object_size(key.len(), value.len());
    let crc = crc32c(value);

    // ---- mutation block: no yields until the entry is linked ----
    let (idx, entry) = match shared.ht.lookup_or_claim(&shared.pool, fp) {
        Ok(v) => v,
        Err(HtError::TableFull) => return Err(Status::TableFull),
    };
    let prev = shared.current_off(&entry);
    if prev != 0 && prev != NIL {
        let ph = ObjHeader::read_from(&shared.pool, prev as usize);
        if ph.has(flags::VALID) && ph.has(flags::PENDING) {
            return Err(Status::Conflict);
        }
    }
    let pool_idx = shared.alloc_pool();
    let Some(off) = shared.logs[pool_idx].alloc(size) else {
        return Err(Status::NoSpace);
    };
    let hdr = ObjHeader {
        klen: key.len() as u16,
        vlen: value.len() as u32,
        flags: flags::VALID | flags::PENDING,
        pre_ptr: if prev == 0 { NIL } else { prev },
        next_ptr: NIL,
        crc,
        seq: entry.ctl.seq() as u32 + 1,
        alloc_time: sim::now(),
    };
    hdr.write_to(&shared.pool, off);
    shared.pool.write(off + hdr.key_off(), key);
    shared.pool.write(off + hdr.value_off(), value);
    if prev != 0 && prev != NIL {
        layout::set_next_ptr(&shared.pool, prev as usize, off as u64);
    }
    let mut lines = shared.pool.flush(off, size);
    layout::update_flags(&shared.pool, off, flags::DURABLE, 0);
    lines += shared.pool.flush(off, 8);
    shared.pool.drain();
    let slot = pool_idx;
    let ctl = if slot == entry.ctl.mark() {
        entry.ctl.bumped().with_new_valid(false)
    } else if entry.current() == 0 {
        entry.ctl.with_mark(slot).with_new_valid(false).bumped()
    } else {
        entry.ctl.bumped().with_new_valid(true)
    };
    shared.ht.set_slot(&shared.pool, idx, slot, off as u64);
    shared
        .ht
        .set_sizes(&shared.pool, idx, key.len() as u16, value.len() as u32);
    shared.ht.set_ctl(&shared.pool, idx, ctl);
    lines += shared.ht.persist_entry(&shared.pool, idx);
    // ---- end mutation block ----

    sim::work(
        shared.cost.cpu_hash_ns
            + shared.cost.cpu_alloc_ns
            + shared.cost.crc_hw(value.len())
            + shared.cost.flush(lines * efactory_pmem::LINE),
    );
    Ok(off as u64)
}

/// Abort staged versions: clear `VALID | PENDING` (single word-0 store per
/// version). The hash entries keep pointing at the dead heads; readers and
/// later writers walk past them, exactly like verifier-invalidated heads.
fn abort_staged(shared: &ServerShared, offs: &[u64]) {
    if offs.is_empty() {
        return;
    }
    let mut lines = 0;
    for &off in offs {
        layout::update_flags(&shared.pool, off as usize, 0, flags::VALID | flags::PENDING);
        lines += shared.pool.flush(off as usize, 8);
    }
    shared.pool.drain();
    sim::work(shared.cost.flush(lines * efactory_pmem::LINE));
}

/// Persist the commit record for `txn_id`: the transaction's durable
/// commit point. A normal log allocation, never linked into the hash
/// table; recovery scans the log for these.
///
/// Each staged version is named by `(key fingerprint, seq, value crc)`
/// rather than its raw log offset: log cleaning relocates versions (and
/// recycles whole pools), so an offset stops denoting "this write" the
/// moment the cleaner touches it, while the version identity survives any
/// number of relocations. The crc pins the value bytes, disambiguating
/// seq reuse after a bucket is dropped and recreated.
fn write_commit_record(shared: &ServerShared, txn_id: u64, offs: &[u64]) -> Result<(), Status> {
    let key = commit_record_key(txn_id);
    let mut value = Vec::with_capacity(offs.len() * 16);
    for &off in offs {
        let hdr = ObjHeader::read_from(&shared.pool, off as usize);
        let okey = layout::read_key(&shared.pool, off as usize, &hdr);
        value.extend_from_slice(&fingerprint(&okey).to_le_bytes());
        value.extend_from_slice(&hdr.seq.to_le_bytes());
        value.extend_from_slice(&hdr.crc.to_le_bytes());
    }
    let size = layout::object_size(key.len(), value.len());
    let pool_idx = shared.alloc_pool();
    let Some(off) = shared.logs[pool_idx].alloc(size) else {
        return Err(Status::NoSpace);
    };
    let hdr = ObjHeader {
        klen: key.len() as u16,
        vlen: value.len() as u32,
        flags: flags::VALID | flags::DURABLE,
        pre_ptr: NIL,
        next_ptr: NIL,
        crc: crc32c(&value),
        seq: 0,
        alloc_time: sim::now(),
    };
    hdr.write_to(&shared.pool, off);
    shared.pool.write(off + hdr.key_off(), &key);
    shared.pool.write(off + hdr.value_off(), &value);
    let lines = shared.pool.flush(off, size);
    shared.pool.drain();
    sim::work(shared.cost.cpu_alloc_ns + shared.cost.flush(lines * efactory_pmem::LINE));
    Ok(())
}

/// Publish staged versions: clear every `PENDING` bit, record the commit
/// timestamp, and advance the watermark — one no-yield block, so the whole
/// transaction becomes visible atomically. `ts = None` assigns a fresh
/// fused-commit timestamp; `Some` uses the 2PC coordinator's.
fn publish(shared: &ServerShared, offs: &[u64], ts: Option<u64>) -> u64 {
    let mut txn = shared.txn.lock().unwrap();
    let ts = ts.unwrap_or_else(|| (txn.watermark + 1).max(sim::now()));
    let mut lines = 0;
    for &off in offs {
        layout::update_flags(&shared.pool, off as usize, 0, flags::PENDING);
        lines += shared.pool.flush(off as usize, 8);
        txn.commit_ts.insert(off, ts);
    }
    txn.watermark = txn.watermark.max(ts);
    drop(txn);
    if !offs.is_empty() {
        shared.pool.drain();
        sim::work(shared.cost.flush(lines * efactory_pmem::LINE));
    }
    ts
}

/// Record the commit timestamp of a plain (non-transactional) PUT/DEL.
/// Called by the insert path right after the version is linked, so plain
/// writes order correctly against snapshots.
pub(crate) fn note_plain_commit(shared: &ServerShared, off: u64) {
    let mut txn = shared.txn.lock().unwrap();
    let ts = (txn.watermark + 1).max(sim::now());
    txn.watermark = ts;
    txn.commit_ts.insert(off, ts);
}

fn txn_ack(status: Status, commit_ts: u64) -> Response {
    Response::TxnAck { status, commit_ts }
}

/// Fused single-shard transaction: validate → stage → commit record →
/// publish, all inside one RPC (the handler is a single process, so no
/// other RPC observes the intermediate state — only crashes and one-sided
/// reads can, and both are handled by `PENDING` + the commit record).
pub(crate) fn handle_txn_commit(
    shared: &ServerShared,
    rpc: (QpId, u64),
    txn_id: u64,
    reads: &[(Vec<u8>, u32)],
    puts: &[(Vec<u8>, Vec<u8>)],
) -> Response {
    let mut sp = shared.cfg.obs.tracer.span(Subsystem::Server, "rpc_txn");
    sp.arg("qp", rpc.0);
    sp.arg("req", rpc.1);
    sp.arg("txn", txn_id);
    sp.arg("puts", puts.len() as u64);
    sim::work(shared.cost.cpu_req_handle_ns);
    if shared.phase() != CleanPhase::Normal {
        return txn_ack(Status::Busy, 0);
    }
    let v = validate_reads(shared, reads);
    if v != Status::Ok {
        shared.stats.txn_conflicts.inc();
        return txn_ack(v, 0);
    }
    let mut offs = Vec::with_capacity(puts.len());
    for (key, value) in puts {
        match stage_put(shared, key, value) {
            Ok(off) => offs.push(off),
            Err(status) => {
                abort_staged(shared, &offs);
                if status == Status::Conflict {
                    shared.stats.txn_conflicts.inc();
                }
                return txn_ack(status, 0);
            }
        }
    }
    if let Err(status) = write_commit_record(shared, txn_id, &offs) {
        abort_staged(shared, &offs);
        return txn_ack(status, 0);
    }
    let ts = publish(shared, &offs, None);
    shared.stats.txn_commits.inc();
    txn_ack(Status::Ok, ts)
}

/// 2PC phase 1: validate + stage, register the in-doubt transaction, and
/// return the shard's commit clock (the coordinator's timestamp must
/// exceed every participant's clock).
pub(crate) fn handle_txn_prepare(
    shared: &ServerShared,
    rpc: (QpId, u64),
    txn_id: u64,
    reads: &[(Vec<u8>, u32)],
    puts: &[(Vec<u8>, Vec<u8>)],
) -> Response {
    let mut sp = shared
        .cfg
        .obs
        .tracer
        .span(Subsystem::Server, "rpc_txn_prepare");
    sp.arg("qp", rpc.0);
    sp.arg("req", rpc.1);
    sp.arg("txn", txn_id);
    sim::work(shared.cost.cpu_req_handle_ns);
    shared.stats.txn_prepares.inc();
    if shared.phase() != CleanPhase::Normal {
        return txn_ack(Status::Busy, 0);
    }
    if shared
        .txn
        .lock()
        .unwrap()
        .prepared
        .contains_key(&(rpc.0, txn_id))
    {
        // A txn id is used for one attempt only; a duplicate prepare that
        // escaped the request-id dedup window is a protocol error.
        return txn_ack(Status::Conflict, 0);
    }
    let v = validate_reads(shared, reads);
    if v != Status::Ok {
        shared.stats.txn_conflicts.inc();
        return txn_ack(v, 0);
    }
    let mut offs = Vec::with_capacity(puts.len());
    for (key, value) in puts {
        match stage_put(shared, key, value) {
            Ok(off) => offs.push(off),
            Err(status) => {
                abort_staged(shared, &offs);
                if status == Status::Conflict {
                    shared.stats.txn_conflicts.inc();
                }
                return txn_ack(status, 0);
            }
        }
    }
    let clock = {
        let mut txn = shared.txn.lock().unwrap();
        txn.prepared.insert(
            (rpc.0, txn_id),
            Prepared {
                offs,
                staged_at: sim::now(),
            },
        );
        txn.watermark.max(sim::now())
    };
    txn_ack(Status::Ok, clock)
}

/// 2PC phase 2: publish at the coordinator's timestamp, or abort. A
/// commit decision for an unknown transaction means the presumed-abort
/// sweep already reclaimed it — reported as `Conflict`.
pub(crate) fn handle_txn_decide(
    shared: &ServerShared,
    rpc: (QpId, u64),
    txn_id: u64,
    commit: bool,
    commit_ts: u64,
) -> Response {
    let mut sp = shared
        .cfg
        .obs
        .tracer
        .span(Subsystem::Server, "rpc_txn_decide");
    sp.arg("qp", rpc.0);
    sp.arg("req", rpc.1);
    sp.arg("txn", txn_id);
    sp.arg("commit", u64::from(commit));
    sim::work(shared.cost.cpu_req_handle_ns);
    shared.stats.txn_decides.inc();
    let p = shared.txn.lock().unwrap().prepared.remove(&(rpc.0, txn_id));
    match p {
        None => {
            if commit {
                shared.stats.txn_conflicts.inc();
                txn_ack(Status::Conflict, 0)
            } else {
                txn_ack(Status::Ok, 0)
            }
        }
        Some(p) => {
            if commit {
                if let Err(status) = write_commit_record(shared, txn_id, &p.offs) {
                    abort_staged(shared, &p.offs);
                    shared.stats.txn_aborts.inc();
                    return txn_ack(status, 0);
                }
                publish(shared, &p.offs, Some(commit_ts));
                shared.stats.txn_commits.inc();
                txn_ack(Status::Ok, commit_ts)
            } else {
                abort_staged(shared, &p.offs);
                shared.stats.txn_aborts.inc();
                txn_ack(Status::Ok, 0)
            }
        }
    }
}

/// Capture this shard's snapshot clock: bump the watermark to `now` and
/// return it. Every later commit gets a strictly larger timestamp, and
/// every commit acknowledged before this call is at or below it.
pub(crate) fn handle_snap_capture(shared: &ServerShared, rpc: (QpId, u64)) -> Response {
    let mut sp = shared
        .cfg
        .obs
        .tracer
        .span(Subsystem::Server, "rpc_snap_capture");
    sp.arg("qp", rpc.0);
    sp.arg("req", rpc.1);
    sim::work(shared.cost.cpu_req_handle_ns);
    shared.stats.snap_captures.inc();
    if shared.phase() != CleanPhase::Normal {
        return Response::Snap {
            status: Status::Busy,
            watermark: 0,
        };
    }
    let wm = {
        let mut txn = shared.txn.lock().unwrap();
        txn.watermark = txn.watermark.max(sim::now());
        txn.watermark
    };
    Response::Snap {
        status: Status::Ok,
        watermark: wm,
    }
}

/// MVCC snapshot read: serve the newest committed version with
/// `commit_ts <= snap_ts`, without blocking writers. An in-doubt
/// (`PENDING`) head returns `Busy` — Percolator-style read-blocks-on-lock,
/// bounded by the decide RPC or the presumed-abort sweep. A chosen version
/// that is not yet durable (plain PUT whose one-sided value write is still
/// landing) is persisted on demand, or `Busy` while the bytes are in
/// flight.
pub(crate) fn handle_snap_get(
    shared: &ServerShared,
    rpc: (QpId, u64),
    key: &[u8],
    snap_ts: u64,
) -> Response {
    let mut sp = shared
        .cfg
        .obs
        .tracer
        .span(Subsystem::Server, "rpc_snap_get");
    sp.arg("qp", rpc.0);
    sp.arg("req", rpc.1);
    sim::work(shared.cost.cpu_req_handle_ns + shared.cost.cpu_hash_ns);
    shared.stats.snap_gets.inc();
    let resp = |status: Status, obj_off: u64, klen: u16, vlen: u32| Response::Get {
        status,
        obj_off,
        klen,
        vlen,
    };
    let not_found = resp(Status::NotFound, 0, 0, 0);
    let busy = resp(Status::Busy, 0, 0, 0);
    if shared.phase() != CleanPhase::Normal {
        shared.stats.snap_busy.inc();
        return busy;
    }
    let fp = fingerprint(key);
    let Some((_idx, entry)) = shared.ht.lookup(&shared.pool, fp) else {
        return not_found;
    };
    let mut off = shared.current_off(&entry);
    // Deliberate-stale-read mutation for the checker's negative test: skip
    // the newest eligible version once, serving its predecessor.
    let mut skip_newest = shared.cfg.snap_serve_stale;
    // The walk holds the timestamp map's lock but never yields, so the
    // chosen version is consistent with a single instant of the map.
    let chosen = {
        let txn = shared.txn.lock().unwrap();
        if snap_ts < txn.min_snap_ts {
            // Snapshot predates the cleaner's compaction horizon:
            // relocated versions read as timestamp 0 and would leak into
            // it. The client must capture a fresh snapshot.
            return resp(Status::Expired, 0, 0, 0);
        }
        let mut chosen = None;
        while off != 0 && off != NIL {
            let hdr = ObjHeader::read_from(&shared.pool, off as usize);
            if !hdr.has(flags::VALID) {
                off = hdr.pre_ptr;
                continue;
            }
            if hdr.has(flags::PENDING) {
                chosen = Some(Err(())); // in-doubt: wait for the decision
                break;
            }
            let ts = txn.commit_ts.get(&off).copied().unwrap_or(0);
            if ts > snap_ts {
                off = hdr.pre_ptr;
                continue;
            }
            if skip_newest {
                skip_newest = false;
                off = hdr.pre_ptr;
                continue;
            }
            chosen = Some(Ok((off, hdr)));
            break;
        }
        chosen
    };
    match chosen {
        None => not_found,
        Some(Err(())) => {
            shared.stats.snap_busy.inc();
            busy
        }
        Some(Ok((off, hdr))) => {
            if hdr.has(flags::TOMBSTONE) {
                return not_found;
            }
            if hdr.has(flags::DURABLE) {
                return resp(Status::Ok, off, hdr.klen, hdr.vlen);
            }
            sim::work(shared.cost.crc_hw(hdr.vlen as usize));
            if shared.crc_matches(off as usize, &hdr) {
                let lines = shared.persist_object(off as usize, &hdr);
                sim::work(shared.cost.flush(lines * efactory_pmem::LINE));
                shared.stats.gets_persisted_on_demand.inc();
                resp(Status::Ok, off, hdr.klen, hdr.vlen)
            } else {
                // Value bytes still in flight (or torn — the verifier will
                // invalidate it within its timeout): retry.
                shared.stats.snap_busy.inc();
                busy
            }
        }
    }
}

/// Scan recovered object offsets for durable commit records; returns the
/// set of `(key fingerprint, seq, value crc)` version identities those
/// records name. Used by recovery to decide which `PENDING` versions
/// committed. Identity-based (not offset-based) so records stay valid
/// across log cleaning: a relocated copy carries the same key, seq, and
/// value bytes as the staged original the record vouched for.
pub fn committed_versions(pool: &PmemPool, objs: &[usize]) -> HashSet<(u64, u32, u32)> {
    let mut committed = HashSet::new();
    for &off in objs {
        let hdr = ObjHeader::read_from(pool, off);
        if hdr.klen as usize != commit_record_key(0).len() || !hdr.has(flags::VALID) {
            continue;
        }
        let key = layout::read_key(pool, off, &hdr);
        if &key[..8] != COMMIT_MAGIC {
            continue;
        }
        let value = layout::read_value(pool, off, &hdr);
        if crc32c(&value) != hdr.crc || !value.len().is_multiple_of(16) {
            continue; // torn record: the transaction never committed
        }
        for chunk in value.chunks_exact(16) {
            committed.insert((
                u64::from_le_bytes(chunk[..8].try_into().unwrap()),
                u32::from_le_bytes(chunk[8..12].try_into().unwrap()),
                u32::from_le_bytes(chunk[12..16].try_into().unwrap()),
            ));
        }
    }
    committed
}

// ---------------------------------------------------------------------------
// Client side
// ---------------------------------------------------------------------------

/// A captured snapshot: read timestamp plus the per-shard clock vector it
/// was derived from (kept for diagnostics and the consistency checker).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TxnSnapshot {
    /// Snapshot read timestamp: the minimum of `vector`.
    pub ts: u64,
    /// The captured per-shard clocks, indexed by shard.
    pub vector: Vec<u64>,
}

/// Outcome of a raw per-shard snapshot read.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapOutcome {
    /// The value visible at the snapshot.
    Value(Vec<u8>),
    /// No version visible at the snapshot (absent or deleted).
    NotFound,
    /// In-doubt head or in-flight value — retry shortly.
    Busy,
    /// Snapshot older than the cleaner's compaction horizon — capture a
    /// fresh one; retrying the same timestamp can never succeed.
    Expired,
}

/// Raw per-shard transactional RPCs. Implemented by [`crate::Client`] and
/// the failover-aware [`crate::ReplClient`]; the generic multi-shard
/// drivers below are written against this trait so sharded and replicated
/// clients share one coordinator.
pub trait TxnShard {
    /// Fused single-shard commit; returns `(status, commit_ts)`.
    fn shard_txn_commit(
        &self,
        txn_id: u64,
        reads: &[(Vec<u8>, u32)],
        puts: &[(Vec<u8>, Vec<u8>)],
    ) -> Result<(Status, u64), StoreError>;
    /// 2PC prepare; returns `(status, shard clock)`.
    fn shard_txn_prepare(
        &self,
        txn_id: u64,
        reads: &[(Vec<u8>, u32)],
        puts: &[(Vec<u8>, Vec<u8>)],
    ) -> Result<(Status, u64), StoreError>;
    /// 2PC decide.
    fn shard_txn_decide(
        &self,
        txn_id: u64,
        commit: bool,
        commit_ts: u64,
    ) -> Result<Status, StoreError>;
    /// Capture the shard's snapshot clock.
    fn shard_snap_capture(&self) -> Result<(Status, u64), StoreError>;
    /// Snapshot read at `snap_ts`.
    fn shard_snap_get(&self, key: &[u8], snap_ts: u64) -> Result<SnapOutcome, StoreError>;
    /// Read a key together with the version sequence number the server
    /// will validate a read-modify-write against (`0` = absent).
    fn shard_get_with_seq(&self, key: &[u8]) -> Result<(Option<Vec<u8>>, u32), StoreError>;
}

/// The transactional client surface. Object-safe so the harness can drive
/// any store through `Box<dyn TxnKv>`.
pub trait TxnKv {
    /// Atomically write every `(key, value)` pair (all-or-nothing, exactly
    /// once). Returns the commit timestamp.
    fn txn_put_all(&self, puts: &[(Vec<u8>, Vec<u8>)]) -> Result<u64, StoreError>;
    /// CAS-style read-modify-write of one key: read, apply `f`, commit iff
    /// the key is unchanged; retried on conflict. Returns the commit
    /// timestamp.
    fn txn_rmw(
        &self,
        key: &[u8],
        f: &mut dyn FnMut(Option<Vec<u8>>) -> Vec<u8>,
    ) -> Result<u64, StoreError>;
    /// Capture a consistent snapshot across all shards.
    fn snapshot(&self) -> Result<TxnSnapshot, StoreError>;
    /// Read `key` as of `snap` — sees a consistent cut: a multi-key
    /// transaction is either entirely visible or entirely invisible.
    fn snap_get(&self, key: &[u8], snap: &TxnSnapshot) -> Result<Option<Vec<u8>>, StoreError>;
}

/// Bounded client-side retry budget for transactional conflicts/busy.
const TXN_RETRY_LIMIT: usize = 512;
/// Backoff between transactional retries.
const TXN_BACKOFF: sim::Nanos = sim::micros(2);

fn bump(next: &Cell<u64>) -> u64 {
    let id = next.get();
    next.set(id + 1);
    id
}

/// Multi-shard `txn_put_all` driver: last-write-wins key dedup, group by
/// shard, then either a fused single-shard commit or client-coordinated
/// 2PC in deterministic shard order.
pub fn put_all_routed<C: TxnShard>(
    clients: &[C],
    next_txn_id: &Cell<u64>,
    puts: &[(Vec<u8>, Vec<u8>)],
) -> Result<u64, StoreError> {
    let shards = clients.len();
    // Duplicate keys in one write set would self-conflict at staging:
    // collapse to the last write per key.
    let mut dedup: Vec<(Vec<u8>, Vec<u8>)> = Vec::with_capacity(puts.len());
    for (k, v) in puts {
        if let Some(e) = dedup.iter_mut().find(|(dk, _)| dk == k) {
            e.1 = v.clone();
        } else {
            dedup.push((k.clone(), v.clone()));
        }
    }
    let mut groups: Vec<Vec<(Vec<u8>, Vec<u8>)>> = vec![Vec::new(); shards];
    for (k, v) in dedup {
        let s = shard_of(&k, shards);
        groups[s].push((k, v));
    }
    let touched: Vec<usize> = (0..shards).filter(|&i| !groups[i].is_empty()).collect();
    if touched.is_empty() {
        return Ok(0);
    }

    for attempt in 0..TXN_RETRY_LIMIT {
        let txn_id = bump(next_txn_id);
        if touched.len() == 1 {
            let i = touched[0];
            match clients[i].shard_txn_commit(txn_id, &[], &groups[i])? {
                (Status::Ok, ts) => return Ok(ts),
                (Status::Busy | Status::Conflict, _) => {
                    sim::sleep(TXN_BACKOFF << attempt.min(4));
                    continue;
                }
                (status, _) => return Err(StoreError::Status(status)),
            }
        }
        // 2PC: prepare every touched shard in index order, then decide.
        let mut clocks = Vec::with_capacity(touched.len());
        let mut prepared: Vec<usize> = Vec::with_capacity(touched.len());
        let mut retry = false;
        for &i in &touched {
            match clients[i].shard_txn_prepare(txn_id, &[], &groups[i])? {
                (Status::Ok, clock) => {
                    clocks.push(clock);
                    prepared.push(i);
                }
                (Status::Busy | Status::Conflict, _) => {
                    retry = true;
                    break;
                }
                (status, _) => {
                    for &j in &prepared {
                        clients[j].shard_txn_decide(txn_id, false, 0)?;
                    }
                    return Err(StoreError::Status(status));
                }
            }
        }
        if retry {
            for &j in &prepared {
                clients[j].shard_txn_decide(txn_id, false, 0)?;
            }
            sim::sleep(TXN_BACKOFF << attempt.min(4));
            continue;
        }
        // Strictly above every participant's clock, so no shard's snapshot
        // captured before its prepare can cover this commit.
        let ts = (clocks.iter().copied().max().unwrap() + 1).max(sim::now());
        for &i in &touched {
            match clients[i].shard_txn_decide(txn_id, true, ts)? {
                Status::Ok => {}
                // Presumed abort fired on a participant after others
                // committed — unreachable while the abort timeout exceeds
                // the worst-case decide latency; surfaced, not masked.
                status => return Err(StoreError::Status(status)),
            }
        }
        return Ok(ts);
    }
    Err(StoreError::Status(Status::Busy))
}

/// Routed read-modify-write: single-key, so always a fused commit on the
/// owning shard, retried on conflict with a fresh read.
pub fn rmw_routed<C: TxnShard>(
    clients: &[C],
    next_txn_id: &Cell<u64>,
    key: &[u8],
    f: &mut dyn FnMut(Option<Vec<u8>>) -> Vec<u8>,
) -> Result<u64, StoreError> {
    let c = &clients[shard_of(key, clients.len())];
    for attempt in 0..TXN_RETRY_LIMIT {
        let (val, seq) = c.shard_get_with_seq(key)?;
        let new = f(val);
        let txn_id = bump(next_txn_id);
        match c.shard_txn_commit(txn_id, &[(key.to_vec(), seq)], &[(key.to_vec(), new)])? {
            (Status::Ok, ts) => return Ok(ts),
            (Status::Conflict | Status::Busy, _) => {
                sim::sleep(TXN_BACKOFF << attempt.min(4));
            }
            (status, _) => return Err(StoreError::Status(status)),
        }
    }
    Err(StoreError::Status(Status::Conflict))
}

/// Capture every shard's clock; the snapshot reads at the minimum.
pub fn snapshot_all<C: TxnShard>(clients: &[C]) -> Result<TxnSnapshot, StoreError> {
    let mut vector = Vec::with_capacity(clients.len());
    for c in clients {
        let mut attempt = 0;
        let wm = loop {
            match c.shard_snap_capture()? {
                (Status::Ok, wm) => break wm,
                (Status::Busy, _) if attempt < TXN_RETRY_LIMIT => {
                    attempt += 1;
                    sim::sleep(TXN_BACKOFF);
                }
                (status, _) => return Err(StoreError::Status(status)),
            }
        };
        vector.push(wm);
    }
    let ts = vector.iter().copied().min().unwrap_or(0);
    Ok(TxnSnapshot { ts, vector })
}

/// Routed snapshot read with bounded retry on in-doubt/in-flight versions.
pub fn snap_get_routed<C: TxnShard>(
    clients: &[C],
    key: &[u8],
    snap: &TxnSnapshot,
) -> Result<Option<Vec<u8>>, StoreError> {
    let c = &clients[shard_of(key, clients.len())];
    for _ in 0..TXN_RETRY_LIMIT {
        match c.shard_snap_get(key, snap.ts)? {
            SnapOutcome::Value(v) => return Ok(Some(v)),
            SnapOutcome::NotFound => return Ok(None),
            SnapOutcome::Busy => sim::sleep(TXN_BACKOFF),
            // Cleaning compacted past this snapshot while we held it:
            // retrying the same timestamp can never succeed — the caller
            // must re-capture.
            SnapOutcome::Expired => return Err(StoreError::Status(Status::Expired)),
        }
    }
    Err(StoreError::Status(Status::Busy))
}
