//! # efactory — fast and consistent remote direct access to non-volatile memory
//!
//! Reproduction of the eFactory system (Du, Wang, Feng, Li, Li — ICPP 2021):
//! a multi-version, log-structured remote key-value store over RDMA + NVM
//! that provides crash consistency without giving up read or write
//! performance.
//!
//! The three ideas, and where they live:
//!
//! 1. **Multi-version log structuring** ([`layout`], [`log`],
//!    [`hashtable`]) — objects are updated out-of-place in an append-only
//!    data pool; each key's versions form a linked list headed by a hash
//!    entry, so a previous intact version is always reachable for recovery.
//! 2. **Background verification and persisting** ([`verifier`],
//!    [`server`]) — PUTs use the client-active scheme (server only
//!    allocates and updates metadata; the client DMAs the value with a
//!    one-sided RDMA write) with *asynchronous* durability: a single
//!    background process CRC-verifies landed values and flushes them to
//!    NVM, setting the durability flag embedded in the object. CRC and
//!    flush costs vanish from both critical paths.
//! 3. **Hybrid read** ([`client`]) — GETs first try the pure one-sided
//!    path (read hash entry, read object, check the durability flag); only
//!    objects the background process has not yet persisted fall back to the
//!    RPC+RDMA path, where the server persists on demand ("selective
//!    durability guarantee") before exposing the object.
//!
//! Log cleaning ([`cleaner`]) reclaims stale versions with the paper's
//! two-stage compress/merge scheme over dual data pools, while serving
//! requests; [`recovery`] rebuilds a consistent store from the post-crash
//! media image.
//!
//! The comparison systems of the paper (SAW, IMM, Erda, Forca, …) are built
//! on these same modules in the `efactory-baselines` crate.
//!
//! Everything runs on simulated substrates (`efactory-sim`,
//! `efactory-pmem`, `efactory-rnic`) — see `DESIGN.md` at the repository
//! root for the substitution rationale.

pub mod cleaner;
pub mod client;
pub mod cluster;
pub mod hashtable;
pub mod inspect;
pub mod layout;
pub mod log;
pub mod pipeline;
pub mod protocol;
pub mod recovery;
pub mod repl;
pub mod scrub;
pub mod server;
pub mod shard;
pub mod txn;
pub mod verifier;

pub use client::{Client, ClientConfig, GetOutcome, RemoteKv};
pub use cluster::placement::{key_shard, PlacementMap};
pub use cluster::{Cluster, ClusterClient, ClusterConfig, MigrationReport};
pub use pipeline::{OpCompletion, OpKind, PipelineConfig, PipelinedClient};
pub use protocol::{Status, StoreError};
pub use repl::{
    ReplClient, ReplShardedClient, ReplStats, ReplTarget, ReplicatedCluster, ReplicatedDesc,
    ReplicatedServer,
};
pub use server::{Server, ServerConfig, ServerStats, StoreDesc};
pub use shard::{shard_of, ShardedClient, ShardedDesc, ShardedServer};
pub use txn::{SnapOutcome, TxnKv, TxnShard, TxnSnapshot};
