//! The background verification and persisting process (paper §4.3.2).
//!
//! A single process walks the data pool from its head, object by object:
//!
//! * objects whose durability flag is already set (persisted by a GET
//!   handler in the meantime) are skipped;
//! * otherwise the value's CRC is computed and compared with the recorded
//!   CRC — a match means the client's one-sided RDMA write has fully
//!   landed, so the object is flushed to NVM and its durability flag set;
//! * a mismatch means the write is still in flight (or was torn by a lost
//!   client): the cursor *waits* on the object, bounded by the configured
//!   timeout, after which the object is marked invalid and the cursor
//!   moves on (the space is reclaimed by log cleaning).
//!
//! The head-of-line wait is the paper's "operates each object one by one";
//! objects behind a stuck head are still made durable on demand by the GET
//! handler (`ensure_durable_version`), and the durability flag lets this
//! process skip them later — exactly the interplay §4.3.2 describes.
//!
//! The cursor is epoch-guarded against log cleaning: when the cleaner swaps
//! pools it bumps `clean_epoch` and repoints the cursor; a step that
//! observes a stale epoch abandons its cursor update.

use std::sync::atomic::Ordering;
use std::sync::Arc;

use efactory_obs::Subsystem;
use efactory_rnic::Fabric;
use efactory_sim as sim;

use crate::layout::{flags, ObjHeader};
use crate::repl::Mirror;
use crate::server::{MigrateSlot, ServerShared};

/// Outcome of one verifier step (exposed for tests).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StepOutcome {
    /// Nothing between the cursor and the log head.
    Idle,
    /// Skipped an object that was already durable or invalid.
    Skipped,
    /// Verified + persisted an object.
    Persisted,
    /// CRC mismatch, object still within its timeout — waiting.
    Waiting,
    /// CRC mismatch past the timeout — object invalidated.
    Invalidated,
}

/// Run the verifier until the server stops.
///
/// With `cfg.doorbell_batch > 1` the per-object flush fence is batched:
/// the CLWBs of each persisted object still issue per object (inside
/// `persist_object`, which is what makes the data durable in this model),
/// but the fence's base cost is charged once per batch — one drain covers
/// the whole chain of flushes, mirroring the doorbell-batched recv ring.
/// The fence is forced before the verifier sleeps, so no persisted-but-
/// unfenced object outlives an idle period.
pub fn run(shared: &ServerShared) {
    run_with_mirror(shared, None, None)
}

/// Run the verifier, optionally mirroring the log to a backup replica.
///
/// The verifier is the replication point: every object it advances past —
/// persisted, already durable, or invalidated — is pushed to the mirror,
/// which coalesces contiguous runs and ships them to the backup with one
/// doorbell-batched `rdma_write_imm` per run (see [`crate::repl`]). The
/// mirror is flushed before every idle sleep, so a quiescent primary never
/// sits on an unshipped tail.
pub fn run_with_mirror(
    shared: &ServerShared,
    fabric: Option<&Arc<Fabric>>,
    mut mirror: Option<Mirror>,
) {
    let batch = shared.cfg.doorbell_batch.max(1);
    let mut unfenced = 0usize;
    // Live-migration delta stream: attached mid-run through the
    // `migrate_out` slot (see [`MigrateSlot`]); ships the same hole-free
    // object stream as the replication mirror, aimed at the destination's
    // copy pool. The slot poll is a plain mutex with no simulated-time
    // cost, so runs that never migrate replay byte-identically.
    let mut delta: Option<Mirror> = None;
    while !shared.stopping() {
        poll_migrate_slot(shared, fabric, &mut delta);
        let fence = |unfenced: &mut usize| {
            if *unfenced > 0 {
                sim::work(shared.cost.flush_base_ns);
                *unfenced = 0;
            }
        };
        let (outcome, mirrored) = step_inner(shared, batch > 1);
        if let Some((off, size)) = mirrored {
            if let Some(m) = mirror.as_mut() {
                m.push(shared, off, size);
            }
            if let Some(d) = delta.as_mut() {
                d.push(shared, off, size);
            }
        }
        match outcome {
            StepOutcome::Idle | StepOutcome::Waiting => {
                fence(&mut unfenced);
                if let Some(m) = mirror.as_mut() {
                    m.flush(shared);
                }
                if let Some(d) = delta.as_mut() {
                    d.flush(shared);
                }
                sim::sleep(shared.cfg.verify_idle)
            }
            StepOutcome::Persisted if batch > 1 => {
                unfenced += 1;
                if unfenced >= batch {
                    fence(&mut unfenced);
                }
            }
            StepOutcome::Skipped | StepOutcome::Persisted | StepOutcome::Invalidated => {
                // `step` charged simulated work, which already yielded.
            }
        }
    }
}

/// Service the migration rendezvous slot: connect the delta mirror on
/// `Attach` (acking with the cursor at attach — the snapshot copy's upper
/// bound), flush and drop it on `Detach`.
fn poll_migrate_slot(
    shared: &ServerShared,
    fabric: Option<&Arc<Fabric>>,
    delta: &mut Option<Mirror>,
) {
    let mut slot = shared.migrate_out.lock().unwrap();
    match &*slot {
        MigrateSlot::Attach(target) => {
            let connected = fabric.and_then(|f| Mirror::connect(f, shared, target));
            *slot = match connected {
                Some(m) => {
                    *delta = Some(m);
                    MigrateSlot::Active {
                        cursor: shared.cursor.load(Ordering::Relaxed),
                    }
                }
                None => MigrateSlot::Failed,
            };
        }
        MigrateSlot::Detach => {
            drop(slot);
            if let Some(mut d) = delta.take() {
                d.flush(shared);
            }
            *shared.migrate_out.lock().unwrap() = MigrateSlot::Idle;
        }
        _ => {}
    }
}

/// Execute one verifier step. Public so tests can drive the verifier
/// deterministically without the surrounding loop. Always charges the
/// per-object fence (the unbatched behavior).
pub fn step(shared: &ServerShared) -> StepOutcome {
    step_inner(shared, false).0
}

/// One verifier step plus the mirror candidate: `(outcome, Some((off,
/// size)))` whenever the cursor advanced past an object. Every advanced
/// object is a candidate — including invalidated ones — so the mirrored
/// backup log is a hole-free prefix of the primary's (recovery scans stop
/// at the first hole, so a gap would truncate the backup's replay).
fn step_inner(shared: &ServerShared, defer_fence: bool) -> (StepOutcome, Option<(usize, usize)>) {
    let epoch = shared.clean_epoch.load(Ordering::Relaxed);
    let pool_idx = shared.cursor_pool.load(Ordering::Relaxed);
    let cur = shared.cursor.load(Ordering::Relaxed) as usize;
    let region = &shared.logs[pool_idx];
    if cur >= region.head() {
        return (StepOutcome::Idle, None);
    }

    let hdr = ObjHeader::read_from(&shared.pool, cur);
    let size = hdr.object_size();
    debug_assert!(size > 0 && region.contains(cur));

    let advance = |shared: &ServerShared| {
        // Only move the cursor if cleaning has not swapped pools under us.
        if shared.clean_epoch.load(Ordering::Relaxed) == epoch {
            shared.cursor.store((cur + size) as u64, Ordering::Relaxed);
        }
    };

    if hdr.has(flags::VALID) && hdr.has(flags::PENDING) {
        // In-doubt transactional version: its resolution (publish vs
        // abort) is a later word-0 flag change the mirror would miss once
        // the cursor advances past it. Wait — resolution is bounded by the
        // decide RPC or the presumed-abort sweep — so the backup only ever
        // receives resolved bytes.
        return (StepOutcome::Waiting, None);
    }

    if !hdr.has(flags::VALID) || hdr.has(flags::DURABLE) {
        sim::work(shared.cfg.verify_step_cost);
        advance(shared);
        return (StepOutcome::Skipped, Some((cur, size)));
    }

    // CRC over the value (tombstones have vlen == 0 and match trivially).
    // eFactory's own verifier uses the ISA-accelerated CRC and issues its
    // CLWBs asynchronously (they drain while the next object is checked),
    // so only the fence's base cost lands on this thread.
    let mut sp = shared
        .cfg
        .obs
        .tracer
        .span(Subsystem::Verifier, "crc_verify");
    sp.arg("off", cur as u64);
    sim::work(shared.cfg.verify_step_cost + shared.cost.crc_hw(hdr.vlen as usize));
    let matched = shared.crc_matches(cur, &hdr);
    drop(sp);
    if matched {
        let mut fl = shared.cfg.obs.tracer.span(Subsystem::Verifier, "flush");
        fl.arg("off", cur as u64);
        let lines = shared.persist_object(cur, &hdr);
        fl.arg("lines", lines as u64);
        if !defer_fence {
            sim::work(shared.cost.flush_base_ns);
        }
        drop(fl);
        shared.stats.bg_verified.inc();
        advance(shared);
        return (StepOutcome::Persisted, Some((cur, size)));
    }

    // Incomplete: wait for the write to land, bounded by the timeout.
    if sim::now().saturating_sub(hdr.alloc_time) > shared.cfg.verify_timeout {
        crate::layout::update_flags(&shared.pool, cur, 0, flags::VALID);
        let lines = shared.pool.flush(cur, 8);
        shared.pool.drain();
        sim::work(shared.cost.flush(lines * efactory_pmem::LINE));
        shared.stats.bg_timeouts.inc();
        shared
            .cfg
            .obs
            .tracer
            .event_args(Subsystem::Verifier, "invalidate", &[("off", cur as u64)]);
        advance(shared);
        return (StepOutcome::Invalidated, Some((cur, size)));
    }
    (StepOutcome::Waiting, None)
}
