//! Offline store inspection: walk a (possibly post-crash) NVM image and
//! report its structure — live keys, version-chain depths, durability and
//! persistence ratios, space accounting. The `store_inspect` example and
//! several tests use it; it is also the debugging tool you want first when
//! a consistency test fails.
//!
//! Inspection is read-only and does not require a running server.

use std::collections::HashMap;

use efactory_checksum::crc32c;
use efactory_pmem::PmemPool;

use crate::layout::{self, flags, ObjHeader, NIL};
use crate::log::StoreLayout;

/// Classification of one object version found in a data pool.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum VersionState {
    /// Durability flag set; bytes identical in working and media images.
    DurablePersisted,
    /// Durability flag set but bytes not yet on media — only legal
    /// transiently (between flag write and flush it is a bug; after a
    /// clean shutdown it must not appear).
    DurableVolatile,
    /// CRC matches but the flag is clear: landed, awaiting verification.
    IntactUnverified,
    /// Valid but CRC mismatch: value still in flight (or torn).
    Incomplete,
    /// Invalidated by the verifier timeout.
    Invalid,
    /// Tombstone (deleted key marker).
    Tombstone,
}

/// Full report over a store image.
#[derive(Debug, Clone, Default)]
pub struct StoreReport {
    /// Occupied hash buckets (live keys, including tombstoned ones).
    pub keys: usize,
    /// Keys whose current version is a tombstone.
    pub tombstoned: usize,
    /// Version-state histogram over every reachable version.
    pub versions: HashMap<VersionState, usize>,
    /// Total reachable versions (sum of the histogram).
    pub total_versions: usize,
    /// Longest version chain.
    pub max_chain: usize,
    /// Bytes used in each pool.
    pub pool_used: [usize; 2],
    /// Reachable live bytes (current versions only).
    pub live_bytes: usize,
    /// Problems found (entry → description). Empty on a healthy image.
    pub violations: Vec<String>,
}

impl StoreReport {
    /// Count for one state.
    pub fn count(&self, s: VersionState) -> usize {
        self.versions.get(&s).copied().unwrap_or(0)
    }

    /// Human-readable rendering.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "keys: {} ({} tombstoned)\nversions: {} (max chain {})\n",
            self.keys, self.tombstoned, self.total_versions, self.max_chain
        ));
        let mut states: Vec<_> = self.versions.iter().collect();
        states.sort_by_key(|(s, _)| format!("{s:?}"));
        for (s, n) in states {
            out.push_str(&format!("  {s:?}: {n}\n"));
        }
        out.push_str(&format!(
            "pool A used: {} B, pool B used: {} B, live bytes: {}\n",
            self.pool_used[0], self.pool_used[1], self.live_bytes
        ));
        if self.violations.is_empty() {
            out.push_str("no violations\n");
        } else {
            for v in &self.violations {
                out.push_str(&format!("VIOLATION: {v}\n"));
            }
        }
        out
    }
}

/// Classify the version at `off`.
fn classify(pool: &PmemPool, off: usize, hdr: &ObjHeader) -> VersionState {
    if hdr.has(flags::TOMBSTONE) {
        return VersionState::Tombstone;
    }
    if !hdr.has(flags::VALID) {
        return VersionState::Invalid;
    }
    let value = layout::read_value(pool, off, hdr);
    let intact = crc32c(&value) == hdr.crc;
    if hdr.has(flags::DURABLE) {
        if pool.is_persisted(off, hdr.object_size()) {
            VersionState::DurablePersisted
        } else {
            VersionState::DurableVolatile
        }
    } else if intact {
        VersionState::IntactUnverified
    } else {
        VersionState::Incomplete
    }
}

/// Inspect the image in `pool` under `layout`. `heads` bounds the data-pool
/// scan (pass the live server's `logs[i].head()`, or rebuild via
/// `LogRegion::scan_for_recovery` on a cold image).
pub fn inspect(pool: &PmemPool, layout: &StoreLayout, heads: [usize; 2]) -> StoreReport {
    let ht = layout.hashtable();
    let regions = layout.regions();
    let mut report = StoreReport {
        pool_used: [
            heads[0].saturating_sub(regions[0].base()),
            heads[1].saturating_sub(regions[1].base()),
        ],
        ..StoreReport::default()
    };

    let in_bounds = |off: u64| {
        let off = off as usize;
        regions
            .iter()
            .enumerate()
            .any(|(i, r)| off >= r.base() && off + layout::HDR_LEN <= heads[i] && !r.is_empty())
    };

    ht.for_each_occupied(pool, |idx, e| {
        report.keys += 1;
        let mut off = e.current();
        if off == 0 {
            report
                .violations
                .push(format!("bucket {idx}: occupied with zero offset"));
            return;
        }
        let mut chain = 0usize;
        let mut first = true;
        while off != 0 && off != NIL {
            if !in_bounds(off) {
                // Dangling pre_ptr into a freed pool — expected after log
                // cleaning; only the *head* must be in bounds.
                if first {
                    report
                        .violations
                        .push(format!("bucket {idx}: head out of bounds ({off:#x})"));
                }
                break;
            }
            let hdr = ObjHeader::read_from(pool, off as usize);
            let key = layout::read_key(pool, off as usize, &hdr);
            if crate::hashtable::fingerprint(&key) != e.fp {
                if first {
                    report
                        .violations
                        .push(format!("bucket {idx}: head key mismatch"));
                }
                break;
            }
            let state = classify(pool, off as usize, &hdr);
            *report.versions.entry(state).or_default() += 1;
            report.total_versions += 1;
            chain += 1;
            if first {
                if state == VersionState::Tombstone {
                    report.tombstoned += 1;
                } else {
                    report.live_bytes += hdr.vlen as usize;
                }
                first = false;
            }
            off = hdr.pre_ptr;
        }
        report.max_chain = report.max_chain.max(chain);
    });
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::{Client, ClientConfig};
    use crate::server::{Server, ServerConfig};
    use efactory_rnic::{CostModel, Fabric};
    use efactory_sim as sim;
    use efactory_sim::Sim;
    use std::sync::atomic::Ordering;
    use std::sync::{Arc, Mutex};

    fn report_after(ops: impl FnOnce(&Client) + Send + 'static, settle: u64) -> StoreReport {
        report_after_cfg(ops, settle, ServerConfig::default())
    }

    fn report_after_cfg(
        ops: impl FnOnce(&Client) + Send + 'static,
        settle: u64,
        cfg: ServerConfig,
    ) -> StoreReport {
        let mut simu = Sim::new(83);
        let fabric = Fabric::new(CostModel::default());
        let server_node = fabric.add_node("server");
        let layout = StoreLayout::new(256, 1 << 20, true);
        let server = Server::format(&fabric, &server_node, layout, cfg);
        let out: Arc<Mutex<StoreReport>> = Arc::default();
        let out2 = Arc::clone(&out);
        let f = Arc::clone(&fabric);
        simu.spawn("main", move || {
            let shared = server.start(&f);
            let c = Client::connect(
                &f,
                &f.add_node("c"),
                &server_node,
                server.desc(),
                ClientConfig::default(),
            )
            .unwrap();
            ops(&c);
            sim::sleep(sim::micros(settle));
            let heads = [shared.logs[0].head(), shared.logs[1].head()];
            *out2.lock().unwrap() = inspect(&shared.pool, &layout, heads);
            server.shutdown();
        });
        simu.run().expect_ok();
        let r = out.lock().unwrap().clone();
        r
    }

    #[test]
    fn healthy_store_reports_all_durable() {
        let r = report_after(
            |c| {
                for i in 0..10u32 {
                    c.put(format!("k{i}").as_bytes(), b"value").unwrap();
                }
            },
            500, // verifier drains
        );
        assert_eq!(r.keys, 10);
        assert_eq!(r.count(VersionState::DurablePersisted), 10);
        assert_eq!(r.count(VersionState::DurableVolatile), 0, "{}", r.render());
        assert!(r.violations.is_empty(), "{}", r.render());
        assert_eq!(r.live_bytes, 50);
    }

    #[test]
    fn fresh_writes_show_as_unverified() {
        // Verifier slowed so it provably has not verified the object yet.
        let cfg = ServerConfig {
            verify_idle: sim::millis(10),
            ..ServerConfig::default()
        };
        let r = report_after_cfg(
            |c| {
                c.put(b"k", b"freshly-written").unwrap();
            },
            0,
            cfg,
        );
        assert_eq!(r.count(VersionState::IntactUnverified), 1, "{}", r.render());
    }

    #[test]
    fn overwrites_grow_chains_and_tombstones_count() {
        let r = report_after(
            |c| {
                for i in 0..5u32 {
                    c.put(b"k", format!("v{i}").as_bytes()).unwrap();
                }
                c.put(b"gone", b"x").unwrap();
                c.del(b"gone").unwrap();
            },
            500,
        );
        assert_eq!(r.keys, 2);
        assert_eq!(r.tombstoned, 1);
        assert_eq!(r.max_chain, 5);
        assert!(r.count(VersionState::Tombstone) >= 1);
        assert!(r.total_versions >= 7, "{}", r.render());
    }

    #[test]
    fn render_is_stable_and_complete() {
        let r = report_after(|c| c.put(b"a", b"b").unwrap(), 500);
        let s = r.render();
        assert!(s.contains("keys: 1"));
        assert!(s.contains("DurablePersisted"));
        assert!(s.contains("no violations"));
    }

    #[test]
    fn abandoned_allocation_reports_incomplete_then_invalid() {
        // Use the server plumbing directly (no client value write).
        let mut simu = Sim::new(89);
        let fabric = Fabric::new(CostModel::default());
        let server_node = fabric.add_node("server");
        let layout = StoreLayout::new(256, 1 << 20, true);
        let cfg = ServerConfig {
            verify_timeout: sim::micros(40),
            ..ServerConfig::default()
        };
        let server = Server::format(&fabric, &server_node, layout, cfg);
        let f = Arc::clone(&fabric);
        simu.spawn("main", move || {
            let shared = server.start(&f);
            let qp = f.connect(&f.add_node("z"), &server_node).unwrap();
            let req = crate::protocol::Request::Put {
                key: b"zombie".to_vec(),
                vlen: 64,
                crc: 1,
            };
            qp.rpc(req.encode()).unwrap();
            let heads = [shared.logs[0].head(), shared.logs[1].head()];
            let r1 = inspect(&shared.pool, &layout, heads);
            assert_eq!(r1.count(VersionState::Incomplete), 1, "{}", r1.render());
            sim::sleep(sim::millis(1)); // timeout passes
            let r2 = inspect(&shared.pool, &layout, heads);
            assert_eq!(r2.count(VersionState::Invalid), 1, "{}", r2.render());
            assert_eq!(shared.stats.bg_timeouts.load(Ordering::Relaxed), 1);
            server.shutdown();
        });
        simu.run().expect_ok();
    }
}
