//! SEND-based RPC wire protocol.
//!
//! Every system in the comparison uses the same request/response framing
//! (the paper implements all five on one code base, §5.3). Messages are
//! length-prefixed byte strings with a 1-byte opcode; encoding is manual —
//! the formats are tiny and fixed, and the decoder is fuzzed by property
//! tests.

/// Reply status codes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum Status {
    /// Success.
    Ok = 0,
    /// Key not present (or no intact version survived).
    NotFound = 1,
    /// No free bucket in the key's probe window.
    TableFull = 2,
    /// The data pool is out of space.
    NoSpace = 3,
    /// Validation failed in a way retries will not fix.
    Corrupt = 4,
    /// Transient condition (e.g. cleaning hiccup); retry.
    Busy = 5,
    /// Transaction validation failed (read-set version moved, or a
    /// conflicting transaction holds the key in-doubt): abort and retry
    /// the whole transaction from a fresh read.
    Conflict = 6,
    /// The server no longer owns the shard under the client's placement
    /// epoch (sealed for migration, or already handed off): refresh the
    /// placement map from the metadata service and retarget.
    WrongEpoch = 7,
    /// The snapshot is older than the cleaner's compaction horizon: the
    /// versions it could name may have been relocated and their commit
    /// timestamps discarded. Capture a fresh snapshot and retry.
    Expired = 8,
}

impl Status {
    /// Decode a status byte.
    pub fn from_u8(b: u8) -> Option<Status> {
        Some(match b {
            0 => Status::Ok,
            1 => Status::NotFound,
            2 => Status::TableFull,
            3 => Status::NoSpace,
            4 => Status::Corrupt,
            5 => Status::Busy,
            6 => Status::Conflict,
            7 => Status::WrongEpoch,
            8 => Status::Expired,
            _ => return None,
        })
    }
}

/// Client-facing error type for store operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StoreError {
    /// Transport-level failure.
    Qp(efactory_rnic::QpError),
    /// The server replied with a non-OK status.
    Status(Status),
    /// A reply failed to decode or repeatedly failed validation.
    Protocol,
}

impl From<efactory_rnic::QpError> for StoreError {
    fn from(e: efactory_rnic::QpError) -> Self {
        StoreError::Qp(e)
    }
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::Qp(e) => write!(f, "transport: {e}"),
            StoreError::Status(s) => write!(f, "server status: {s:?}"),
            StoreError::Protocol => f.write_str("protocol violation"),
        }
    }
}

impl std::error::Error for StoreError {}

/// Requests a client sends to a server.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Allocate space for a PUT (client-active scheme): the server returns
    /// the offset the client should RDMA-write the value to. Carries the
    /// CRC so the server can record it in the object metadata.
    Put {
        /// Key bytes.
        key: Vec<u8>,
        /// Value length the client will write.
        vlen: u32,
        /// CRC32C of the value.
        crc: u32,
    },
    /// Look up a key (RPC+RDMA read path).
    Get {
        /// Key bytes.
        key: Vec<u8>,
    },
    /// Delete a key (writes a tombstone version).
    Del {
        /// Key bytes.
        key: Vec<u8>,
    },
    /// SAW only: "the value at `obj_off` has been written; persist it and
    /// expose the metadata".
    Persist {
        /// Object offset returned by the earlier `Put` reply.
        obj_off: u64,
    },
    /// RPC baseline only: ship the whole value through the two-sided path.
    RpcPut {
        /// Key bytes.
        key: Vec<u8>,
        /// Value bytes.
        value: Vec<u8>,
    },
    /// Phase 1 of a cross-shard transaction: validate the read set, stage
    /// every put durably (linked into the version chains, marked PENDING),
    /// and reply with the shard's commit clock. The staged writes stay
    /// in-doubt until `TxnDecide`.
    TxnPrepare {
        /// Coordinator-chosen transaction id (unique per client QP).
        txn_id: u64,
        /// Read set: `(key, observed seq)` pairs; `seq == 0` means the key
        /// was absent when read.
        reads: Vec<(Vec<u8>, u32)>,
        /// Write set: full values ride the RPC (two-sided), so staging
        /// persists them server-side in one step.
        puts: Vec<(Vec<u8>, Vec<u8>)>,
    },
    /// Phase 2: commit (publish every staged version at `commit_ts`) or
    /// abort (unlink and invalidate the staged versions).
    TxnDecide {
        /// Transaction id from the matching `TxnPrepare`.
        txn_id: u64,
        /// `true` = commit, `false` = abort.
        commit: bool,
        /// Coordinator-chosen commit timestamp (ignored on abort).
        commit_ts: u64,
    },
    /// One-shot single-shard transaction: validate, stage, commit-record,
    /// and publish in one RPC. The handler runs it start-to-finish, so no
    /// other RPC ever observes the intermediate state.
    TxnCommit {
        /// Transaction id (unique per client QP).
        txn_id: u64,
        /// Read set, as in `TxnPrepare`.
        reads: Vec<(Vec<u8>, u32)>,
        /// Write set, as in `TxnPrepare`.
        puts: Vec<(Vec<u8>, Vec<u8>)>,
    },
    /// Capture this shard's snapshot clock (durable-commit watermark).
    SnapCapture,
    /// MVCC read at snapshot `snap_ts`: walk the version chain to the
    /// newest committed version with `commit_ts <= snap_ts`.
    SnapGet {
        /// Key bytes.
        key: Vec<u8>,
        /// Snapshot timestamp from an earlier `SnapCapture` round.
        snap_ts: u64,
    },
}

/// Replies a server sends back.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Response {
    /// Reply to `Put`: where the object lives and where to write the value.
    Put {
        /// Outcome.
        status: Status,
        /// Absolute pool offset of the object (header).
        obj_off: u64,
        /// Absolute pool offset the client RDMA-writes the value to.
        value_off: u64,
    },
    /// Reply to `Get`: where to RDMA-read the object from.
    Get {
        /// Outcome.
        status: Status,
        /// Absolute pool offset of the object (header).
        obj_off: u64,
        /// Key length of the returned version.
        klen: u16,
        /// Value length of the returned version.
        vlen: u32,
    },
    /// Generic acknowledgement (`Del`, `Persist`, `RpcPut`).
    Ack {
        /// Outcome.
        status: Status,
    },
    /// Reply to `TxnPrepare` / `TxnDecide` / `TxnCommit`.
    TxnAck {
        /// Outcome (`Conflict` = validation failed, retry from fresh reads).
        status: Status,
        /// For `TxnPrepare`: the shard's commit clock (the coordinator's
        /// commit timestamp must exceed every prepare clock). For a
        /// committed `TxnCommit` / `TxnDecide`: the commit timestamp.
        commit_ts: u64,
    },
    /// Reply to `SnapCapture`: the shard's snapshot clock.
    Snap {
        /// Outcome.
        status: Status,
        /// Every transaction committed on this shard so far has
        /// `commit_ts <= watermark`, and every later commit will get a
        /// strictly larger timestamp.
        watermark: u64,
    },
}

/// Asynchronous server→client notifications (cleaning protocol, §4.4).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Event {
    /// Log cleaning begins: switch to the RPC+RDMA read scheme.
    CleanStart,
    /// Log cleaning finished: hybrid reads are safe again.
    CleanEnd,
}

const OP_PUT: u8 = 0x01;
const OP_GET: u8 = 0x02;
const OP_DEL: u8 = 0x03;
const OP_PERSIST: u8 = 0x04;
const OP_RPC_PUT: u8 = 0x05;
const OP_TXN_PREPARE: u8 = 0x06;
const OP_TXN_DECIDE: u8 = 0x07;
const OP_TXN_COMMIT: u8 = 0x08;
const OP_SNAP_CAPTURE: u8 = 0x09;
const OP_SNAP_GET: u8 = 0x0A;
const OP_R_PUT: u8 = 0x81;
const OP_R_GET: u8 = 0x82;
const OP_R_ACK: u8 = 0x83;
const OP_R_TXN_ACK: u8 = 0x84;
const OP_R_SNAP: u8 = 0x85;
const OP_E_CLEAN_START: u8 = 0xC1;
const OP_E_CLEAN_END: u8 = 0xC2;
/// Framed envelope: `[OP_FRAME_REQ][req_id: u64 LE][legacy request bytes]`.
/// The id is monotonic per client QP; a retry of the same logical operation
/// reuses it, which is what lets the server dedup (at-most-once execution
/// over an at-least-once fabric, Birrell–Nelson style).
const OP_FRAME_REQ: u8 = 0x10;
/// Framed reply envelope: `[OP_FRAME_RESP][req_id: u64 LE][legacy reply]`.
const OP_FRAME_RESP: u8 = 0x90;

fn put_key(buf: &mut Vec<u8>, key: &[u8]) {
    buf.extend_from_slice(&(key.len() as u16).to_le_bytes());
    buf.extend_from_slice(key);
}

fn put_reads(buf: &mut Vec<u8>, reads: &[(Vec<u8>, u32)]) {
    buf.extend_from_slice(&(reads.len() as u16).to_le_bytes());
    for (key, seq) in reads {
        put_key(buf, key);
        buf.extend_from_slice(&seq.to_le_bytes());
    }
}

fn put_puts(buf: &mut Vec<u8>, puts: &[(Vec<u8>, Vec<u8>)]) {
    buf.extend_from_slice(&(puts.len() as u16).to_le_bytes());
    for (key, value) in puts {
        put_key(buf, key);
        buf.extend_from_slice(&(value.len() as u32).to_le_bytes());
        buf.extend_from_slice(value);
    }
}

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }
    fn u8(&mut self) -> Option<u8> {
        let b = *self.buf.get(self.pos)?;
        self.pos += 1;
        Some(b)
    }
    fn u16(&mut self) -> Option<u16> {
        let b = self.buf.get(self.pos..self.pos + 2)?;
        self.pos += 2;
        Some(u16::from_le_bytes(b.try_into().unwrap()))
    }
    fn u32(&mut self) -> Option<u32> {
        let b = self.buf.get(self.pos..self.pos + 4)?;
        self.pos += 4;
        Some(u32::from_le_bytes(b.try_into().unwrap()))
    }
    fn u64(&mut self) -> Option<u64> {
        let b = self.buf.get(self.pos..self.pos + 8)?;
        self.pos += 8;
        Some(u64::from_le_bytes(b.try_into().unwrap()))
    }
    fn bytes(&mut self, n: usize) -> Option<Vec<u8>> {
        let b = self.buf.get(self.pos..self.pos + n)?;
        self.pos += n;
        Some(b.to_vec())
    }
    fn key(&mut self) -> Option<Vec<u8>> {
        let n = self.u16()? as usize;
        self.bytes(n)
    }
    fn reads(&mut self) -> Option<Vec<(Vec<u8>, u32)>> {
        let n = self.u16()? as usize;
        let mut out = Vec::with_capacity(n.min(64));
        for _ in 0..n {
            let key = self.key()?;
            let seq = self.u32()?;
            out.push((key, seq));
        }
        Some(out)
    }
    fn puts(&mut self) -> Option<Vec<(Vec<u8>, Vec<u8>)>> {
        let n = self.u16()? as usize;
        let mut out = Vec::with_capacity(n.min(64));
        for _ in 0..n {
            let key = self.key()?;
            let vlen = self.u32()? as usize;
            let value = self.bytes(vlen)?;
            out.push((key, value));
        }
        Some(out)
    }
    fn done(&self) -> bool {
        self.pos == self.buf.len()
    }
}

impl Request {
    /// Encode to wire bytes.
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::with_capacity(32);
        match self {
            Request::Put { key, vlen, crc } => {
                buf.push(OP_PUT);
                put_key(&mut buf, key);
                buf.extend_from_slice(&vlen.to_le_bytes());
                buf.extend_from_slice(&crc.to_le_bytes());
            }
            Request::Get { key } => {
                buf.push(OP_GET);
                put_key(&mut buf, key);
            }
            Request::Del { key } => {
                buf.push(OP_DEL);
                put_key(&mut buf, key);
            }
            Request::Persist { obj_off } => {
                buf.push(OP_PERSIST);
                buf.extend_from_slice(&obj_off.to_le_bytes());
            }
            Request::RpcPut { key, value } => {
                buf.push(OP_RPC_PUT);
                put_key(&mut buf, key);
                buf.extend_from_slice(&(value.len() as u32).to_le_bytes());
                buf.extend_from_slice(value);
            }
            Request::TxnPrepare {
                txn_id,
                reads,
                puts,
            } => {
                buf.push(OP_TXN_PREPARE);
                buf.extend_from_slice(&txn_id.to_le_bytes());
                put_reads(&mut buf, reads);
                put_puts(&mut buf, puts);
            }
            Request::TxnDecide {
                txn_id,
                commit,
                commit_ts,
            } => {
                buf.push(OP_TXN_DECIDE);
                buf.extend_from_slice(&txn_id.to_le_bytes());
                buf.push(u8::from(*commit));
                buf.extend_from_slice(&commit_ts.to_le_bytes());
            }
            Request::TxnCommit {
                txn_id,
                reads,
                puts,
            } => {
                buf.push(OP_TXN_COMMIT);
                buf.extend_from_slice(&txn_id.to_le_bytes());
                put_reads(&mut buf, reads);
                put_puts(&mut buf, puts);
            }
            Request::SnapCapture => buf.push(OP_SNAP_CAPTURE),
            Request::SnapGet { key, snap_ts } => {
                buf.push(OP_SNAP_GET);
                put_key(&mut buf, key);
                buf.extend_from_slice(&snap_ts.to_le_bytes());
            }
        }
        buf
    }

    /// Decode from wire bytes; `None` on malformed input.
    pub fn decode(buf: &[u8]) -> Option<Request> {
        let mut r = Reader::new(buf);
        let req = match r.u8()? {
            OP_PUT => Request::Put {
                key: r.key()?,
                vlen: r.u32()?,
                crc: r.u32()?,
            },
            OP_GET => Request::Get { key: r.key()? },
            OP_DEL => Request::Del { key: r.key()? },
            OP_PERSIST => Request::Persist { obj_off: r.u64()? },
            OP_RPC_PUT => {
                let key = r.key()?;
                let n = r.u32()? as usize;
                Request::RpcPut {
                    key,
                    value: r.bytes(n)?,
                }
            }
            OP_TXN_PREPARE => Request::TxnPrepare {
                txn_id: r.u64()?,
                reads: r.reads()?,
                puts: r.puts()?,
            },
            OP_TXN_DECIDE => Request::TxnDecide {
                txn_id: r.u64()?,
                commit: match r.u8()? {
                    0 => false,
                    1 => true,
                    _ => return None,
                },
                commit_ts: r.u64()?,
            },
            OP_TXN_COMMIT => Request::TxnCommit {
                txn_id: r.u64()?,
                reads: r.reads()?,
                puts: r.puts()?,
            },
            OP_SNAP_CAPTURE => Request::SnapCapture,
            OP_SNAP_GET => Request::SnapGet {
                key: r.key()?,
                snap_ts: r.u64()?,
            },
            _ => return None,
        };
        r.done().then_some(req)
    }

    /// Encode wrapped in the request-id envelope (retry-capable clients).
    pub fn encode_framed(&self, req_id: u64) -> Vec<u8> {
        let mut buf = Vec::with_capacity(41);
        buf.push(OP_FRAME_REQ);
        buf.extend_from_slice(&req_id.to_le_bytes());
        buf.extend_from_slice(&self.encode());
        buf
    }

    /// Decode either framing: returns `(Some(req_id), request)` for framed
    /// bytes, `(None, request)` for the legacy unframed encoding (baseline
    /// clients), `None` on malformed input.
    pub fn decode_any(buf: &[u8]) -> Option<(Option<u64>, Request)> {
        if buf.first() == Some(&OP_FRAME_REQ) {
            if buf.len() < 9 {
                return None;
            }
            let req_id = u64::from_le_bytes(buf[1..9].try_into().unwrap());
            Some((Some(req_id), Request::decode(&buf[9..])?))
        } else {
            Some((None, Request::decode(buf)?))
        }
    }
}

impl Response {
    /// Encode to wire bytes.
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::with_capacity(24);
        match self {
            Response::Put {
                status,
                obj_off,
                value_off,
            } => {
                buf.push(OP_R_PUT);
                buf.push(*status as u8);
                buf.extend_from_slice(&obj_off.to_le_bytes());
                buf.extend_from_slice(&value_off.to_le_bytes());
            }
            Response::Get {
                status,
                obj_off,
                klen,
                vlen,
            } => {
                buf.push(OP_R_GET);
                buf.push(*status as u8);
                buf.extend_from_slice(&obj_off.to_le_bytes());
                buf.extend_from_slice(&klen.to_le_bytes());
                buf.extend_from_slice(&vlen.to_le_bytes());
            }
            Response::Ack { status } => {
                buf.push(OP_R_ACK);
                buf.push(*status as u8);
            }
            Response::TxnAck { status, commit_ts } => {
                buf.push(OP_R_TXN_ACK);
                buf.push(*status as u8);
                buf.extend_from_slice(&commit_ts.to_le_bytes());
            }
            Response::Snap { status, watermark } => {
                buf.push(OP_R_SNAP);
                buf.push(*status as u8);
                buf.extend_from_slice(&watermark.to_le_bytes());
            }
        }
        buf
    }

    /// Decode from wire bytes; `None` on malformed input.
    pub fn decode(buf: &[u8]) -> Option<Response> {
        let mut r = Reader::new(buf);
        let resp = match r.u8()? {
            OP_R_PUT => Response::Put {
                status: Status::from_u8(r.u8()?)?,
                obj_off: r.u64()?,
                value_off: r.u64()?,
            },
            OP_R_GET => Response::Get {
                status: Status::from_u8(r.u8()?)?,
                obj_off: r.u64()?,
                klen: r.u16()?,
                vlen: r.u32()?,
            },
            OP_R_ACK => Response::Ack {
                status: Status::from_u8(r.u8()?)?,
            },
            OP_R_TXN_ACK => Response::TxnAck {
                status: Status::from_u8(r.u8()?)?,
                commit_ts: r.u64()?,
            },
            OP_R_SNAP => Response::Snap {
                status: Status::from_u8(r.u8()?)?,
                watermark: r.u64()?,
            },
            _ => return None,
        };
        r.done().then_some(resp)
    }

    /// Encode wrapped in the request-id envelope (mirrors the id of the
    /// framed request being answered).
    pub fn encode_framed(&self, req_id: u64) -> Vec<u8> {
        let mut buf = Vec::with_capacity(33);
        buf.push(OP_FRAME_RESP);
        buf.extend_from_slice(&req_id.to_le_bytes());
        buf.extend_from_slice(&self.encode());
        buf
    }

    /// Decode either framing: `(Some(req_id), reply)` for framed bytes,
    /// `(None, reply)` for legacy unframed bytes, `None` on malformed input.
    pub fn decode_any(buf: &[u8]) -> Option<(Option<u64>, Response)> {
        if buf.first() == Some(&OP_FRAME_RESP) {
            if buf.len() < 9 {
                return None;
            }
            let req_id = u64::from_le_bytes(buf[1..9].try_into().unwrap());
            Some((Some(req_id), Response::decode(&buf[9..])?))
        } else {
            Some((None, Response::decode(buf)?))
        }
    }
}

impl Event {
    /// Encode to wire bytes.
    pub fn encode(&self) -> Vec<u8> {
        vec![match self {
            Event::CleanStart => OP_E_CLEAN_START,
            Event::CleanEnd => OP_E_CLEAN_END,
        }]
    }

    /// Decode from wire bytes; `None` on malformed input.
    pub fn decode(buf: &[u8]) -> Option<Event> {
        match buf {
            [OP_E_CLEAN_START] => Some(Event::CleanStart),
            [OP_E_CLEAN_END] => Some(Event::CleanEnd),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn request_roundtrips() {
        let cases = vec![
            Request::Put {
                key: b"k1".to_vec(),
                vlen: 4096,
                crc: 0xDEAD_BEEF,
            },
            Request::Get { key: b"".to_vec() },
            Request::Del {
                key: vec![0xFF; 300],
            },
            Request::Persist { obj_off: u64::MAX },
            Request::RpcPut {
                key: b"key".to_vec(),
                value: vec![9; 1000],
            },
            Request::TxnPrepare {
                txn_id: 0x1122_3344_5566_7788,
                reads: vec![(b"r1".to_vec(), 7), (b"".to_vec(), 0)],
                puts: vec![(b"w1".to_vec(), vec![1; 64]), (b"w2".to_vec(), vec![])],
            },
            Request::TxnDecide {
                txn_id: 42,
                commit: true,
                commit_ts: u64::MAX,
            },
            Request::TxnDecide {
                txn_id: 42,
                commit: false,
                commit_ts: 0,
            },
            Request::TxnCommit {
                txn_id: 1,
                reads: vec![],
                puts: vec![(b"k".to_vec(), vec![3; 17])],
            },
            Request::SnapCapture,
            Request::SnapGet {
                key: b"snapkey".to_vec(),
                snap_ts: 123_456_789,
            },
        ];
        for req in cases {
            assert_eq!(Request::decode(&req.encode()), Some(req));
        }
    }

    #[test]
    fn response_roundtrips() {
        let cases = vec![
            Response::Put {
                status: Status::Ok,
                obj_off: 12345,
                value_off: 12385,
            },
            Response::Get {
                status: Status::NotFound,
                obj_off: 0,
                klen: 32,
                vlen: 2048,
            },
            Response::Ack {
                status: Status::NoSpace,
            },
            Response::TxnAck {
                status: Status::Conflict,
                commit_ts: 0xFACE_FEED,
            },
            Response::Snap {
                status: Status::Ok,
                watermark: 987_654_321,
            },
        ];
        for resp in cases {
            assert_eq!(Response::decode(&resp.encode()), Some(resp));
        }
    }

    #[test]
    fn events_roundtrip() {
        for ev in [Event::CleanStart, Event::CleanEnd] {
            assert_eq!(Event::decode(&ev.encode()), Some(ev));
        }
        assert_eq!(Event::decode(&[0x00]), None);
        assert_eq!(Event::decode(&[]), None);
    }

    #[test]
    fn trailing_garbage_is_rejected() {
        let mut buf = Request::Get { key: b"k".to_vec() }.encode();
        buf.push(0);
        assert_eq!(Request::decode(&buf), None);
    }

    #[test]
    fn truncation_is_rejected_at_every_length() {
        let buf = Request::RpcPut {
            key: b"key".to_vec(),
            value: vec![1, 2, 3, 4],
        }
        .encode();
        for cut in 0..buf.len() {
            assert_eq!(Request::decode(&buf[..cut]), None, "cut at {cut}");
        }
    }

    #[test]
    fn txn_requests_reject_truncation_and_garbage() {
        let reqs = [
            Request::TxnPrepare {
                txn_id: 9,
                reads: vec![(b"r".to_vec(), 3)],
                puts: vec![(b"w".to_vec(), vec![5; 9])],
            },
            Request::TxnDecide {
                txn_id: 9,
                commit: true,
                commit_ts: 77,
            },
            Request::TxnCommit {
                txn_id: 9,
                reads: vec![],
                puts: vec![(b"w".to_vec(), vec![5; 9])],
            },
            Request::SnapGet {
                key: b"k".to_vec(),
                snap_ts: 11,
            },
        ];
        for req in reqs {
            let buf = req.encode();
            for cut in 0..buf.len() {
                assert_eq!(Request::decode(&buf[..cut]), None, "{req:?} cut at {cut}");
            }
            let mut garbled = buf.clone();
            garbled.push(0);
            assert_eq!(Request::decode(&garbled), None, "{req:?} + garbage");
        }
        // A decide byte other than 0/1 is malformed, not "truthy".
        let mut buf = Request::TxnDecide {
            txn_id: 1,
            commit: true,
            commit_ts: 2,
        }
        .encode();
        buf[9] = 2;
        assert_eq!(Request::decode(&buf), None);
    }

    #[test]
    fn unknown_opcodes_are_rejected() {
        assert_eq!(Request::decode(&[0x7F, 0, 0]), None);
        assert_eq!(Response::decode(&[0x7F]), None);
    }

    #[test]
    fn framed_envelope_roundtrips_and_coexists_with_legacy() {
        let req = Request::Del { key: b"k".to_vec() };
        let framed = req.encode_framed(0xABCD_EF01_2345_6789);
        assert_eq!(
            Request::decode_any(&framed),
            Some((Some(0xABCD_EF01_2345_6789), req.clone()))
        );
        // Unframed bytes still decode, with no id.
        assert_eq!(Request::decode_any(&req.encode()), Some((None, req)));

        let resp = Response::Ack { status: Status::Ok };
        let framed = resp.encode_framed(7);
        assert_eq!(Response::decode_any(&framed), Some((Some(7), resp)));
        assert_eq!(Response::decode_any(&resp.encode()), Some((None, resp)));
    }

    #[test]
    fn framed_envelope_rejects_truncation_and_garbage() {
        let buf = Request::Get { key: b"k".to_vec() }.encode_framed(42);
        for cut in 0..buf.len() {
            assert_eq!(Request::decode_any(&buf[..cut]), None, "cut at {cut}");
        }
        let mut garbled = buf.clone();
        garbled.push(0);
        assert_eq!(Request::decode_any(&garbled), None);
    }

    proptest! {
        #[test]
        fn decoder_never_panics_on_fuzz(buf in proptest::collection::vec(any::<u8>(), 0..128)) {
            let _ = Request::decode(&buf);
            let _ = Response::decode(&buf);
            let _ = Event::decode(&buf);
            let _ = Request::decode_any(&buf);
            let _ = Response::decode_any(&buf);
        }

        #[test]
        fn framed_roundtrips_any_id(
            key in proptest::collection::vec(any::<u8>(), 0..32),
            id in any::<u64>(),
        ) {
            let req = Request::Get { key };
            prop_assert_eq!(Request::decode_any(&req.encode_framed(id)), Some((Some(id), req)));
        }

        #[test]
        fn put_roundtrips_any_fields(
            key in proptest::collection::vec(any::<u8>(), 0..64),
            vlen in any::<u32>(),
            crc in any::<u32>(),
        ) {
            let req = Request::Put { key, vlen, crc };
            prop_assert_eq!(Request::decode(&req.encode()), Some(req));
        }

        #[test]
        fn txn_roundtrips_any_fields(
            txn_id in any::<u64>(),
            reads in proptest::collection::vec(
                (proptest::collection::vec(any::<u8>(), 0..16), any::<u32>()), 0..5),
            puts in proptest::collection::vec(
                (proptest::collection::vec(any::<u8>(), 0..16),
                 proptest::collection::vec(any::<u8>(), 0..48)), 0..5),
        ) {
            let req = Request::TxnCommit { txn_id, reads: reads.clone(), puts: puts.clone() };
            prop_assert_eq!(Request::decode(&req.encode()), Some(req));
            let req = Request::TxnPrepare { txn_id, reads, puts };
            prop_assert_eq!(Request::decode(&req.encode()), Some(req));
        }
    }
}
