//! Sharded store: N independent eFactory servers behind a deterministic
//! client-side router.
//!
//! The key space is partitioned by hash across N **shards**. Each shard is
//! a complete [`Server`]: its own fabric node (one listener per node), its
//! own NVM pool(s), hash table, append log, background verifier, and log
//! cleaner. Nothing is shared between shards, so there is no cross-shard
//! coordination on any path:
//!
//! * GET's pure one-sided path goes straight to the owning shard's MR;
//! * PUT's client-active path RPCs the owning shard's handler and then
//!   RDMA-writes the value into that shard's pool;
//! * each shard's verifier and cleaner run as independent processes.
//!
//! The router is *deterministic and total*: every key maps to exactly one
//! shard, the same one on every client, every connection, and every run.
//! Routing hashes a **different** bit mix than the hash table's
//! [`fingerprint`] — routing on the fingerprint itself would leave each
//! shard populating only every N-th bucket home.

use std::cell::Cell;
use std::sync::Arc;

use efactory_rnic::{Fabric, Node};

use crate::client::{Client, ClientConfig, GetOutcome, RemoteKv};
use crate::log::StoreLayout;
use crate::protocol::StoreError;
use crate::server::{Server, ServerConfig, ServerShared, StoreDesc};
use crate::txn::{self, TxnKv, TxnSnapshot};

/// Deterministic, total shard routing: `hash(key) % shards`.
///
/// Thin delegate to [`crate::cluster::placement::key_shard`] — the one
/// routing implementation, shared with the cluster layer's
/// [`PlacementMap`](crate::cluster::placement::PlacementMap). The legacy
/// single-node topologies are the degenerate placement (every shard on
/// node 0), so this wrapper keeps their call sites unchanged.
pub fn shard_of(key: &[u8], shards: usize) -> usize {
    crate::cluster::placement::key_shard(key, shards)
}

/// The client-side routing table: shard count + per-shard connection info.
#[derive(Clone)]
pub struct ShardedDesc {
    /// One fabric node per shard (clients connect to each).
    pub nodes: Vec<Node>,
    /// One store descriptor (MR + geometry) per shard.
    pub descs: Vec<StoreDesc>,
}

impl ShardedDesc {
    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.descs.len()
    }
}

/// N independent [`Server`] shards over one fabric.
pub struct ShardedServer {
    servers: Vec<Server>,
    nodes: Vec<Node>,
}

impl ShardedServer {
    /// Create `shards` freshly formatted shards, each with its own node
    /// (named `{name}-shard{i}`) and a full copy of `layout` (per-shard
    /// geometry; the per-shard fill is what matters for cleaning, so a
    /// layout sized for the whole workload leaves generous slack under any
    /// skew). Counter names get a `shard{i}.` prefix when `shards > 1`.
    pub fn format(
        fabric: &Fabric,
        name: &str,
        layout: StoreLayout,
        cfg: ServerConfig,
        shards: usize,
    ) -> ShardedServer {
        assert!(shards >= 1, "a store has at least one shard");
        let mut servers = Vec::with_capacity(shards);
        let mut nodes = Vec::with_capacity(shards);
        for i in 0..shards {
            let node = fabric.add_node(&format!("{name}-shard{i}"));
            let mut scfg = cfg.clone();
            if shards > 1 {
                scfg.counter_prefix = format!("{}shard{i}.", cfg.counter_prefix);
            }
            servers.push(Server::format(fabric, &node, layout, scfg));
            nodes.push(node);
        }
        ShardedServer { servers, nodes }
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.servers.len()
    }

    /// Shard `i`'s server.
    pub fn shard(&self, i: usize) -> &Server {
        &self.servers[i]
    }

    /// Shard `i`'s fabric node.
    pub fn node(&self, i: usize) -> &Node {
        &self.nodes[i]
    }

    /// Shared state of every shard (verifier drain checks, stats).
    pub fn shared_all(&self) -> Vec<&Arc<ServerShared>> {
        self.servers.iter().map(|s| s.shared()).collect()
    }

    /// The routing table clients connect with.
    pub fn desc(&self) -> ShardedDesc {
        ShardedDesc {
            nodes: self.nodes.clone(),
            descs: self.servers.iter().map(|s| s.desc()).collect(),
        }
    }

    /// Start every shard's processes. Must run inside a simulated process.
    pub fn start(&self, fabric: &Arc<Fabric>) {
        for s in &self.servers {
            s.start(fabric);
        }
    }

    /// Ask every shard's processes to wind down.
    pub fn shutdown(&self) {
        for s in &self.servers {
            s.shutdown();
        }
    }

    /// Sum a counter across shards (pick it from each shard's stats).
    pub fn stat_sum(
        &self,
        pick: impl Fn(&crate::server::ServerStats) -> &efactory_obs::Counter,
    ) -> u64 {
        self.servers
            .iter()
            .map(|s| pick(&s.shared().stats).get())
            .sum()
    }
}

/// A client connected to every shard, routing each operation to the owner.
/// Implements [`RemoteKv`], so harness workloads are shard-agnostic.
pub struct ShardedClient {
    clients: Vec<Client>,
    /// Transaction-id source shared by all shard connections, so one
    /// logical transaction carries one id across its 2PC participants.
    next_txn_id: Cell<u64>,
}

impl ShardedClient {
    /// Connect `local` to every shard in `desc`. Must run inside a
    /// simulated process.
    pub fn connect(
        fabric: &Arc<Fabric>,
        local: &Node,
        desc: &ShardedDesc,
        cfg: ClientConfig,
    ) -> Result<ShardedClient, StoreError> {
        assert!(!desc.descs.is_empty(), "a store has at least one shard");
        let clients = desc
            .nodes
            .iter()
            .zip(&desc.descs)
            .enumerate()
            .map(|(i, (node, d))| {
                let mut cfg = cfg.clone();
                cfg.shard = i as u32;
                Client::connect(fabric, local, node, *d, cfg)
            })
            .collect::<Result<Vec<_>, _>>()?;
        Ok(ShardedClient {
            clients,
            next_txn_id: Cell::new(1),
        })
    }

    /// The client holding `key`'s shard connection.
    pub fn route(&self, key: &[u8]) -> &Client {
        &self.clients[shard_of(key, self.clients.len())]
    }

    /// Store `value` under `key` on the owning shard.
    pub fn put(&self, key: &[u8], value: &[u8]) -> Result<(), StoreError> {
        self.route(key).put(key, value)
    }

    /// Read `key` from the owning shard.
    pub fn get(&self, key: &[u8]) -> Result<Option<Vec<u8>>, StoreError> {
        self.route(key).get(key)
    }

    /// Like [`get`](Self::get), also reporting which path served the read.
    pub fn get_traced(&self, key: &[u8]) -> Result<(Option<Vec<u8>>, GetOutcome), StoreError> {
        self.route(key).get_traced(key)
    }

    /// Delete `key` (tombstone) on the owning shard.
    pub fn del(&self, key: &[u8]) -> Result<(), StoreError> {
        self.route(key).del(key)
    }
}

impl RemoteKv for ShardedClient {
    fn kv_put(&self, key: &[u8], value: &[u8]) -> Result<(), StoreError> {
        self.put(key, value)
    }
    fn kv_get(&self, key: &[u8]) -> Result<Option<Vec<u8>>, StoreError> {
        self.get(key)
    }
}

impl TxnKv for ShardedClient {
    fn txn_put_all(&self, puts: &[(Vec<u8>, Vec<u8>)]) -> Result<u64, StoreError> {
        let first = puts.first().map(|(k, _)| k.as_slice()).unwrap_or(b"");
        let mut ctx = self.clients[0].op_root(3, first);
        let result = txn::put_all_routed(&self.clients, &self.next_txn_id, puts);
        if let Ok(ts) = &result {
            self.clients[0].txn_commit_ctr.inc();
            ctx.arg("commit_ts", *ts);
        }
        result
    }

    fn txn_rmw(
        &self,
        key: &[u8],
        f: &mut dyn FnMut(Option<Vec<u8>>) -> Vec<u8>,
    ) -> Result<u64, StoreError> {
        let mut ctx = self.clients[0].op_root(3, key);
        let result = txn::rmw_routed(&self.clients, &self.next_txn_id, key, f);
        if let Ok(ts) = &result {
            self.clients[0].txn_commit_ctr.inc();
            ctx.arg("commit_ts", *ts);
        }
        result
    }

    fn snapshot(&self) -> Result<TxnSnapshot, StoreError> {
        txn::snapshot_all(&self.clients)
    }

    fn snap_get(&self, key: &[u8], snap: &TxnSnapshot) -> Result<Option<Vec<u8>>, StoreError> {
        let _ctx = self.clients[0].op_root(4, key);
        txn::snap_get_routed(&self.clients, key, snap)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hashtable::fingerprint;

    #[test]
    fn routing_is_total_and_spread() {
        // Every key lands in-range, and a modest key set touches every
        // shard for every shard count the acceptance sweep uses.
        for shards in [1usize, 2, 4, 8] {
            let mut hit = vec![0usize; shards];
            for i in 0..512u32 {
                let key = format!("user{i:08}");
                let s = shard_of(key.as_bytes(), shards);
                assert!(s < shards);
                hit[s] += 1;
            }
            assert!(hit.iter().all(|&c| c > 0), "unused shard: {hit:?}");
        }
    }

    #[test]
    fn routing_decorrelated_from_bucket_home() {
        // Keys of one shard must not collapse onto every N-th fingerprint
        // residue (which would waste (N-1)/N of the shard's bucket homes).
        let shards = 4;
        let mut residues = std::collections::HashSet::new();
        for i in 0..256u32 {
            let key = format!("user{i:08}");
            if shard_of(key.as_bytes(), shards) == 0 {
                residues.insert(fingerprint(key.as_bytes()) % shards as u64);
            }
        }
        assert!(residues.len() > 1, "shard 0 keys share a fp residue class");
    }
}
