//! Two-stage log cleaning (paper §4.4, Figure 7), crash-consistent.
//!
//! Triggered when the active pool passes the fill threshold:
//!
//! * **Stage 1 — log compressing.** Clients are notified to switch to the
//!   RPC+RDMA read scheme. The cleaner reverse-scans the old pool
//!   (newest → oldest), relocates the latest version of each key into the
//!   new pool, and skips stale versions. New writes keep flowing into the
//!   old pool.
//! * **Stage 2 — log merging.** New writes switch to the new pool. The
//!   cleaner reverse-scans the objects written *during* compression and
//!   merges them, skipping any key whose newest version already lives in
//!   the new pool (the paper's D1/D2 rule).
//! * **Finish.** For every surviving key the mark bit flips to the new
//!   pool's slot and the old offset clears; keys with no intact version
//!   left are dropped. The old pool is zeroed (freed) and clients are told
//!   to resume hybrid reads.
//!
//! Relocated objects are always made durable first (CRC verify + flush if
//! needed), mirroring the GET handler's durability guarantee; an in-flight
//! latest version is waited on up to the verifier timeout, exactly like the
//! background verifier would. Durable sources are CRC-checked too — a
//! bit-rotted object must not be propagated into the new pool as the key's
//! only surviving copy.
//!
//! Chain maintenance: when a relocated object has a newer successor in the
//! old pool, the successor's `PrePTR` is repointed at the relocated copy
//! and its `Trans` flag set (paper §4.2.2) so version-list traversal keeps
//! working while both pools are live.
//!
//! # Crash consistency
//!
//! Every phase transition is preceded by a durable **cleaning-progress
//! record** in the destination pool: a normal log allocation (never linked
//! into the hash table, like a commit record) whose key is
//! [`CLEAN_MAGIC`] + epoch and whose CRC-protected value is
//! `(stage, old_pool)`. Recovery reads the highest `(epoch, stage)` record
//! and knows, instead of guessing from slot states, whether the crash hit
//! compress (old pool still active), merge/finish (new pool active, the
//! `new_valid` slot is the newer candidate), or the post-finish window
//! (new pool active, the old region is dead and is re-zeroed). See
//! [`crate::recovery`] for the decision table.
//!
//! # Backpressure, not panic
//!
//! When the destination pool runs out of space mid-clean the cleaner
//! *parks*: it raises [`ServerShared::clean_stalled`] (the handler answers
//! PUT/DEL with retryable `Busy`), reclaims tombstoned buckets in place,
//! and polls for space up to the transaction-abort timeout before
//! unwinding the pass. An unwound (aborted) pass restores every invariant
//! — phase back to `Normal`, `CleanEnd` delivered, merge-phase stragglers
//! made durable — and leaves relocated copies reachable via `new_valid`,
//! so no state is lost and the next pass (or the harness's retries) makes
//! progress.

use std::collections::HashSet;
use std::sync::atomic::Ordering;

use efactory_checksum::crc32c;
use efactory_obs::Subsystem;
use efactory_rnic::Notifier;
use efactory_sim as sim;

use crate::layout::{self, flags, ObjHeader, NIL};
use crate::protocol::Event;
use crate::server::{CleanPhase, MigrateSlot, ServerShared};

/// Magic key prefix identifying a cleaning-progress record in the log.
/// NUL-framed like [`crate::txn::COMMIT_MAGIC`] so it can never collide
/// with workload keys, and distinct from it so the two record kinds never
/// parse as each other.
pub const CLEAN_MAGIC: &[u8; 8] = b"\0efccln\0";

/// Progress-record stages, ordered: a higher stage supersedes a lower one
/// within the same epoch.
pub const STAGE_COMPRESS: u64 = 1;
/// Merge record: persisted *before* the phase flips to Merge, so any write
/// that landed in the new pool postdates a durable record.
pub const STAGE_MERGE: u64 = 2;
/// Finish record: the per-bucket mark flip is underway (or about to be).
pub const STAGE_FINISH: u64 = 3;
/// Done record: the flip completed; only the pool swap + old-region zero
/// remain. Recovery treats the old region as dead.
pub const STAGE_DONE: u64 = 4;
/// Abort record: the pass unwound without swapping — the *old* pool is
/// still active, and without this record a stale `STAGE_DONE` from the
/// previous completed pass would outrank the aborted pass's records and
/// recovery would zero a region holding live merge-phase writes. Written
/// into a slot *reserved at pass start* (shared with the Done record), so
/// persisting it can never fail for lack of space.
pub const STAGE_ABORT: u64 = 5;

/// A decoded cleaning-progress record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CleanRecord {
    /// The epoch this pass would establish (current epoch + 1 at write).
    pub epoch: u64,
    /// One of the `STAGE_*` constants.
    pub stage: u64,
    /// Index of the pool being cleaned *from* during this pass.
    pub old_pool: usize,
}

/// Key bytes of the progress record for `epoch`.
fn clean_record_key(epoch: u64) -> [u8; 16] {
    let mut k = [0u8; 16];
    k[..8].copy_from_slice(CLEAN_MAGIC);
    k[8..].copy_from_slice(&epoch.to_le_bytes());
    k
}

/// Parse the object at `off` as a cleaning-progress record, if it is one.
pub fn decode_clean_record(
    pool: &efactory_pmem::PmemPool,
    off: usize,
    hdr: &ObjHeader,
) -> Option<CleanRecord> {
    if hdr.klen != 16 || hdr.vlen != 16 || !hdr.has(flags::VALID) {
        return None;
    }
    let key = layout::read_key(pool, off, hdr);
    if &key[..8] != CLEAN_MAGIC {
        return None;
    }
    let value = layout::read_value(pool, off, hdr);
    if crc32c(&value) != hdr.crc {
        return None; // torn record: the transition it guards never happened
    }
    let epoch = u64::from_le_bytes(key[8..16].try_into().unwrap());
    let stage = u64::from_le_bytes(value[..8].try_into().unwrap());
    let old_pool = u64::from_le_bytes(value[8..16].try_into().unwrap());
    if !(STAGE_COMPRESS..=STAGE_ABORT).contains(&stage) || old_pool > 1 {
        return None;
    }
    Some(CleanRecord {
        epoch,
        stage,
        old_pool: old_pool as usize,
    })
}

/// Why a cleaning pass stopped before completing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Halt {
    /// The node crashed (or was restarted under us): touch nothing —
    /// recovery owns the truth from here.
    Crashed,
    /// Cooperative shutdown: unwind and exit cleanly.
    Stopped,
    /// The destination pool stayed full past the park deadline: unwind and
    /// let the backlog drain in Normal phase.
    Full,
}

/// Outcome of one [`clean`] call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CleanOutcome {
    /// Pools swapped; the old region is free.
    Completed,
    /// Nothing to do (single-pool deployment).
    Skipped,
    /// Unwound after parking on destination-pool space.
    Full,
    /// Unwound for cooperative shutdown.
    Stopped,
    /// The node crashed mid-pass.
    Crashed,
}

/// Crash/stop check, classified. Unlike `stopping()` this distinguishes a
/// crash (leave everything exactly as the crash instant left it) from a
/// graceful stop (restore invariants first).
fn halted(shared: &ServerShared) -> Option<Halt> {
    if shared.node.is_crashed() || shared.node.epoch() != shared.born_epoch {
        Some(Halt::Crashed)
    } else if shared.stop.load(Ordering::Relaxed) {
        Some(Halt::Stopped)
    } else {
        None
    }
}

/// Cleaner main loop: watch the active pool, clean when it fills up.
///
/// The gate also defers to migration: no pass starts while the shard is
/// sealed or a migration delta stream is attached (the migration driver,
/// symmetrically, waits for an in-flight pass to finish before attaching —
/// both claims flip atomically with their checks, so exactly one side
/// wins). A deferred `clean_request` is left pending rather than swallowed.
pub fn run(shared: &ServerShared, notifier: &Notifier) {
    loop {
        if shared.stopping() {
            return;
        }
        let migrating = !matches!(*shared.migrate_out.lock().unwrap(), MigrateSlot::Idle);
        if shared.phase() == CleanPhase::Normal && !shared.is_sealed() && !migrating {
            let active = shared.active.load(Ordering::Relaxed);
            let requested = shared.clean_request.swap(false, Ordering::Relaxed);
            if (requested || shared.logs[active].fill_frac() >= shared.cfg.clean_threshold)
                && clean(shared, notifier) == CleanOutcome::Full
            {
                // The destination stayed full: cool down before retrying
                // so the handler can drain the Busy backlog into whatever
                // space is left.
                sim::sleep(shared.cfg.txn_abort_timeout);
            }
        }
        sim::sleep(shared.cfg.clean_poll);
    }
}

/// Run one full cleaning pass (public so tests and the Figure 11 harness
/// can force cleaning at a chosen instant).
pub fn clean(shared: &ServerShared, notifier: &Notifier) -> CleanOutcome {
    let old = shared.active.load(Ordering::Relaxed);
    let new = 1 - old;
    if shared.logs[new].is_empty() {
        return CleanOutcome::Skipped; // single-pool deployment
    }
    // Claim the pass *before the first yield*: the run() gate and the
    // migration driver's wait-for-Normal both rely on the phase flipping
    // atomically with their checks.
    shared
        .clean_phase
        .store(CleanPhase::Compress as u8, Ordering::Relaxed);
    // Reserve the terminal record's slot up front (Done on success, Abort
    // on unwind): the one persist that must never fail is paid for before
    // the pass mutates anything. Allocation is yield-free, so a failure
    // here un-claims the phase without anyone having observed it.
    let record_size = layout::object_size(16, 16);
    let Some(terminal_off) = shared.logs[new].alloc(record_size) else {
        shared
            .clean_phase
            .store(CleanPhase::Normal as u8, Ordering::Relaxed);
        return CleanOutcome::Full;
    };
    let epoch = shared.clean_epoch.load(Ordering::Relaxed) + 1;
    let tracer = &shared.cfg.obs.tracer;
    let _sp = tracer.span(Subsystem::Cleaner, "clean");
    tracer.event(Subsystem::Cleaner, "clean_start");
    let _ = notifier.notify_all(&Event::CleanStart.encode());

    let outcome = match clean_pass(shared, old, new, epoch, terminal_off) {
        Ok(()) => CleanOutcome::Completed,
        Err(Halt::Crashed) => {
            // The crash instant's persisted state is what recovery will
            // see; mutating anything now would tamper with the evidence.
            return CleanOutcome::Crashed;
        }
        Err(halt) => {
            unwind(shared, old, epoch, terminal_off);
            match halt {
                Halt::Stopped => CleanOutcome::Stopped,
                _ => CleanOutcome::Full,
            }
        }
    };
    tracer.event(Subsystem::Cleaner, "clean_finish");
    let _ = notifier.notify_all(&Event::CleanEnd.encode());
    outcome
}

/// The compress → merge → finish → swap body. Returns `Err` with the halt
/// reason at the first crash/stop/space failure; `clean` classifies it.
/// `terminal_off` is the pre-reserved slot for the Done record.
fn clean_pass(
    shared: &ServerShared,
    old: usize,
    new: usize,
    epoch: u64,
    terminal_off: usize,
) -> Result<(), Halt> {
    let tracer = &shared.cfg.obs.tracer;

    // ---- Stage 1: log compressing -----------------------------------------
    // The phase is already Compress (claimed by `clean`); the progress
    // record lands right behind it. A crash in the gap is indistinguishable
    // from a pre-clean crash — nothing has been relocated yet — so the
    // no-record recovery path handles it.
    write_progress(shared, new, epoch, STAGE_COMPRESS, old)?;
    let compress_start = shared.logs[old].head();
    // Hole-tolerant: after a mid-clean crash recovery the active pool can
    // hold holes below its head (the crashed pass's unwritten terminal
    // record slot, torn client writes under persisted relocations); a
    // scan that stopped at the first hole would relocate nothing and the
    // finish pass would drop every key anchored above it.
    let offs = shared.logs[old].scan_until_tolerant(
        &shared.pool,
        compress_start,
        shared.cfg.max_klen,
        shared.cfg.max_vlen,
    );
    let mut seen: HashSet<u64> = HashSet::with_capacity(offs.len());
    for &off in offs.iter().rev() {
        if let Some(h) = halted(shared) {
            return Err(h);
        }
        sim::work(shared.cost.cpu_hash_ns);
        let hdr = ObjHeader::read_from(&shared.pool, off);
        let key = layout::read_key(&shared.pool, off, &hdr);
        let fp = crate::hashtable::fingerprint(&key);
        if seen.contains(&fp) {
            shared.stats.reclaimed_versions.inc();
            continue;
        }
        if stale_above_current(shared, old, off, fp) {
            // A pool that was itself produced by cleaning is not
            // offset-ordered by version: merge-stage relocations append
            // stale copies *above* newer merge-phase client writes. The
            // key's current version is still ahead in this scan — leave
            // the fingerprint unseen so it gets relocated when reached.
            shared.stats.reclaimed_versions.inc();
            continue;
        }
        seen.insert(fp);
        relocate(shared, off, fp, new, CleanPhase::Compress)?;
    }

    // ---- Stage 2: log merging ---------------------------------------------
    // Record first, then flip: any client write that lands in the new pool
    // strictly postdates a durable Merge record, so recovery never sees
    // merge-phase writes without knowing the new pool holds current data.
    write_progress(shared, new, epoch, STAGE_MERGE, old)?;
    // New-pool head before any merge-phase client write: everything at or
    // above it needs the straggler durability sweep if the pass unwinds.
    let merge_fence = shared.logs[new].head();
    tracer.event(Subsystem::Cleaner, "clean_merge");
    shared
        .clean_phase
        .store(CleanPhase::Merge as u8, Ordering::Relaxed);
    // From here on the handler allocates in the new pool; the old pool's
    // head is frozen.
    let merge_end = shared.logs[old].head();
    let offs2 = shared.logs[old].scan_until_tolerant(
        &shared.pool,
        merge_end,
        shared.cfg.max_klen,
        shared.cfg.max_vlen,
    );
    let mut seen2: HashSet<u64> = HashSet::new();
    for &off in offs2.iter().rev() {
        if off < compress_start {
            break; // reached the compress range (offs are sorted ascending)
        }
        if let Some(h) = halted(shared) {
            drain_merge_stragglers(shared, new, merge_fence)?;
            return Err(h);
        }
        sim::work(shared.cost.cpu_hash_ns);
        let hdr = ObjHeader::read_from(&shared.pool, off);
        let key = layout::read_key(&shared.pool, off, &hdr);
        let fp = crate::hashtable::fingerprint(&key);
        if seen2.contains(&fp) {
            shared.stats.reclaimed_versions.inc();
            continue;
        }
        if stale_above_current(shared, old, off, fp) {
            // Same offset-order caveat as the compress scan: never let a
            // stale duplicate swallow the current version below it.
            shared.stats.reclaimed_versions.inc();
            continue;
        }
        seen2.insert(fp);
        if let Err(h) = relocate(shared, off, fp, new, CleanPhase::Merge) {
            if h != Halt::Crashed {
                drain_merge_stragglers(shared, new, merge_fence)?;
            }
            return Err(h);
        }
    }

    // ---- Finish --------------------------------------------------------------
    write_progress(shared, new, epoch, STAGE_FINISH, old)?;
    let buckets = shared.ht.buckets();
    for idx in 0..buckets {
        if let Some(h) = halted(shared) {
            if h != Halt::Crashed {
                drain_merge_stragglers(shared, new, merge_fence)?;
            }
            return Err(h);
        }
        // Mutation block: read-check-update one bucket without yielding.
        let e = shared.ht.read(&shared.pool, idx);
        if e.fp == 0 {
            continue;
        }
        if e.ctl.mark() == new {
            if e.ctl.new_valid() {
                // Mixed-anchor key (a mid-clean recovery left its mark on
                // the new pool) whose newest version sat in the old-pool
                // slot; relocation duplicated that version into the mark
                // slot, so drop the old-pool offset and clear the bit.
                shared.ht.set_slot(&shared.pool, idx, old, 0);
                shared
                    .ht
                    .set_ctl(&shared.pool, idx, e.ctl.with_new_valid(false).bumped());
            } else {
                // Key first written during the merge phase (fresh bucket
                // whose mark was pointed straight at the new pool):
                // nothing to flip.
                debug_assert_eq!(e.slot[old], 0, "merge-fresh key with an old-pool offset");
                continue;
            }
        } else if e.ctl.new_valid() {
            debug_assert_ne!(e.slot[new], 0, "new_valid without a new-pool offset");
            shared.ht.set_slot(&shared.pool, idx, old, 0);
            shared.ht.set_ctl(
                &shared.pool,
                idx,
                e.ctl.with_mark(new).with_new_valid(false).bumped(),
            );
        } else {
            // No intact version made it to the new pool: the key's chain
            // was entirely torn/invalid, so the key was never durably
            // written. Drop it.
            shared.ht.clear(&shared.pool, idx);
        }
        let lines = shared.ht.persist_entry(&shared.pool, idx);
        sim::work(shared.cost.flush(lines * efactory_pmem::LINE) + shared.cost.cpu_hash_ns / 4);
    }

    // Done record: the flip is complete, every anchor is in the new pool.
    // From a durable Done record onward, recovery treats the old region as
    // dead and re-zeroes it — which also covers a crash landing between
    // here and the zero below. Written into the pre-reserved terminal
    // slot, so it cannot fail.
    if let Some(h) = halted(shared) {
        return Err(h);
    }
    write_progress_at(shared, terminal_off, epoch, STAGE_DONE, old);

    // ---- Swap: one no-yield block ------------------------------------------
    shared.active.store(new, Ordering::Relaxed);
    shared
        .clean_phase
        .store(CleanPhase::Normal as u8, Ordering::Relaxed);
    shared.cursor_pool.store(new, Ordering::Relaxed);
    shared
        .cursor
        .store(shared.logs[new].base() as u64, Ordering::Relaxed);
    shared.clean_epoch.store(epoch, Ordering::Relaxed);
    // Snapshots captured before the swap could name relocated versions by
    // stale offsets: expire them and drop the offset-keyed timestamps
    // (pool-reset offsets would otherwise alias).
    crate::txn::on_clean_swap(shared);
    let (obase, olen) = (shared.logs[old].base(), shared.logs[old].len());
    shared.pool.zero_region(obase, olen);
    shared.logs[old].reset();
    shared.clean_stalled.store(false, Ordering::Relaxed);
    // ---- end swap block ----
    shared.stats.cleanings.inc();
    Ok(())
}

/// Persist a cleaning-progress record into pool `dst` *before* the stage
/// transition it announces. The record is durable when this returns.
fn write_progress(
    shared: &ServerShared,
    dst: usize,
    epoch: u64,
    stage: u64,
    old: usize,
) -> Result<(), Halt> {
    if let Some(h) = halted(shared) {
        return Err(h);
    }
    let size = layout::object_size(16, 16);
    let Some(off) = shared.logs[dst].alloc(size) else {
        // No room for even a record: the pass cannot make progress.
        return Err(Halt::Full);
    };
    write_progress_at(shared, off, epoch, stage, old);
    Ok(())
}

/// Persist a cleaning-progress record into an already-allocated slot (the
/// pre-reserved terminal slot, or a fresh allocation from
/// [`write_progress`]). Cannot fail; durable on return.
fn write_progress_at(shared: &ServerShared, off: usize, epoch: u64, stage: u64, old: usize) {
    let key = clean_record_key(epoch);
    let mut value = [0u8; 16];
    value[..8].copy_from_slice(&stage.to_le_bytes());
    value[8..].copy_from_slice(&(old as u64).to_le_bytes());
    let size = layout::object_size(key.len(), value.len());
    // ---- mutation block: record written + persisted without yielding ----
    let hdr = ObjHeader {
        klen: key.len() as u16,
        vlen: value.len() as u32,
        flags: flags::VALID | flags::DURABLE,
        pre_ptr: NIL,
        next_ptr: NIL,
        crc: crc32c(&value),
        seq: 0,
        alloc_time: sim::now(),
    };
    hdr.write_to(&shared.pool, off);
    shared.pool.write(off + hdr.key_off(), &key);
    shared.pool.write(off + hdr.value_off(), &value);
    let lines = shared.pool.flush(off, size);
    shared.pool.drain();
    // ---- end mutation block ----
    sim::work(shared.cost.cpu_alloc_ns + shared.cost.flush(lines * efactory_pmem::LINE));
    shared.cfg.obs.tracer.event_args(
        Subsystem::Cleaner,
        "clean_progress",
        &[("epoch", epoch), ("stage", stage)],
    );
}

/// Restore every invariant after an aborted (not crashed) pass: phase back
/// to Normal, backpressure released, a durable Abort record in the
/// reserved terminal slot (so recovery knows the swap never happened), and
/// the aborted epoch burned so the next pass's records outrank this one's.
/// Relocated copies stay reachable — `new_valid` marks them and reads
/// honor it in every phase — so no bucket surgery is needed.
fn unwind(shared: &ServerShared, old: usize, epoch: u64, terminal_off: usize) {
    shared
        .cfg
        .obs
        .tracer
        .event(Subsystem::Cleaner, "clean_abort");
    write_progress_at(shared, terminal_off, epoch, STAGE_ABORT, old);
    // Burn the epoch: the aborted pass's records (epoch N+1) must never
    // outrank a later pass's, so the next pass starts at N+2.
    shared.clean_epoch.fetch_add(1, Ordering::Relaxed);
    // Snapshots captured before the pass could now resolve relocated
    // copies (timestamp 0) as too-new versions: expire them.
    crate::txn::expire_snapshots(shared);
    shared.clean_stalled.store(false, Ordering::Relaxed);
    shared
        .clean_phase
        .store(CleanPhase::Normal as u8, Ordering::Relaxed);
}

/// Make every merge-phase client write at or above `fence` durable (or
/// invalidate it, verifier-style). On an abort the verifier's cursor never
/// re-bases into the new pool, so without this sweep those acknowledged
/// writes would stay unverified forever — breaking the bounded-durability
/// contract the background verifier provides in Normal operation.
fn drain_merge_stragglers(shared: &ServerShared, new: usize, fence: usize) -> Result<(), Halt> {
    let head = shared.logs[new].head();
    // Hole-tolerant: the new pool starts with this pass's reserved (still
    // unwritten, all-zero) terminal record slot, which a size-chain walk
    // would mistake for the unwritten tail and stop at.
    for off in shared.logs[new].scan_until_tolerant(
        &shared.pool,
        head,
        shared.cfg.max_klen,
        shared.cfg.max_vlen,
    ) {
        if off < fence {
            continue;
        }
        loop {
            if let Some(h) = halted(shared) {
                return Err(h);
            }
            let hdr = ObjHeader::read_from(&shared.pool, off);
            if !hdr.has(flags::VALID) || hdr.has(flags::DURABLE) {
                break;
            }
            sim::work(shared.cost.crc_hw(hdr.vlen as usize));
            if shared.crc_matches(off, &hdr) {
                let lines = shared.persist_object(off, &hdr);
                sim::work(shared.cost.flush(lines * efactory_pmem::LINE));
                break;
            }
            if sim::now().saturating_sub(hdr.alloc_time) > shared.cfg.verify_timeout {
                layout::update_flags(&shared.pool, off, 0, flags::VALID);
                shared.pool.flush(off, 8);
                shared.pool.drain();
                shared.stats.bg_timeouts.inc();
                break;
            }
            sim::sleep(shared.cfg.verify_idle);
        }
    }
    Ok(())
}

/// Emergency in-place reclaim: clear every bucket whose current version is
/// a durable tombstone. Frees neither pool directly, but cancels the
/// relocation work (and new-pool bytes) those keys would have cost — the
/// escape valve that keeps a stalled clean from deadlocking the store.
fn reclaim_tombstones(shared: &ServerShared) {
    let buckets = shared.ht.buckets();
    let mut cleared = 0u64;
    for idx in 0..buckets {
        // Mutation block per bucket: read-check-clear without yielding.
        let e = shared.ht.read(&shared.pool, idx);
        if e.fp == 0 {
            continue;
        }
        let head = shared.current_off(&e);
        if head == 0 || head == NIL {
            continue;
        }
        let hdr = ObjHeader::read_from(&shared.pool, head as usize);
        if hdr.has(flags::VALID)
            && hdr.has(flags::DURABLE)
            && hdr.has(flags::TOMBSTONE)
            && !hdr.has(flags::PENDING)
        {
            shared.ht.clear(&shared.pool, idx);
            shared.ht.persist_entry(&shared.pool, idx);
            shared.stats.reclaimed_versions.inc();
            cleared += 1;
        }
    }
    sim::work(shared.cost.cpu_hash_ns * (buckets as u64 / 16).max(1));
    shared.cfg.obs.tracer.event_args(
        Subsystem::Cleaner,
        "reclaim_tombstones",
        &[("cleared", cleared)],
    );
}

/// Allocate `size` bytes in pool `dst`, parking under backpressure when the
/// pool is full: raise `clean_stalled` (the handler answers `Busy`), run
/// the emergency tombstone reclaim, and poll until space appears or the
/// park deadline passes.
fn alloc_parked(shared: &ServerShared, dst: usize, size: usize) -> Result<usize, Halt> {
    if let Some(off) = shared.logs[dst].alloc(size) {
        return Ok(off);
    }
    shared.stats.cleaner_stalls.inc();
    shared.clean_stalled.store(true, Ordering::Relaxed);
    shared
        .cfg
        .obs
        .tracer
        .event(Subsystem::Cleaner, "cleaner_stall");
    reclaim_tombstones(shared);
    let start = sim::now();
    let deadline = start + shared.cfg.txn_abort_timeout;
    let res = loop {
        if let Some(h) = halted(shared) {
            break Err(h);
        }
        if let Some(off) = shared.logs[dst].alloc(size) {
            break Ok(off);
        }
        if sim::now() >= deadline {
            break Err(Halt::Full);
        }
        sim::sleep(shared.cfg.clean_poll);
    };
    shared
        .stats
        .cleaner_park_ns
        .add(sim::now().saturating_sub(start));
    if res.is_ok() {
        // Unparked: lift the backpressure. On failure the flag stays up
        // through the unwind (cleared there), keeping writers off the
        // pools while invariants are restored.
        shared.clean_stalled.store(false, Ordering::Relaxed);
    }
    res
}

/// Relocate the version chain headed at `head_off` (the newest version of
/// its key within the scanned range) into pool `dst`.
/// True when the bucket says the key's current version sits at a *lower*
/// offset in the same source pool — i.e. the scanned object at `off` is a
/// stale duplicate appended above the current by an earlier pass's
/// merge-stage relocation. The reverse scan must not treat it as the
/// key's newest version: the real current is still ahead.
fn stale_above_current(shared: &ServerShared, old: usize, off: usize, fp: u64) -> bool {
    let Some((_, e)) = shared.ht.lookup(&shared.pool, fp) else {
        return false;
    };
    let cur = shared.current_off(&e) as usize;
    let region = &shared.logs[old];
    cur != off && cur >= region.base() && cur < region.base() + region.len() && cur < off
}

fn relocate(
    shared: &ServerShared,
    head_off: usize,
    fp: u64,
    dst: usize,
    stage: CleanPhase,
) -> Result<(), Halt> {
    let Some((idx, entry)) = shared.ht.lookup(&shared.pool, fp) else {
        return Ok(()); // bucket dropped (e.g. tombstone reclaimed earlier)
    };

    // Merge-stage D1/D2 rule: if the key's newest version already lives in
    // the new pool (written during merging, or relocated during
    // compression and not superseded), skip this old-pool version —
    // provided the new-pool one is durable or can be made durable.
    if stage == CleanPhase::Merge && entry.ctl.new_valid() {
        let new_off = entry.slot[dst];
        if new_off != 0 {
            let new_hdr = ObjHeader::read_from(&shared.pool, new_off as usize);
            let head_hdr = ObjHeader::read_from(&shared.pool, head_off);
            if new_hdr.seq >= head_hdr.seq && ensure_intact(shared, new_off as usize).is_some() {
                shared.stats.reclaimed_versions.inc();
                return Ok(());
            }
        }
    }

    // Wait for an in-flight head (bounded by the verifier timeout), then
    // pick the newest intact version of the chain.
    let src = loop {
        if let Some(h) = halted(shared) {
            return Err(h);
        }
        let hdr = ObjHeader::read_from(&shared.pool, head_off);
        if hdr.has(flags::VALID) && hdr.has(flags::PENDING) {
            // In-doubt staged head. It cannot be copied (publish clears
            // PENDING at the source offset only — the copy would stay
            // in-doubt forever) and cannot be walked past (the
            // transaction may still commit). Wait for the decide RPC, or
            // force the presumed-abort sweep once the prepare is overdue;
            // either way the bit resolves within the abort timeout.
            if sim::now().saturating_sub(hdr.alloc_time) > shared.cfg.txn_abort_timeout {
                crate::txn::sweep_expired(shared);
            }
            let h2 = ObjHeader::read_from(&shared.pool, head_off);
            if h2.has(flags::VALID) && h2.has(flags::PENDING) {
                sim::sleep(shared.cfg.verify_idle);
                // A decide may have replaced the head while we slept.
                match shared.ht.lookup(&shared.pool, fp) {
                    Some((_, e2)) if shared.current_off(&e2) == head_off as u64 => {}
                    _ => return Ok(()), // key moved on; later work owns it
                }
            }
            continue;
        }
        if hdr.has(flags::VALID) && hdr.has(flags::DURABLE) {
            // Durable, but verify anyway: silently rotted bytes must not
            // become the key's only surviving copy in the new pool.
            sim::work(shared.cost.crc_hw(hdr.vlen as usize));
            if shared.crc_matches(head_off, &hdr) {
                break Some((head_off, hdr));
            }
            // Rotted: quarantine like the scrubber would and fall back to
            // the newest intact ancestor.
            layout::update_flags(&shared.pool, head_off, flags::QUARANTINED, flags::VALID);
            shared.pool.flush(head_off, 8);
            shared.pool.drain();
            shared.scrub.quarantined.inc();
            shared.cfg.obs.tracer.event_args(
                Subsystem::Cleaner,
                "quarantine",
                &[("off", head_off as u64)],
            );
            break walk_chain(shared, hdr.pre_ptr);
        }
        if hdr.has(flags::VALID) {
            sim::work(shared.cost.crc_hw(hdr.vlen as usize));
            if shared.crc_matches(head_off, &hdr) {
                break Some((head_off, hdr));
            }
            if sim::now().saturating_sub(hdr.alloc_time) <= shared.cfg.verify_timeout {
                // Still within its window — wait like the verifier would.
                sim::sleep(shared.cfg.verify_idle);
                // A newer version may have appeared while waiting; if so,
                // a later scan position (or the merge stage) owns this key.
                if let Some((_, e2)) = shared.ht.lookup(&shared.pool, fp) {
                    if shared.current_off(&e2) != head_off as u64 {
                        return Ok(());
                    }
                }
                continue;
            }
            // Timed out: invalidate, like the verifier.
            layout::update_flags(&shared.pool, head_off, 0, flags::VALID);
            shared.pool.flush(head_off, 8);
            shared.pool.drain();
            shared.stats.bg_timeouts.inc();
            shared.cfg.obs.tracer.event_args(
                Subsystem::Cleaner,
                "invalidate",
                &[("off", head_off as u64)],
            );
        }
        // Fall back along the chain for the newest intact ancestor.
        break walk_chain(shared, hdr.pre_ptr);
    };
    let Some((src_off, src_hdr)) = src else {
        return Ok(()); // nothing intact: the finish pass drops the bucket
    };

    // Tombstone heading the chain: the key is deleted; reclaim it now if
    // it is still the key's current version.
    if src_hdr.has(flags::TOMBSTONE) {
        let e = shared.ht.read(&shared.pool, idx);
        if shared.current_off(&e) == head_off as u64 {
            shared.ht.clear(&shared.pool, idx);
            shared.ht.persist_entry(&shared.pool, idx);
            shared.stats.reclaimed_versions.inc();
        }
        return Ok(());
    }

    // Copy into the destination pool (already durable ⇒ copy is durable).
    let size = src_hdr.object_size();
    let noff = alloc_parked(shared, dst, size)?;
    // ---- mutation block: build the relocated object ----
    let mut reloc_hdr = src_hdr;
    reloc_hdr.pre_ptr = NIL;
    reloc_hdr.next_ptr = NIL;
    reloc_hdr.flags = src_hdr.flags | flags::DURABLE;
    reloc_hdr.write_to(&shared.pool, noff);
    let mut body = vec![0u8; size - layout::HDR_LEN];
    shared.pool.read(src_off + layout::HDR_LEN, &mut body);
    shared.pool.write(noff + layout::HDR_LEN, &body);
    // If the source was verified-intact but not yet flagged durable,
    // persist the copy (and the flag is already set in the copy's header).
    shared.pool.flush(noff, size);
    shared.pool.drain();
    // ---- end mutation block ----
    sim::work(shared.cost.memcpy(size) + shared.cost.flush(size));

    // Link: if the key's current version is still `head_off`, point the
    // entry's new-pool slot at the copy; otherwise repair the successor's
    // back-pointer (paper's PrePTR fix + Trans flag).
    let e = shared.ht.read(&shared.pool, idx);
    if shared.current_off(&e) == head_off as u64 {
        shared.ht.set_slot(&shared.pool, idx, dst, noff as u64);
        shared
            .ht
            .set_sizes(&shared.pool, idx, src_hdr.klen, src_hdr.vlen);
        shared
            .ht
            .set_ctl(&shared.pool, idx, e.ctl.with_new_valid(true).bumped());
        shared.ht.persist_entry(&shared.pool, idx);
    } else if src_hdr.next_ptr != NIL && successor_matches(shared, src_hdr.next_ptr, fp) {
        let succ = src_hdr.next_ptr as usize;
        layout::set_pre_ptr(&shared.pool, succ, noff as u64);
        layout::update_flags(&shared.pool, succ, flags::TRANS, 0);
        shared.pool.flush(succ, 24);
        shared.pool.drain();
    }
    shared.stats.relocated.inc();
    sim::work(shared.cost.cpu_hash_ns);
    Ok(())
}

/// Whether `next` points at a plausible successor *of the same key*.
/// `next_ptr` is unflushed working state; after a mid-clean recovery it can
/// be stale garbage, and repairing a random object's back-pointer through
/// it would corrupt an unrelated chain.
fn successor_matches(shared: &ServerShared, next: u64, fp: u64) -> bool {
    let off = next as usize;
    if !shared.logs.iter().any(|r| r.contains(off)) {
        return false;
    }
    let hdr = ObjHeader::read_from(&shared.pool, off);
    if hdr.klen == 0
        || hdr.klen as usize > shared.cfg.max_klen
        || hdr.vlen as usize > shared.cfg.max_vlen
    {
        return false;
    }
    let key = layout::read_key(&shared.pool, off, &hdr);
    crate::hashtable::fingerprint(&key) == fp
}

/// Newest intact (durable or CRC-verifiable) version along a `pre_ptr`
/// chain, persisting it if needed. In-doubt (`PENDING`) versions are never
/// intact for relocation purposes — a mid-chain one means its transaction
/// aborted without the flag store landing.
fn walk_chain(shared: &ServerShared, mut off: u64) -> Option<(usize, ObjHeader)> {
    while off != 0 && off != NIL {
        let hdr = ObjHeader::read_from(&shared.pool, off as usize);
        if hdr.has(flags::VALID) && !hdr.has(flags::PENDING) {
            if hdr.has(flags::DURABLE) {
                return Some((off as usize, hdr));
            }
            sim::work(shared.cost.crc_hw(hdr.vlen as usize));
            if shared.crc_matches(off as usize, &hdr) {
                let lines = shared.persist_object(off as usize, &hdr);
                sim::work(shared.cost.flush(lines * efactory_pmem::LINE));
                let hdr = ObjHeader::read_from(&shared.pool, off as usize);
                return Some((off as usize, hdr));
            }
        }
        off = hdr.pre_ptr;
    }
    None
}

/// Check (and if needed make) the object at `off` durable; `None` if torn.
fn ensure_intact(shared: &ServerShared, off: usize) -> Option<usize> {
    let hdr = ObjHeader::read_from(&shared.pool, off);
    if hdr.has(flags::DURABLE) {
        return Some(off);
    }
    if !hdr.has(flags::VALID) {
        return None;
    }
    sim::work(shared.cost.crc_hw(hdr.vlen as usize));
    if shared.crc_matches(off, &hdr) {
        let lines = shared.persist_object(off, &hdr);
        sim::work(shared.cost.flush(lines * efactory_pmem::LINE));
        Some(off)
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use efactory_pmem::PmemPool;

    #[test]
    fn clean_record_roundtrip() {
        let pool = PmemPool::new(4096);
        let key = clean_record_key(7);
        let mut value = [0u8; 16];
        value[..8].copy_from_slice(&STAGE_MERGE.to_le_bytes());
        value[8..].copy_from_slice(&1u64.to_le_bytes());
        let hdr = ObjHeader {
            klen: 16,
            vlen: 16,
            flags: flags::VALID | flags::DURABLE,
            pre_ptr: NIL,
            next_ptr: NIL,
            crc: crc32c(&value),
            seq: 0,
            alloc_time: 0,
        };
        hdr.write_to(&pool, 64);
        pool.write(64 + hdr.key_off(), &key);
        pool.write(64 + hdr.value_off(), &value);
        assert_eq!(
            decode_clean_record(&pool, 64, &hdr),
            Some(CleanRecord {
                epoch: 7,
                stage: STAGE_MERGE,
                old_pool: 1
            })
        );
    }

    #[test]
    fn clean_record_rejects_torn_value() {
        let pool = PmemPool::new(4096);
        let key = clean_record_key(3);
        let mut value = [0u8; 16];
        value[..8].copy_from_slice(&STAGE_DONE.to_le_bytes());
        let hdr = ObjHeader {
            klen: 16,
            vlen: 16,
            flags: flags::VALID | flags::DURABLE,
            pre_ptr: NIL,
            next_ptr: NIL,
            crc: crc32c(&value) ^ 1, // wrong CRC = torn
            seq: 0,
            alloc_time: 0,
        };
        hdr.write_to(&pool, 64);
        pool.write(64 + hdr.key_off(), &key);
        pool.write(64 + hdr.value_off(), &value);
        assert_eq!(decode_clean_record(&pool, 64, &hdr), None);
    }

    #[test]
    fn commit_records_do_not_parse_as_clean_records() {
        let pool = PmemPool::new(4096);
        let mut key = [0u8; 16];
        key[..8].copy_from_slice(crate::txn::COMMIT_MAGIC);
        let value = [0u8; 16];
        let hdr = ObjHeader {
            klen: 16,
            vlen: 16,
            flags: flags::VALID | flags::DURABLE,
            pre_ptr: NIL,
            next_ptr: NIL,
            crc: crc32c(&value),
            seq: 0,
            alloc_time: 0,
        };
        hdr.write_to(&pool, 64);
        pool.write(64 + hdr.key_off(), &key);
        pool.write(64 + hdr.value_off(), &value);
        assert_eq!(decode_clean_record(&pool, 64, &hdr), None);
    }
}
