//! Two-stage log cleaning (paper §4.4, Figure 7).
//!
//! Triggered when the active pool passes the fill threshold:
//!
//! * **Stage 1 — log compressing.** Clients are notified to switch to the
//!   RPC+RDMA read scheme. The cleaner reverse-scans the old pool
//!   (newest → oldest), relocates the latest version of each key into the
//!   new pool, and skips stale versions. New writes keep flowing into the
//!   old pool.
//! * **Stage 2 — log merging.** New writes switch to the new pool. The
//!   cleaner reverse-scans the objects written *during* compression and
//!   merges them, skipping any key whose newest version already lives in
//!   the new pool (the paper's D1/D2 rule).
//! * **Finish.** For every surviving key the mark bit flips to the new
//!   pool's slot and the old offset clears; keys with no intact version
//!   left are dropped. The old pool is zeroed (freed) and clients are told
//!   to resume hybrid reads.
//!
//! Relocated objects are always made durable first (CRC verify + flush if
//! needed), mirroring the GET handler's durability guarantee; an in-flight
//! latest version is waited on up to the verifier timeout, exactly like the
//! background verifier would.
//!
//! Chain maintenance: when a relocated object has a newer successor in the
//! old pool, the successor's `PrePTR` is repointed at the relocated copy
//! and its `Trans` flag set (paper §4.2.2) so version-list traversal keeps
//! working while both pools are live.

use std::collections::HashSet;
use std::sync::atomic::Ordering;

use efactory_obs::Subsystem;
use efactory_rnic::Notifier;
use efactory_sim as sim;

use crate::layout::{self, flags, ObjHeader, NIL};
use crate::protocol::Event;
use crate::server::{CleanPhase, ServerShared};

/// Cleaner main loop: watch the active pool, clean when it fills up.
pub fn run(shared: &ServerShared, notifier: &Notifier) {
    loop {
        if shared.stopping() {
            return;
        }
        let active = shared.active.load(Ordering::Relaxed);
        let requested = shared.clean_request.swap(false, Ordering::Relaxed);
        if shared.phase() == CleanPhase::Normal
            && (requested || shared.logs[active].fill_frac() >= shared.cfg.clean_threshold)
        {
            clean(shared, notifier);
        }
        sim::sleep(shared.cfg.clean_poll);
    }
}

/// Run one full cleaning pass (public so tests and the Figure 11 harness
/// can force cleaning at a chosen instant).
pub fn clean(shared: &ServerShared, notifier: &Notifier) {
    let old = shared.active.load(Ordering::Relaxed);
    let new = 1 - old;
    if shared.logs[new].is_empty() {
        return; // single-pool deployment: nowhere to clean into
    }
    shared.stats.cleanings.inc();
    let tracer = &shared.cfg.obs.tracer;
    let _sp = tracer.span(Subsystem::Cleaner, "clean");

    // ---- Stage 1: log compressing -----------------------------------------
    tracer.event(Subsystem::Cleaner, "clean_start");
    let _ = notifier.notify_all(&Event::CleanStart.encode());
    shared
        .clean_phase
        .store(CleanPhase::Compress as u8, Ordering::Relaxed);
    let compress_start = shared.logs[old].head();
    let offs = shared.logs[old].scan_until(&shared.pool, compress_start);
    let mut seen: HashSet<u64> = HashSet::with_capacity(offs.len());
    for &off in offs.iter().rev() {
        if shared.stopping() {
            return;
        }
        sim::work(shared.cost.cpu_hash_ns);
        let hdr = ObjHeader::read_from(&shared.pool, off);
        let key = layout::read_key(&shared.pool, off, &hdr);
        let fp = crate::hashtable::fingerprint(&key);
        if !seen.insert(fp) {
            shared.stats.reclaimed_versions.inc();
            continue;
        }
        relocate(shared, off, fp, new, CleanPhase::Compress);
    }

    // ---- Stage 2: log merging ---------------------------------------------
    tracer.event(Subsystem::Cleaner, "clean_merge");
    shared
        .clean_phase
        .store(CleanPhase::Merge as u8, Ordering::Relaxed);
    // From here on the handler allocates in the new pool; the old pool's
    // head is frozen.
    let merge_end = shared.logs[old].head();
    let offs2 = shared.logs[old].scan_until(&shared.pool, merge_end);
    let mut seen2: HashSet<u64> = HashSet::new();
    for &off in offs2.iter().rev() {
        if off < compress_start {
            break; // reached the compress range (offs are sorted ascending)
        }
        if shared.stopping() {
            return;
        }
        sim::work(shared.cost.cpu_hash_ns);
        let hdr = ObjHeader::read_from(&shared.pool, off);
        let key = layout::read_key(&shared.pool, off, &hdr);
        let fp = crate::hashtable::fingerprint(&key);
        if !seen2.insert(fp) {
            shared.stats.reclaimed_versions.inc();
            continue;
        }
        relocate(shared, off, fp, new, CleanPhase::Merge);
    }

    // ---- Finish --------------------------------------------------------------
    let buckets = shared.ht.buckets();
    for idx in 0..buckets {
        if shared.stopping() {
            return;
        }
        // Mutation block: read-check-update one bucket without yielding.
        let e = shared.ht.read(&shared.pool, idx);
        if e.fp == 0 {
            continue;
        }
        if e.ctl.mark() == new {
            // Key first written during the merge phase (fresh bucket whose
            // mark was pointed straight at the new pool): nothing to flip.
            debug_assert_eq!(e.slot[old], 0, "merge-fresh key with an old-pool offset");
            continue;
        }
        if e.ctl.new_valid() {
            debug_assert_ne!(e.slot[new], 0, "new_valid without a new-pool offset");
            shared.ht.set_slot(&shared.pool, idx, old, 0);
            shared.ht.set_ctl(
                &shared.pool,
                idx,
                e.ctl.with_mark(new).with_new_valid(false).bumped(),
            );
        } else {
            // No intact version made it to the new pool: the key's chain
            // was entirely torn/invalid, so the key was never durably
            // written. Drop it.
            shared.ht.clear(&shared.pool, idx);
        }
        let lines = shared.ht.persist_entry(&shared.pool, idx);
        sim::work(shared.cost.flush(lines * efactory_pmem::LINE) + shared.cost.cpu_hash_ns / 4);
    }

    // Swap pools, repoint the verifier, free the old region.
    shared.active.store(new, Ordering::Relaxed);
    shared
        .clean_phase
        .store(CleanPhase::Normal as u8, Ordering::Relaxed);
    shared.cursor_pool.store(new, Ordering::Relaxed);
    shared
        .cursor
        .store(shared.logs[new].base() as u64, Ordering::Relaxed);
    shared.clean_epoch.fetch_add(1, Ordering::Relaxed);
    let (obase, olen) = (shared.logs[old].base(), shared.logs[old].len());
    shared.pool.zero_region(obase, olen);
    shared.logs[old].reset();
    tracer.event(Subsystem::Cleaner, "clean_finish");
    let _ = notifier.notify_all(&Event::CleanEnd.encode());
}

/// Relocate the version chain headed at `head_off` (the newest version of
/// its key within the scanned range) into pool `dst`.
fn relocate(shared: &ServerShared, head_off: usize, fp: u64, dst: usize, stage: CleanPhase) {
    let Some((idx, entry)) = shared.ht.lookup(&shared.pool, fp) else {
        return; // bucket dropped (e.g. tombstone reclaimed earlier)
    };

    // Merge-stage D1/D2 rule: if the key's newest version already lives in
    // the new pool (written during merging, or relocated during
    // compression and not superseded), skip this old-pool version —
    // provided the new-pool one is durable or can be made durable.
    if stage == CleanPhase::Merge && entry.ctl.new_valid() {
        let new_off = entry.slot[dst];
        if new_off != 0 {
            let new_hdr = ObjHeader::read_from(&shared.pool, new_off as usize);
            let head_hdr = ObjHeader::read_from(&shared.pool, head_off);
            if new_hdr.seq >= head_hdr.seq && ensure_intact(shared, new_off as usize).is_some() {
                shared.stats.reclaimed_versions.inc();
                return;
            }
        }
    }

    // Wait for an in-flight head (bounded by the verifier timeout), then
    // pick the newest intact version of the chain.
    let src = loop {
        let hdr = ObjHeader::read_from(&shared.pool, head_off);
        if hdr.has(flags::DURABLE) {
            break Some((head_off, hdr));
        }
        if hdr.has(flags::VALID) {
            sim::work(shared.cost.crc_hw(hdr.vlen as usize));
            if shared.crc_matches(head_off, &hdr) {
                break Some((head_off, hdr));
            }
            if sim::now().saturating_sub(hdr.alloc_time) <= shared.cfg.verify_timeout {
                // Still within its window — wait like the verifier would.
                sim::sleep(shared.cfg.verify_idle);
                // A newer version may have appeared while waiting; if so,
                // a later scan position (or the merge stage) owns this key.
                if let Some((_, e2)) = shared.ht.lookup(&shared.pool, fp) {
                    if shared.current_off(&e2) != head_off as u64 {
                        return;
                    }
                }
                continue;
            }
            // Timed out: invalidate, like the verifier.
            layout::update_flags(&shared.pool, head_off, 0, flags::VALID);
            shared.pool.flush(head_off, 8);
            shared.pool.drain();
            shared.stats.bg_timeouts.inc();
            shared.cfg.obs.tracer.event_args(
                Subsystem::Cleaner,
                "invalidate",
                &[("off", head_off as u64)],
            );
        }
        // Fall back along the chain for the newest intact ancestor.
        break walk_chain(shared, hdr.pre_ptr);
    };
    let Some((src_off, src_hdr)) = src else {
        return; // nothing intact: the finish pass drops the bucket
    };

    // Tombstone heading the chain: the key is deleted; reclaim it now if
    // it is still the key's current version.
    if src_hdr.has(flags::TOMBSTONE) {
        let e = shared.ht.read(&shared.pool, idx);
        if shared.current_off(&e) == head_off as u64 {
            shared.ht.clear(&shared.pool, idx);
            shared.ht.persist_entry(&shared.pool, idx);
            shared.stats.reclaimed_versions.inc();
        }
        return;
    }

    // Copy into the destination pool (already durable ⇒ copy is durable).
    let size = src_hdr.object_size();
    let Some(noff) = shared.logs[dst].alloc(size) else {
        panic!(
            "log cleaning ran out of space in the destination pool \
             (size the pools with more slack)"
        );
    };
    // ---- mutation block: build the relocated object ----
    let mut reloc_hdr = src_hdr;
    reloc_hdr.pre_ptr = NIL;
    reloc_hdr.next_ptr = NIL;
    reloc_hdr.flags = src_hdr.flags | flags::DURABLE;
    reloc_hdr.write_to(&shared.pool, noff);
    let mut body = vec![0u8; size - layout::HDR_LEN];
    shared.pool.read(src_off + layout::HDR_LEN, &mut body);
    shared.pool.write(noff + layout::HDR_LEN, &body);
    // If the source was verified-intact but not yet flagged durable,
    // persist the copy (and the flag is already set in the copy's header).
    shared.pool.flush(noff, size);
    shared.pool.drain();
    // ---- end mutation block ----
    sim::work(shared.cost.memcpy(size) + shared.cost.flush(size));

    // Link: if the key's current version is still `head_off`, point the
    // entry's new-pool slot at the copy; otherwise repair the successor's
    // back-pointer (paper's PrePTR fix + Trans flag).
    let e = shared.ht.read(&shared.pool, idx);
    if shared.current_off(&e) == head_off as u64 {
        shared.ht.set_slot(&shared.pool, idx, dst, noff as u64);
        shared
            .ht
            .set_sizes(&shared.pool, idx, src_hdr.klen, src_hdr.vlen);
        shared
            .ht
            .set_ctl(&shared.pool, idx, e.ctl.with_new_valid(true).bumped());
        shared.ht.persist_entry(&shared.pool, idx);
    } else if src_hdr.next_ptr != NIL {
        let succ = src_hdr.next_ptr as usize;
        layout::set_pre_ptr(&shared.pool, succ, noff as u64);
        layout::update_flags(&shared.pool, succ, flags::TRANS, 0);
        shared.pool.flush(succ, 24);
        shared.pool.drain();
    }
    shared.stats.relocated.inc();
    sim::work(shared.cost.cpu_hash_ns);
}

/// Newest intact (durable or CRC-verifiable) version along a `pre_ptr`
/// chain, persisting it if needed.
fn walk_chain(shared: &ServerShared, mut off: u64) -> Option<(usize, ObjHeader)> {
    while off != 0 && off != NIL {
        let hdr = ObjHeader::read_from(&shared.pool, off as usize);
        if hdr.has(flags::VALID) {
            if hdr.has(flags::DURABLE) {
                return Some((off as usize, hdr));
            }
            sim::work(shared.cost.crc_hw(hdr.vlen as usize));
            if shared.crc_matches(off as usize, &hdr) {
                let lines = shared.persist_object(off as usize, &hdr);
                sim::work(shared.cost.flush(lines * efactory_pmem::LINE));
                let hdr = ObjHeader::read_from(&shared.pool, off as usize);
                return Some((off as usize, hdr));
            }
        }
        off = hdr.pre_ptr;
    }
    None
}

/// Check (and if needed make) the object at `off` durable; `None` if torn.
fn ensure_intact(shared: &ServerShared, off: usize) -> Option<usize> {
    let hdr = ObjHeader::read_from(&shared.pool, off);
    if hdr.has(flags::DURABLE) {
        return Some(off);
    }
    if !hdr.has(flags::VALID) {
        return None;
    }
    sim::work(shared.cost.crc_hw(hdr.vlen as usize));
    if shared.crc_matches(off, &hdr) {
        let lines = shared.persist_object(off, &hdr);
        sim::work(shared.cost.flush(lines * efactory_pmem::LINE));
        Some(off)
    } else {
        None
    }
}
