//! Background CRC scrubber: detect and handle silent media corruption.
//!
//! NVM cells decay ("bit-rot"): a range that was durably persisted can
//! later read back wrong, with no signal from the device — the failure
//! class [`efactory_pmem::PmemPool::corrupt_range`] injects. The verifier
//! never revisits an object once its durability flag is set, so rot on a
//! durable object would otherwise go unnoticed until a client's end-to-end
//! CRC check trips on it.
//!
//! The scrubber is a third background sibling of the verifier and cleaner:
//! it repeatedly walks the active log, re-verifying every *durable* object
//! against its recorded value CRC.
//!
//! * **Match** — the object is clean; move on.
//! * **Mismatch, running replicated** — read the same offsets back from
//!   the backup (the mirror keeps the two logs byte-identical at 1:1
//!   offsets), validate the backup copy independently, and rewrite +
//!   re-persist the local object: the rot is *repaired* in place.
//! * **Mismatch, standalone (or backup copy also bad)** — the version is
//!   *quarantined*: `VALID` is cleared and `QUARANTINED` is set in one
//!   atomic flag update, so reads fall through to the previous intact
//!   version (or report not-found) instead of ever returning rotted bytes.
//!
//! Non-durable objects are the verifier's domain and are skipped; so are
//! already-quarantined ones. The walk only runs while no log cleaning is
//! in progress and restarts if the clean epoch changes mid-pass — the
//! cleaner rewrites the log under the scrubber's feet otherwise. Because
//! the scrubber yields between examining an object and acting on it, every
//! *mutation* (quarantine, backup rewrite) independently re-checks the
//! phase and epoch after its last yield: a pool swapped mid-yield must be
//! left exactly as the cleaner published it.
//!
//! A header so damaged the walk cannot even size the object is the worst
//! case: with replication, the backup's intact copy repairs it in place
//! and the walk continues. Standalone, the corpse is quarantined where it
//! lies (its word-0 flag flip needs no sizing) and the walk *resumes* at
//! the next object boundary still reachable through the hash index —
//! every hash entry's version chain is followed to collect candidate
//! offsets, and the smallest one past the corpse is the resume point.
//! Whatever the jump skips is unreachable to readers (no index path leads
//! into it), so no observable object ever escapes scrubbing; the skipped
//! span is surfaced as `scrub.skipped_bytes` so experiments can see the
//! coverage gap. If nothing reachable remains, the pass jumps to the log
//! head and later passes retry the region (new allocations land past the
//! head and are walked normally).

use std::sync::atomic::Ordering;
use std::sync::Arc;

use efactory_checksum::crc32c;
use efactory_obs::{Counter, Registry, Subsystem};
use efactory_rnic::{ClientQp, Fabric, RemoteMr};
use efactory_sim as sim;

use crate::layout::{self, flags, ObjHeader, NIL};
use crate::log::LogRegion;
use crate::repl::ReplTarget;
use crate::server::{CleanPhase, ServerShared};

/// Scrubber counters (monotonic), registered under `{prefix}scrub.*`.
#[derive(Debug, Default)]
pub struct ScrubStats {
    /// Objects the walk looked at (any flag state).
    pub scanned: Counter,
    /// Durable objects whose CRC matched.
    pub clean: Counter,
    /// Rotted objects rewritten from the backup replica.
    pub repaired: Counter,
    /// Rotted objects invalidated in place (no usable backup copy).
    pub quarantined: Counter,
    /// Repair attempts that failed (backup unreachable or its copy bad);
    /// each such object was quarantined instead.
    pub repair_failures: Counter,
    /// Passes abandoned mid-walk (cleaning started under the scrubber).
    pub halted: Counter,
    /// Bytes jumped over because an unsizable (header-rotted, unrepaired)
    /// object forced the walk to resume at the next index-reachable
    /// boundary. Non-zero means part of the log went unscrubbed — by
    /// construction a span no reader can reach.
    pub skipped_bytes: Counter,
    /// Complete passes over the active log.
    pub passes: Counter,
}

impl ScrubStats {
    /// Attach every counter to `reg` under `{prefix}scrub.*` names.
    pub fn register_prefixed(&self, reg: &Registry, prefix: &str) {
        let pairs: [(&str, &Counter); 8] = [
            ("scrub.scanned", &self.scanned),
            ("scrub.clean", &self.clean),
            ("scrub.repaired", &self.repaired),
            ("scrub.quarantined", &self.quarantined),
            ("scrub.repair_failures", &self.repair_failures),
            ("scrub.halted", &self.halted),
            ("scrub.skipped_bytes", &self.skipped_bytes),
            ("scrub.passes", &self.passes),
        ];
        for (name, c) in pairs {
            reg.attach_counter(&format!("{prefix}{name}"), c);
        }
    }
}

/// The repair source: a QP to the backup plus its memory registration.
struct RepairSource {
    qp: ClientQp,
    mr: RemoteMr,
}

/// Safety cap on version-chain walks in [`next_reachable`] — corruption
/// could splice a chain into a cycle.
const MAX_CHAIN_HOPS: usize = 256;

/// Run the scrubber until the server stops. Must be spawned as its own
/// simulated process (it sleeps and charges CPU). With `repl`, corrupted
/// objects are repaired from the backup; standalone they are quarantined.
pub fn run(shared: &Arc<ServerShared>, fabric: &Arc<Fabric>, repl: Option<&ReplTarget>) {
    let repair = repl.and_then(|t| match fabric.connect(&shared.node, &t.backup) {
        Ok(qp) => Some(RepairSource { qp, mr: t.mr }),
        Err(_) => None,
    });
    while !shared.stopping() {
        if shared.phase() != CleanPhase::Normal {
            sim::sleep(shared.cfg.scrub_interval);
            continue;
        }
        let epoch0 = shared.clean_epoch.load(Ordering::Relaxed);
        let pool_idx = shared.active.load(Ordering::Relaxed);
        let region = &shared.logs[pool_idx];
        let mut off = region.base();
        let mut halted = false;
        while off < region.head() {
            if shared.stopping() {
                return;
            }
            if shared.phase() != CleanPhase::Normal
                || shared.clean_epoch.load(Ordering::Relaxed) != epoch0
            {
                // The cleaner is rewriting the log; abandon this pass.
                shared.scrub.halted.inc();
                halted = true;
                break;
            }
            off += scrub_object(shared, repair.as_ref(), off, region, epoch0);
            sim::work(shared.cfg.scrub_step_cost);
        }
        if !halted {
            shared.scrub.passes.inc();
        }
        sim::sleep(shared.cfg.scrub_interval);
    }
}

/// Whether the cleaner moved under the scrubber since a pass began: any
/// phase or epoch change means offsets examined before the last yield may
/// now sit in a pool mid-relocation (or already re-zeroed). Mutations —
/// quarantine flag flips, backup rewrites — must re-check this *after*
/// their last yield, not just at the walk loop's top, or a half-copied
/// object gets quarantined and a freed region gets resurrected.
fn clean_moved(shared: &ServerShared, epoch0: u64) -> bool {
    shared.phase() != CleanPhase::Normal || shared.clean_epoch.load(Ordering::Relaxed) != epoch0
}

/// Whether a header can be trusted to size the object it heads.
fn header_sane(shared: &ServerShared, hdr: &ObjHeader, off: usize, head: usize) -> bool {
    hdr.klen as usize <= shared.cfg.max_klen
        && hdr.vlen as usize <= shared.cfg.max_vlen
        && off + hdr.object_size() <= head
}

/// Examine one object. Returns how far to advance the walk (always > 0:
/// even an unsizable header yields a jump to the next reachable boundary
/// or the log head).
fn scrub_object(
    shared: &ServerShared,
    repair: Option<&RepairSource>,
    off: usize,
    region: &LogRegion,
    epoch0: u64,
) -> usize {
    let head = region.head();
    let hdr = ObjHeader::read_from(&shared.pool, off);
    if !header_sane(shared, &hdr, off, head) {
        if clean_moved(shared, epoch0) {
            // The cleaner owns this pool now; the walk loop will halt the
            // pass. Don't quarantine what may be a half-relocated object
            // or a re-zeroed region.
            return head - off;
        }
        // The header itself is rotted: the object cannot even be sized.
        // A backup copy rescues it in place; otherwise quarantine the
        // corpse (the word-0 flag flip needs no sizing — any reader
        // reaching it through a version chain must not trust it) and
        // resume at the next index-reachable boundary. The skipped span
        // is unreachable to readers, so nothing observable goes
        // unscrubbed; it is still accounted under `scrub.skipped_bytes`.
        if let Some(src) = repair {
            if let Some(size) = try_repair(shared, src, off, head, epoch0) {
                shared.scrub.repaired.inc();
                return size;
            }
            shared.scrub.repair_failures.inc();
        }
        if clean_moved(shared, epoch0) {
            return head - off; // repair attempt yielded; re-check
        }
        // Idempotent across passes: the flag word is ours once written, so
        // a corpse met again is only jumped over, not re-counted.
        let resume = next_reachable(shared, region, off).unwrap_or(head);
        if !hdr.has(flags::QUARANTINED) || hdr.has(flags::VALID) {
            quarantine(shared, off);
            shared.scrub.quarantined.inc();
            shared.scrub.skipped_bytes.add((resume - off) as u64);
        }
        return resume - off;
    }
    let size = hdr.object_size();
    shared.scrub.scanned.inc();
    if !hdr.has(flags::VALID) || hdr.has(flags::QUARANTINED) || !hdr.has(flags::DURABLE) {
        // Dead, already quarantined, or still the verifier's business.
        return size;
    }
    sim::work(shared.cost.crc_hw(hdr.vlen as usize));
    if clean_moved(shared, epoch0) {
        // The CRC charge yielded; the object may since have been
        // relocated (its source invalidated) or its pool re-zeroed. The
        // walk loop halts the pass next iteration; mutate nothing.
        return size;
    }
    if shared.crc_matches(off, &hdr) {
        shared.scrub.clean.inc();
        return size;
    }
    // Silent bit-rot on a durable object — the exact hazard this process
    // exists for.
    let mut sp = shared.cfg.obs.tracer.span(Subsystem::Server, "scrub_rot");
    sp.arg("off", off as u64);
    if let Some(src) = repair {
        if try_repair(shared, src, off, head, epoch0).is_some() {
            shared.scrub.repaired.inc();
            return size;
        }
        shared.scrub.repair_failures.inc();
    }
    if clean_moved(shared, epoch0) {
        return size; // repair attempt yielded; re-check before quarantine
    }
    quarantine(shared, off);
    shared.scrub.quarantined.inc();
    size
}

/// Smallest object offset strictly past `after` (and below the head) that
/// a reader could still reach: every occupied hash entry's slots, plus
/// the version chains hanging off them, guarded hop by hop (a rotted
/// `pre_ptr` must not lead the scan astray — chains stop at the first
/// out-of-region or insane header, and at [`MAX_CHAIN_HOPS`]).
fn next_reachable(shared: &ServerShared, region: &LogRegion, after: usize) -> Option<usize> {
    let head = region.head();
    let mut best: Option<usize> = None;
    shared.ht.for_each_occupied(&shared.pool, |_, entry| {
        for slot in entry.slot {
            let mut cur = slot;
            let mut hops = 0;
            while cur != 0 && cur != NIL && hops < MAX_CHAIN_HOPS {
                let off = cur as usize;
                if !region.contains(off) || off >= head {
                    break;
                }
                let hdr = ObjHeader::read_from(&shared.pool, off);
                if !header_sane(shared, &hdr, off, head) {
                    break;
                }
                if off > after && best.is_none_or(|b| off < b) {
                    best = Some(off);
                }
                cur = hdr.pre_ptr;
                hops += 1;
            }
        }
    });
    best
}

/// Fetch the object at `off` from the backup, validate the copy
/// independently (sane header + matching value CRC), and rewrite +
/// re-persist it locally. Returns the repaired object's size, or `None`
/// when no trustworthy copy could be obtained.
fn try_repair(
    shared: &ServerShared,
    src: &RepairSource,
    off: usize,
    head: usize,
    epoch0: u64,
) -> Option<usize> {
    // The local header may be rotted too, so size the object from the
    // *backup's* header (offsets are 1:1 by construction).
    let hdr_bytes = src.qp.rdma_read(&src.mr, off, layout::HDR_LEN).ok()?;
    let bhdr = ObjHeader::decode(&hdr_bytes)?;
    if !header_sane(shared, &bhdr, off, head) || !bhdr.has(flags::VALID) {
        return None;
    }
    let size = bhdr.object_size();
    let obj = src.qp.rdma_read(&src.mr, off, size).ok()?;
    let value = &obj[bhdr.value_off()..bhdr.value_off() + bhdr.vlen as usize];
    if crc32c(value) != bhdr.crc {
        // The backup's copy is rotted as well; don't spread it.
        return None;
    }
    if clean_moved(shared, epoch0) {
        // The RDMA reads yielded; a clean may have swapped pools under us.
        // Rewriting now could resurrect an object into a re-zeroed region
        // (recovery would then find it and misplace the log head).
        return None;
    }
    let mut sp = shared
        .cfg
        .obs
        .tracer
        .span(Subsystem::Server, "scrub_repair");
    sp.arg("off", off as u64);
    sp.arg("bytes", size as u64);
    // ---- mutation block: rewrite + persist, no yields inside ----
    shared.pool.write(off, &obj);
    let lines = shared.pool.flush(off, size);
    shared.pool.drain();
    // ---- end mutation block ----
    sim::work(shared.cost.flush(lines * efactory_pmem::LINE));
    Some(size)
}

/// Kill the rotted version in place: clear `VALID`, set `QUARANTINED`
/// (one atomic word-0 update), and persist the flag word. Readers fall
/// through to the previous version via the `pre_ptr` chain.
fn quarantine(shared: &ServerShared, off: usize) {
    let mut sp = shared
        .cfg
        .obs
        .tracer
        .span(Subsystem::Server, "scrub_quarantine");
    sp.arg("off", off as u64);
    // ---- mutation block: flag flip + persist, no yields inside ----
    layout::update_flags(&shared.pool, off, flags::QUARANTINED, flags::VALID);
    let lines = shared.pool.flush(off, 8);
    shared.pool.drain();
    // ---- end mutation block ----
    sim::work(shared.cost.flush(lines * efactory_pmem::LINE));
}
