//! Log-structured data pools and the overall NVM layout.
//!
//! Objects are allocated strictly append-only (out-of-place updates), which
//! gives the paper's two properties for free: remote writes never overwrite
//! live data (atomic update), and superseded versions remain available for
//! recovery until log cleaning reclaims them (§4.2.1).
//!
//! The registered NVM region is laid out as:
//!
//! ```text
//! [ hash table | data pool A | data pool B ]
//! ```
//!
//! Pool B exists for log cleaning (the "new data pool"); deployments that
//! disable cleaning can size it to zero. One memory registration covers the
//! whole region — the paper registers the hash table and data pool at
//! initialization and registers the new pool when cleaning starts; with a
//! single MR covering both pools that re-registration is a no-op here.

use std::sync::atomic::{AtomicU64, Ordering};

use efactory_pmem::PmemPool;

use crate::hashtable::HashTable;
use crate::layout::{object_size, ObjHeader};

/// An append-only allocation region inside the pool.
#[derive(Debug)]
pub struct LogRegion {
    base: usize,
    len: usize,
    /// Next free absolute offset.
    head: AtomicU64,
}

impl LogRegion {
    /// Region covering `[base, base+len)`.
    pub fn new(base: usize, len: usize) -> Self {
        assert_eq!(base % 8, 0);
        LogRegion {
            base,
            len,
            head: AtomicU64::new(base as u64),
        }
    }

    /// First byte of the region.
    pub fn base(&self) -> usize {
        self.base
    }

    /// Region capacity in bytes.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the region has zero capacity (cleaning disabled).
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Next free absolute offset.
    pub fn head(&self) -> usize {
        self.head.load(Ordering::Relaxed) as usize
    }

    /// Bytes allocated so far.
    pub fn used(&self) -> usize {
        self.head() - self.base
    }

    /// Fraction of the region consumed.
    pub fn fill_frac(&self) -> f64 {
        if self.len == 0 {
            0.0
        } else {
            self.used() as f64 / self.len as f64
        }
    }

    /// Whether `off` lies inside this region.
    pub fn contains(&self, off: usize) -> bool {
        off >= self.base && off < self.base + self.len
    }

    /// Allocate `size` bytes (must be 8-aligned). Returns the absolute
    /// offset, or `None` when the region is full.
    pub fn alloc(&self, size: usize) -> Option<usize> {
        assert_eq!(size % 8, 0, "allocations must be 8-byte aligned");
        let off = self.head.fetch_add(size as u64, Ordering::Relaxed) as usize;
        if off + size <= self.base + self.len {
            Some(off)
        } else {
            // Roll back so `used()` stays meaningful.
            self.head.fetch_sub(size as u64, Ordering::Relaxed);
            None
        }
    }

    /// Reset to empty (after log cleaning zeroes the region, or at format).
    pub fn reset(&self) {
        self.head.store(self.base as u64, Ordering::Relaxed);
    }

    /// Force the head (recovery, after a scan established the real end).
    pub fn set_head(&self, head: usize) {
        assert!(head >= self.base && head <= self.base + self.len);
        self.head.store(head as u64, Ordering::Relaxed);
    }

    /// Walk object offsets from `base` to the current head by following
    /// header sizes. Stops early at a zero header word (unwritten space) or
    /// an implausible size — both matter for recovery scans over a pool
    /// whose tail was torn by a crash.
    pub fn scan_objects(&self, pool: &PmemPool) -> Vec<usize> {
        self.scan_until(pool, self.head())
    }

    /// Like [`scan_objects`](Self::scan_objects) but with an explicit end
    /// boundary (the cleaner snapshots the head before scanning, because
    /// the handler keeps appending behind it).
    pub fn scan_until(&self, pool: &PmemPool, head: usize) -> Vec<usize> {
        let mut offs = Vec::new();
        let mut cur = self.base;
        while cur + crate::layout::HDR_LEN <= head {
            let hdr = ObjHeader::read_from(pool, cur);
            if hdr.klen == 0 && hdr.vlen == 0 && hdr.flags == 0 {
                break; // unwritten space
            }
            let size = hdr.object_size();
            if size == 0 || cur + size > self.base + self.len {
                break; // implausible header (torn)
            }
            offs.push(cur);
            cur += size;
        }
        offs
    }

    /// Like [`scan_objects`](Self::scan_objects) but scans the whole region
    /// (recovery does not know the head yet) and returns the rebuilt head.
    ///
    /// While the cleaner's merge phase is in flight, the handler and the
    /// cleaner allocate from the same region, so a crash can leave a *hole*
    /// mid-log: a torn client write whose header never reached media, with
    /// fully-persisted relocations (and decide-path commit records) sitting
    /// above it. A scan that stopped at the first implausible header would
    /// silently drop everything past the hole, so after losing the size
    /// chain this scan re-synchronizes: it strides forward 8 bytes at a
    /// time until it finds a header whose sizes are sane *and* whose value
    /// CRC verifies, then resumes the normal size walk from there. The CRC
    /// requirement keeps value bytes inside the hole from aliasing as
    /// headers.
    pub fn scan_for_recovery(
        &self,
        pool: &PmemPool,
        max_klen: usize,
        max_vlen: usize,
    ) -> (Vec<usize>, usize) {
        self.scan_tolerant(pool, self.base + self.len, max_klen, max_vlen)
    }

    /// Like [`scan_until`](Self::scan_until) but hole-tolerant — the
    /// cleaner's scans over a pool that has been through a mid-clean crash
    /// recovery. Such a pool can hold holes *below* its rebuilt head (the
    /// crashed pass's reserved-but-never-written terminal record slot, a
    /// torn client write under persisted relocations); a scan that stopped
    /// at the first hole would relocate nothing, and the finish pass would
    /// then drop every key anchored above it. Same resync rule as
    /// [`scan_for_recovery`](Self::scan_for_recovery).
    pub fn scan_until_tolerant(
        &self,
        pool: &PmemPool,
        head: usize,
        max_klen: usize,
        max_vlen: usize,
    ) -> Vec<usize> {
        self.scan_tolerant(pool, head, max_klen, max_vlen).0
    }

    fn scan_tolerant(
        &self,
        pool: &PmemPool,
        end: usize,
        max_klen: usize,
        max_vlen: usize,
    ) -> (Vec<usize>, usize) {
        let mut offs = Vec::new();
        let mut cur = self.base;
        let mut head = self.base;
        let mut synced = true;
        // A crash leaves at most one in-flight unpersisted object per
        // allocator (handler + cleaner), so a genuine hole is bounded by a
        // few max-sized objects. Past that, the blank space is the
        // unwritten tail and the scan is done.
        let max_hole = 4 * object_size(max_klen, max_vlen);
        let mut strided = 0usize;
        while cur + crate::layout::HDR_LEN <= end {
            let hdr = ObjHeader::read_from(pool, cur);
            let blank = hdr.klen == 0 && hdr.vlen == 0;
            let plausible = !blank
                && hdr.klen as usize <= max_klen
                && hdr.vlen as usize <= max_vlen
                && cur + hdr.object_size() <= end;
            if synced && plausible {
                // In sync: trust the size chain (a torn *value* is still
                // walkable — intactness is judged later, per candidate).
                offs.push(cur);
                cur += hdr.object_size();
                head = cur;
            } else if !synced
                && plausible
                && hdr.has(crate::layout::flags::VALID)
                && hdr.has(crate::layout::flags::DURABLE)
                && {
                    let value = crate::layout::read_value(pool, cur, &hdr);
                    efactory_checksum::crc32c(&value) == hdr.crc
                }
            {
                // Re-synchronized on a verified object past the hole.
                synced = true;
                strided = 0;
                offs.push(cur);
                cur += hdr.object_size();
                head = cur;
            } else {
                // Lost the chain: torn header or unwritten space.
                synced = false;
                strided += 8;
                if strided > max_hole {
                    break;
                }
                cur += 8;
            }
        }
        (offs, head)
    }
}

/// Geometry of the registered NVM region.
#[derive(Debug, Clone, Copy)]
pub struct StoreLayout {
    /// Hash-table base offset (always 0).
    pub ht_base: usize,
    /// Hash-table bucket count.
    pub ht_buckets: usize,
    /// Data pool A: `(base, len)`.
    pub pool_a: (usize, usize),
    /// Data pool B: `(base, len)`; `len == 0` when cleaning is disabled.
    pub pool_b: (usize, usize),
}

impl StoreLayout {
    /// Compute a layout. `pool_len` is the per-pool capacity; pass
    /// `two_pools = false` to elide pool B.
    pub fn new(ht_buckets: usize, pool_len: usize, two_pools: bool) -> Self {
        let ht_len = HashTable::region_len(ht_buckets);
        let a_base = ht_len.div_ceil(64) * 64;
        let pool_len = pool_len.div_ceil(64) * 64;
        let b_base = a_base + pool_len;
        StoreLayout {
            ht_base: 0,
            ht_buckets,
            pool_a: (a_base, pool_len),
            pool_b: (b_base, if two_pools { pool_len } else { 0 }),
        }
    }

    /// Total bytes of NVM the layout needs.
    pub fn total_len(&self) -> usize {
        self.pool_b.0 + self.pool_b.1
    }

    /// The hash-table view.
    pub fn hashtable(&self) -> HashTable {
        HashTable::new(self.ht_base, self.ht_buckets)
    }

    /// Build the two log regions.
    pub fn regions(&self) -> [LogRegion; 2] {
        [
            LogRegion::new(self.pool_a.0, self.pool_a.1),
            LogRegion::new(self.pool_b.0, self.pool_b.1),
        ]
    }

    /// Size a layout for a workload: `keys` distinct keys, `updates` total
    /// PUTs of `klen`/`vlen`-sized records, with `slack` multiplicative
    /// headroom.
    pub fn for_workload(
        keys: usize,
        updates: usize,
        klen: usize,
        vlen: usize,
        slack: f64,
        two_pools: bool,
    ) -> Self {
        let obj = object_size(klen, vlen);
        let need = (keys + updates) * obj;
        let pool_len = ((need as f64 * slack) as usize).max(64 * 1024);
        // Fill factor ≤ 0.25: linear probing within an NPROBE window must
        // essentially never exhaust it. That holds to ~10^5 keys, but the
        // expected count of full 16-bucket windows scales linearly with
        // table size (probe-run clustering on top of ρ^NPROBE), and at a
        // million keys a 0.25-fill table does overflow in practice — so
        // large tables halve the fill again. The threshold leaves every
        // paper-scale layout (≤64K keys) byte-identical.
        let per_key = if keys >= 256 * 1024 { 8 } else { 4 };
        let buckets = (keys * per_key).max(crate::hashtable::NPROBE * 8);
        Self::new(buckets, pool_len, two_pools)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::{flags, HDR_LEN, NIL};

    #[test]
    fn alloc_bumps_and_respects_capacity() {
        let r = LogRegion::new(64, 256);
        assert_eq!(r.alloc(64), Some(64));
        assert_eq!(r.alloc(128), Some(128));
        assert_eq!(r.used(), 192);
        assert_eq!(r.alloc(128), None, "would exceed capacity");
        assert_eq!(r.used(), 192, "failed alloc must roll back");
        assert_eq!(r.alloc(64), Some(256));
        assert!((r.fill_frac() - 1.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "8-byte aligned")]
    fn unaligned_alloc_panics() {
        LogRegion::new(0, 256).alloc(33);
    }

    #[test]
    fn scan_walks_written_objects() {
        let pool = PmemPool::new(1 << 16);
        let r = LogRegion::new(0, 1 << 16);
        let mut expect = Vec::new();
        for i in 0..10u32 {
            let klen = 8;
            let vlen = 16 + i * 8;
            let size = object_size(klen, vlen as usize);
            let off = r.alloc(size).unwrap();
            let hdr = ObjHeader {
                klen: klen as u16,
                vlen,
                flags: flags::VALID,
                pre_ptr: NIL,
                next_ptr: NIL,
                crc: 0,
                seq: i,
                alloc_time: 0,
            };
            hdr.write_to(&pool, off);
            expect.push(off);
        }
        assert_eq!(r.scan_objects(&pool), expect);
    }

    #[test]
    fn scan_stops_at_unwritten_space() {
        let pool = PmemPool::new(4096);
        let r = LogRegion::new(0, 4096);
        let off = r.alloc(object_size(8, 8)).unwrap();
        ObjHeader {
            klen: 8,
            vlen: 8,
            flags: flags::VALID,
            pre_ptr: NIL,
            next_ptr: NIL,
            crc: 0,
            seq: 0,
            alloc_time: 0,
        }
        .write_to(&pool, off);
        // Allocated (head moved) but never written: scan must stop after
        // the first object.
        r.alloc(object_size(8, 8)).unwrap();
        assert_eq!(r.scan_objects(&pool).len(), 1);
    }

    #[test]
    fn recovery_scan_rebuilds_head_and_rejects_garbage() {
        let pool = PmemPool::new(1 << 14);
        let r = LogRegion::new(0, 1 << 14);
        let size = object_size(8, 32);
        for i in 0..5u32 {
            let off = r.alloc(size).unwrap();
            ObjHeader {
                klen: 8,
                vlen: 32,
                flags: flags::VALID,
                pre_ptr: NIL,
                next_ptr: NIL,
                crc: 0,
                seq: i,
                alloc_time: 0,
            }
            .write_to(&pool, off);
        }
        let end = r.head();
        // Write garbage beyond the log end: implausible klen.
        pool.write_u64(end, u64::MAX);
        let fresh = LogRegion::new(0, 1 << 14);
        let (objs, head) = fresh.scan_for_recovery(&pool, 64, 4096);
        assert_eq!(objs.len(), 5);
        assert_eq!(head, end);
    }

    #[test]
    fn layout_regions_are_disjoint_and_ordered() {
        let l = StoreLayout::new(1024, 1 << 20, true);
        let ht_end = HashTable::region_len(1024);
        assert!(l.pool_a.0 >= ht_end);
        assert_eq!(l.pool_b.0, l.pool_a.0 + l.pool_a.1);
        assert_eq!(l.total_len(), l.pool_b.0 + l.pool_b.1);
        let [a, b] = l.regions();
        assert!(!a.contains(b.base()));
        assert!(!a.is_empty() && !b.is_empty());
    }

    #[test]
    fn single_pool_layout_has_empty_pool_b() {
        let l = StoreLayout::new(1024, 1 << 20, false);
        let [_, b] = l.regions();
        assert!(b.is_empty());
        assert_eq!(l.total_len(), l.pool_a.0 + l.pool_a.1);
    }

    #[test]
    fn workload_sizing_fits_the_workload() {
        let l = StoreLayout::for_workload(1000, 10_000, 32, 1024, 1.2, true);
        let [a, _] = l.regions();
        assert!(a.len() >= 11_000 * object_size(32, 1024));
        assert!(l.ht_buckets >= 2000);
    }

    #[test]
    fn workload_sizing_widens_million_key_tables() {
        // Paper-scale layouts keep the historical 0.25 fill exactly (any
        // change would shift pool offsets and re-time every committed
        // baseline); the scale sweep's million-key tables get 0.125 so
        // NPROBE windows survive probe-run clustering.
        let small = StoreLayout::for_workload(100_000, 0, 32, 64, 1.3, false);
        assert_eq!(small.ht_buckets, 400_000);
        let large = StoreLayout::for_workload(1_000_000, 0, 32, 64, 1.3, false);
        assert_eq!(large.ht_buckets, 8_000_000);
    }

    #[test]
    fn header_len_constant_matches_layout() {
        assert_eq!(HDR_LEN, 40);
    }
}
