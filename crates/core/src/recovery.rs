//! Crash recovery: rebuild a consistent store from the post-crash media
//! image.
//!
//! This is where the multi-version design pays off (paper §4.1): for every
//! hash entry that survived, the recovery pass walks the version list from
//! the newest version and keeps the first *intact* one — durable-flagged,
//! or CRC-verifiable (data that reached NVM through eviction or partial
//! flushing but whose flag write was lost). Torn heads are discarded; keys
//! with no intact version are dropped entirely (they were never durably
//! written, so no acknowledged durability is lost).
//!
//! The allocation heads of both pools are rebuilt by scanning headers until
//! the first hole or implausible size — safe because PUT persists the
//! header + key *before* exposing the object, so every reachable object has
//! a sane persisted header. (During a clean's merge phase the handler and
//! the cleaner allocate from the same pool concurrently, so a torn client
//! write can leave a hole *below* persisted relocations — the region scan
//! is hole-tolerant for exactly this case.)
//!
//! # Mid-clean crashes
//!
//! A crash during log cleaning leaves versions of one key in both pools,
//! half-relocated chains, `Trans`-flagged back-pointers, and possibly a
//! torn pool swap. Two mechanisms make this tractable:
//!
//! * The cleaner persists a **progress record** before each stage
//!   transition ([`crate::cleaner::decode_clean_record`]). The highest
//!   `(epoch, stage)` record tells recovery which pool was active at the
//!   crash instant instead of guessing from slot states:
//!
//!   | newest record | active pool | old region |
//!   |---------------|-------------|------------|
//!   | none          | fill heuristic | kept |
//!   | `Compress`    | the recorded old pool | kept |
//!   | `Merge` / `Finish` | the other pool | kept (chains span both) |
//!   | `Done`        | the other pool | dead — re-zeroed here |
//!   | `Abort`       | the recorded old pool (swap never happened) | kept |
//!
//! * Per-bucket candidate order honors `new_valid`: when set, the non-mark
//!   slot holds the newer version (merge-phase write or relocated copy)
//!   and is tried first, so recovery never anchors an older version while
//!   a newer acknowledged one survives in the other pool.
//!
//! In-doubt (`PENDING`) versions are kept only when a durable commit
//! record names their `(fingerprint, seq, value crc)` identity — identity,
//! not offset, because cleaning relocates versions between records' write
//! and the crash.

use std::sync::Arc;

use efactory_checksum::crc32c;
use efactory_pmem::PmemPool;
use efactory_rnic::{Fabric, Node};

use crate::hashtable::{fingerprint, Ctl};
use crate::layout::{self, flags, ObjHeader, NIL};
use crate::log::StoreLayout;
use crate::server::{Server, ServerConfig};

/// What recovery found and did.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Keys whose newest intact version was the pre-crash newest version.
    pub keys_intact: usize,
    /// Keys recovered to an older version (the newest was torn).
    pub keys_rolled_back: usize,
    /// Keys dropped (no intact version at all).
    pub keys_lost: usize,
    /// Torn/invalid versions discarded while walking chains.
    pub versions_discarded: usize,
    /// Rebuilt allocation heads.
    pub heads: [usize; 2],
}

/// Rebuild a server from `pool` (typically just crashed + node restarted).
/// Returns the new server and a report of what recovery decided.
///
/// The caller is responsible for having called `fabric.restart_node(node)`
/// first; this function re-registers the memory region via
/// [`Server::with_pool`].
pub fn recover(
    fabric: &Fabric,
    node: &Node,
    pool: Arc<PmemPool>,
    layout: StoreLayout,
    cfg: ServerConfig,
) -> (Server, RecoveryReport) {
    let mut report = RecoveryReport::default();
    let ht = layout.hashtable();
    let regions = layout.regions();

    // Rebuild allocation heads first so chain validation can bounds-check.
    // Keep the scanned object offsets: durable transaction commit records
    // among them decide the fate of in-doubt (PENDING) versions.
    let mut heads = [0usize; 2];
    let mut objs: Vec<usize> = Vec::new();
    for (i, r) in regions.iter().enumerate() {
        if r.is_empty() {
            heads[i] = r.base();
            continue;
        }
        let (region_objs, head) = r.scan_for_recovery(&pool, cfg.max_klen, cfg.max_vlen);
        objs.extend(region_objs);
        heads[i] = head;
    }
    // The newest cleaning-progress record decides which pool was active
    // and whether the old region is dead (see the module docs' table).
    let clean_rec = objs
        .iter()
        .filter_map(|&off| {
            let hdr = ObjHeader::read_from(&pool, off);
            crate::cleaner::decode_clean_record(&pool, off, &hdr)
        })
        .max_by_key(|r| (r.epoch, r.stage));
    let mut active_override = None;
    let mut clean_epoch = 0;
    if let Some(rec) = clean_rec {
        clean_epoch = rec.epoch;
        active_override = Some(match rec.stage {
            crate::cleaner::STAGE_COMPRESS | crate::cleaner::STAGE_ABORT => rec.old_pool,
            _ => 1 - rec.old_pool,
        });
        if rec.stage == crate::cleaner::STAGE_DONE {
            // The flip completed before the crash: every anchor already
            // points into the new pool and the old region holds only dead
            // pre-clean versions. Finish the torn swap's final step.
            let r = &regions[rec.old_pool];
            pool.zero_region(r.base(), r.len());
            heads[rec.old_pool] = r.base();
        }
    }
    report.heads = heads;

    // Version identities named by a durable commit record: these
    // transactions reached their commit point, so their versions are kept
    // (all-or-nothing). Staged versions *not* named never committed.
    let committed = crate::txn::committed_versions(&pool, &objs);

    let in_bounds = |off: u64| -> bool {
        let off = off as usize;
        regions
            .iter()
            .enumerate()
            .any(|(i, r)| off >= r.base() && off + layout::HDR_LEN <= heads[i])
    };

    // Validate every surviving hash entry.
    for idx in 0..ht.buckets() {
        let e = ht.read(&pool, idx);
        if e.fp == 0 {
            continue;
        }
        // Candidate chain heads, newest first. `new_valid` set means the
        // non-mark slot holds the newer version (a merge-phase write or a
        // relocated copy of the mark-slot head), so it is tried first;
        // otherwise the mark slot leads (covers a crash mid-cleaning,
        // where either may hold the newest intact copy).
        let candidates = if e.ctl.new_valid() {
            [e.other(), e.current()]
        } else {
            [e.current(), e.other()]
        };
        let mut found = None;
        let mut discarded = 0;
        'outer: for &start in &candidates {
            let mut off = start;
            while off != 0 && off != NIL && in_bounds(off) {
                let hdr = ObjHeader::read_from(&pool, off as usize);
                if hdr.klen as usize > cfg.max_klen || hdr.vlen as usize > cfg.max_vlen {
                    break;
                }
                let key = layout::read_key(&pool, off as usize, &hdr);
                if fingerprint(&key) != e.fp {
                    break; // chain walked into garbage
                }
                let intact = hdr.has(flags::VALID)
                    && (!hdr.has(flags::PENDING) || committed.contains(&(e.fp, hdr.seq, hdr.crc)))
                    && {
                        let value = layout::read_value(&pool, off as usize, &hdr);
                        crc32c(&value) == hdr.crc
                    };
                if intact {
                    found = Some((off, hdr));
                    break 'outer;
                }
                discarded += 1;
                off = hdr.pre_ptr;
            }
        }
        report.versions_discarded += discarded;
        match found {
            Some((off, hdr)) => {
                if off == candidates[0] && discarded == 0 {
                    report.keys_intact += 1;
                } else {
                    report.keys_rolled_back += 1;
                }
                // Re-anchor the entry at the intact version, in slot 0
                // semantics... keep the slot that already holds it when
                // possible; otherwise rewrite slot 0.
                let slot = if regions[0].contains(off as usize) {
                    0
                } else {
                    1
                };
                ht.set_slot(&pool, idx, slot, off);
                ht.set_slot(&pool, idx, 1 - slot, 0);
                ht.set_sizes(&pool, idx, hdr.klen, hdr.vlen);
                ht.set_ctl(&pool, idx, Ctl::default().with_mark(slot).bumped());
                // The version is intact: mark it durable (its flag write
                // may have been lost in the crash), clear any leftover
                // in-doubt bit (a commit record vouched for it), and cut
                // the stale forward link.
                layout::update_flags(
                    &pool,
                    off as usize,
                    flags::DURABLE,
                    flags::TRANS | flags::PENDING,
                );
                layout::set_next_ptr(&pool, off as usize, NIL);
                pool.persist(off as usize, layout::HDR_LEN);
                ht.persist_entry(&pool, idx);
            }
            None => {
                report.keys_lost += 1;
                ht.clear(&pool, idx);
                ht.persist_entry(&pool, idx);
            }
        }
    }

    let server = Server::with_pool(fabric, node, pool, layout, cfg);
    let shared = server.shared();
    for (i, r) in shared.logs.iter().enumerate() {
        r.set_head(heads[i]);
    }
    // Everything reachable is durable post-recovery; park the verifier at
    // the heads. New writes append beyond them. A cleaning-progress record
    // names the active pool authoritatively; without one, fall back to the
    // fill heuristic (a store that never cleaned writes to pool 0, or to
    // whichever pool plainly holds the data).
    let active = active_override.unwrap_or_else(|| {
        if heads[1] > shared.logs[1].base()
            && heads[1] - shared.logs[1].base() > heads[0] - shared.logs[0].base()
        {
            1
        } else {
            0
        }
    });
    shared
        .active
        .store(active, std::sync::atomic::Ordering::Relaxed);
    // Restore the epoch counter past every record ever written, so the
    // next pass's records (epoch + 1) outrank any stale ones on the pools.
    shared
        .clean_epoch
        .store(clean_epoch, std::sync::atomic::Ordering::Relaxed);
    shared
        .cursor_pool
        .store(active, std::sync::atomic::Ordering::Relaxed);
    shared
        .cursor
        .store(heads[active] as u64, std::sync::atomic::Ordering::Relaxed);
    (server, report)
}

/// Erase every cleaning-progress record on `pool` (clear `VALID`,
/// persist the flag word). Backup promotion calls this before replaying a
/// mirrored image: after a pool swap the mirror re-sends the new pool
/// lowest-offset-first, so a backup image can hold a pass's records
/// *without* the relocated data they describe — a state no crashed
/// primary ever exhibits, and one where the `Done` rule's old-region zero
/// would destroy fully-mirrored data. The fill heuristic plus dual-slot
/// candidate walks recover such a mixed image correctly; the records
/// would not. Returns how many records were erased.
pub fn neutralize_clean_records(
    pool: &PmemPool,
    layout: &StoreLayout,
    cfg: &ServerConfig,
) -> usize {
    let mut erased = 0;
    for r in layout.regions().iter() {
        if r.is_empty() {
            continue;
        }
        let (objs, _head) = r.scan_for_recovery(pool, cfg.max_klen, cfg.max_vlen);
        for off in objs {
            let hdr = ObjHeader::read_from(pool, off);
            if crate::cleaner::decode_clean_record(pool, off, &hdr).is_some() {
                layout::update_flags(pool, off, 0, flags::VALID);
                pool.persist(off, 8);
                erased += 1;
            }
        }
    }
    erased
}

/// Consistency check used by tests: every hash entry points at a durable,
/// CRC-valid object whose key matches the entry fingerprint. Returns the
/// number of live keys, panicking with a description on any violation.
pub fn check_consistency(pool: &PmemPool, layout: &StoreLayout) -> usize {
    let ht = layout.hashtable();
    let mut live = 0;
    ht.for_each_occupied(pool, |idx, e| {
        // The newest version lives in the non-mark slot when `new_valid`
        // is set (merge-phase write or relocated copy).
        let off = if e.ctl.new_valid() {
            e.other()
        } else {
            e.current()
        };
        assert!(off != 0, "bucket {idx}: zero offset");
        let hdr = ObjHeader::read_from(pool, off as usize);
        assert!(hdr.has(flags::VALID), "bucket {idx}: invalid head");
        assert!(hdr.has(flags::DURABLE), "bucket {idx}: non-durable head");
        let key = layout::read_key(pool, off as usize, &hdr);
        assert_eq!(fingerprint(&key), e.fp, "bucket {idx}: fp mismatch");
        let value = layout::read_value(pool, off as usize, &hdr);
        assert_eq!(crc32c(&value), hdr.crc, "bucket {idx}: crc mismatch");
        assert!(
            pool.is_persisted(off as usize, hdr.object_size()),
            "bucket {idx}: object not actually persisted"
        );
        live += 1;
    });
    live
}
