//! Pipelined client: a bounded window of K in-flight operations.
//!
//! The paper's client-active write scheme keeps the server CPU off the
//! critical path, but the plain [`Client`] still runs one operation at a
//! time — a full allocation-RPC round trip per PUT, a bucket-probe RDMA
//! read per cold GET — so a single client's throughput is capped by latency
//! rather than by what the fabric or the server can sustain. The
//! [`PipelinedClient`] lifts that cap the way real RDMA clients do: it
//! keeps up to `window` operations in flight at once, each on its **own
//! queue pair** with its own request-id space, and doorbell-batches the
//! send posts ([`efactory_rnic::SendDoorbell`]) the way PR 2's server
//! batched its receive-ring refills.
//!
//! ## Why one QP per slot
//!
//! The exactly-once envelope (framed request ids + per-QP server dedup)
//! assumes ids on a QP are issued and retired in order: the server records
//! only the *last* executed id per QP and drops anything older as stale.
//! Interleaving several outstanding ids on one QP would break that
//! contract — a retry of an older id would be discarded while a newer id
//! executed, starving the older operation. Giving every pipeline slot a
//! full [`Client`] (own QP, own monotonic ids, own retry/backoff/
//! `verify_grace` machinery) composes concurrency with PR 4's retry,
//! dedup, and lost-update guards *without touching their semantics* — the
//! server sees `window` perfectly ordinary clients.
//!
//! ## Per-slot state machine
//!
//! Each in-flight operation advances through the same states the serial
//! client does — alloc-RPC sent → value written → ack'd (or reissued under
//! `client.put_reissue` when the verifier raced a lossy fabric) — the slot
//! simply runs that machine concurrently with its siblings. The submitter
//! enforces **per-key hazards** so concurrency never reorders conflicting
//! effects: a write (PUT/DEL) waits until no operation on the same key is
//! in flight, a read waits only for in-flight writers of its key. With the
//! same seed and window, replay is byte-identical (slot selection is
//! lowest-free-first, all waits are deterministic channel receives).
//!
//! `window == 1` bypasses the machinery entirely and executes on a single
//! inner [`Client`], op for op exactly like today's serial client.

use std::collections::{BTreeSet, HashMap};
use std::sync::Arc;

use efactory_obs::{Counter, OpScope, Subsystem};
use efactory_rnic::{Fabric, Node, SendDoorbell};
use efactory_sim as sim;
use efactory_sim::Nanos;

use crate::client::{Client, ClientConfig};
use crate::hashtable::fingerprint;
use crate::protocol::{Status, StoreError};
use crate::server::StoreDesc;
use crate::txn::TxnKv;

/// Pipeline knobs.
#[derive(Debug, Clone)]
pub struct PipelineConfig {
    /// Maximum operations in flight (= pipeline slots = QPs). `1` executes
    /// serially on a single inner [`Client`].
    pub window: usize,
    /// Doorbell chain length for client-side send posts (`<= 1`: one MMIO
    /// per post). Only the pipelined path charges send-post CPU; the
    /// serial `window == 1` path stays cost-identical to the plain client.
    pub doorbell_batch: usize,
    /// Configuration for every slot's inner client.
    pub client: ClientConfig,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        PipelineConfig {
            window: 16,
            doorbell_batch: 16,
            client: ClientConfig::default(),
        }
    }
}

/// Operation kind, for completions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpKind {
    /// Store (value carried in the job).
    Put,
    /// Read (value carried in the completion).
    Get,
    /// Tombstone.
    Del,
    /// Multi-key atomic transaction (write set carried in the job).
    Txn,
}

/// One finished operation, reported back to the submitter.
#[derive(Debug)]
pub struct OpCompletion {
    /// Submission sequence number (0-based, per pipelined client).
    pub seq: u64,
    /// What the operation was.
    pub kind: OpKind,
    /// The key it operated on (for `Txn`: the write set's first key).
    pub key: Vec<u8>,
    /// For `Txn`: every key in the write set, in submission order (hazard
    /// bookkeeping and the checker's history need all of them). Empty for
    /// single-key operations.
    pub txn_keys: Vec<Vec<u8>>,
    /// Virtual time the operation was handed to the pipeline.
    pub submitted_at: Nanos,
    /// Virtual time the slot finished it.
    pub done_at: Nanos,
    /// `Ok(Some(v))` for a GET hit; `Ok(None)` for PUT/DEL success or a
    /// GET miss.
    pub result: Result<Option<Vec<u8>>, StoreError>,
    /// For a committed `Txn`: the MVCC commit timestamp (history checkers
    /// order transactions by it). `None` for every other op.
    pub commit_ts: Option<u64>,
}

impl OpCompletion {
    /// End-to-end latency of this operation (submit → completion),
    /// including any time it spent waiting behind the window or a hazard.
    pub fn latency(&self) -> Nanos {
        self.done_at.saturating_sub(self.submitted_at)
    }
}

#[derive(Debug)]
enum Job {
    Op {
        seq: u64,
        /// Trace op id: the slot executes under this attribution scope so
        /// every span the inner client records folds into one breakdown.
        op: u64,
        kind: OpKind,
        key: Vec<u8>,
        value: Vec<u8>,
        /// `Txn` write set (empty for single-key ops).
        puts: Vec<(Vec<u8>, Vec<u8>)>,
        submitted_at: Nanos,
    },
    Shutdown,
}

struct SlotDone {
    slot: usize,
    completion: OpCompletion,
}

/// A client that keeps up to `window` operations in flight. Not `Sync`:
/// one pipelined client per simulated process, like the plain [`Client`].
pub struct PipelinedClient {
    /// Serial fast path (`window == 1`).
    sync: Option<Client>,
    job_txs: Vec<sim::Sender<Job>>,
    comp_rx: Option<sim::Receiver<SlotDone>>,
    handles: Vec<sim::ProcessHandle>,
    /// Idle slots; the lowest index is always dispatched first so replay
    /// never depends on map iteration order.
    free: BTreeSet<usize>,
    inflight: usize,
    /// In-flight readers per key (writers must wait for these).
    readers: HashMap<Vec<u8>, usize>,
    /// In-flight writers per key (everything must wait for these).
    writers: HashMap<Vec<u8>, usize>,
    doorbell: SendDoorbell,
    next_seq: u64,
    cfg: PipelineConfig,
    submitted_ctr: Counter,
    completed_ctr: Counter,
    hazard_wait_ctr: Counter,
    window_wait_ctr: Counter,
    doorbell_ctr: Counter,
}

impl PipelinedClient {
    /// Connect a pipelined client: `window` slots, each a full [`Client`]
    /// on its own QP from `local` to the server. Must run inside a
    /// simulated process. `name` seeds the slot process names (determinism
    /// requires stable names).
    pub fn connect(
        fabric: &Arc<Fabric>,
        local: &Node,
        server_node: &Node,
        desc: StoreDesc,
        cfg: PipelineConfig,
        name: &str,
    ) -> Result<PipelinedClient, StoreError> {
        assert!(cfg.window >= 1, "pipeline window must be at least 1");
        let registry = &cfg.client.obs.registry;
        let submitted_ctr = registry.counter("client.pipeline.submitted");
        let completed_ctr = registry.counter("client.pipeline.completed");
        let hazard_wait_ctr = registry.counter("client.pipeline.hazard_waits");
        let window_wait_ctr = registry.counter("client.pipeline.window_waits");
        let doorbell_ctr = registry.counter("client.pipeline.doorbells");
        let doorbell = SendDoorbell::new(fabric.cost(), cfg.doorbell_batch);
        if cfg.window == 1 {
            let sync = Client::connect(fabric, local, server_node, desc, cfg.client.clone())?;
            return Ok(PipelinedClient {
                sync: Some(sync),
                job_txs: Vec::new(),
                comp_rx: None,
                handles: Vec::new(),
                free: BTreeSet::new(),
                inflight: 0,
                readers: HashMap::new(),
                writers: HashMap::new(),
                doorbell,
                next_seq: 0,
                cfg,
                submitted_ctr,
                completed_ctr,
                hazard_wait_ctr,
                window_wait_ctr,
                doorbell_ctr,
            });
        }
        let (comp_tx, comp_rx) = sim::channel::<SlotDone>();
        let mut job_txs = Vec::with_capacity(cfg.window);
        let mut handles = Vec::with_capacity(cfg.window);
        for slot in 0..cfg.window {
            let (tx, rx) = sim::channel::<Job>();
            job_txs.push(tx);
            let comp_tx = comp_tx.clone();
            let fabric = Arc::clone(fabric);
            let local = local.clone();
            let server_node = server_node.clone();
            let client_cfg = cfg.client.clone();
            let tracer = client_cfg.obs.tracer.clone();
            let shard = client_cfg.shard as u64;
            handles.push(sim::spawn(&format!("{name}-slot{slot}"), move || {
                let client = match Client::connect(&fabric, &local, &server_node, desc, client_cfg)
                {
                    Ok(c) => c,
                    Err(e) => panic!("pipeline slot {slot}: connect failed: {e:?}"),
                };
                while let Ok(job) = rx.recv() {
                    match job {
                        Job::Op {
                            seq,
                            op,
                            kind,
                            key,
                            value,
                            puts,
                            submitted_at,
                        } => {
                            // The slot owns the op's root span: its window
                            // is submit→completion, so time spent queued
                            // behind the pipeline window shows up as
                            // unattributed client gap in the breakdown.
                            let scope = OpScope::enter(op);
                            let retries_before = client.retry_total();
                            let (result, commit_ts) = run_op(&client, kind, &key, &value, &puts);
                            let retries = client.retry_total() - retries_before;
                            let done_at = sim::now();
                            let kind_code = match kind {
                                OpKind::Get => 0u64,
                                OpKind::Put => 1,
                                OpKind::Del => 2,
                                OpKind::Txn => 3,
                            };
                            tracer.record_span_at(
                                Subsystem::Client,
                                "op",
                                submitted_at,
                                done_at.saturating_sub(submitted_at),
                                &[
                                    ("kind", kind_code),
                                    ("shard", shard),
                                    ("key_fp", fingerprint(&key)),
                                    ("retries", retries),
                                ],
                            );
                            drop(scope);
                            let done = SlotDone {
                                slot,
                                completion: OpCompletion {
                                    seq,
                                    kind,
                                    key,
                                    txn_keys: puts.into_iter().map(|(k, _)| k).collect(),
                                    submitted_at,
                                    done_at,
                                    result,
                                    commit_ts,
                                },
                            };
                            if comp_tx.send(done, 0).is_err() {
                                break;
                            }
                        }
                        Job::Shutdown => break,
                    }
                }
            }));
        }
        Ok(PipelinedClient {
            sync: None,
            job_txs,
            comp_rx: Some(comp_rx),
            handles,
            free: (0..cfg.window).collect(),
            inflight: 0,
            readers: HashMap::new(),
            writers: HashMap::new(),
            doorbell,
            next_seq: 0,
            cfg,
            submitted_ctr,
            completed_ctr,
            hazard_wait_ctr,
            window_wait_ctr,
            doorbell_ctr,
        })
    }

    /// Window this client was built with.
    pub fn window(&self) -> usize {
        self.cfg.window
    }

    /// Submit a PUT. Returns every completion reaped while making room
    /// (possibly none).
    pub fn submit_put(&mut self, key: &[u8], value: &[u8]) -> Vec<OpCompletion> {
        self.submit(OpKind::Put, key, value.to_vec())
    }

    /// Submit a GET.
    pub fn submit_get(&mut self, key: &[u8]) -> Vec<OpCompletion> {
        self.submit(OpKind::Get, key, Vec::new())
    }

    /// Submit a DEL.
    pub fn submit_del(&mut self, key: &[u8]) -> Vec<OpCompletion> {
        self.submit(OpKind::Del, key, Vec::new())
    }

    /// Submit a multi-key atomic transaction (an all-or-nothing PUT
    /// batch). The transaction is hazard-ordered against *every* key in
    /// its write set — it waits for all in-flight readers and writers of
    /// those keys, and later operations on any of them wait for it — so
    /// transactions compose with the K-in-flight window without reordering
    /// conflicting effects.
    pub fn submit_txn(&mut self, puts: &[(Vec<u8>, Vec<u8>)]) -> Vec<OpCompletion> {
        let key = puts.first().map(|(k, _)| k.clone()).unwrap_or_default();
        self.submit_inner(OpKind::Txn, key, Vec::new(), puts.to_vec())
    }

    fn submit(&mut self, kind: OpKind, key: &[u8], value: Vec<u8>) -> Vec<OpCompletion> {
        self.submit_inner(kind, key.to_vec(), value, Vec::new())
    }

    fn submit_inner(
        &mut self,
        kind: OpKind,
        key: Vec<u8>,
        value: Vec<u8>,
        puts: Vec<(Vec<u8>, Vec<u8>)>,
    ) -> Vec<OpCompletion> {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.submitted_ctr.inc();
        let submitted_at = sim::now();
        if let Some(sync) = &self.sync {
            // Serial fast path: execute inline, op for op like the plain
            // client — no doorbell charge, no slot machinery.
            let (result, commit_ts) = run_op(sync, kind, &key, &value, &puts);
            self.completed_ctr.inc();
            return vec![OpCompletion {
                seq,
                kind,
                key,
                txn_keys: puts.into_iter().map(|(k, _)| k).collect(),
                submitted_at,
                done_at: sim::now(),
                result,
                commit_ts,
            }];
        }
        let mut reaped = self.reap_ready();
        // Block (reaping) until a slot is free *and* the key is hazard-
        // clear: writers exclude everything on the key, readers exclude
        // only writers. This keeps per-key effect order equal to program
        // order, so the final store state matches serial execution.
        loop {
            if self.free.is_empty() {
                self.window_wait_ctr.inc();
            } else if self.hazard(kind, &key, &puts) {
                self.hazard_wait_ctr.inc();
            } else {
                break;
            }
            reaped.push(self.reap_blocking());
        }
        let slot = *self.free.iter().next().expect("free slot");
        self.free.remove(&slot);
        self.inflight += 1;
        match kind {
            OpKind::Put | OpKind::Del => {
                *self.writers.entry(key.clone()).or_insert(0) += 1;
            }
            OpKind::Get => {
                *self.readers.entry(key.clone()).or_insert(0) += 1;
            }
            OpKind::Txn => {
                for (k, _) in &puts {
                    *self.writers.entry(k.clone()).or_insert(0) += 1;
                }
            }
        }
        // Posting the work request: one doorbell chain across up to
        // `doorbell_batch` submissions. The dispatch span runs under the
        // op's attribution scope so the post shows up in its breakdown.
        let op = self.cfg.client.obs.next_op_id();
        let scope = OpScope::enter(op);
        self.doorbell.charge();
        self.doorbell_ctr.inc();
        let sp = self
            .cfg
            .client
            .obs
            .tracer
            .span(Subsystem::Client, "pipeline_dispatch");
        drop(sp);
        drop(scope);
        self.job_txs[slot]
            .send(
                Job::Op {
                    seq,
                    op,
                    kind,
                    key,
                    value,
                    puts,
                    submitted_at,
                },
                0,
            )
            .expect("pipeline slot hung up");
        reaped
    }

    fn hazard(&self, kind: OpKind, key: &[u8], puts: &[(Vec<u8>, Vec<u8>)]) -> bool {
        let write_blocked = |k: &[u8]| {
            self.writers.get(k).copied().unwrap_or(0) > 0
                || self.readers.get(k).copied().unwrap_or(0) > 0
        };
        match kind {
            OpKind::Put | OpKind::Del => write_blocked(key),
            OpKind::Get => self.writers.get(key).copied().unwrap_or(0) > 0,
            // A transaction writes its whole set: every key must be clear.
            OpKind::Txn => puts.iter().any(|(k, _)| write_blocked(k)),
        }
    }

    fn note_done(&mut self, done: &SlotDone) {
        self.free.insert(done.slot);
        self.inflight -= 1;
        self.completed_ctr.inc();
        fn dec(book: &mut HashMap<Vec<u8>, usize>, key: &[u8]) {
            match book.get_mut(key) {
                Some(n) if *n > 1 => *n -= 1,
                Some(_) => {
                    book.remove(key);
                }
                None => unreachable!("completion for untracked key"),
            }
        }
        match done.completion.kind {
            OpKind::Put | OpKind::Del => dec(&mut self.writers, &done.completion.key),
            OpKind::Get => dec(&mut self.readers, &done.completion.key),
            OpKind::Txn => {
                for k in &done.completion.txn_keys {
                    dec(&mut self.writers, k);
                }
            }
        }
    }

    /// Drain every completion that is already available, without blocking.
    fn reap_ready(&mut self) -> Vec<OpCompletion> {
        let mut dones = Vec::new();
        if let Some(rx) = &self.comp_rx {
            while let Ok(done) = rx.try_recv() {
                dones.push(done);
            }
        }
        dones
            .into_iter()
            .map(|done| {
                self.note_done(&done);
                done.completion
            })
            .collect()
    }

    /// Block for the next completion.
    fn reap_blocking(&mut self) -> OpCompletion {
        let done = self
            .comp_rx
            .as_ref()
            .expect("pipelined mode")
            .recv()
            .expect("pipeline slots gone");
        self.note_done(&done);
        done.completion
    }

    /// Wait for every in-flight operation to finish.
    pub fn drain(&mut self) -> Vec<OpCompletion> {
        let mut out = self.reap_ready();
        while self.inflight > 0 {
            out.push(self.reap_blocking());
        }
        out
    }

    /// Drain, stop every slot, and join their processes. Returns the
    /// completions reaped during the final drain.
    pub fn finish(mut self) -> Vec<OpCompletion> {
        let out = self.drain();
        for tx in &self.job_txs {
            let _ = tx.send(Job::Shutdown, 0);
        }
        for h in self.handles.drain(..) {
            h.join();
        }
        out
    }
}

/// Execute one operation on a slot's inner client. PUTs ride out transient
/// `NoSpace`/`Busy` rejections with the same bounded backoff the serial
/// harness loop uses — the stall is part of the operation's latency.
fn run_op(
    client: &Client,
    kind: OpKind,
    key: &[u8],
    value: &[u8],
    puts: &[(Vec<u8>, Vec<u8>)],
) -> (Result<Option<Vec<u8>>, StoreError>, Option<u64>) {
    let result = match kind {
        OpKind::Put => {
            let mut tries = 0;
            loop {
                match client.put(key, value) {
                    Ok(()) => break Ok(None),
                    Err(StoreError::Status(Status::NoSpace | Status::Busy)) if tries < 200 => {
                        tries += 1;
                        sim::sleep(sim::micros(50));
                    }
                    Err(e) => break Err(e),
                }
            }
        }
        OpKind::Get => client.get(key),
        OpKind::Del => client.del(key).map(|()| None),
        OpKind::Txn => {
            // Conflicts join the transient-rejection retry set: the hazard
            // bookkeeping serializes this client's own conflicting ops, but
            // other clients' transactions can still collide with ours.
            let mut tries = 0;
            loop {
                match client.txn_put_all(puts) {
                    Ok(ts) => return (Ok(None), Some(ts)),
                    Err(StoreError::Status(Status::NoSpace | Status::Busy | Status::Conflict))
                        if tries < 200 =>
                    {
                        tries += 1;
                        sim::sleep(sim::micros(50));
                    }
                    Err(e) => return (Err(e), None),
                }
            }
        }
    };
    (result, None)
}
