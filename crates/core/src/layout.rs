//! On-NVM object layout (paper Figure 4).
//!
//! Every object is stored in the log-structured data pool as:
//!
//! ```text
//! ┌──────────── 40-byte header (five 8-byte words) ────────────┐
//! │ w0: klen:u16 | vlen:u32 | flags:u8 | pad:u8                │
//! │ w1: pre_ptr  — absolute pool offset of the previous        │
//! │     version (NIL if none)                                  │
//! │ w2: next_ptr — absolute pool offset of the next (newer)    │
//! │     version (maintained for log cleaning)                  │
//! │ w3: crc:u32 | seq:u32                                      │
//! │ w4: alloc_time — virtual ns, for the verifier timeout      │
//! ├────────────────────────────────────────────────────────────┤
//! │ key bytes, zero-padded to 8                                │
//! │ value bytes, zero-padded to 8                              │
//! └────────────────────────────────────────────────────────────┘
//! ```
//!
//! This merges the paper's "object" (key, value, durability flag) and its
//! colocated "object metadata" (vlen, PrePTR, NextPTR, valid, Trans, CRC) —
//! the colocated variant is the one the authors implemented (§4.2.2).
//!
//! The **durability flag** lives in the flags byte of word 0, so a client
//! that fetches the whole object with a single RDMA read gets the flag for
//! free (the key of the hybrid read scheme). Flag updates rewrite word 0
//! in full — an 8-byte atomic store, the NVM failure-atomicity unit.

use efactory_pmem::PmemPool;

/// "No version" marker for `pre_ptr` / `next_ptr`.
pub const NIL: u64 = u64::MAX;

/// Header length in bytes.
pub const HDR_LEN: usize = 40;

/// Object flag bits (in word 0).
pub mod flags {
    /// The version is live (cleared when the verifier times an object out).
    pub const VALID: u8 = 1 << 0;
    /// The object (value + metadata) is fully persisted in NVM.
    pub const DURABLE: u8 = 1 << 1;
    /// A delete marker: `vlen == 0` and the key is logically absent.
    pub const TOMBSTONE: u8 = 1 << 2;
    /// The previous version of this object has been relocated to the other
    /// pool by log cleaning (paper's `Trans` identifier).
    pub const TRANS: u8 = 1 << 3;
    /// The scrubber found this (durable) object bit-rotted and could not
    /// repair it: the version is dead (VALID is cleared alongside) and the
    /// flag records *why* for diagnostics. Reads fall through to the
    /// previous version; cleaning reclaims the space.
    pub const QUARANTINED: u8 = 1 << 4;
    /// Staged by an in-doubt transaction: the version is fully persisted
    /// and linked into its chain but not yet published. Readers skip it
    /// (or wait, for snapshot reads); writers back off. Publish clears the
    /// bit in a single word-0 store; recovery clears it iff a durable
    /// commit record names the object, else the version is dead.
    pub const PENDING: u8 = 1 << 5;
}

/// Round `n` up to a multiple of 8 (layout padding).
#[inline]
pub const fn pad8(n: usize) -> usize {
    n.div_ceil(8) * 8
}

/// Total on-pool size of an object with the given key/value lengths.
#[inline]
pub const fn object_size(klen: usize, vlen: usize) -> usize {
    HDR_LEN + pad8(klen) + pad8(vlen)
}

/// A decoded object header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ObjHeader {
    /// Key length in bytes.
    pub klen: u16,
    /// Value length in bytes (0 for tombstones).
    pub vlen: u32,
    /// Flag bits (see [`flags`]).
    pub flags: u8,
    /// Absolute pool offset of the previous version ([`NIL`] if none).
    pub pre_ptr: u64,
    /// Absolute pool offset of the next (newer) version ([`NIL`] if none).
    pub next_ptr: u64,
    /// CRC32C of the value bytes.
    pub crc: u32,
    /// Monotonic per-key version sequence (diagnostics).
    pub seq: u32,
    /// Virtual time the server allocated this object (verifier timeout).
    pub alloc_time: u64,
}

impl ObjHeader {
    /// Flag check helper.
    #[inline]
    pub fn has(&self, bit: u8) -> bool {
        self.flags & bit != 0
    }

    /// Size of the whole object on the pool.
    #[inline]
    pub fn object_size(&self) -> usize {
        object_size(self.klen as usize, self.vlen as usize)
    }

    /// Offset of the key relative to the object start.
    #[inline]
    pub fn key_off(&self) -> usize {
        HDR_LEN
    }

    /// Offset of the value relative to the object start.
    #[inline]
    pub fn value_off(&self) -> usize {
        HDR_LEN + pad8(self.klen as usize)
    }

    /// Pack word 0 (sizes + flags).
    #[inline]
    pub fn word0(&self) -> u64 {
        (self.klen as u64) | ((self.vlen as u64) << 16) | ((self.flags as u64) << 48)
    }

    /// Unpack word 0.
    #[inline]
    pub fn from_word0(w: u64) -> (u16, u32, u8) {
        (w as u16, (w >> 16) as u32, (w >> 48) as u8)
    }

    /// Write the full header at absolute pool offset `off` (working image;
    /// caller decides what to flush).
    pub fn write_to(&self, pool: &PmemPool, off: usize) {
        pool.write_u64(off, self.word0());
        pool.write_u64(off + 8, self.pre_ptr);
        pool.write_u64(off + 16, self.next_ptr);
        pool.write_u64(off + 24, (self.crc as u64) | ((self.seq as u64) << 32));
        pool.write_u64(off + 32, self.alloc_time);
    }

    /// Read a header from absolute pool offset `off`.
    pub fn read_from(pool: &PmemPool, off: usize) -> ObjHeader {
        let w0 = pool.read_u64(off);
        let (klen, vlen, flags) = Self::from_word0(w0);
        let w3 = pool.read_u64(off + 24);
        ObjHeader {
            klen,
            vlen,
            flags,
            pre_ptr: pool.read_u64(off + 8),
            next_ptr: pool.read_u64(off + 16),
            crc: w3 as u32,
            seq: (w3 >> 32) as u32,
            alloc_time: pool.read_u64(off + 32),
        }
    }

    /// Decode a header from a raw byte slice (what a client sees after an
    /// RDMA read of the object).
    pub fn decode(buf: &[u8]) -> Option<ObjHeader> {
        if buf.len() < HDR_LEN {
            return None;
        }
        let w = |i: usize| u64::from_le_bytes(buf[i * 8..(i + 1) * 8].try_into().unwrap());
        let (klen, vlen, flags) = Self::from_word0(w(0));
        Some(ObjHeader {
            klen,
            vlen,
            flags,
            pre_ptr: w(1),
            next_ptr: w(2),
            crc: w(3) as u32,
            seq: (w(3) >> 32) as u32,
            alloc_time: w(4),
        })
    }
}

/// Atomically update the flags byte of the object at `off` (read-modify-
/// write of word 0; single 8-byte store).
pub fn update_flags(pool: &PmemPool, off: usize, set: u8, clear: u8) {
    let w0 = pool.read_u64(off);
    let (klen, vlen, flags) = ObjHeader::from_word0(w0);
    let new_flags = (flags & !clear) | set;
    let new_w0 = (klen as u64) | ((vlen as u64) << 16) | ((new_flags as u64) << 48);
    pool.write_u64(off, new_w0);
}

/// Set `next_ptr` (word 2) of the object at `off`.
pub fn set_next_ptr(pool: &PmemPool, off: usize, next: u64) {
    pool.write_u64(off + 16, next);
}

/// Set `pre_ptr` (word 1) of the object at `off`.
pub fn set_pre_ptr(pool: &PmemPool, off: usize, pre: u64) {
    pool.write_u64(off + 8, pre);
}

/// Read the key bytes of the object whose header is `hdr`, at pool offset
/// `off`.
pub fn read_key(pool: &PmemPool, off: usize, hdr: &ObjHeader) -> Vec<u8> {
    let mut key = vec![0u8; hdr.klen as usize];
    pool.read(off + hdr.key_off(), &mut key);
    key
}

/// Read the value bytes of the object whose header is `hdr`.
pub fn read_value(pool: &PmemPool, off: usize, hdr: &ObjHeader) -> Vec<u8> {
    let mut value = vec![0u8; hdr.vlen as usize];
    pool.read(off + hdr.value_off(), &mut value);
    value
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ObjHeader {
        ObjHeader {
            klen: 32,
            vlen: 2048,
            flags: flags::VALID | flags::DURABLE,
            pre_ptr: 0x1234_5678,
            next_ptr: NIL,
            crc: 0xDEAD_BEEF,
            seq: 42,
            alloc_time: 1_000_000,
        }
    }

    #[test]
    fn header_roundtrip_via_pool() {
        let pool = PmemPool::new(4096);
        let h = sample();
        h.write_to(&pool, 64);
        assert_eq!(ObjHeader::read_from(&pool, 64), h);
    }

    #[test]
    fn header_roundtrip_via_decode() {
        let pool = PmemPool::new(4096);
        let h = sample();
        h.write_to(&pool, 0);
        let mut buf = vec![0u8; HDR_LEN];
        pool.read(0, &mut buf);
        assert_eq!(ObjHeader::decode(&buf), Some(h));
    }

    #[test]
    fn decode_rejects_short_buffers() {
        assert_eq!(ObjHeader::decode(&[0u8; 39]), None);
    }

    #[test]
    fn object_size_includes_padding() {
        assert_eq!(object_size(32, 2048), 40 + 32 + 2048);
        assert_eq!(object_size(5, 3), 40 + 8 + 8);
        assert_eq!(object_size(0, 0), 40);
    }

    #[test]
    fn flag_update_is_isolated_to_flags() {
        let pool = PmemPool::new(4096);
        let h = sample();
        h.write_to(&pool, 0);
        update_flags(&pool, 0, flags::TRANS, flags::DURABLE);
        let h2 = ObjHeader::read_from(&pool, 0);
        assert_eq!(h2.klen, h.klen);
        assert_eq!(h2.vlen, h.vlen);
        assert!(h2.has(flags::VALID));
        assert!(h2.has(flags::TRANS));
        assert!(!h2.has(flags::DURABLE));
    }

    #[test]
    fn value_and_key_offsets_are_padded() {
        let h = ObjHeader {
            klen: 5,
            vlen: 100,
            ..sample()
        };
        assert_eq!(h.key_off(), 40);
        assert_eq!(h.value_off(), 48);
        assert_eq!(h.object_size(), 40 + 8 + 104);
    }

    #[test]
    fn key_value_accessors() {
        let pool = PmemPool::new(4096);
        let key = b"hello-key";
        let value = b"world-value-bytes";
        let h = ObjHeader {
            klen: key.len() as u16,
            vlen: value.len() as u32,
            ..sample()
        };
        h.write_to(&pool, 128);
        pool.write(128 + h.key_off(), key);
        pool.write(128 + h.value_off(), value);
        assert_eq!(read_key(&pool, 128, &h), key);
        assert_eq!(read_value(&pool, 128, &h), value);
    }
}
