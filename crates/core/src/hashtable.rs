//! The hash index (paper §4.2.2, Figure 4).
//!
//! A flat array of 40-byte buckets in the registered NVM region, designed so
//! a client can resolve a key with **one** RDMA read: it fetches a
//! [`NPROBE`]-bucket window starting at the key's home bucket and scans it
//! locally. Each bucket stores:
//!
//! ```text
//! w0: key fingerprint (64-bit FNV-1a; 0 = empty bucket)
//! w1: slot 0 — object offset in data pool A
//! w2: slot 1 — object offset in data pool B
//! w3: sizes  — klen:u16 | vlen:u32 (lets the client size the object read)
//! w4: ctl    — mark bit (which slot is current), new-valid bit (the other
//!              slot holds a relocated offset during log cleaning), seq
//! ```
//!
//! The paper's hash entry holds "the key and the object's offset …, an
//! additional offset …, \[and\] a mark bit to indicate which offset is related
//! to the current working data pool". We store a 64-bit fingerprint instead
//! of the full key (clients verify the key bytes of the fetched object, the
//! paper's own validation step) and add the sizes word so one entry read
//! suffices to issue the object read.
//!
//! Collision policy: linear probing within the home window. Insertion never
//! wraps (home indices are capped at `buckets - NPROBE`), so a client window
//! read is always one contiguous RDMA read.
//!
//! The comparison systems reuse this structure; Erda reinterprets slot 0 as
//! its packed 8-byte atomic region (see `efactory_baselines::erda`).
//!
//! **Concurrency discipline**: server-side mutators touch multiple words,
//! which is only safe because every mutation sequence runs without an
//! intervening simulated-time yield (no `sim::work` between the word
//! stores) — remote readers and sibling server processes observe entries at
//! event granularity, i.e. before or after the whole update.

use efactory_pmem::PmemPool;

/// Bytes per bucket.
pub const BUCKET_LEN: usize = 40;
/// Buckets fetched (and probed) per lookup window.
pub const NPROBE: usize = 16;

/// Control-word accessors (`w4`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Ctl(pub u64);

impl Ctl {
    /// Which slot (0/1) holds the current working-pool offset.
    #[inline]
    pub fn mark(self) -> usize {
        (self.0 & 1) as usize
    }

    /// During log cleaning: the *other* slot holds a valid offset in the
    /// new data pool.
    #[inline]
    pub fn new_valid(self) -> bool {
        self.0 & 2 != 0
    }

    /// Update sequence number (diagnostics; bumped on every entry update).
    #[inline]
    pub fn seq(self) -> u64 {
        self.0 >> 8
    }

    /// Builder: set the mark bit.
    #[inline]
    pub fn with_mark(self, mark: usize) -> Ctl {
        Ctl((self.0 & !1) | (mark as u64 & 1))
    }

    /// Builder: set the new-valid bit.
    #[inline]
    pub fn with_new_valid(self, v: bool) -> Ctl {
        Ctl(if v { self.0 | 2 } else { self.0 & !2 })
    }

    /// Builder: bump the sequence number.
    #[inline]
    pub fn bumped(self) -> Ctl {
        Ctl(self.0.wrapping_add(1 << 8))
    }
}

/// A decoded hash entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Entry {
    /// Key fingerprint (0 ⇒ the bucket is empty).
    pub fp: u64,
    /// Object offsets: slot 0 → pool A, slot 1 → pool B.
    pub slot: [u64; 2],
    /// Key length of the current version.
    pub klen: u16,
    /// Value length of the current version.
    pub vlen: u32,
    /// Control word.
    pub ctl: Ctl,
}

impl Entry {
    /// The offset of the current version (selected by the mark bit).
    #[inline]
    pub fn current(&self) -> u64 {
        self.slot[self.ctl.mark()]
    }

    /// The offset in the *other* slot (the new pool during cleaning).
    #[inline]
    pub fn other(&self) -> u64 {
        self.slot[1 - self.ctl.mark()]
    }

    /// Decode from 40 raw bytes (client side, after an RDMA read).
    pub fn decode(buf: &[u8]) -> Option<Entry> {
        if buf.len() < BUCKET_LEN {
            return None;
        }
        let w = |i: usize| u64::from_le_bytes(buf[i * 8..(i + 1) * 8].try_into().unwrap());
        let sizes = w(3);
        Some(Entry {
            fp: w(0),
            slot: [w(1), w(2)],
            klen: sizes as u16,
            vlen: (sizes >> 16) as u32,
            ctl: Ctl(w(4)),
        })
    }
}

/// Fingerprint of a key: 64-bit FNV-1a over the bytes, finalized with a
/// splitmix64 scramble so near-sequential keys spread across buckets, with
/// 0 remapped (0 marks an empty bucket).
pub fn fingerprint(key: &[u8]) -> u64 {
    const PRIME: u64 = 0x0000_0100_0000_01B3;
    let mut hash = 0xCBF2_9CE4_8422_2325u64;
    for &b in key {
        hash ^= b as u64;
        hash = hash.wrapping_mul(PRIME);
    }
    // splitmix64 finalizer.
    let mut z = hash.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    if z == 0 {
        1
    } else {
        z
    }
}

/// Errors from hash-table mutation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HtError {
    /// No free bucket in the key's probe window.
    TableFull,
}

/// Server-side view of the hash index over a pmem region.
#[derive(Debug, Clone, Copy)]
pub struct HashTable {
    base: usize,
    buckets: usize,
}

impl HashTable {
    /// Table over `buckets` buckets starting at pool offset `base`.
    pub fn new(base: usize, buckets: usize) -> Self {
        assert!(buckets > NPROBE, "table too small for the probe window");
        assert_eq!(base % 8, 0);
        HashTable { base, buckets }
    }

    /// Bytes needed for `buckets` buckets.
    pub const fn region_len(buckets: usize) -> usize {
        buckets * BUCKET_LEN
    }

    /// Number of buckets.
    pub fn buckets(&self) -> usize {
        self.buckets
    }

    /// Base offset of the table in the pool.
    pub fn base(&self) -> usize {
        self.base
    }

    /// Home bucket index for a fingerprint. Capped so the probe window
    /// `[home, home + NPROBE)` never wraps.
    #[inline]
    pub fn home(&self, fp: u64) -> usize {
        (fp % (self.buckets - NPROBE) as u64) as usize
    }

    /// Absolute pool offset of bucket `idx`.
    #[inline]
    pub fn entry_off(&self, idx: usize) -> usize {
        self.base + idx * BUCKET_LEN
    }

    /// Read and decode bucket `idx`.
    pub fn read(&self, pool: &PmemPool, idx: usize) -> Entry {
        let off = self.entry_off(idx);
        let sizes = pool.read_u64(off + 24);
        Entry {
            fp: pool.read_u64(off),
            slot: [pool.read_u64(off + 8), pool.read_u64(off + 16)],
            klen: sizes as u16,
            vlen: (sizes >> 16) as u32,
            ctl: Ctl(pool.read_u64(off + 32)),
        }
    }

    /// Find the bucket holding `fp`, if any.
    pub fn lookup(&self, pool: &PmemPool, fp: u64) -> Option<(usize, Entry)> {
        let home = self.home(fp);
        for idx in home..home + NPROBE {
            let e = self.read(pool, idx);
            if e.fp == fp {
                return Some((idx, e));
            }
        }
        None
    }

    /// Find the bucket for `fp`, claiming the first empty bucket in the
    /// window if absent. The claimed bucket has only its fingerprint word
    /// written; the caller fills the rest (and flushes).
    pub fn lookup_or_claim(&self, pool: &PmemPool, fp: u64) -> Result<(usize, Entry), HtError> {
        let home = self.home(fp);
        let mut free = None;
        for idx in home..home + NPROBE {
            let e = self.read(pool, idx);
            if e.fp == fp {
                return Ok((idx, e));
            }
            if e.fp == 0 && free.is_none() {
                free = Some(idx);
            }
        }
        let idx = free.ok_or(HtError::TableFull)?;
        let off = self.entry_off(idx);
        pool.write_u64(off, fp);
        Ok((idx, self.read(pool, idx)))
    }

    /// Overwrite one slot word.
    pub fn set_slot(&self, pool: &PmemPool, idx: usize, which: usize, off_val: u64) {
        pool.write_u64(self.entry_off(idx) + 8 + which * 8, off_val);
    }

    /// Overwrite the sizes word.
    pub fn set_sizes(&self, pool: &PmemPool, idx: usize, klen: u16, vlen: u32) {
        let sizes = (klen as u64) | ((vlen as u64) << 16);
        pool.write_u64(self.entry_off(idx) + 24, sizes);
    }

    /// Overwrite the control word.
    pub fn set_ctl(&self, pool: &PmemPool, idx: usize, ctl: Ctl) {
        pool.write_u64(self.entry_off(idx) + 32, ctl.0);
    }

    /// Clear the bucket entirely (key deleted by log cleaning).
    pub fn clear(&self, pool: &PmemPool, idx: usize) {
        let off = self.entry_off(idx);
        for w in 0..5 {
            pool.write_u64(off + w * 8, 0);
        }
    }

    /// Flush the cache line(s) holding bucket `idx` (40 B can straddle two).
    pub fn persist_entry(&self, pool: &PmemPool, idx: usize) -> usize {
        let n = pool.flush(self.entry_off(idx), BUCKET_LEN);
        pool.drain();
        n
    }

    /// Iterate over occupied buckets.
    pub fn for_each_occupied(&self, pool: &PmemPool, mut f: impl FnMut(usize, Entry)) {
        for idx in 0..self.buckets {
            let e = self.read(pool, idx);
            if e.fp != 0 {
                f(idx, e);
            }
        }
    }
}

/// Client-side scan of a fetched probe window for `fp`. Returns the bucket
/// index (relative to the window start) and the decoded entry.
pub fn find_in_window(window: &[u8], fp: u64) -> Option<(usize, Entry)> {
    for (i, chunk) in window.chunks_exact(BUCKET_LEN).enumerate() {
        let e = Entry::decode(chunk)?;
        if e.fp == fp {
            return Some((i, e));
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> (PmemPool, HashTable) {
        let buckets = 256;
        let pool = PmemPool::new(HashTable::region_len(buckets) + 64);
        (pool, HashTable::new(0, buckets))
    }

    #[test]
    fn fingerprint_never_zero_and_distinguishes_keys() {
        assert_ne!(fingerprint(b""), 0);
        assert_ne!(fingerprint(b"a"), fingerprint(b"b"));
        assert_ne!(fingerprint(b"key1"), fingerprint(b"key2"));
    }

    #[test]
    fn claim_then_lookup_roundtrip() {
        let (pool, ht) = table();
        let fp = fingerprint(b"hello");
        let (idx, e) = ht.lookup_or_claim(&pool, fp).unwrap();
        assert_eq!(e.fp, fp);
        assert_eq!(e.current(), 0);
        ht.set_slot(&pool, idx, 0, 4096);
        ht.set_sizes(&pool, idx, 5, 100);
        ht.set_ctl(&pool, idx, Ctl::default().bumped());
        let (idx2, e2) = ht.lookup(&pool, fp).unwrap();
        assert_eq!(idx2, idx);
        assert_eq!(e2.current(), 4096);
        assert_eq!(e2.klen, 5);
        assert_eq!(e2.vlen, 100);
        assert_eq!(e2.ctl.seq(), 1);
    }

    #[test]
    fn lookup_missing_returns_none() {
        let (pool, ht) = table();
        assert!(ht.lookup(&pool, fingerprint(b"ghost")).is_none());
    }

    #[test]
    fn colliding_homes_probe_linearly() {
        let (pool, ht) = table();
        // Craft fingerprints with the same home bucket.
        let base_fp = 7u64;
        let stride = (ht.buckets() - NPROBE) as u64;
        let fps: Vec<u64> = (0..4).map(|i| base_fp + i * stride).collect();
        let mut idxs = Vec::new();
        for &fp in &fps {
            let (idx, _) = ht.lookup_or_claim(&pool, fp).unwrap();
            idxs.push(idx);
        }
        // All in the same window, all distinct.
        assert!(idxs.windows(2).all(|w| w[1] == w[0] + 1));
        for (&fp, &idx) in fps.iter().zip(&idxs) {
            assert_eq!(ht.lookup(&pool, fp).unwrap().0, idx);
        }
    }

    #[test]
    fn window_overflow_reports_table_full() {
        let (pool, ht) = table();
        let base_fp = 3u64;
        let stride = (ht.buckets() - NPROBE) as u64;
        for i in 0..NPROBE as u64 {
            ht.lookup_or_claim(&pool, base_fp + i * stride).unwrap();
        }
        assert_eq!(
            ht.lookup_or_claim(&pool, base_fp + NPROBE as u64 * stride),
            Err(HtError::TableFull)
        );
    }

    #[test]
    fn mark_selects_slot() {
        let (pool, ht) = table();
        let fp = fingerprint(b"both-slots");
        let (idx, _) = ht.lookup_or_claim(&pool, fp).unwrap();
        ht.set_slot(&pool, idx, 0, 111);
        ht.set_slot(&pool, idx, 1, 222);
        ht.set_ctl(&pool, idx, Ctl::default().with_mark(0).with_new_valid(true));
        let e = ht.read(&pool, idx);
        assert_eq!(e.current(), 111);
        assert_eq!(e.other(), 222);
        assert!(e.ctl.new_valid());
        ht.set_ctl(&pool, idx, e.ctl.with_mark(1).with_new_valid(false));
        let e = ht.read(&pool, idx);
        assert_eq!(e.current(), 222);
        assert_eq!(e.other(), 111);
    }

    #[test]
    fn clear_frees_the_bucket() {
        let (pool, ht) = table();
        let fp = fingerprint(b"temp");
        let (idx, _) = ht.lookup_or_claim(&pool, fp).unwrap();
        ht.clear(&pool, idx);
        assert!(ht.lookup(&pool, fp).is_none());
        // Bucket is reusable.
        let (idx2, _) = ht.lookup_or_claim(&pool, fp).unwrap();
        assert_eq!(idx2, idx);
    }

    #[test]
    fn client_window_scan_matches_server_lookup() {
        let (pool, ht) = table();
        let fp = fingerprint(b"remote");
        let (idx, _) = ht.lookup_or_claim(&pool, fp).unwrap();
        ht.set_slot(&pool, idx, 0, 8192);
        ht.set_sizes(&pool, idx, 6, 64);
        // Simulate the client's one-shot window read.
        let home = ht.home(fp);
        let mut window = vec![0u8; NPROBE * BUCKET_LEN];
        pool.read(ht.entry_off(home), &mut window);
        let (rel, e) = find_in_window(&window, fp).unwrap();
        assert_eq!(home + rel, idx);
        assert_eq!(e.current(), 8192);
        assert_eq!(e.vlen, 64);
    }

    #[test]
    fn for_each_occupied_visits_every_key() {
        let (pool, ht) = table();
        let keys: Vec<Vec<u8>> = (0..50).map(|i| format!("key{i}").into_bytes()).collect();
        for k in &keys {
            ht.lookup_or_claim(&pool, fingerprint(k)).unwrap();
        }
        let mut seen = 0;
        ht.for_each_occupied(&pool, |_, _| seen += 1);
        assert_eq!(seen, keys.len());
    }

    #[test]
    fn entry_decode_matches_read() {
        let (pool, ht) = table();
        let fp = fingerprint(b"zz");
        let (idx, _) = ht.lookup_or_claim(&pool, fp).unwrap();
        ht.set_slot(&pool, idx, 1, 77);
        ht.set_ctl(&pool, idx, Ctl::default().with_mark(1));
        let mut raw = vec![0u8; BUCKET_LEN];
        pool.read(ht.entry_off(idx), &mut raw);
        assert_eq!(Entry::decode(&raw).unwrap(), ht.read(&pool, idx));
    }
}
