//! Failure injection under load: clients that die between the allocation
//! RPC and the RDMA value write leave half-born objects in the log. The
//! verifier must time them out, GETs must keep serving the last durable
//! version, and log cleaning must reclaim the corpses.

use std::sync::atomic::Ordering;
use std::sync::Arc;

use efactory::client::{Client, ClientConfig};
use efactory::log::StoreLayout;
use efactory::protocol::{Request, Response};
use efactory::server::{Server, ServerConfig};
use efactory_rnic::{CostModel, Fabric};
use efactory_sim as sim;
use efactory_sim::Sim;

#[test]
fn lost_clients_are_timed_out_and_reclaimed() {
    let mut simu = Sim::new(73);
    let fabric = Fabric::new(CostModel::default());
    let server_node = fabric.add_node("server");
    let layout = StoreLayout::new(512, 256 * 1024, true);
    let cfg = ServerConfig {
        verify_timeout: sim::micros(50),
        clean_threshold: 2.0, // manual cleaning below
        clean_poll: sim::micros(10),
        ..ServerConfig::default()
    };
    let server = Server::format(&fabric, &server_node, layout, cfg);
    let f = Arc::clone(&fabric);
    simu.spawn("main", move || {
        let shared = server.start(&f);
        let desc = server.desc();

        // Live client writing + reading normally.
        let live_node = f.add_node("live");
        let live =
            Client::connect(&f, &live_node, &server_node, desc, ClientConfig::default()).unwrap();

        // "Zombie" clients: alloc RPCs with no value write, interleaved
        // with live traffic on the same keys.
        let zombie_node = f.add_node("zombie");
        let zombie_qp = f.connect(&zombie_node, &server_node).unwrap();

        for round in 0..10u32 {
            for k in 0..8u32 {
                let key = format!("key-{k}");
                live.put(key.as_bytes(), format!("live-{round}-{k}").as_bytes())
                    .unwrap();
                // The zombie allocates a newer version of the same key and
                // vanishes.
                let req = Request::Put {
                    key: key.as_bytes().to_vec(),
                    vlen: 64,
                    crc: 0xBAD0BAD0,
                };
                let raw = zombie_qp.rpc(req.encode()).unwrap();
                assert!(matches!(Response::decode(&raw), Some(Response::Put { .. })));
            }
            sim::sleep(sim::micros(30));
        }
        // Wait out the timeout window + verifier sweeps.
        sim::sleep(sim::millis(1));

        // Every key must read as the live client's last value — the
        // zombies' half-born heads are skipped via the version list.
        for k in 0..8u32 {
            let key = format!("key-{k}");
            let v = live.get(key.as_bytes()).unwrap().expect("key lost");
            let s = String::from_utf8(v).unwrap();
            assert!(
                s.starts_with("live-9-"),
                "{key}: expected last live value, got {s}"
            );
        }
        let timeouts = shared.stats.bg_timeouts.load(Ordering::Relaxed);
        assert!(
            timeouts >= 60,
            "verifier only timed out {timeouts}/80 zombies"
        );

        // Cleaning reclaims the invalid corpses.
        let used_before = shared.logs[0].used();
        shared.clean_request.store(true, Ordering::Relaxed);
        sim::sleep(sim::millis(3));
        assert_eq!(shared.stats.cleanings.load(Ordering::Relaxed), 1);
        let active = shared.active.load(Ordering::Relaxed);
        let used_after = shared.logs[active].used();
        assert!(
            used_after < used_before / 4,
            "cleaning kept too much: {used_before} -> {used_after}"
        );
        // And the data is still all there.
        for k in 0..8u32 {
            let key = format!("key-{k}");
            assert!(
                live.get(key.as_bytes()).unwrap().is_some(),
                "{key} lost by cleaning"
            );
        }
        server.shutdown();
    });
    simu.run().expect_ok();
}

/// A client whose value write is *partial* (dies mid-stream): crash tears
/// the write at the fabric level; the reader sees the previous version.
#[test]
fn reader_never_sees_partially_written_values() {
    let mut simu = Sim::new(79);
    let fabric = Fabric::new(CostModel::default());
    let server_node = fabric.add_node("server");
    let layout = StoreLayout::new(256, 256 * 1024, true);
    let cfg = ServerConfig {
        verify_timeout: sim::micros(100),
        ..ServerConfig::default()
    };
    let server = Server::format(&fabric, &server_node, layout, cfg);
    let f = Arc::clone(&fabric);
    simu.spawn("main", move || {
        server.start(&f);
        let c = Client::connect(
            &f,
            &f.add_node("c"),
            &server_node,
            server.desc(),
            ClientConfig::default(),
        )
        .unwrap();
        c.put(b"target", &vec![0xAA; 2048]).unwrap();
        assert!(c.get(b"target").unwrap().is_some()); // durable

        // A writer that allocates and then writes only HALF the value
        // (modeling a client that died mid-DMA: we write a prefix
        // directly, never completing the object).
        let req = Request::Put {
            key: b"target".to_vec(),
            vlen: 2048,
            crc: efactory_checksum::crc32c(&vec![0xBB; 2048]),
        };
        let half_qp = f.connect(&f.add_node("half"), &server_node).unwrap();
        let raw = half_qp.rpc(req.encode()).unwrap();
        let Some(Response::Put { value_off, .. }) = Response::decode(&raw) else {
            panic!("alloc failed");
        };
        // Write only the first half of the value.
        half_qp
            .rdma_write(&server.desc().mr, value_off as usize, vec![0xBB; 1024])
            .unwrap();

        // Readers during and after the timeout window always get a full,
        // consistent value.
        for _ in 0..50 {
            let v = c.get(b"target").unwrap().expect("key must stay readable");
            assert!(
                v == vec![0xAA; 2048] || v == vec![0xBB; 2048],
                "reader saw a torn value"
            );
            sim::sleep(sim::micros(10));
        }
        server.shutdown();
    });
    simu.run().expect_ok();
}
