//! Deep tests of log cleaning and recovery: tombstone reclamation, version
//! reclamation accounting, crashes *during* cleaning (both pools live), and
//! recovery from adversarial images.

use std::sync::atomic::Ordering;
use std::sync::Arc;

use efactory::client::{Client, ClientConfig};
use efactory::log::StoreLayout;
use efactory::recovery;
use efactory::server::{Server, ServerConfig};
use efactory_pmem::CrashSpec;
use efactory_rnic::{CostModel, Fabric, Node};
use efactory_sim as sim;
use efactory_sim::Sim;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn connect(fabric: &Arc<Fabric>, server_node: &Node, server: &Server) -> Client {
    let cnode = fabric.add_node("client");
    Client::connect(
        fabric,
        &cnode,
        server_node,
        server.desc(),
        ClientConfig::default(),
    )
    .unwrap()
}

/// Tombstoned keys are fully reclaimed by cleaning: bucket freed, space
/// reused, and the key stays absent afterwards.
#[test]
fn cleaning_reclaims_tombstones_and_frees_buckets() {
    let mut simu = Sim::new(31);
    let fabric = Fabric::new(CostModel::default());
    let server_node = fabric.add_node("server");
    let layout = StoreLayout::new(256, 64 * 1024, true);
    let cfg = ServerConfig {
        clean_threshold: 2.0, // manual trigger only
        clean_poll: sim::micros(5),
        ..ServerConfig::default()
    };
    let server = Server::format(&fabric, &server_node, layout, cfg);
    let f = Arc::clone(&fabric);
    simu.spawn("main", move || {
        let shared = server.start(&f);
        let c = connect(&f, &server_node, &server);
        for k in 0..10u32 {
            c.put(format!("key-{k}").as_bytes(), b"some-value-here")
                .unwrap();
        }
        // Delete the even keys.
        for k in (0..10u32).step_by(2) {
            c.del(format!("key-{k}").as_bytes()).unwrap();
        }
        sim::sleep(sim::micros(300)); // verifier drains
        shared.clean_request.store(true, Ordering::Relaxed);
        sim::sleep(sim::millis(2)); // cleaning completes

        assert_eq!(shared.stats.cleanings.load(Ordering::Relaxed), 1);
        for k in 0..10u32 {
            let key = format!("key-{k}");
            let got = c.get(key.as_bytes()).unwrap();
            if k % 2 == 0 {
                assert_eq!(got, None, "{key} should stay deleted");
            } else {
                assert_eq!(got.as_deref(), Some(&b"some-value-here"[..]), "{key}");
            }
        }
        // Deleted keys' buckets are free: re-inserting works and revives.
        c.put(b"key-0", b"reborn").unwrap();
        assert_eq!(c.get(b"key-0").unwrap().as_deref(), Some(&b"reborn"[..]));
        // The swap happened: pool B (index 1) is now active.
        assert_eq!(shared.active.load(Ordering::Relaxed), 1);
        // Old pool was zeroed and reset.
        assert_eq!(shared.logs[0].used(), {
            // the re-inserted key went to the new active pool
            0
        });
        server.shutdown();
    });
    simu.run().expect_ok();
}

/// Back-to-back cleanings (A→B→A) keep working: the mark bit flips twice
/// and offsets stay coherent.
#[test]
fn two_consecutive_cleanings_round_trip_pools() {
    let mut simu = Sim::new(37);
    let fabric = Fabric::new(CostModel::default());
    let server_node = fabric.add_node("server");
    let layout = StoreLayout::new(256, 128 * 1024, true);
    let cfg = ServerConfig {
        clean_threshold: 2.0,
        clean_poll: sim::micros(5),
        ..ServerConfig::default()
    };
    let server = Server::format(&fabric, &server_node, layout, cfg);
    let f = Arc::clone(&fabric);
    simu.spawn("main", move || {
        let shared = server.start(&f);
        let c = connect(&f, &server_node, &server);
        for round in 0..2 {
            for k in 0..12u32 {
                c.put(
                    format!("key-{k}").as_bytes(),
                    format!("round{round}-value-{k}").as_bytes(),
                )
                .unwrap();
            }
            sim::sleep(sim::micros(300));
            shared.clean_request.store(true, Ordering::Relaxed);
            sim::sleep(sim::millis(2));
            assert_eq!(
                shared.stats.cleanings.load(Ordering::Relaxed),
                round + 1,
                "cleaning {round} did not run"
            );
            assert_eq!(
                shared.active.load(Ordering::Relaxed),
                (1 - round % 2) as usize
            );
            for k in 0..12u32 {
                assert_eq!(
                    c.get(format!("key-{k}").as_bytes()).unwrap().as_deref(),
                    Some(format!("round{round}-value-{k}").as_bytes()),
                );
            }
        }
        server.shutdown();
    });
    simu.run().expect_ok();
}

/// Crash while cleaning is mid-flight: recovery must find a consistent
/// version for every key regardless of which pool it lives in.
#[test]
fn crash_during_cleaning_recovers_consistently() {
    for crash_delay_us in [5u64, 20, 50, 120, 300] {
        let mut simu = Sim::new(41 + crash_delay_us);
        let fabric = Fabric::new(CostModel::default());
        let server_node = fabric.add_node("server");
        let layout = StoreLayout::new(512, 256 * 1024, true);
        let cfg = ServerConfig {
            clean_threshold: 2.0,
            clean_poll: sim::micros(5),
            ..ServerConfig::default()
        };
        let server = Server::format(&fabric, &server_node, layout, cfg.clone());
        let pool = Arc::clone(&server.shared().pool);
        let f = Arc::clone(&fabric);
        simu.spawn("main", move || {
            let shared = server.start(&f);
            let c = connect(&f, &server_node, &server);
            for k in 0..30u32 {
                c.put(
                    format!("key-{k:02}").as_bytes(),
                    vec![k as u8 + 1; 512].as_slice(),
                )
                .unwrap();
            }
            sim::sleep(sim::micros(500)); // all durable
                                          // Kick off cleaning and crash somewhere inside it.
            shared.clean_request.store(true, Ordering::Relaxed);
            sim::sleep(sim::micros(crash_delay_us));
            let mut rng = StdRng::seed_from_u64(crash_delay_us);
            f.crash_node(&server_node, CrashSpec::DropAll, &mut rng);
            sim::sleep(sim::millis(1));

            f.restart_node(&server_node);
            let (server2, report) = recovery::recover(&f, &server_node, pool, layout, cfg);
            recovery::check_consistency(&server2.shared().pool, &layout);
            assert_eq!(
                report.keys_lost, 0,
                "crash at +{crash_delay_us}us: durable keys lost: {report:?}"
            );
            server2.start(&f);
            let c2 = connect(&f, &server_node, &server2);
            for k in 0..30u32 {
                let v = c2
                    .get(format!("key-{k:02}").as_bytes())
                    .unwrap()
                    .unwrap_or_else(|| panic!("crash at +{crash_delay_us}us: key-{k:02} lost"));
                assert_eq!(v, vec![k as u8 + 1; 512], "crash at +{crash_delay_us}us");
            }
            server2.shutdown();
        });
        simu.run().expect_ok();
    }
}

/// Recovery drops a key whose only version never became durable (it was
/// never acknowledged as durable to anyone).
#[test]
fn recovery_drops_never_durable_keys() {
    let mut simu = Sim::new(43);
    let fabric = Fabric::new(CostModel::default());
    let server_node = fabric.add_node("server");
    let layout = StoreLayout::new(256, 64 * 1024, true);
    let cfg = ServerConfig {
        verify_idle: sim::millis(100), // verifier effectively off
        ..ServerConfig::default()
    };
    let server = Server::format(&fabric, &server_node, layout, cfg.clone());
    let pool = Arc::clone(&server.shared().pool);
    let f = Arc::clone(&fabric);
    simu.spawn("main", move || {
        server.start(&f);
        let c = connect(&f, &server_node, &server);
        c.put(b"only-volatile", b"never persisted").unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        f.crash_node(&server_node, CrashSpec::DropAll, &mut rng);
        f.restart_node(&server_node);
        let (server2, report) = recovery::recover(&f, &server_node, pool, layout, cfg);
        assert_eq!(report.keys_lost, 1);
        assert_eq!(report.keys_intact + report.keys_rolled_back, 0);
        server2.start(&f);
        let c2 = connect(&f, &server_node, &server2);
        assert_eq!(c2.get(b"only-volatile").unwrap(), None);
        server2.shutdown();
    });
    simu.run().expect_ok();
}

/// Deep version chains: many overwrites of one key while the verifier is
/// off, then a crash — recovery must walk all the way back to the single
/// durable version.
#[test]
fn recovery_walks_long_version_chains() {
    let mut simu = Sim::new(47);
    let fabric = Fabric::new(CostModel::default());
    let server_node = fabric.add_node("server");
    let layout = StoreLayout::new(256, 256 * 1024, true);
    let cfg = ServerConfig {
        verify_idle: sim::millis(100),
        ..ServerConfig::default()
    };
    let server = Server::format(&fabric, &server_node, layout, cfg.clone());
    let pool = Arc::clone(&server.shared().pool);
    let f = Arc::clone(&fabric);
    simu.spawn("main", move || {
        server.start(&f);
        let c = connect(&f, &server_node, &server);
        c.put(b"deep", b"anchor-version").unwrap();
        assert!(c.get(b"deep").unwrap().is_some()); // durable via read path
                                                    // 20 newer versions, none durable.
        for i in 0..20u32 {
            c.put(b"deep", format!("volatile-{i}").as_bytes()).unwrap();
        }
        let mut rng = StdRng::seed_from_u64(2);
        f.crash_node(&server_node, CrashSpec::DropAll, &mut rng);
        f.restart_node(&server_node);
        let (server2, report) = recovery::recover(&f, &server_node, pool, layout, cfg);
        assert_eq!(report.keys_rolled_back, 1);
        assert!(report.versions_discarded >= 20, "{report:?}");
        server2.start(&f);
        let c2 = connect(&f, &server_node, &server2);
        assert_eq!(
            c2.get(b"deep").unwrap().as_deref(),
            Some(&b"anchor-version"[..])
        );
        server2.shutdown();
    });
    simu.run().expect_ok();
}

/// Double crash: crash, recover, write, crash again, recover again.
#[test]
fn repeated_crash_recover_cycles() {
    let mut simu = Sim::new(53);
    let fabric = Fabric::new(CostModel::default());
    let server_node = fabric.add_node("server");
    let layout = StoreLayout::new(256, 128 * 1024, true);
    let cfg = ServerConfig::default();
    let server = Server::format(&fabric, &server_node, layout, cfg.clone());
    let pool = Arc::clone(&server.shared().pool);
    let f = Arc::clone(&fabric);
    simu.spawn("main", move || {
        server.start(&f);
        let c = connect(&f, &server_node, &server);
        c.put(b"gen", b"gen-0").unwrap();
        c.get(b"gen").unwrap();
        let mut pool = pool;
        let mut current = None;
        for generation in 1..=3u32 {
            let mut rng = StdRng::seed_from_u64(generation as u64);
            f.crash_node(&server_node, CrashSpec::Words(0.4), &mut rng);
            f.restart_node(&server_node);
            let (srv, _report) =
                recovery::recover(&f, &server_node, Arc::clone(&pool), layout, cfg.clone());
            recovery::check_consistency(&srv.shared().pool, &layout);
            pool = Arc::clone(&srv.shared().pool);
            srv.start(&f);
            let c2 = connect(&f, &server_node, &srv);
            let v = c2
                .get(b"gen")
                .unwrap()
                .expect("key must survive every cycle");
            assert!(v.starts_with(b"gen-"), "garbage after cycle {generation}");
            let newv = format!("gen-{generation}");
            c2.put(b"gen", newv.as_bytes()).unwrap();
            c2.get(b"gen").unwrap(); // make durable
            current = Some(srv);
        }
        if let Some(srv) = current {
            srv.shutdown();
        }
    });
    simu.run().expect_ok();
}
