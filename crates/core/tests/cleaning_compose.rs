//! Cleaning composed with its neighbours: the location cache, the CRC
//! scrubber, server shutdown, and destination-pool exhaustion.
//!
//! The crash story lives in `tests/crash_sweep.rs`; this file pins the
//! *live* interactions — no power failures, but every other way a cleaning
//! pass can collide with concurrent machinery:
//!
//! * a caching client reading straight through a pass (flush on the
//!   CleanStart/CleanEnd edges, re-probe, repopulate — misses and fills
//!   move in lockstep with the `clean_epoch` bump),
//! * the scrubber waking mid-relocation (the clean-epoch guard must make
//!   it stand down rather than quarantine a half-copied object),
//! * `shutdown()` landing mid-pass (every exit path must restore the
//!   phase/notify invariants), and
//! * the destination pool running dry under client churn (park → Busy →
//!   abort → retry passes → the backlog drains; nothing panics).

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

use efactory::client::{Client, ClientConfig};
use efactory::layout::{self, flags, ObjHeader};
use efactory::log::StoreLayout;
use efactory::protocol::{Status, StoreError};
use efactory::server::{CleanPhase, Server, ServerConfig};
use efactory_rnic::{CostModel, Fabric, Node};
use efactory_sim as sim;
use efactory_sim::Sim;

/// Key → acked value pairs shared between writer processes and the final
/// read-back check.
type AckedLog = Arc<Mutex<Vec<(String, Vec<u8>)>>>;

fn connect_with(
    fabric: &Arc<Fabric>,
    server_node: &Node,
    server: &Server,
    cfg: ClientConfig,
) -> Client {
    let cnode = fabric.add_node("client");
    Client::connect(fabric, &cnode, server_node, server.desc(), cfg).unwrap()
}

fn connect(fabric: &Arc<Fabric>, server_node: &Node, server: &Server) -> Client {
    connect_with(fabric, server_node, server, ClientConfig::default())
}

/// Location-cache coherence across a full cleaning pass: every entry the
/// client cached against the old pool is evicted when the pass runs, the
/// next GET per key re-probes and repopulates, and the whole cycle lines
/// up with exactly one `clean_epoch` bump. A reader polling *during* the
/// pass must never observe a stale or torn value through the cache.
#[test]
fn loc_cache_evicts_reprobes_and_repopulates_across_cleaning() {
    const KEYS: usize = 12;
    let mut simu = Sim::new(71);
    let fabric = Fabric::new(CostModel::default());
    let server_node = fabric.add_node("server");
    let layout = StoreLayout::new(256, 64 * 1024, true);
    let cfg = ServerConfig {
        clean_threshold: 2.0, // manual trigger only
        clean_poll: sim::micros(5),
        ..ServerConfig::default()
    };
    let server = Server::format(&fabric, &server_node, layout, cfg);
    let f = Arc::clone(&fabric);
    simu.spawn("main", move || {
        let shared = server.start(&f);
        let c = connect_with(
            &f,
            &server_node,
            &server,
            ClientConfig {
                loc_cache: true,
                ..ClientConfig::default()
            },
        );
        let key = |i: usize| format!("cache-key-{i:02}");
        let val = |i: usize| format!("cached-value-{i:02}-abcdefgh");
        for i in 0..KEYS {
            c.put(key(i).as_bytes(), val(i).as_bytes()).unwrap();
        }
        // First GET fills the cache, second is served from it.
        for _ in 0..2 {
            for i in 0..KEYS {
                assert_eq!(
                    c.get(key(i).as_bytes()).unwrap().as_deref(),
                    Some(val(i).as_bytes()),
                );
            }
        }
        let hits0 = c.stats().loc_hits.get();
        let fills0 = c.stats().loc_fills.get();
        assert!(hits0 >= KEYS as u64, "cache never served a read: {hits0}");
        assert!(fills0 >= KEYS as u64, "cache never filled: {fills0}");

        sim::sleep(sim::micros(300)); // verifier drains
        assert_eq!(shared.clean_epoch.load(Ordering::Relaxed), 0);
        let misses_pre = c.stats().loc_misses.get();
        let fills_pre = c.stats().loc_fills.get();
        shared.clean_request.store(true, Ordering::Relaxed);
        // Read straight through the pass: the cache may fill and re-flush
        // on the CleanStart/CleanEnd edges, but every observed value must
        // be exact at every instant.
        let deadline = sim::now() + sim::millis(50);
        while shared.stats.cleanings.load(Ordering::Relaxed) == 0 {
            assert!(sim::now() < deadline, "cleaning never completed");
            for i in 0..KEYS {
                assert_eq!(
                    c.get(key(i).as_bytes()).unwrap().as_deref(),
                    Some(val(i).as_bytes()),
                    "stale value observed through the cache mid-clean"
                );
            }
            sim::sleep(sim::micros(2));
        }
        assert_eq!(
            shared.clean_epoch.load(Ordering::Relaxed),
            1,
            "exactly one pass ran"
        );

        // The pass relocated every object: the CleanStart/CleanEnd edges
        // evicted every cached old-pool entry, so the reads issued across
        // the pass re-probed (missed) and repopulated — at least one full
        // eviction + repopulation cycle beyond the pre-clean totals, in
        // lockstep with the single epoch bump.
        for i in 0..KEYS {
            assert_eq!(
                c.get(key(i).as_bytes()).unwrap().as_deref(),
                Some(val(i).as_bytes()),
            );
        }
        assert!(
            c.stats().loc_misses.get() >= misses_pre + KEYS as u64,
            "cleaning evicted nothing: misses {} -> {}",
            misses_pre,
            c.stats().loc_misses.get()
        );
        assert!(
            c.stats().loc_fills.get() >= fills_pre + KEYS as u64,
            "post-clean reads did not repopulate the cache: fills {} -> {}",
            fills_pre,
            c.stats().loc_fills.get()
        );
        // And the repopulated entries serve hits again.
        let hits1 = c.stats().loc_hits.get();
        for i in 0..KEYS {
            assert_eq!(
                c.get(key(i).as_bytes()).unwrap().as_deref(),
                Some(val(i).as_bytes()),
            );
        }
        assert!(
            c.stats().loc_hits.get() >= hits1 + KEYS as u64,
            "repopulated cache not serving hits"
        );
        server.shutdown();
    });
    simu.run().expect_ok();
}

/// The scrubber wakes while the cleaner is mid-compress and an old-pool
/// object rots under both of them. The clean-epoch guard must make the
/// scrubber stand down (halt its pass, quarantine nothing in the pools
/// being rewritten); the *cleaner's* own CRC check catches the rot,
/// quarantines the source, and relocates the newest intact ancestor
/// instead — so the key falls back one generation rather than vanishing.
#[test]
fn scrubber_stands_down_while_cleaner_relocates_rotted_pool() {
    const KEYS: usize = 48;
    const VLEN: usize = 256;
    let mut simu = Sim::new(73);
    let fabric = Fabric::new(CostModel::default());
    let server_node = fabric.add_node("server");
    let layout = StoreLayout::new(512, 192 * 1024, true);
    let cfg = ServerConfig {
        clean_threshold: 2.0,
        clean_poll: sim::micros(5),
        scrub_enabled: true,
        scrub_interval: sim::micros(2),
        ..ServerConfig::default()
    };
    let server = Server::format(&fabric, &server_node, layout, cfg);
    let f = Arc::clone(&fabric);
    simu.spawn("main", move || {
        let shared = server.start(&f);
        let c = connect(&f, &server_node, &server);
        let key = |i: usize| format!("scrub-{i:02}"); // 8 bytes
        let gen_val = |i: usize, g: usize| {
            let mut v = format!("scrub-gen{g}-{i:02}-").into_bytes();
            v.resize(VLEN, b'0' + (g as u8));
            v
        };
        for g in 0..2 {
            for i in 0..KEYS {
                c.put(key(i).as_bytes(), &gen_val(i, g)).unwrap();
            }
        }
        // Both generations durable before the rot lands (the scrubber and
        // cleaner only police DURABLE objects).
        let deadline = sim::now() + sim::millis(100);
        while shared.stats.bg_verified.get() < 2 * KEYS as u64 && sim::now() < deadline {
            sim::sleep(sim::micros(20));
        }
        assert!(shared.stats.bg_verified.get() >= 2 * KEYS as u64);
        // The scrubber has seen the clean image at least once.
        let deadline = sim::now() + sim::millis(100);
        while shared.scrub.passes.get() == 0 && sim::now() < deadline {
            sim::sleep(sim::micros(20));
        }
        assert!(
            shared.scrub.passes.get() > 0,
            "scrubber never completed a pass"
        );
        assert_eq!(shared.scrub.quarantined.get(), 0);

        // Kick the cleaner, then rot key 0's *current* (gen-1) version in
        // the old pool the moment the pass claims the store. The reverse
        // compress scan reaches it long after the injection instant.
        shared.clean_request.store(true, Ordering::Relaxed);
        let deadline = sim::now() + sim::millis(20);
        while shared.phase() == CleanPhase::Normal {
            assert!(sim::now() < deadline, "cleaning never started");
            sim::sleep(200);
        }
        let obj = layout::object_size(8, VLEN);
        let g1_off = shared.logs[0].base() + KEYS * obj;
        let hdr = ObjHeader::read_from(&shared.pool, g1_off);
        assert_eq!(hdr.klen, 8, "test lost track of the log geometry");
        shared
            .pool
            .corrupt_range(g1_off + layout::HDR_LEN + layout::pad8(8), 8, 0x5A);

        let deadline = sim::now() + sim::millis(100);
        while shared.stats.cleanings.load(Ordering::Relaxed) == 0 {
            assert!(sim::now() < deadline, "cleaning never completed");
            sim::sleep(sim::micros(10));
        }
        // The cleaner quarantined the rotted source — exactly one
        // quarantine, i.e. the scrubber never condemned a half-copied
        // object in the pool being rewritten.
        assert_eq!(
            shared.scrub.quarantined.get(),
            1,
            "spurious quarantine beyond the cleaner's own"
        );
        // The scrubber did wake mid-pass and stood down.
        assert!(
            shared.scrub.halted.get() >= 1,
            "scrubber never yielded to the cleaner (tune scrub_interval?)"
        );
        // Key 0 fell back one generation; everyone else kept gen 1.
        assert_eq!(
            c.get(key(0).as_bytes()).unwrap().as_deref(),
            Some(&gen_val(0, 0)[..]),
            "rotted key must fall back to the intact previous generation"
        );
        for i in 1..KEYS {
            assert_eq!(
                c.get(key(i).as_bytes()).unwrap().as_deref(),
                Some(&gen_val(i, 1)[..]),
            );
        }
        // Scrubbing resumes over the post-swap image: later passes
        // complete and find it clean.
        let passes0 = shared.scrub.passes.get();
        let deadline = sim::now() + sim::millis(100);
        while shared.scrub.passes.get() == passes0 && sim::now() < deadline {
            sim::sleep(sim::micros(20));
        }
        assert!(
            shared.scrub.passes.get() > passes0,
            "scrubber never resumed after the pass"
        );
        server.shutdown();
    });
    simu.run().expect_ok();
}

/// `shutdown()` landing mid-pass: the cleaner's stop path must unwind —
/// phase back to Normal, backpressure lifted, a durable Abort record in
/// the reserved terminal slot — instead of exiting with `clean_phase`
/// stuck at Compress/Merge and clients parked on an unmatched CleanStart.
#[test]
fn shutdown_mid_clean_unwinds_phase_and_writes_abort_record() {
    const KEYS: usize = 32;
    let mut simu = Sim::new(79);
    let fabric = Fabric::new(CostModel::default());
    let server_node = fabric.add_node("server");
    let layout = StoreLayout::new(256, 96 * 1024, true);
    let cfg = ServerConfig {
        clean_threshold: 2.0,
        clean_poll: sim::micros(5),
        ..ServerConfig::default()
    };
    let server = Server::format(&fabric, &server_node, layout, cfg);
    let f = Arc::clone(&fabric);
    simu.spawn("main", move || {
        let shared = server.start(&f);
        let c = connect(&f, &server_node, &server);
        for i in 0..KEYS {
            c.put(
                format!("stop-key-{i:02}").as_bytes(),
                format!("stop-val-{i:02}-0123456789abcdef").as_bytes(),
            )
            .unwrap();
        }
        sim::sleep(sim::micros(300)); // verifier drains
        shared.clean_request.store(true, Ordering::Relaxed);
        let deadline = sim::now() + sim::millis(20);
        while shared.phase() == CleanPhase::Normal {
            assert!(sim::now() < deadline, "cleaning never started");
            sim::sleep(200);
        }
        let dest = 1 - shared.active.load(Ordering::Relaxed);
        let terminal_off = shared.logs[dest].base();
        server.shutdown();
        sim::sleep(sim::millis(1)); // stop ripples through the cleaner

        assert_eq!(
            shared.phase(),
            CleanPhase::Normal,
            "stop path left the phase claimed"
        );
        assert!(
            !shared.clean_stalled.load(Ordering::Relaxed),
            "stop path left Busy backpressure raised"
        );
        assert_eq!(
            shared.stats.cleanings.load(Ordering::Relaxed),
            0,
            "aborted pass must not count as completed"
        );
        // The reserved terminal slot holds a durable Abort record, so a
        // restart's recovery knows the swap never happened.
        let hdr = ObjHeader::read_from(&shared.pool, terminal_off);
        let rec = efactory::cleaner::decode_clean_record(&shared.pool, terminal_off, &hdr)
            .expect("terminal slot must hold a decodable cleaning record");
        assert_eq!(rec.stage, efactory::cleaner::STAGE_ABORT);
        assert!(hdr.has(flags::DURABLE));
    });
    simu.run().expect_ok();
}

/// Busy backpressure that *resolves*: a hot-key writer churns 1 KiB values
/// while a pass relocates a nearly-full pool. Mid-clean allocation
/// failures answer `Busy` (never a panic, never a lost ack); the writer
/// backs off and retries; the pass completes; a follow-up pass restores
/// headroom and the backlog drains — every acked write readable, fresh
/// writes accepted.
#[test]
fn busy_backpressure_resolves_once_clean_completes() {
    const FILL: usize = 50;
    const HOT: usize = 8;
    const VLEN: usize = 1000; // object_size(8, 1000) = 1064
    let mut simu = Sim::new(83);
    let fabric = Fabric::new(CostModel::default());
    let server_node = fabric.add_node("server");
    let layout = StoreLayout::new(256, 64 * 1024, true);
    let cfg = ServerConfig {
        clean_threshold: 2.0, // every pass in this test is explicit
        clean_poll: sim::micros(5),
        txn_abort_timeout: sim::millis(1), // short park window
        ..ServerConfig::default()
    };
    let server = Arc::new(Server::format(&fabric, &server_node, layout, cfg));
    let f = Arc::clone(&fabric);

    let ready = Arc::new(AtomicBool::new(false));
    let stop_writer = Arc::new(AtomicBool::new(false));
    let writer_done = Arc::new(AtomicBool::new(false));
    let saw_busy = Arc::new(AtomicBool::new(false));
    // Last acked generation per hot key (u64::MAX = never acked).
    let acked = Arc::new(Mutex::new(vec![u64::MAX; HOT]));

    let hot_val = |h: usize, v: u64| {
        let mut val = format!("hot-{h:02}-v{v:06}-").into_bytes();
        val.resize(VLEN, b'h');
        val
    };

    // Writer: hammers the hot set with 1 KiB values while the pass runs,
    // retrying on Busy/NoSpace. The retries are the "backlog".
    {
        let f2 = Arc::clone(&f);
        let server2 = Arc::clone(&server);
        let server_node = server_node.clone();
        let rdy = Arc::clone(&ready);
        let stop = Arc::clone(&stop_writer);
        let done = Arc::clone(&writer_done);
        let busy = Arc::clone(&saw_busy);
        let acked2 = Arc::clone(&acked);
        simu.spawn("writer", move || {
            while !rdy.load(Ordering::Relaxed) {
                sim::sleep(sim::micros(5));
            }
            let sh = Arc::clone(server2.shared());
            let c = connect(&f2, &server_node, &server2);
            // Wait for the pass to claim the store.
            let deadline = sim::now() + sim::millis(50);
            while sh.phase() == CleanPhase::Normal && sim::now() < deadline {
                sim::sleep(500);
            }
            let mut v = 0u64;
            while !stop.load(Ordering::Relaxed) {
                let h = (v % HOT as u64) as usize;
                let val = {
                    let mut val = format!("hot-{h:02}-v{v:06}-").into_bytes();
                    val.resize(VLEN, b'h');
                    val
                };
                match c.put(format!("hot-{h:04}").as_bytes(), &val) {
                    Ok(()) => {
                        acked2.lock().unwrap()[h] = v;
                        v += 1;
                    }
                    Err(StoreError::Status(Status::Busy)) => {
                        busy.store(true, Ordering::Relaxed);
                        sim::sleep(sim::micros(2));
                    }
                    Err(StoreError::Status(Status::NoSpace)) => sim::sleep(sim::micros(2)),
                    Err(e) => panic!("writer hit a non-retryable error: {e}"),
                }
            }
            done.store(true, Ordering::Relaxed);
        });
    }

    let stop = Arc::clone(&stop_writer);
    let done = Arc::clone(&writer_done);
    let busy = Arc::clone(&saw_busy);
    let f2 = Arc::clone(&f);
    simu.spawn("main", move || {
        let sh = server.start(&f2);
        ready.store(true, Ordering::Relaxed);
        let c = connect(&f2, &server_node, &server);
        let key = |i: usize| format!("fill-{i:03}"); // 8 bytes
        let val = |i: usize| {
            let mut v = format!("fill-val-{i:03}-").into_bytes();
            v.resize(VLEN, b'f');
            v
        };
        for i in 0..FILL {
            c.put(key(i).as_bytes(), &val(i)).unwrap();
            // Read-back pins the version durable (selective durability).
            assert!(c.get(key(i).as_bytes()).unwrap().is_some());
        }
        sim::sleep(sim::micros(300)); // verifier drains

        // Kick the pass the writer is waiting for. 50 relocations leave
        // ~12 KiB of destination; the churn overruns it, so mid-clean
        // writes answer Busy until the pass gets through.
        sh.clean_request.store(true, Ordering::Relaxed);
        let deadline = sim::now() + sim::millis(200);
        while sh.stats.cleanings.load(Ordering::Relaxed) == 0 {
            assert!(
                sim::now() < deadline,
                "first pass never completed: phase={:?} stalls={}",
                sh.phase(),
                sh.stats.cleaner_stalls.get()
            );
            if sh.phase() == CleanPhase::Normal {
                sh.clean_request.store(true, Ordering::Relaxed);
            }
            sim::sleep(sim::micros(10));
        }
        assert!(
            busy.load(Ordering::Relaxed),
            "writer never saw Busy backpressure"
        );
        // Quiesce the churn and let the in-flight op settle.
        stop.store(true, Ordering::Relaxed);
        let deadline = sim::now() + sim::millis(50);
        while !done.load(Ordering::Relaxed) {
            assert!(sim::now() < deadline, "writer never quiesced");
            sim::sleep(sim::micros(5));
        }

        // A follow-up pass compacts the post-churn pool (the live set is
        // 58 keys; the stale hot generations are garbage) and restores
        // write headroom: the backlog is fully drained.
        let deadline = sim::now() + sim::millis(200);
        while sh.stats.cleanings.load(Ordering::Relaxed) < 2 {
            assert!(sim::now() < deadline, "follow-up pass never completed");
            if sh.phase() == CleanPhase::Normal {
                sh.clean_request.store(true, Ordering::Relaxed);
            }
            sim::sleep(sim::micros(10));
        }
        for i in 0..FILL {
            assert_eq!(
                c.get(key(i).as_bytes()).unwrap().as_deref(),
                Some(&val(i)[..]),
                "fill key lost across the contended pass"
            );
        }
        // Every acked hot write survived exactly (no lost ack, no
        // resurrection of an unacked overwrite).
        let acked = acked.lock().unwrap();
        assert!(
            acked.iter().any(|&v| v != u64::MAX),
            "writer never landed a single put"
        );
        for h in 0..HOT {
            let got = c.get(format!("hot-{h:04}").as_bytes()).unwrap();
            match acked[h] {
                u64::MAX => assert_eq!(got, None),
                v => assert_eq!(
                    got.as_deref(),
                    Some(&hot_val(h, v)[..]),
                    "hot key {h} lost its last acked write"
                ),
            }
        }
        let mut fresh = vec![b'n'; VLEN];
        fresh[..8].copy_from_slice(b"newwrite");
        c.put(b"post-drn", &fresh)
            .expect("post-drain write must succeed");
        assert_eq!(c.get(b"post-drn").unwrap().as_deref(), Some(&fresh[..]));
        server.shutdown();
    });
    simu.run().expect_ok();
}

/// A genuine destination-pool exhaustion: six writers pour *unique* keys
/// into the store while the pass runs, so the merge stage owes more
/// relocations than the destination can hold. The cleaner must park
/// (`cleaner.stalls`/`cleaner.park_ns` move), the handler must answer
/// `Busy`, the pass must unwind `Full` — and the store must come out the
/// other side live: phase Normal, backpressure lifted, every acked write
/// readable, and small writes still accepted. No panic, no deadlock.
#[test]
fn stalled_cleaner_parks_and_aborts_without_deadlock() {
    const FILL: usize = 50;
    const VLEN: usize = 1000; // fill objects: 1064 bytes
    const WVLEN: usize = 248; // writer objects: 296 bytes
    const WRITERS: usize = 6;
    let mut simu = Sim::new(89);
    let fabric = Fabric::new(CostModel::default());
    let server_node = fabric.add_node("server");
    let layout = StoreLayout::new(1024, 64 * 1024, true);
    let cfg = ServerConfig {
        clean_threshold: 2.0,
        clean_poll: sim::micros(5),
        txn_abort_timeout: sim::millis(1), // short park window
        ..ServerConfig::default()
    };
    let server = Arc::new(Server::format(&fabric, &server_node, layout, cfg));
    let f = Arc::clone(&fabric);

    let ready = Arc::new(AtomicBool::new(false));
    let stop_writers = Arc::new(AtomicBool::new(false));
    let writers_done = Arc::new(AtomicUsize::new(0));
    let saw_busy = Arc::new(AtomicBool::new(false));
    let acked: AckedLog = Arc::new(Mutex::new(Vec::new()));

    for id in 0..WRITERS {
        let f2 = Arc::clone(&f);
        let server2 = Arc::clone(&server);
        let server_node = server_node.clone();
        let rdy = Arc::clone(&ready);
        let stop = Arc::clone(&stop_writers);
        let done = Arc::clone(&writers_done);
        let busy = Arc::clone(&saw_busy);
        let acked2 = Arc::clone(&acked);
        simu.spawn(&format!("writer-{id}"), move || {
            while !rdy.load(Ordering::Relaxed) {
                sim::sleep(sim::micros(5));
            }
            let sh = Arc::clone(server2.shared());
            let c = connect(&f2, &server_node, &server2);
            let deadline = sim::now() + sim::millis(50);
            while sh.phase() == CleanPhase::Normal && sim::now() < deadline {
                sim::sleep(500);
            }
            let mut n = 0u64;
            while !stop.load(Ordering::Relaxed) {
                let key = format!("w{id}-{n:04}");
                let mut val = format!("wv-{id}-{n:06}-").into_bytes();
                val.resize(WVLEN, b'w');
                match c.put(key.as_bytes(), &val) {
                    Ok(()) => {
                        acked2.lock().unwrap().push((key, val));
                        n += 1;
                    }
                    Err(StoreError::Status(Status::Busy)) => {
                        busy.store(true, Ordering::Relaxed);
                        sim::sleep(sim::micros(2));
                    }
                    Err(StoreError::Status(Status::NoSpace)) => sim::sleep(sim::micros(2)),
                    Err(e) => panic!("writer {id} hit a non-retryable error: {e}"),
                }
            }
            done.fetch_add(1, Ordering::Relaxed);
        });
    }

    let stop = Arc::clone(&stop_writers);
    let done = Arc::clone(&writers_done);
    let busy = Arc::clone(&saw_busy);
    let acked_main = Arc::clone(&acked);
    let f2 = Arc::clone(&f);
    simu.spawn("main", move || {
        let sh = server.start(&f2);
        ready.store(true, Ordering::Relaxed);
        let c = connect(&f2, &server_node, &server);
        let key = |i: usize| format!("fill-{i:03}");
        let val = |i: usize| {
            let mut v = format!("fill-val-{i:03}-").into_bytes();
            v.resize(VLEN, b'f');
            v
        };
        for i in 0..FILL {
            c.put(key(i).as_bytes(), &val(i)).unwrap();
            assert!(c.get(key(i).as_bytes()).unwrap().is_some());
        }
        sim::sleep(sim::micros(300)); // verifier drains

        // Kick the pass. The writers flood the old pool's remaining
        // ~12 KiB with unique 328-byte objects during compress; the merge
        // stage then owes ~12.1 KiB of relocations against ~12.1 KiB of
        // destination minus the writers' own merge-phase appropriation —
        // the cleaner's allocator must come up dry and park.
        sh.clean_request.store(true, Ordering::Relaxed);
        let deadline = sim::now() + sim::millis(100);
        while sh.stats.cleaner_stalls.get() == 0 {
            assert!(
                sim::now() < deadline,
                "cleaner never stalled: cleanings={} phase={:?} puts={} used=[{}, {}]",
                sh.stats.cleanings.load(Ordering::Relaxed),
                sh.phase(),
                sh.stats.puts.get(),
                sh.logs[0].used(),
                sh.logs[1].used(),
            );
            sim::sleep(sim::micros(5));
        }
        // The park deadline passes; the pass unwinds Full.
        let deadline = sim::now() + sim::millis(100);
        while sh.phase() != CleanPhase::Normal {
            assert!(sim::now() < deadline, "aborting pass never released the store");
            sim::sleep(sim::micros(5));
        }
        assert!(sh.stats.cleaner_park_ns.get() > 0, "stall recorded no park time");
        assert_eq!(
            sh.stats.cleanings.load(Ordering::Relaxed),
            0,
            "an exhausted pass must unwind, not complete"
        );
        assert!(
            !sh.clean_stalled.load(Ordering::Relaxed),
            "unwind left Busy backpressure raised"
        );
        stop.store(true, Ordering::Relaxed);
        let deadline = sim::now() + sim::millis(50);
        while done.load(Ordering::Relaxed) < WRITERS {
            assert!(sim::now() < deadline, "writers never quiesced");
            sim::sleep(sim::micros(5));
        }
        assert!(busy.load(Ordering::Relaxed), "no writer ever saw Busy");

        // Liveness after the abort: everything acked is readable (the
        // unwind's straggler drain made merge-phase acks durable), and
        // the store still accepts writes sized to the remaining space.
        for i in 0..FILL {
            assert_eq!(
                c.get(key(i).as_bytes()).unwrap().as_deref(),
                Some(&val(i)[..]),
                "fill key lost across the aborted pass"
            );
        }
        let acked = acked_main.lock().unwrap();
        assert!(!acked.is_empty(), "writers never landed a put");
        for (k, v) in acked.iter() {
            assert_eq!(
                c.get(k.as_bytes()).unwrap().as_deref(),
                Some(&v[..]),
                "acked write {k} lost across the aborted pass"
            );
        }
        let deadline = sim::now() + sim::millis(20);
        loop {
            match c.put(b"tiny-key", b"12345678") {
                Ok(()) => break,
                Err(StoreError::Status(Status::Busy | Status::NoSpace)) => {
                    assert!(
                        sim::now() < deadline,
                        "store wedged: small write never accepted: used=[{}, {}] phase={:?} stalls={} stalled={}",
                        sh.logs[0].used(),
                        sh.logs[1].used(),
                        sh.phase(),
                        sh.stats.cleaner_stalls.get(),
                        sh.clean_stalled.load(Ordering::Relaxed),
                    );
                    sim::sleep(sim::micros(10));
                }
                Err(e) => panic!("post-abort write failed hard: {e}"),
            }
        }
        assert_eq!(c.get(b"tiny-key").unwrap().as_deref(), Some(&b"12345678"[..]));
        server.shutdown();
    });
    simu.run().expect_ok();
}
