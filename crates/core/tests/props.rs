//! Property-based tests over the core on-NVM data structures.

use efactory::hashtable::{find_in_window, fingerprint, Ctl, HashTable, BUCKET_LEN, NPROBE};
use efactory::layout::{self, flags, ObjHeader, NIL};
use efactory::log::{LogRegion, StoreLayout};
use efactory_pmem::PmemPool;
use proptest::prelude::*;

proptest! {
    /// Header encode/decode is the identity for arbitrary field values.
    #[test]
    fn header_roundtrips_arbitrary_fields(
        klen in any::<u16>(),
        vlen in any::<u32>(),
        fl in any::<u8>(),
        pre in any::<u64>(),
        next in any::<u64>(),
        crc in any::<u32>(),
        seq in any::<u32>(),
        t in any::<u64>(),
    ) {
        let hdr = ObjHeader {
            klen, vlen, flags: fl, pre_ptr: pre, next_ptr: next, crc, seq, alloc_time: t,
        };
        let pool = PmemPool::new(256);
        hdr.write_to(&pool, 0);
        prop_assert_eq!(ObjHeader::read_from(&pool, 0), hdr);
        let mut raw = vec![0u8; layout::HDR_LEN];
        pool.read(0, &mut raw);
        prop_assert_eq!(ObjHeader::decode(&raw), Some(hdr));
    }

    /// Flag updates touch flags only, for arbitrary set/clear masks.
    #[test]
    fn flag_updates_preserve_sizes(
        klen in any::<u16>(),
        vlen in any::<u32>(),
        initial in any::<u8>(),
        set in any::<u8>(),
        clear in any::<u8>(),
    ) {
        let pool = PmemPool::new(256);
        let hdr = ObjHeader {
            klen, vlen, flags: initial,
            pre_ptr: NIL, next_ptr: NIL, crc: 0, seq: 0, alloc_time: 0,
        };
        hdr.write_to(&pool, 0);
        layout::update_flags(&pool, 0, set, clear);
        let h2 = ObjHeader::read_from(&pool, 0);
        prop_assert_eq!(h2.klen, klen);
        prop_assert_eq!(h2.vlen, vlen);
        prop_assert_eq!(h2.flags, (initial & !clear) | set);
    }

    /// Insert-then-lookup works for any set of distinct keys that fits the
    /// table, and window scans agree with server-side lookups.
    #[test]
    fn hashtable_lookup_agrees_with_window_scan(
        keys in proptest::collection::hash_set("[a-z]{1,12}", 1..40),
    ) {
        let buckets = 512;
        let pool = PmemPool::new(HashTable::region_len(buckets));
        let ht = HashTable::new(0, buckets);
        let keys: Vec<String> = keys.into_iter().collect();
        for (i, k) in keys.iter().enumerate() {
            let fp = fingerprint(k.as_bytes());
            let (idx, _) = ht.lookup_or_claim(&pool, fp).expect("claim");
            ht.set_slot(&pool, idx, 0, (i as u64 + 1) * 64);
            ht.set_sizes(&pool, idx, k.len() as u16, i as u32);
            ht.set_ctl(&pool, idx, Ctl::default().bumped());
        }
        for (i, k) in keys.iter().enumerate() {
            let fp = fingerprint(k.as_bytes());
            let (idx, e) = ht.lookup(&pool, fp).expect("must find");
            prop_assert_eq!(e.current(), (i as u64 + 1) * 64);
            prop_assert_eq!(e.vlen, i as u32);
            // Client-side: the one-shot window read sees the same entry.
            let home = ht.home(fp);
            let mut window = vec![0u8; NPROBE * BUCKET_LEN];
            pool.read(ht.entry_off(home), &mut window);
            let (rel, e2) = find_in_window(&window, fp).expect("window hit");
            prop_assert_eq!(home + rel, idx);
            prop_assert_eq!(e2, e);
        }
    }

    /// A log full of arbitrary-size objects scans back exactly, and the
    /// recovery scan rebuilds the same head.
    #[test]
    fn log_scan_reconstructs_arbitrary_objects(
        sizes in proptest::collection::vec((1usize..40, 0usize..300), 1..25),
    ) {
        let pool = PmemPool::new(1 << 16);
        let region = LogRegion::new(0, 1 << 16);
        let mut expect = Vec::new();
        for (i, &(klen, vlen)) in sizes.iter().enumerate() {
            let size = layout::object_size(klen, vlen);
            let Some(off) = region.alloc(size) else { break };
            ObjHeader {
                klen: klen as u16,
                vlen: vlen as u32,
                flags: flags::VALID,
                pre_ptr: NIL,
                next_ptr: NIL,
                crc: 0,
                seq: i as u32,
                alloc_time: 0,
            }
            .write_to(&pool, off);
            expect.push(off);
        }
        prop_assert_eq!(region.scan_objects(&pool), expect.clone());
        let fresh = LogRegion::new(0, 1 << 16);
        let (objs, head) = fresh.scan_for_recovery(&pool, 64, 1 << 12);
        prop_assert_eq!(objs, expect);
        prop_assert_eq!(head, region.head());
    }

    /// Layout geometry invariants hold for arbitrary parameters.
    #[test]
    fn layout_geometry_invariants(
        buckets in 32usize..4096,
        pool_len in 1usize..(8 << 20),
        two in any::<bool>(),
    ) {
        let buckets = buckets.max(NPROBE + 1);
        let l = StoreLayout::new(buckets, pool_len, two);
        // Regions are ordered, 64-aligned, and non-overlapping.
        prop_assert!(l.pool_a.0 >= HashTable::region_len(buckets));
        prop_assert_eq!(l.pool_a.0 % 64, 0);
        prop_assert_eq!(l.pool_a.1 % 64, 0);
        prop_assert_eq!(l.pool_b.0, l.pool_a.0 + l.pool_a.1);
        prop_assert_eq!(l.total_len(), l.pool_b.0 + l.pool_b.1);
        if !two {
            prop_assert_eq!(l.pool_b.1, 0);
        }
        // The pool can actually be constructed at this size.
        let pool = PmemPool::new(l.total_len());
        prop_assert!(pool.len() >= l.total_len());
    }

    /// Fingerprints are stable and non-zero for arbitrary keys.
    #[test]
    fn fingerprint_stable_nonzero(key in proptest::collection::vec(any::<u8>(), 0..64)) {
        let fp = fingerprint(&key);
        prop_assert_ne!(fp, 0);
        prop_assert_eq!(fp, fingerprint(&key));
    }
}
