//! Op-path properties asserted **purely from the recorded trace**: the
//! observability layer must let an operator reconstruct what the hybrid
//! read and the background verifier actually did, without peeking at
//! internal state.

use std::sync::Arc;

use efactory::client::{Client, ClientConfig, GetOutcome};
use efactory::layout::{flags, ObjHeader};
use efactory::log::StoreLayout;
use efactory::server::{Server, ServerConfig};
use efactory_obs::{Obs, RecordKind, Subsystem};
use efactory_rnic::{CostModel, Fabric};
use efactory_sim as sim;
use efactory_sim::Sim;

fn small_layout() -> StoreLayout {
    StoreLayout::new(256, 1 << 20, true)
}

/// A GET against a not-yet-durable object must take the RPC fallback — and
/// the trace must show **exactly one** `fallback_rpc` span for it. Once the
/// object is durable (persisted on demand by that very fallback), further
/// GETs go pure and add no more fallback spans.
#[test]
fn non_durable_get_emits_exactly_one_fallback_span() {
    let mut simu = Sim::new(5);
    let fabric = Fabric::new(CostModel::default());
    let server_node = fabric.add_node("server");
    let obs = Obs::new();
    let cfg = ServerConfig {
        // Verifier effectively asleep: the PUT below stays non-durable
        // until a reader forces persistence.
        verify_idle: sim::millis(100),
        obs: obs.clone(),
        ..ServerConfig::default()
    };
    let server = Server::format(&fabric, &server_node, small_layout(), cfg);
    let f2 = Arc::clone(&fabric);
    let obs2 = obs.clone();
    simu.spawn("main", move || {
        server.start(&f2);
        let cnode = f2.add_node("client");
        let c = Client::connect(
            &f2,
            &cnode,
            &server_node,
            server.desc(),
            ClientConfig {
                obs: obs2,
                ..ClientConfig::default()
            },
        )
        .unwrap();
        c.put(b"k", b"fresh-value").unwrap();
        let (v, outcome) = c.get_traced(b"k").unwrap();
        assert_eq!(v.as_deref(), Some(&b"fresh-value"[..]));
        assert_eq!(outcome, GetOutcome::Fallback);
        // Now durable: the second read must stay on the pure path.
        let (_, outcome2) = c.get_traced(b"k").unwrap();
        assert_eq!(outcome2, GetOutcome::Pure);
        server.shutdown();
    });
    simu.run().expect_ok();

    let fallbacks = obs.tracer.records_named("fallback_rpc");
    assert_eq!(fallbacks.len(), 1, "exactly one fallback span expected");
    assert_eq!(fallbacks[0].kind, RecordKind::Span);
    assert_eq!(fallbacks[0].sub, Subsystem::Client);
    // Both GETs started on the pure path; the PUT's phases are also spans.
    assert_eq!(obs.tracer.records_named("pure_read").len(), 2);
    assert_eq!(obs.tracer.records_named("rpc_alloc").len(), 1);
    assert_eq!(obs.tracer.records_named("rdma_write").len(), 1);
    // The fallback forced persistence server-side: a flush/drain span on
    // the pmem lane must exist.
    assert!(!obs.tracer.records_named("flush_drain").is_empty());
}

/// An allocation whose value never arrives must time out in the background
/// verifier — visible in the trace as an `invalidate` instant event on the
/// verifier lane, carrying the object offset.
#[test]
fn verifier_timeout_emits_invalidate_event() {
    let mut simu = Sim::new(17);
    let fabric = Fabric::new(CostModel::default());
    let server_node = fabric.add_node("server");
    let obs = Obs::new();
    let cfg = ServerConfig {
        verify_timeout: sim::micros(50),
        obs: obs.clone(),
        ..ServerConfig::default()
    };
    let server = Server::format(&fabric, &server_node, small_layout(), cfg);
    let f2 = Arc::clone(&fabric);
    simu.spawn("main", move || {
        let shared = server.start(&f2);
        // Issue the alloc RPC directly, then never write the value.
        let cnode = f2.add_node("client");
        let qp = f2.connect(&cnode, &server_node).unwrap();
        let req = efactory::protocol::Request::Put {
            key: b"abandoned".to_vec(),
            vlen: 64,
            crc: 0xBAD,
        };
        let resp = qp.rpc(req.encode()).unwrap();
        let efactory::protocol::Response::Put { obj_off, .. } =
            efactory::protocol::Response::decode(&resp).unwrap()
        else {
            panic!("expected put response");
        };
        sim::sleep(sim::millis(1)); // >> timeout
        let hdr = ObjHeader::read_from(&shared.pool, obj_off as usize);
        assert!(!hdr.has(flags::VALID), "must be invalidated");
        server.shutdown();
    });
    simu.run().expect_ok();

    let invalidates: Vec<_> = obs
        .tracer
        .records_named("invalidate")
        .into_iter()
        .filter(|r| r.sub == Subsystem::Verifier)
        .collect();
    assert_eq!(invalidates.len(), 1, "one verifier invalidation expected");
    assert_eq!(invalidates[0].kind, RecordKind::Instant);
    assert!(
        invalidates[0].args.iter().any(|(k, _)| *k == "off"),
        "invalidate event must carry the object offset"
    );
    // The verifier did scan (CRC spans exist) before giving up.
    assert!(!obs.tracer.records_named("crc_verify").is_empty());
}
