//! Unit tests driving the background verifier's `step` state machine
//! directly (no network, no handler): each `StepOutcome` variant has a
//! dedicated construction.

use std::sync::atomic::Ordering;
use std::sync::Arc;

use efactory::layout::{self, flags, ObjHeader, NIL};
use efactory::log::StoreLayout;
use efactory::server::{Server, ServerConfig};
use efactory::verifier::{step, StepOutcome};
use efactory_checksum::crc32c;
use efactory_rnic::{CostModel, Fabric};
use efactory_sim as sim;
use efactory_sim::Sim;

/// Stage an object the way the PUT handler would (header + key persisted),
/// with the value either present or missing.
fn stage(
    shared: &efactory::server::ServerShared,
    key: &[u8],
    value: &[u8],
    write_value: bool,
) -> usize {
    let size = layout::object_size(key.len(), value.len());
    let off = shared.logs[0].alloc(size).expect("alloc");
    let hdr = ObjHeader {
        klen: key.len() as u16,
        vlen: value.len() as u32,
        flags: flags::VALID,
        pre_ptr: NIL,
        next_ptr: NIL,
        crc: crc32c(value),
        seq: 1,
        alloc_time: sim::now(),
    };
    hdr.write_to(&shared.pool, off);
    shared.pool.write(off + hdr.key_off(), key);
    shared
        .pool
        .persist(off, layout::HDR_LEN + layout::pad8(key.len()));
    if write_value {
        shared.pool.write(off + hdr.value_off(), value);
    }
    off
}

fn in_sim(
    cfg: ServerConfig,
    body: impl FnOnce(Arc<efactory::server::ServerShared>) + Send + 'static,
) {
    let mut simu = Sim::new(71);
    let fabric = Fabric::new(CostModel::default());
    let node = fabric.add_node("server");
    let server = Server::format(&fabric, &node, StoreLayout::new(256, 1 << 20, true), cfg);
    let shared = Arc::clone(server.shared());
    // Note: the server is NOT started — no competing verifier process.
    simu.spawn("test", move || body(shared));
    simu.run().expect_ok();
}

#[test]
fn idle_when_cursor_reaches_head() {
    in_sim(ServerConfig::default(), |shared| {
        assert_eq!(step(&shared), StepOutcome::Idle);
    });
}

#[test]
fn persists_complete_objects_and_advances() {
    in_sim(ServerConfig::default(), |shared| {
        let off1 = stage(&shared, b"key-1", b"value-one", true);
        let off2 = stage(&shared, b"key-2", b"value-two", true);
        assert_eq!(step(&shared), StepOutcome::Persisted);
        let h1 = ObjHeader::read_from(&shared.pool, off1);
        assert!(h1.has(flags::DURABLE));
        assert!(shared.pool.is_persisted(off1, h1.object_size()));
        assert_eq!(step(&shared), StepOutcome::Persisted);
        assert!(ObjHeader::read_from(&shared.pool, off2).has(flags::DURABLE));
        assert_eq!(step(&shared), StepOutcome::Idle);
        assert_eq!(shared.stats.bg_verified.load(Ordering::Relaxed), 2);
    });
}

#[test]
fn waits_on_incomplete_object_within_timeout() {
    in_sim(ServerConfig::default(), |shared| {
        let off = stage(&shared, b"key", b"value-not-yet-written", false);
        assert_eq!(step(&shared), StepOutcome::Waiting);
        // Head-of-line: the cursor must NOT advance.
        assert_eq!(shared.cursor.load(Ordering::Relaxed) as usize, off);
        // The value lands (client RDMA write completes): next step persists.
        let hdr = ObjHeader::read_from(&shared.pool, off);
        shared
            .pool
            .write(off + hdr.value_off(), b"value-not-yet-written");
        assert_eq!(step(&shared), StepOutcome::Persisted);
    });
}

#[test]
fn invalidates_after_timeout_and_moves_on() {
    let cfg = ServerConfig {
        verify_timeout: sim::micros(10),
        ..ServerConfig::default()
    };
    in_sim(cfg, |shared| {
        let off_dead = stage(&shared, b"dead", b"never-arrives", false);
        let off_live = stage(&shared, b"live", b"arrives", true);
        assert_eq!(step(&shared), StepOutcome::Waiting);
        sim::sleep(sim::micros(20)); // exceed the timeout
        assert_eq!(step(&shared), StepOutcome::Invalidated);
        let h = ObjHeader::read_from(&shared.pool, off_dead);
        assert!(!h.has(flags::VALID), "timed-out object must be invalid");
        // The object behind the stuck head is now reachable.
        assert_eq!(step(&shared), StepOutcome::Persisted);
        assert!(ObjHeader::read_from(&shared.pool, off_live).has(flags::DURABLE));
        assert_eq!(shared.stats.bg_timeouts.load(Ordering::Relaxed), 1);
    });
}

#[test]
fn skips_objects_persisted_by_the_get_handler() {
    in_sim(ServerConfig::default(), |shared| {
        let off = stage(&shared, b"key", b"value", true);
        // Simulate the GET handler's on-demand persist.
        let hdr = ObjHeader::read_from(&shared.pool, off);
        shared.persist_object(off, &hdr);
        assert_eq!(step(&shared), StepOutcome::Skipped);
        assert_eq!(shared.stats.bg_verified.load(Ordering::Relaxed), 0);
    });
}

#[test]
fn tombstones_verify_trivially() {
    in_sim(ServerConfig::default(), |shared| {
        let off = stage(&shared, b"gone", b"", true);
        layout::update_flags(&shared.pool, off, flags::TOMBSTONE, 0);
        shared.pool.persist(off, 8);
        assert_eq!(step(&shared), StepOutcome::Persisted);
        assert!(ObjHeader::read_from(&shared.pool, off).has(flags::DURABLE));
    });
}

#[test]
fn corrupted_value_is_waiting_then_invalidated_not_persisted() {
    let cfg = ServerConfig {
        verify_timeout: sim::micros(5),
        ..ServerConfig::default()
    };
    in_sim(cfg, |shared| {
        let off = stage(&shared, b"key", b"good-value", true);
        // Corrupt one byte of the landed value (a torn DMA).
        let hdr = ObjHeader::read_from(&shared.pool, off);
        shared.pool.write(off + hdr.value_off(), b"God-value!");
        assert_eq!(step(&shared), StepOutcome::Waiting);
        sim::sleep(sim::micros(10));
        assert_eq!(step(&shared), StepOutcome::Invalidated);
        assert!(!ObjHeader::read_from(&shared.pool, off).has(flags::DURABLE));
    });
}
