//! End-to-end tests for the eFactory store on the simulated substrates:
//! client ↔ fabric ↔ server ↔ background verifier, with crash injection.

use std::sync::atomic::Ordering;
use std::sync::Arc;

use efactory::client::{Client, ClientConfig, GetOutcome};
use efactory::layout::{flags, ObjHeader};
use efactory::log::StoreLayout;
use efactory::recovery;
use efactory::server::{Server, ServerConfig};
use efactory_pmem::CrashSpec;
use efactory_rnic::{CostModel, Fabric, Node};
use efactory_sim as sim;
use efactory_sim::Sim;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Spin up a sim + fabric + formatted server, run `body` in an orchestrator
/// process (server already started, one client node pre-created), and drive
/// the sim to completion.
fn with_store<F>(cost: CostModel, layout: StoreLayout, cfg: ServerConfig, body: F)
where
    F: FnOnce(&Arc<Fabric>, &Node, &Server) + Send + 'static,
{
    let mut simu = Sim::new(7);
    let fabric = Fabric::new(cost);
    let server_node = fabric.add_node("server");
    let server = Server::format(&fabric, &server_node, layout, cfg);
    let f2 = Arc::clone(&fabric);
    simu.spawn("main", move || {
        server.start(&f2);
        body(&f2, &server_node, &server);
        server.shutdown();
    });
    simu.run().expect_ok();
}

fn small_layout() -> StoreLayout {
    StoreLayout::new(256, 1 << 20, true)
}

fn connect(fabric: &Arc<Fabric>, server_node: &Node, server: &Server) -> Client {
    let cnode = fabric.add_node("client");
    Client::connect(
        fabric,
        &cnode,
        server_node,
        server.desc(),
        ClientConfig::default(),
    )
    .unwrap()
}

#[test]
fn put_get_roundtrip() {
    with_store(
        CostModel::zero(),
        small_layout(),
        ServerConfig::default(),
        |f, sn, srv| {
            let c = connect(f, sn, srv);
            c.put(b"alpha", b"value-1").unwrap();
            assert_eq!(c.get(b"alpha").unwrap().as_deref(), Some(&b"value-1"[..]));
            assert_eq!(c.get(b"missing").unwrap(), None);
        },
    );
}

#[test]
fn overwrite_returns_latest() {
    with_store(
        CostModel::zero(),
        small_layout(),
        ServerConfig::default(),
        |f, sn, srv| {
            let c = connect(f, sn, srv);
            for i in 0..10u32 {
                let v = format!("version-{i}");
                c.put(b"key", v.as_bytes()).unwrap();
                assert_eq!(c.get(b"key").unwrap().as_deref(), Some(v.as_bytes()));
            }
        },
    );
}

#[test]
fn delete_hides_key_and_reput_revives_it() {
    with_store(
        CostModel::zero(),
        small_layout(),
        ServerConfig::default(),
        |f, sn, srv| {
            let c = connect(f, sn, srv);
            c.put(b"k", b"v").unwrap();
            c.del(b"k").unwrap();
            assert_eq!(c.get(b"k").unwrap(), None);
            c.put(b"k", b"v2").unwrap();
            assert_eq!(c.get(b"k").unwrap().as_deref(), Some(&b"v2"[..]));
        },
    );
}

#[test]
fn many_keys_many_sizes() {
    let layout = StoreLayout::new(2048, 8 << 20, true);
    with_store(
        CostModel::zero(),
        layout,
        ServerConfig::default(),
        |f, sn, srv| {
            let c = connect(f, sn, srv);
            let sizes = [0usize, 1, 7, 8, 63, 64, 255, 1024, 4096];
            for (i, &s) in sizes.iter().enumerate() {
                let key = format!("key-{i:04}");
                let val = vec![i as u8 + 1; s];
                c.put(key.as_bytes(), &val).unwrap();
            }
            for (i, &s) in sizes.iter().enumerate() {
                let key = format!("key-{i:04}");
                assert_eq!(
                    c.get(key.as_bytes()).unwrap().as_deref(),
                    Some(&vec![i as u8 + 1; s][..]),
                    "size {s}"
                );
            }
        },
    );
}

#[test]
fn read_immediately_after_put_falls_back_then_turns_pure() {
    // A GET fired right after a PUT beats the background verifier (slowed
    // here so the race is deterministic): the durability flag is clear,
    // forcing the RPC fallback (which persists on demand). A later GET
    // takes the pure path.
    let cfg = ServerConfig {
        verify_idle: sim::millis(10),
        ..ServerConfig::default()
    };
    with_store(CostModel::default(), small_layout(), cfg, |f, sn, srv| {
        let c = connect(f, sn, srv);
        c.put(b"hot", b"fresh-value").unwrap();
        let (v, outcome) = c.get_traced(b"hot").unwrap();
        assert_eq!(v.as_deref(), Some(&b"fresh-value"[..]));
        assert_eq!(outcome, GetOutcome::Fallback, "flag cannot be set yet");
        let (v2, outcome2) = c.get_traced(b"hot").unwrap();
        assert_eq!(v2.as_deref(), Some(&b"fresh-value"[..]));
        assert_eq!(outcome2, GetOutcome::Pure, "on-demand persist set the flag");
        assert_eq!(
            srv.shared()
                .stats
                .gets_persisted_on_demand
                .load(Ordering::Relaxed),
            1
        );
    });
}

#[test]
fn background_verifier_persists_without_reads() {
    with_store(
        CostModel::default(),
        small_layout(),
        ServerConfig::default(),
        |f, sn, srv| {
            let c = connect(f, sn, srv);
            c.put(b"idle", b"will-persist-in-background").unwrap();
            // Give the verifier time to scan.
            sim::sleep(sim::micros(100));
            let (v, outcome) = c.get_traced(b"idle").unwrap();
            assert_eq!(v.as_deref(), Some(&b"will-persist-in-background"[..]));
            assert_eq!(outcome, GetOutcome::Pure);
            assert_eq!(srv.shared().stats.bg_verified.load(Ordering::Relaxed), 1);
            assert_eq!(
                srv.shared().stats.gets.load(Ordering::Relaxed),
                0,
                "no RPC needed"
            );
        },
    );
}

#[test]
fn without_hybrid_read_every_get_is_rpc() {
    with_store(
        CostModel::default(),
        small_layout(),
        ServerConfig::default(),
        |f, sn, srv| {
            let cnode = f.add_node("client");
            let cfg = ClientConfig {
                hybrid_read: false,
                ..ClientConfig::default()
            };
            let c = Client::connect(f, &cnode, sn, srv.desc(), cfg).unwrap();
            c.put(b"k", b"v").unwrap();
            sim::sleep(sim::micros(100));
            let (_, outcome) = c.get_traced(b"k").unwrap();
            assert_eq!(outcome, GetOutcome::RpcOnly);
            assert_eq!(srv.shared().stats.gets.load(Ordering::Relaxed), 1);
        },
    );
}

#[test]
fn concurrent_writers_same_key_builds_version_chain() {
    let mut simu = Sim::new(3);
    let fabric = Fabric::new(CostModel::default());
    let server_node = fabric.add_node("server");
    let server = Server::format(
        &fabric,
        &server_node,
        small_layout(),
        ServerConfig::default(),
    );
    let f2 = Arc::clone(&fabric);
    simu.spawn("main", move || {
        let shared = server.start(&f2);
        let mut writers = Vec::new();
        for w in 0..4 {
            let f3 = Arc::clone(&f2);
            let sn = server_node.clone();
            let desc = server.desc();
            writers.push(sim::spawn(&format!("w{w}"), move || {
                let cn = f3.add_node(&format!("cn{w}"));
                let c = Client::connect(&f3, &cn, &sn, desc, ClientConfig::default()).unwrap();
                for i in 0..25 {
                    c.put(b"shared-key", format!("w{w}-v{i}").as_bytes())
                        .unwrap();
                }
            }));
        }
        for h in &writers {
            h.join();
        }
        sim::sleep(sim::micros(500)); // let the verifier drain
                                      // The chain head must be durable and hold one of the written values.
        let reader_node = f2.add_node("reader");
        let c = Client::connect(
            &f2,
            &reader_node,
            &server_node,
            server.desc(),
            ClientConfig::default(),
        )
        .unwrap();
        let (v, outcome) = c.get_traced(b"shared-key").unwrap();
        let v = v.expect("key must exist");
        let s = String::from_utf8(v).unwrap();
        assert!(
            s.starts_with('w') && s.contains("-v"),
            "unexpected value {s}"
        );
        assert_eq!(outcome, GetOutcome::Pure);
        // 100 versions were written; chain traversal must find them.
        assert_eq!(shared.stats.puts.load(Ordering::Relaxed), 100);
        server.shutdown();
    });
    simu.run().expect_ok();
}

/// Crash after an acked PUT whose value was never persisted: the store must
/// recover to the *previous* durable version (old-or-new atomicity).
#[test]
fn crash_before_background_persist_recovers_previous_version() {
    let mut simu = Sim::new(11);
    let fabric = Fabric::new(CostModel::default());
    let server_node = fabric.add_node("server");
    // Huge verifier idle so the background process never persists v2.
    let cfg = ServerConfig {
        verify_idle: sim::millis(100),
        ..ServerConfig::default()
    };
    let layout = small_layout();
    let server = Server::format(&fabric, &server_node, layout, cfg.clone());
    let pool = Arc::clone(&server.shared().pool);
    let f2 = Arc::clone(&fabric);
    simu.spawn("main", move || {
        server.start(&f2);
        let c = connect(&f2, &server_node, &server);
        c.put(b"key", b"version-one").unwrap();
        // Force v1 durable via the read path.
        assert!(c.get(b"key").unwrap().is_some());
        // v2: acked but never flushed (verifier is asleep, no read).
        c.put(b"key", b"version-TWO").unwrap();

        // Power failure: all dirty lines lost.
        let mut rng = StdRng::seed_from_u64(1);
        f2.crash_node(&server_node, CrashSpec::DropAll, &mut rng);
        sim::sleep(sim::millis(1));

        // Reboot + recover.
        f2.restart_node(&server_node);
        let (server2, report) = recovery::recover(&f2, &server_node, pool, layout, cfg);
        assert_eq!(
            report.keys_rolled_back, 1,
            "v2 must be discarded: {report:?}"
        );
        assert_eq!(report.keys_lost, 0);
        recovery::check_consistency(&server2.shared().pool, &layout);

        server2.start(&f2);
        let c2 = connect(&f2, &server_node, &server2);
        assert_eq!(
            c2.get(b"key").unwrap().as_deref(),
            Some(&b"version-one"[..]),
            "must roll back to the previous intact version"
        );
        // The store stays writable after recovery.
        c2.put(b"key", b"version-three").unwrap();
        assert_eq!(
            c2.get(b"key").unwrap().as_deref(),
            Some(&b"version-three"[..])
        );
        server2.shutdown();
    });
    simu.run().expect_ok();
}

/// eFactory's monotonic-read guarantee: a value observed by a GET survives
/// a crash, because the hybrid read never returns non-durable data.
#[test]
fn reads_are_monotonic_across_crashes() {
    let mut simu = Sim::new(13);
    let fabric = Fabric::new(CostModel::default());
    let server_node = fabric.add_node("server");
    let cfg = ServerConfig::default();
    let layout = small_layout();
    let server = Server::format(&fabric, &server_node, layout, cfg.clone());
    let pool = Arc::clone(&server.shared().pool);
    let f2 = Arc::clone(&fabric);
    simu.spawn("main", move || {
        server.start(&f2);
        let c = connect(&f2, &server_node, &server);
        c.put(b"m", b"observed-value").unwrap();
        // The client reads (and thus observes) the value.
        let seen = c.get(b"m").unwrap().unwrap();
        assert_eq!(&seen, b"observed-value");

        // Crash immediately, dropping every dirty line.
        let mut rng = StdRng::seed_from_u64(2);
        f2.crash_node(&server_node, CrashSpec::DropAll, &mut rng);
        f2.restart_node(&server_node);
        let (server2, report) = recovery::recover(&f2, &server_node, pool, layout, cfg);
        server2.start(&f2);
        let c2 = connect(&f2, &server_node, &server2);
        assert_eq!(
            c2.get(b"m").unwrap().as_deref(),
            Some(&b"observed-value"[..]),
            "a read value must never vanish (non-monotonic read): {report:?}"
        );
        server2.shutdown();
    });
    simu.run().expect_ok();
}

/// Crash with partial survival at word granularity: recovery must never
/// expose a torn value (CRC catches every partial state).
#[test]
fn torn_values_are_never_exposed_after_crash() {
    for seed in 0..10u64 {
        let mut simu = Sim::new(seed);
        let fabric = Fabric::new(CostModel::default());
        let server_node = fabric.add_node("server");
        let cfg = ServerConfig {
            verify_idle: sim::millis(100), // keep v2 unverified
            ..ServerConfig::default()
        };
        let layout = small_layout();
        let server = Server::format(&fabric, &server_node, layout, cfg.clone());
        let pool = Arc::clone(&server.shared().pool);
        let f2 = Arc::clone(&fabric);
        simu.spawn("main", move || {
            server.start(&f2);
            let c = connect(&f2, &server_node, &server);
            c.put(b"t", &vec![0xAA; 1024]).unwrap();
            assert!(c.get(b"t").unwrap().is_some()); // v1 durable
            c.put(b"t", &vec![0xBB; 1024]).unwrap(); // v2 acked, not durable

            let mut rng = StdRng::seed_from_u64(seed * 31 + 7);
            f2.crash_node(&server_node, CrashSpec::Words(0.5), &mut rng);
            f2.restart_node(&server_node);
            let (server2, _report) = recovery::recover(&f2, &server_node, pool, layout, cfg);
            recovery::check_consistency(&server2.shared().pool, &layout);
            server2.start(&f2);
            let c2 = connect(&f2, &server_node, &server2);
            let v = c2.get(b"t").unwrap().expect("v1 was durable");
            assert!(
                v == vec![0xAA; 1024] || v == vec![0xBB; 1024],
                "seed {seed}: recovered a torn value"
            );
            server2.shutdown();
        });
        simu.run().expect_ok();
    }
}

/// The verifier invalidates objects whose writes never arrive (client died
/// between the alloc RPC and the RDMA write).
#[test]
fn verifier_times_out_abandoned_allocations() {
    let mut simu = Sim::new(17);
    let fabric = Fabric::new(CostModel::default());
    let server_node = fabric.add_node("server");
    let cfg = ServerConfig {
        verify_timeout: sim::micros(50),
        ..ServerConfig::default()
    };
    let server = Server::format(&fabric, &server_node, small_layout(), cfg);
    let f2 = Arc::clone(&fabric);
    simu.spawn("main", move || {
        let shared = server.start(&f2);
        // Issue the alloc RPC directly, then never write the value.
        let cnode = f2.add_node("client");
        let qp = f2.connect(&cnode, &server_node).unwrap();
        let req = efactory::protocol::Request::Put {
            key: b"abandoned".to_vec(),
            vlen: 64,
            crc: 0xBAD,
        };
        let resp = qp.rpc(req.encode()).unwrap();
        let resp = efactory::protocol::Response::decode(&resp).unwrap();
        let efactory::protocol::Response::Put { obj_off, .. } = resp else {
            panic!("expected put response");
        };
        sim::sleep(sim::millis(1)); // >> timeout
        let hdr = ObjHeader::read_from(&shared.pool, obj_off as usize);
        assert!(!hdr.has(flags::VALID), "must be invalidated");
        assert_eq!(shared.stats.bg_timeouts.load(Ordering::Relaxed), 1);
        // And a GET sees nothing.
        let c = connect(&f2, &server_node, &server);
        assert_eq!(c.get(b"abandoned").unwrap(), None);
        server.shutdown();
    });
    simu.run().expect_ok();
}

/// A torn head must not hide the durable previous version from GETs even
/// before any crash (read-write race handling, §4.3.3 step 7).
#[test]
fn get_serves_previous_version_while_head_is_in_flight() {
    let mut simu = Sim::new(19);
    let fabric = Fabric::new(CostModel::default());
    let server_node = fabric.add_node("server");
    let cfg = ServerConfig {
        verify_idle: sim::millis(100),
        verify_timeout: sim::millis(50),
        ..ServerConfig::default()
    };
    let server = Server::format(&fabric, &server_node, small_layout(), cfg);
    let f2 = Arc::clone(&fabric);
    simu.spawn("main", move || {
        let shared = server.start(&f2);
        let c = connect(&f2, &server_node, &server);
        c.put(b"r", b"stable").unwrap();
        assert!(c.get(b"r").unwrap().is_some()); // make durable

        // Alloc a new version but never write it (simulating a client whose
        // RDMA write is still in flight / lost).
        let cnode = f2.add_node("laggard");
        let qp = f2.connect(&cnode, &server_node).unwrap();
        let req = efactory::protocol::Request::Put {
            key: b"r".to_vec(),
            vlen: 6,
            crc: 0x1234,
        };
        qp.rpc(req.encode()).unwrap();

        // A read within the timeout window must serve the previous version.
        let (v, outcome) = c.get_traced(b"r").unwrap();
        assert_eq!(v.as_deref(), Some(&b"stable"[..]));
        assert_eq!(outcome, GetOutcome::Fallback);
        assert!(
            shared
                .stats
                .gets_from_previous_version
                .load(Ordering::Relaxed)
                >= 1
        );
        server.shutdown();
    });
    simu.run().expect_ok();
}

/// Log cleaning reclaims space while the store keeps serving, and data
/// survives the pool swap.
#[test]
fn log_cleaning_under_load_preserves_data() {
    let mut simu = Sim::new(23);
    let fabric = Fabric::new(CostModel::default());
    let server_node = fabric.add_node("server");
    // Small pools so updates trigger cleaning quickly.
    let layout = StoreLayout::new(256, 96 * 1024, true);
    let cfg = ServerConfig {
        clean_threshold: 0.5,
        clean_poll: sim::micros(5),
        ..ServerConfig::default()
    };
    let server = Server::format(&fabric, &server_node, layout, cfg);
    let f2 = Arc::clone(&fabric);
    simu.spawn("main", move || {
        let shared = server.start(&f2);
        let c = connect(&f2, &server_node, &server);
        // 40 keys × ~600 B objects, updated repeatedly: ~24 KB per round,
        // pool fills after ~2 rounds and cleaning must kick in.
        for round in 0..16u32 {
            for k in 0..40u32 {
                let key = format!("key-{k:02}");
                let val = format!("round-{round:02}-{}", "x".repeat(512));
                c.put(key.as_bytes(), val.as_bytes()).unwrap();
            }
            sim::sleep(sim::micros(50));
        }
        sim::sleep(sim::millis(2)); // let cleaning finish
        assert!(
            shared.stats.cleanings.load(Ordering::Relaxed) >= 1,
            "cleaning never triggered"
        );
        for k in 0..40u32 {
            let key = format!("key-{k:02}");
            let v = c
                .get(key.as_bytes())
                .unwrap()
                .expect("key lost by cleaning");
            let s = String::from_utf8(v).unwrap();
            assert!(s.starts_with("round-15-"), "stale value {}", &s[..12]);
        }
        // Deleted keys must be reclaimed too.
        c.del(b"key-00").unwrap();
        assert_eq!(c.get(b"key-00").unwrap(), None);
        server.shutdown();
    });
    simu.run().expect_ok();
}

/// Clients pinned to RPC-only mode during cleaning still see consistent
/// data (the paper's cleaning/read protocol).
#[test]
fn reads_during_cleaning_use_rpc_and_stay_consistent() {
    let mut simu = Sim::new(29);
    let fabric = Fabric::new(CostModel::default());
    let server_node = fabric.add_node("server");
    let layout = StoreLayout::new(256, 128 * 1024, true);
    let cfg = ServerConfig {
        clean_threshold: 0.4,
        clean_poll: sim::micros(5),
        ..ServerConfig::default()
    };
    let server = Server::format(&fabric, &server_node, layout, cfg);
    let f2 = Arc::clone(&fabric);
    simu.spawn("main", move || {
        let shared = server.start(&f2);
        let desc = server.desc();
        let sn = server_node.clone();
        let f3 = Arc::clone(&f2);
        // A writer that churns the pool to force cleaning.
        let writer = sim::spawn("writer", move || {
            let cn = f3.add_node("wn");
            let c = Client::connect(&f3, &cn, &sn, desc, ClientConfig::default()).unwrap();
            for round in 0..20u32 {
                for k in 0..30u32 {
                    let key = format!("wkey-{k:02}");
                    c.put(
                        key.as_bytes(),
                        format!("r{round}-{}", "y".repeat(400)).as_bytes(),
                    )
                    .unwrap();
                }
            }
        });
        // A reader hammering GETs concurrently.
        let c = connect(&f2, &server_node, &server);
        let mut rpc_only_seen = false;
        for _ in 0..300 {
            if let (Some(v), outcome) = c.get_traced(b"wkey-07").unwrap() {
                let s = String::from_utf8(v).unwrap();
                assert!(s.starts_with('r'), "garbage value");
                if outcome == GetOutcome::RpcOnly {
                    rpc_only_seen = true;
                }
            }
            sim::sleep(sim::micros(3));
        }
        writer.join();
        sim::sleep(sim::millis(2));
        assert!(
            shared.stats.cleanings.load(Ordering::Relaxed) >= 1,
            "cleaning never ran"
        );
        assert!(rpc_only_seen, "reader never observed cleaning mode");
        server.shutdown();
    });
    simu.run().expect_ok();
}
