//! Plain-text table rendering for the figure-regeneration binaries.

/// A simple fixed-width table printer: first column left-aligned, the rest
/// right-aligned, widths fitted to content.
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Start a table with the given column headers.
    pub fn new<S: Into<String>>(header: Vec<S>) -> Table {
        Table {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (must match the header width).
    pub fn row<S: Into<String>>(&mut self, cells: Vec<S>) {
        let cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        self.rows.push(cells);
    }

    /// Render to a string.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for i in 0..cols {
                if i == 0 {
                    line.push_str(&format!("{:<w$}", cells[i], w = widths[i]));
                } else {
                    line.push_str(&format!("  {:>w$}", cells[i], w = widths[i]));
                }
            }
            line.push('\n');
            line
        };
        out.push_str(&fmt_row(&self.header, &widths));
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
        }
        out
    }

    /// Render to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

/// Format a megaops value.
pub fn fmt_mops(v: f64) -> String {
    format!("{v:.3}")
}

/// Format microseconds.
pub fn fmt_us(v: f64) -> String {
    format!("{v:.2}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(vec!["system", "mops"]);
        t.row(vec!["eFactory", "1.234"]);
        t.row(vec!["SAW", "0.5"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("system"));
        assert!(lines[2].starts_with("eFactory"));
        // Right alignment of the numeric column.
        assert!(lines[3].ends_with("0.5"));
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn rejects_ragged_rows() {
        let mut t = Table::new(vec!["a", "b"]);
        t.row(vec!["only-one"]);
    }
}
