//! Latency/throughput statistics for experiment runs.
//!
//! Small sample sets are summarized exactly (sort + nearest-rank). Above
//! [`STREAMING_THRESHOLD`] samples, summarization switches to the streaming
//! log-bucketed [`Histogram`] from `efactory-obs`: O(1) memory, ≤ ~1.6 %
//! relative quantile error, and no O(n log n) sort on the hot path. Both
//! paths use the same nearest-rank convention, and reported quantiles never
//! under-report the exact ones.

use efactory_obs::Histogram;
use efactory_sim::Nanos;

/// Sample count above which `from_samples` switches from exact
/// (sort-every-sample) summarization to the streaming histogram.
pub const STREAMING_THRESHOLD: usize = 100_000;

/// Summary of a latency sample set (virtual nanoseconds).
#[derive(Debug, Clone, Copy, Default, PartialEq, serde::Serialize)]
pub struct LatencyStats {
    /// Number of samples.
    pub count: u64,
    /// Arithmetic mean.
    pub mean_ns: f64,
    /// Median.
    pub p50_ns: Nanos,
    /// 99th percentile.
    pub p99_ns: Nanos,
    /// 99.9th percentile.
    pub p999_ns: Nanos,
    /// Maximum.
    pub max_ns: Nanos,
}

impl LatencyStats {
    /// Summarize `samples`: exact for small sets (sorted in place),
    /// streaming above [`STREAMING_THRESHOLD`].
    pub fn from_samples(samples: &mut [Nanos]) -> LatencyStats {
        if samples.is_empty() {
            return LatencyStats::default();
        }
        if samples.len() > STREAMING_THRESHOLD {
            let h = Histogram::new();
            for &s in samples.iter() {
                h.record(s);
            }
            return LatencyStats::from_histogram(&h);
        }
        samples.sort_unstable();
        let count = samples.len() as u64;
        let sum: u128 = samples.iter().map(|&s| s as u128).sum();
        LatencyStats {
            count,
            mean_ns: sum as f64 / count as f64,
            p50_ns: percentile(samples, 50.0),
            p99_ns: percentile(samples, 99.0),
            p999_ns: percentile(samples, 99.9),
            max_ns: samples.last().copied().unwrap_or(0),
        }
    }

    /// Summarize an already-populated streaming histogram (mean and max are
    /// exact; quantiles carry the histogram's ≤ ~1.6 % relative error).
    pub fn from_histogram(h: &Histogram) -> LatencyStats {
        LatencyStats {
            count: h.count(),
            mean_ns: h.mean(),
            p50_ns: h.p50(),
            p99_ns: h.p99(),
            p999_ns: h.p999(),
            max_ns: h.max(),
        }
    }

    /// Median in microseconds (table rendering).
    pub fn p50_us(&self) -> f64 {
        self.p50_ns as f64 / 1000.0
    }

    /// p99 in microseconds (table rendering).
    pub fn p99_us(&self) -> f64 {
        self.p99_ns as f64 / 1000.0
    }

    /// p99.9 in microseconds (table rendering).
    pub fn p999_us(&self) -> f64 {
        self.p999_ns as f64 / 1000.0
    }

    /// Mean in microseconds (table rendering).
    pub fn mean_us(&self) -> f64 {
        self.mean_ns / 1000.0
    }
}

/// Nearest-rank percentile of a **sorted** slice. An empty slice yields 0 —
/// total by design, so zero-op runs summarize to an explicit zero report
/// instead of aborting.
pub fn percentile(sorted: &[Nanos], p: f64) -> Nanos {
    assert!((0.0..=100.0).contains(&p));
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_samples_give_zeroes() {
        assert_eq!(LatencyStats::from_samples(&mut []), LatencyStats::default());
    }

    #[test]
    fn percentiles_of_known_distribution() {
        let mut v: Vec<Nanos> = (1..=100).collect();
        let s = LatencyStats::from_samples(&mut v);
        assert_eq!(s.count, 100);
        assert_eq!(s.p50_ns, 50);
        assert_eq!(s.p99_ns, 99);
        assert_eq!(s.p999_ns, 100);
        assert_eq!(s.max_ns, 100);
        assert!((s.mean_ns - 50.5).abs() < 1e-9);
    }

    #[test]
    fn percentile_handles_small_sets() {
        assert_eq!(percentile(&[7], 50.0), 7);
        assert_eq!(percentile(&[7], 99.0), 7);
        assert_eq!(percentile(&[1, 2], 99.0), 2);
        assert_eq!(percentile(&[], 50.0), 0, "empty set summarizes to zero");
    }

    #[test]
    fn unsorted_input_is_sorted_first() {
        let mut v = vec![30, 10, 20];
        let s = LatencyStats::from_samples(&mut v);
        assert_eq!(s.p50_ns, 20);
        assert_eq!(s.max_ns, 30);
    }

    #[test]
    fn streaming_switchover_stays_within_error_bound() {
        // Deterministic pseudo-random samples, > STREAMING_THRESHOLD of them.
        let n = STREAMING_THRESHOLD + 10_000;
        let mut x = 0x243f6a8885a308d3u64;
        let mut v: Vec<Nanos> = Vec::with_capacity(n);
        for _ in 0..n {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            v.push(1_000 + (x >> 33) % 2_000_000);
        }
        let streaming = LatencyStats::from_samples(&mut v.clone());
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(streaming.count, n as u64);
        assert_eq!(streaming.max_ns, *sorted.last().unwrap());
        for (approx, p) in [
            (streaming.p50_ns, 50.0),
            (streaming.p99_ns, 99.0),
            (streaming.p999_ns, 99.9),
        ] {
            let exact = percentile(&sorted, p);
            assert!(approx >= exact, "p{p}: streaming {approx} < exact {exact}");
            let err = (approx - exact) as f64 / exact as f64;
            assert!(err <= 0.02, "p{p}: error {err} above 2%");
        }
        let exact_mean = sorted.iter().map(|&s| s as u128).sum::<u128>() as f64 / n as f64;
        assert!((streaming.mean_ns - exact_mean).abs() < 1e-6);
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            // The streaming histogram path must track the exact path within
            // the documented 2 % bound for any sample set and quantile.
            #[test]
            fn histogram_summary_tracks_exact(
                samples in proptest::collection::vec(1u64..50_000_000, 50..500),
            ) {
                let h = Histogram::new();
                for &s in &samples {
                    h.record(s);
                }
                let streaming = LatencyStats::from_histogram(&h);
                let mut sorted = samples.clone();
                sorted.sort_unstable();
                for (approx, p) in [
                    (streaming.p50_ns, 50.0),
                    (streaming.p99_ns, 99.0),
                    (streaming.p999_ns, 99.9),
                ] {
                    let exact = percentile(&sorted, p);
                    prop_assert!(approx >= exact);
                    prop_assert!((approx - exact) as f64 <= exact as f64 * 0.02);
                }
                prop_assert_eq!(streaming.max_ns, *sorted.last().unwrap());
            }
        }
    }
}
