//! Latency/throughput statistics for experiment runs.

use efactory_sim::Nanos;

/// Summary of a latency sample set (virtual nanoseconds).
#[derive(Debug, Clone, Copy, Default, PartialEq, serde::Serialize)]
pub struct LatencyStats {
    /// Number of samples.
    pub count: u64,
    /// Arithmetic mean.
    pub mean_ns: f64,
    /// Median.
    pub p50_ns: Nanos,
    /// 99th percentile.
    pub p99_ns: Nanos,
    /// Maximum.
    pub max_ns: Nanos,
}

impl LatencyStats {
    /// Summarize `samples` (sorted in place).
    pub fn from_samples(samples: &mut [Nanos]) -> LatencyStats {
        if samples.is_empty() {
            return LatencyStats::default();
        }
        samples.sort_unstable();
        let count = samples.len() as u64;
        let sum: u128 = samples.iter().map(|&s| s as u128).sum();
        LatencyStats {
            count,
            mean_ns: sum as f64 / count as f64,
            p50_ns: percentile(samples, 50.0),
            p99_ns: percentile(samples, 99.0),
            max_ns: *samples.last().expect("non-empty"),
        }
    }

    /// Median in microseconds (table rendering).
    pub fn p50_us(&self) -> f64 {
        self.p50_ns as f64 / 1000.0
    }

    /// p99 in microseconds (table rendering).
    pub fn p99_us(&self) -> f64 {
        self.p99_ns as f64 / 1000.0
    }

    /// Mean in microseconds (table rendering).
    pub fn mean_us(&self) -> f64 {
        self.mean_ns / 1000.0
    }
}

/// Nearest-rank percentile of a **sorted** slice.
pub fn percentile(sorted: &[Nanos], p: f64) -> Nanos {
    assert!(!sorted.is_empty());
    assert!((0.0..=100.0).contains(&p));
    let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_samples_give_zeroes() {
        assert_eq!(LatencyStats::from_samples(&mut []), LatencyStats::default());
    }

    #[test]
    fn percentiles_of_known_distribution() {
        let mut v: Vec<Nanos> = (1..=100).collect();
        let s = LatencyStats::from_samples(&mut v);
        assert_eq!(s.count, 100);
        assert_eq!(s.p50_ns, 50);
        assert_eq!(s.p99_ns, 99);
        assert_eq!(s.max_ns, 100);
        assert!((s.mean_ns - 50.5).abs() < 1e-9);
    }

    #[test]
    fn percentile_handles_small_sets() {
        assert_eq!(percentile(&[7], 50.0), 7);
        assert_eq!(percentile(&[7], 99.0), 7);
        assert_eq!(percentile(&[1, 2], 99.0), 2);
    }

    #[test]
    fn unsorted_input_is_sorted_first() {
        let mut v = vec![30, 10, 20];
        let s = LatencyStats::from_samples(&mut v);
        assert_eq!(s.p50_ns, 20);
        assert_eq!(s.max_ns, 30);
    }
}
