//! # efactory-harness — the experiment driver
//!
//! Reproduces the paper's evaluation methodology (§5): a server plus N
//! closed-loop clients "issuing operations as fast as possible" over YCSB
//! workloads, measured in the simulator's virtual time so results are
//! deterministic and independent of the host machine.
//!
//! * [`cluster`] — build any of the six systems, preload records, run the
//!   workload, collect latency histograms and throughput.
//! * [`stats`] — percentile/mean summaries (exact below a threshold,
//!   streaming log-bucketed histogram above it).
//! * [`table`] — fixed-width table rendering for the per-figure binaries in
//!   `efactory-bench`.
//! * [`report`] — versioned JSON run reports (`--json <path>` on every
//!   bench binary).

pub mod checker;
pub mod cluster;
pub mod report;
pub mod stats;
pub mod table;

pub use cluster::{
    run, run_observed, run_with_cost, Cleaning, ExperimentSpec, RunResult, SystemKind,
};
pub use report::{json_path_from_args, Report};
pub use stats::LatencyStats;
pub use table::Table;

#[cfg(test)]
mod tests {
    use super::*;
    use efactory_ycsb::Mix;

    fn tiny(system: SystemKind, mix: Mix) -> ExperimentSpec {
        ExperimentSpec {
            system,
            mix,
            value_len: 128,
            key_len: 16,
            clients: 2,
            ops_per_client: 60,
            record_count: 64,
            seed: 7,
            cleaning: Cleaning::Disabled,
            force_clean: false,
            shards: 1,
            doorbell_batch: 0,
            replicas: 0,
            fault_at: None,
            fault_plan: None,
            scrub: false,
            window: 1,
            loc_cache: false,
            snap_readers: 0,
            nodes: 1,
            migrate_at: None,
            exec: None,
        }
    }

    #[test]
    fn every_system_completes_a_mixed_workload() {
        for system in SystemKind::comparison() {
            let r = run(&tiny(system, Mix::A));
            assert_eq!(r.total_ops, 120, "{system:?}");
            assert!(r.mops > 0.0, "{system:?}");
            assert!(r.get.count + r.put.count == 120, "{system:?}");
            assert!(r.elapsed_ns > 0, "{system:?}");
        }
    }

    #[test]
    fn read_only_workload_measures_only_gets() {
        let r = run(&tiny(SystemKind::EFactory, Mix::C));
        assert_eq!(r.put.count, 0);
        assert_eq!(r.get.count, 120);
        // With a drained verifier, read-only traffic should never need the
        // server (pure one-sided path).
        assert_eq!(r.server_rpc_gets, 0, "unexpected RPC fallbacks");
    }

    #[test]
    fn efactory_no_hr_routes_reads_through_server() {
        let r = run(&tiny(SystemKind::EFactoryNoHr, Mix::C));
        assert_eq!(r.server_rpc_gets, 120);
    }

    #[test]
    fn runs_are_deterministic() {
        let a = run(&tiny(SystemKind::EFactory, Mix::B));
        let b = run(&tiny(SystemKind::EFactory, Mix::B));
        assert_eq!(a.elapsed_ns, b.elapsed_ns);
        assert_eq!(a.get.p50_ns, b.get.p50_ns);
        assert_eq!(a.put.p99_ns, b.put.p99_ns);
        assert_eq!(a.mops, b.mops);
    }

    #[test]
    fn update_only_exercises_puts_for_every_system() {
        for system in [SystemKind::CaNoper, SystemKind::Rpc, SystemKind::Saw] {
            let r = run(&tiny(system, Mix::UpdateOnly));
            assert_eq!(r.get.count, 0, "{system:?}");
            assert_eq!(r.put.count, 120, "{system:?}");
        }
    }

    fn counter(r: &RunResult, name: &str) -> u64 {
        r.counters
            .iter()
            .filter(|(n, _)| n == name || n.ends_with(&format!(".{name}")))
            .map(|(_, v)| v)
            .sum()
    }

    #[test]
    fn txn_only_mix_commits_every_transaction() {
        let r = run(&tiny(SystemKind::EFactory, Mix::TxnOnly));
        // 2 clients × 60 txns × 4 keys each: one latency sample per key.
        assert_eq!(r.put.count, 480);
        assert_eq!(r.get.count, 0);
        assert_eq!(counter(&r, "client.txn.commits"), 120);
        assert_eq!(counter(&r, "server.txn.commits"), 120);
        assert_eq!(counter(&r, "server.txn.aborts"), 0);
    }

    #[test]
    fn ycsb_t_mix_runs_all_three_op_classes() {
        let r = run(&tiny(SystemKind::EFactory, Mix::T));
        assert!(counter(&r, "client.txn.commits") > 0);
        assert!(counter(&r, "client.txn.snap_captures") > 0);
        assert!(counter(&r, "client.txn.snap_gets") > 0);
        assert!(r.get.count > 0 && r.put.count > 0);
    }

    #[test]
    fn txn_runs_are_deterministic() {
        let a = run(&tiny(SystemKind::EFactory, Mix::T));
        let b = run(&tiny(SystemKind::EFactory, Mix::T));
        assert_eq!(a.elapsed_ns, b.elapsed_ns);
        assert_eq!(a.counters, b.counters);
    }

    #[test]
    fn txn_mix_composes_with_shards_and_windows() {
        let mut sharded = tiny(SystemKind::EFactory, Mix::TxnOnly);
        sharded.shards = 4;
        let r = run(&sharded);
        assert_eq!(r.put.count, 480);
        assert_eq!(counter(&r, "client.txn.commits"), 120);

        let mut windowed = tiny(SystemKind::EFactory, Mix::TxnOnly);
        windowed.window = 8;
        let r = run(&windowed);
        assert_eq!(r.put.count, 480);
        assert_eq!(counter(&r, "client.txn.commits"), 120);
    }

    #[test]
    fn snapshot_readers_ride_along_with_writers() {
        let mut s = tiny(SystemKind::EFactory, Mix::UpdateOnly);
        s.snap_readers = 2;
        let r = run(&s);
        assert_eq!(r.put.count, 120, "writer workload must be unaffected");
        assert!(counter(&r, "client.txn.snap_captures") > 0);
        assert!(counter(&r, "client.txn.snap_gets") > 0);
    }

    #[test]
    fn cleaning_mode_triggers_cleanings() {
        let spec = ExperimentSpec {
            system: SystemKind::EFactory,
            mix: Mix::UpdateOnly,
            value_len: 512,
            key_len: 16,
            clients: 2,
            ops_per_client: 200,
            record_count: 32,
            seed: 7,
            // ~232 KB of writes through 64 KB pools: several cleanings.
            cleaning: Cleaning::Enabled {
                threshold: 0.5,
                pool_len: 64 * 1024,
            },
            force_clean: false,
            shards: 1,
            doorbell_batch: 0,
            replicas: 0,
            fault_at: None,
            fault_plan: None,
            scrub: false,
            window: 1,
            loc_cache: false,
            snap_readers: 0,
            nodes: 1,
            migrate_at: None,
            exec: None,
        };
        let r = run(&spec);
        assert!(r.cleanings >= 1, "expected cleaning, got {r:?}");
        assert_eq!(r.total_ops, 400);
    }
}
