//! The experiment driver: build a cluster for any of the paper's six
//! systems inside one deterministic simulation, run a YCSB workload with N
//! closed-loop clients, and report latency/throughput in virtual time.

use std::sync::atomic::Ordering;
use std::sync::{Arc, Mutex};

use efactory::client::{Client, ClientConfig, RemoteKv};
use efactory::log::StoreLayout;
use efactory::pipeline::{OpCompletion, OpKind, PipelineConfig, PipelinedClient};
use efactory::server::{Server, ServerConfig};
use efactory::TxnKv;
use efactory_baselines::{
    CaNoperClient, CaNoperServer, ErdaClient, ErdaServer, ForcaClient, ForcaServer, ImmClient,
    ImmServer, RpcClient, RpcServer, SawClient, SawServer,
};
use efactory_obs::{Breakdown, FoldConfig, Obs, Subsystem};
use efactory_pmem::PmemPool;
use efactory_rnic::{CostModel, Fabric, FaultPlan, Node};
use efactory_sim as sim;
use efactory_sim::{Nanos, Sim};
use efactory_ycsb::{make_value, Mix, Op, OpStream, WorkloadConfig};

use crate::stats::LatencyStats;

/// The systems under comparison (paper §5.3 + the factor-analysis variant).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize)]
pub enum SystemKind {
    /// The paper's contribution.
    EFactory,
    /// eFactory with the hybrid read disabled (always RPC+RDMA read).
    EFactoryNoHr,
    /// Send-after-write.
    Saw,
    /// write_with_imm.
    Imm,
    /// Erda (client-side CRC).
    Erda,
    /// Forca (server-side CRC on reads).
    Forca,
    /// Client-active without persistence (Figure 1 baseline).
    CaNoper,
    /// Plain RPC store (Figure 1 baseline).
    Rpc,
}

impl SystemKind {
    /// Label used in tables.
    pub fn label(self) -> &'static str {
        match self {
            SystemKind::EFactory => "eFactory",
            SystemKind::EFactoryNoHr => "eFactory w/o hr",
            SystemKind::Saw => "SAW",
            SystemKind::Imm => "IMM",
            SystemKind::Erda => "Erda",
            SystemKind::Forca => "Forca",
            SystemKind::CaNoper => "CA w/o persistence",
            SystemKind::Rpc => "RPC",
        }
    }

    /// The six systems of Figures 9/10, in the paper's legend order.
    pub fn comparison() -> [SystemKind; 6] {
        [
            SystemKind::EFactory,
            SystemKind::EFactoryNoHr,
            SystemKind::Saw,
            SystemKind::Imm,
            SystemKind::Erda,
            SystemKind::Forca,
        ]
    }
}

/// Log-cleaning configuration for eFactory runs.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize)]
pub enum Cleaning {
    /// Single pool sized for the whole workload; no cleaner process.
    Disabled,
    /// Dual pools of `pool_len` bytes each; clean at `threshold` fill.
    Enabled {
        /// Fill fraction that triggers cleaning.
        threshold: f64,
        /// Per-pool capacity in bytes.
        pool_len: usize,
    },
}

/// One experiment configuration.
#[derive(Debug, Clone)]
pub struct ExperimentSpec {
    /// System under test.
    pub system: SystemKind,
    /// Operation mix.
    pub mix: Mix,
    /// Value size in bytes.
    pub value_len: usize,
    /// Key size in bytes (the paper uses 32).
    pub key_len: usize,
    /// Concurrent closed-loop clients.
    pub clients: usize,
    /// Measured operations per client.
    pub ops_per_client: usize,
    /// Distinct keys (preloaded before measurement).
    pub record_count: u64,
    /// Deterministic seed.
    pub seed: u64,
    /// Cleaning mode (eFactory only; baselines never clean).
    pub cleaning: Cleaning,
    /// Force one cleaning pass right as measurement starts (Figure 11:
    /// latency *during* cleaning). Requires `Cleaning::Enabled`.
    pub force_clean: bool,
    /// Shard count (eFactory only; baselines require 1). With more than
    /// one shard the key space is hash-partitioned across independent
    /// servers, each on its own node with its own verifier and cleaner.
    pub shards: usize,
    /// Doorbell batch length for recv-ring refills and verifier flush
    /// fences (eFactory only; 0 = flat per-message charging).
    pub doorbell_batch: usize,
    /// Backup replicas per server (eFactory only; 0 = unreplicated, 1 =
    /// primary–backup mirroring with one backup node per shard). Composes
    /// with `Cleaning::Enabled`: the backup indexes mirrored objects by
    /// content, so relocation is transparent to it.
    pub replicas: usize,
    /// Fault injection: power-fail every shard's primary this many virtual
    /// nanoseconds after the measurement window opens. Requires
    /// `replicas > 0`; clients ride through via transparent failover.
    pub fault_at: Option<Nanos>,
    /// Fault injection: a lossy-fabric plan installed as the default for
    /// every link (message drop/duplicate/delay — see
    /// [`efactory_rnic::FaultPlan`]). Clients ride through via RPC
    /// deadlines + idempotent retry; the stalls are part of the measured
    /// latency. `None` = perfect fabric.
    pub fault_plan: Option<FaultPlan>,
    /// Run the background CRC scrubber on every eFactory server
    /// (repairs/quarantines bit-rotted objects — see [`efactory::scrub`]).
    pub scrub: bool,
    /// Pipeline window per client: each client keeps up to this many
    /// operations in flight through [`efactory::PipelinedClient`] (one QP
    /// per slot, per-key hazards, doorbell-batched send posts). `1` (the
    /// default) drives the plain serial client, op for op identical to the
    /// pre-pipeline harness. Values above 1 require eFactory with
    /// `shards == 1` and `replicas == 0`.
    pub window: usize,
    /// Enable the client-side location cache (key → object offset), so
    /// repeat GETs skip the bucket-probe RDMA read (eFactory only).
    pub loc_cache: bool,
    /// Background snapshot-reader processes running for the whole
    /// measurement window: each captures an MVCC snapshot, reads a handful
    /// of keys under it, and repeats until the workload clients finish.
    /// Used to measure snapshot/writer interference (eFactory only). With
    /// `Cleaning::Enabled` a pool swap expires open snapshots; readers
    /// re-capture on `Status::Expired`.
    pub snap_readers: usize,
    /// Data nodes hosting the shards. `1` (the default) runs the legacy
    /// single-machine topologies; above 1 the run builds an
    /// [`efactory::cluster::Cluster`] — shards placed round-robin across
    /// nodes, a 3-replica metadata service, and cluster-aware clients
    /// that retarget on placement changes. Requires eFactory with
    /// `replicas == 0` and `window == 1`.
    pub nodes: usize,
    /// Live-migrate shard 0 to the next node (`(owner + 1) % nodes`)
    /// this many virtual nanoseconds after the measurement window opens,
    /// while the measured workload keeps flowing. Requires `nodes > 1`.
    pub migrate_at: Option<Nanos>,
    /// Simulation executor override (`None` = the process default, i.e.
    /// `EF_SIM_EXEC` or fibers). Used by the equivalence tests and the
    /// `sim_throughput` bench to pin a backend per run. Deliberately
    /// excluded from report params: both backends produce byte-identical
    /// reports, and stamping the executor would break that check.
    pub exec: Option<efactory_sim::ExecModel>,
}

/// Keys per multi-key transaction (and per snapshot read) in the
/// transactional mixes — the YCSB-T write-set width.
pub const TXN_KEYS: usize = 4;

/// A workload client that serves both the plain KV surface and the
/// transactional/snapshot surface. Implemented by every eFactory client
/// flavor (single, sharded, replicated); baselines have no equivalent.
pub trait TxnRemote: RemoteKv + TxnKv {}
impl<T: RemoteKv + TxnKv> TxnRemote for T {}

impl ExperimentSpec {
    /// A paper-flavored spec: 32-byte keys, 4 K records, 8 clients.
    pub fn paper(system: SystemKind, mix: Mix, value_len: usize) -> ExperimentSpec {
        ExperimentSpec {
            system,
            mix,
            value_len,
            key_len: 32,
            clients: 8,
            ops_per_client: 2_000,
            record_count: 4_096,
            seed: 42,
            cleaning: Cleaning::Disabled,
            force_clean: false,
            shards: 1,
            doorbell_batch: 0,
            replicas: 0,
            fault_at: None,
            fault_plan: None,
            scrub: false,
            window: 1,
            loc_cache: false,
            snap_readers: 0,
            nodes: 1,
            migrate_at: None,
            exec: None,
        }
    }
}

/// What a run produced.
#[derive(Debug, Clone, serde::Serialize)]
pub struct RunResult {
    /// System label.
    pub system: &'static str,
    /// Measured operations (across all clients).
    pub total_ops: u64,
    /// Virtual time of the measurement window.
    pub elapsed_ns: Nanos,
    /// Throughput in million operations per virtual second.
    pub mops: f64,
    /// GET latencies.
    pub get: LatencyStats,
    /// PUT latencies.
    pub put: LatencyStats,
    /// All-op latencies (Figure 11 plots the combined average).
    pub all: LatencyStats,
    /// Server-side RPC GETs (eFactory: the fallback count).
    pub server_rpc_gets: u64,
    /// Objects persisted by the background verifier (eFactory).
    pub bg_verified: u64,
    /// Log cleanings completed (eFactory).
    pub cleanings: u64,
    /// Seed the run was driven by (determinism provenance).
    pub seed: u64,
    /// End-of-run metric registry snapshot, sorted by name
    /// (`server.*`, `pmem.*`, `fabric.*`).
    pub counters: Vec<(String, u64)>,
    /// Per-op critical-path breakdown folded from the trace over the
    /// measurement window (None when the trace captured no attributed
    /// ops — e.g. baseline systems that don't emit `"op"` root spans).
    /// Serialized separately by the report writer, not via serde.
    pub breakdown: Option<Breakdown>,
}

#[derive(Default)]
struct Collected {
    get: Vec<Nanos>,
    put: Vec<Nanos>,
    end: Nanos,
}

/// Connection info handed to clients: a single store or a shard set.
#[derive(Clone)]
enum AnyDesc {
    Single(efactory::server::StoreDesc),
    Sharded(efactory::shard::ShardedDesc),
    Replicated(Vec<efactory::repl::ReplicatedDesc>),
    Cluster {
        handle: Arc<efactory::cluster::ClusterHandle>,
        meta_nodes: Vec<Node>,
        stats: Arc<efactory::cluster::ClusterStats>,
    },
}

// One AnyServer exists per run and lives behind an Arc; the size gap from
// the cluster variant's seat tables is irrelevant.
#[allow(clippy::large_enum_variant)]
enum AnyServer {
    Ef(Server),
    EfSharded(efactory::shard::ShardedServer),
    EfRepl(efactory::repl::ReplicatedCluster),
    EfCluster(efactory::cluster::Cluster),
    Saw(SawServer),
    Imm(ImmServer),
    Erda(ErdaServer),
    Forca(ForcaServer),
    CaNoper(CaNoperServer),
    Rpc(RpcServer),
}

impl AnyServer {
    fn desc(&self) -> AnyDesc {
        match self {
            AnyServer::Ef(s) => AnyDesc::Single(s.desc()),
            AnyServer::EfSharded(s) => AnyDesc::Sharded(s.desc()),
            AnyServer::EfRepl(s) => AnyDesc::Replicated(s.descs()),
            AnyServer::EfCluster(c) => AnyDesc::Cluster {
                handle: Arc::clone(c.handle()),
                meta_nodes: c.meta_nodes().to_vec(),
                stats: Arc::clone(c.stats()),
            },
            AnyServer::Saw(s) => AnyDesc::Single(s.desc()),
            AnyServer::Imm(s) => AnyDesc::Single(s.desc()),
            AnyServer::Erda(s) => AnyDesc::Single(s.desc()),
            AnyServer::Forca(s) => AnyDesc::Single(s.desc()),
            AnyServer::CaNoper(s) => AnyDesc::Single(s.desc()),
            AnyServer::Rpc(s) => AnyDesc::Single(s.desc()),
        }
    }

    fn start(&self, fabric: &Arc<Fabric>) {
        match self {
            AnyServer::Ef(s) => {
                s.start(fabric);
            }
            AnyServer::EfSharded(s) => s.start(fabric),
            AnyServer::EfRepl(s) => s.start(fabric),
            AnyServer::EfCluster(c) => c.start(),
            AnyServer::Saw(s) => s.start(fabric),
            AnyServer::Imm(s) => s.start(fabric),
            AnyServer::Erda(s) => s.start(fabric),
            AnyServer::Forca(s) => s.start(fabric),
            AnyServer::CaNoper(s) => s.start(fabric),
            AnyServer::Rpc(s) => s.start(fabric),
        }
    }

    fn shutdown(&self) {
        match self {
            AnyServer::Ef(s) => s.shutdown(),
            AnyServer::EfSharded(s) => s.shutdown(),
            AnyServer::EfRepl(s) => s.shutdown(),
            AnyServer::EfCluster(c) => c.shutdown(),
            AnyServer::Saw(s) => s.shutdown(),
            AnyServer::Imm(s) => s.shutdown(),
            AnyServer::Erda(s) => s.shutdown(),
            AnyServer::Forca(s) => s.shutdown(),
            AnyServer::CaNoper(s) => s.shutdown(),
            AnyServer::Rpc(s) => s.shutdown(),
        }
    }

    /// Sum a server counter across shards (a single server is one shard).
    fn stat_sum(
        &self,
        pick: impl Fn(&efactory::server::ServerStats) -> &efactory_obs::Counter,
    ) -> u64 {
        match self {
            AnyServer::EfSharded(s) => s.stat_sum(pick),
            AnyServer::EfRepl(s) => s.stat_sum(pick),
            AnyServer::EfCluster(c) => c.stat_sum(pick),
            other => pick(other.single_stats()).get(),
        }
    }

    fn single_stats(&self) -> &efactory::server::ServerStats {
        match self {
            AnyServer::Ef(s) => &s.shared().stats,
            AnyServer::EfSharded(_) | AnyServer::EfRepl(_) | AnyServer::EfCluster(_) => {
                unreachable!("multi-server stats go through stat_sum")
            }
            AnyServer::Saw(s) => &s.base().stats,
            AnyServer::Imm(s) => &s.base().stats,
            AnyServer::Erda(s) => &s.base().stats,
            AnyServer::Forca(s) => &s.base().stats,
            AnyServer::CaNoper(s) => &s.base().stats,
            AnyServer::Rpc(s) => &s.base().stats,
        }
    }

    /// Attach server + pool counters (per-shard prefixed for a sharded
    /// store) and the pmem tracer to the run's observability context.
    /// eFactory servers register their server counters at construction
    /// through `cfg.obs`; baselines share the same `ServerStats` type and
    /// attach here.
    fn attach_obs(&self, obs: &Obs) {
        match self {
            AnyServer::Ef(s) => {
                s.shared().pool.stats().register(&obs.registry);
                s.shared().pool.set_tracer(obs.tracer.clone());
            }
            AnyServer::EfSharded(s) => {
                for (i, shared) in s.shared_all().into_iter().enumerate() {
                    let prefix = if s.shards() > 1 {
                        format!("shard{i}.")
                    } else {
                        String::new()
                    };
                    shared
                        .pool
                        .stats()
                        .register_prefixed(&obs.registry, &prefix);
                    shared.pool.set_tracer(obs.tracer.clone());
                }
            }
            AnyServer::EfRepl(s) => {
                for i in 0..s.shards() {
                    let prefix = if s.shards() > 1 {
                        format!("shard{i}.")
                    } else {
                        String::new()
                    };
                    let srv = s.server(i);
                    let primary = &srv.shared().pool;
                    primary.stats().register_prefixed(&obs.registry, &prefix);
                    primary.set_tracer(obs.tracer.clone());
                    let backup = srv.backup_pool();
                    backup
                        .stats()
                        .register_prefixed(&obs.registry, &format!("{prefix}backup."));
                    backup.set_tracer(obs.tracer.clone());
                }
            }
            AnyServer::EfCluster(c) => {
                for g in 0..c.handle().shards() {
                    let owner = c.owner_of(g);
                    let pool = c.shard_pool(g);
                    pool.stats().register_prefixed(
                        &obs.registry,
                        &format!("{}.", efactory::cluster::Cluster::seat_name(owner, g)),
                    );
                    pool.set_tracer(obs.tracer.clone());
                }
            }
            other => {
                other.single_stats().register(&obs.registry);
                other.single_pool().stats().register(&obs.registry);
                other.single_pool().set_tracer(obs.tracer.clone());
            }
        }
    }

    fn single_pool(&self) -> &Arc<PmemPool> {
        match self {
            AnyServer::Ef(s) => &s.shared().pool,
            AnyServer::EfSharded(_) | AnyServer::EfRepl(_) | AnyServer::EfCluster(_) => {
                unreachable!("multi-server pools go through attach_obs")
            }
            AnyServer::Saw(s) => &s.base().pool,
            AnyServer::Imm(s) => &s.base().pool,
            AnyServer::Erda(s) => &s.base().pool,
            AnyServer::Forca(s) => &s.base().pool,
            AnyServer::CaNoper(s) => &s.base().pool,
            AnyServer::Rpc(s) => &s.base().pool,
        }
    }
}

fn build_server(
    fabric: &Arc<Fabric>,
    node: &Node,
    spec: &ExperimentSpec,
    obs: &Obs,
    cfg_tweak: Option<&(dyn Fn(&mut ServerConfig) + Send + Sync)>,
) -> AnyServer {
    // Size the store to hold preload + every measured PUT with slack. A
    // transactional write op stages `TXN_KEYS` objects plus one (smaller)
    // commit record, so count it as `TXN_KEYS + 1` puts.
    let write_frac = (1.0 - spec.mix.read_fraction() - spec.mix.snap_fraction()).max(0.0);
    let puts_per_write = if spec.mix.transactional() {
        (TXN_KEYS + 1) as f64
    } else {
        1.0
    };
    let total_puts = ((spec.clients * spec.ops_per_client) as f64 * write_frac * puts_per_write)
        .ceil() as usize
        + 16;
    if spec.mix.transactional() || spec.snap_readers > 0 {
        assert!(
            matches!(spec.system, SystemKind::EFactory | SystemKind::EFactoryNoHr),
            "transactional/snapshot workloads require eFactory"
        );
    }
    let sized = StoreLayout::for_workload(
        spec.record_count as usize,
        total_puts,
        spec.key_len,
        spec.value_len,
        1.3,
        false,
    );
    assert!(spec.shards >= 1, "a store has at least one shard");
    match spec.system {
        SystemKind::EFactory | SystemKind::EFactoryNoHr => {
            let (layout, mut cfg) = match spec.cleaning {
                Cleaning::Disabled => (
                    sized,
                    ServerConfig {
                        clean_enabled: false,
                        ..ServerConfig::default()
                    },
                ),
                Cleaning::Enabled {
                    threshold,
                    pool_len,
                } => (
                    StoreLayout::new((spec.record_count as usize * 4).max(1024), pool_len, true),
                    ServerConfig {
                        clean_enabled: true,
                        clean_threshold: threshold,
                        ..ServerConfig::default()
                    },
                ),
            };
            cfg.obs = obs.clone();
            cfg.doorbell_batch = spec.doorbell_batch;
            cfg.scrub_enabled = spec.scrub;
            if let Some(tweak) = cfg_tweak {
                tweak(&mut cfg);
            }
            if spec.replicas > 0 {
                assert_eq!(
                    spec.replicas, 1,
                    "primary–backup replication supports exactly one backup per shard"
                );
                return AnyServer::EfRepl(efactory::repl::ReplicatedCluster::format(
                    fabric,
                    "server",
                    layout,
                    cfg,
                    spec.shards,
                ));
            }
            if spec.nodes > 1 {
                assert_eq!(spec.window, 1, "multi-node runs use the serial client");
                // The fabric the cluster lives on is the caller's; the
                // `node` arg ("server") stays unused in this topology.
                let ccfg =
                    efactory::cluster::ClusterConfig::new(spec.nodes, spec.shards, layout, cfg);
                return AnyServer::EfCluster(efactory::cluster::Cluster::format(fabric, ccfg));
            }
            if spec.shards > 1 {
                // Each shard keeps the full-workload layout: the router
                // spreads keys, but Zipf skew makes the hottest shard's
                // share unpredictable, and simulated bytes are cheap.
                AnyServer::EfSharded(efactory::shard::ShardedServer::format(
                    fabric,
                    "server",
                    layout,
                    cfg,
                    spec.shards,
                ))
            } else {
                AnyServer::Ef(Server::format(fabric, node, layout, cfg))
            }
        }
        other => {
            assert_eq!(spec.shards, 1, "{other:?} does not support sharding");
            assert_eq!(spec.nodes, 1, "{other:?} does not support multi-node");
            build_baseline(fabric, node, other, sized)
        }
    }
}

fn build_baseline(fabric: &Fabric, node: &Node, kind: SystemKind, sized: StoreLayout) -> AnyServer {
    match kind {
        SystemKind::EFactory | SystemKind::EFactoryNoHr => unreachable!(),
        SystemKind::Saw => AnyServer::Saw(SawServer::format(fabric, node, sized)),
        SystemKind::Imm => AnyServer::Imm(ImmServer::format(fabric, node, sized)),
        SystemKind::Erda => AnyServer::Erda(ErdaServer::format(fabric, node, sized)),
        SystemKind::Forca => AnyServer::Forca(ForcaServer::format(fabric, node, sized)),
        SystemKind::CaNoper => AnyServer::CaNoper(CaNoperServer::format(fabric, node, sized)),
        SystemKind::Rpc => AnyServer::Rpc(RpcServer::format(fabric, node, sized)),
    }
}

/// Connect a workload client for `kind`. Fallible — any transport error
/// propagates so the caller can say *which* system failed to connect
/// instead of panicking with a bare `expect("connect")` at each site.
fn connect_client(
    kind: SystemKind,
    fabric: &Arc<Fabric>,
    local: &Node,
    server_node: &Node,
    any_desc: &AnyDesc,
    obs: &Obs,
    loc_cache: bool,
) -> Result<Box<dyn RemoteKv>, efactory::StoreError> {
    let ef_cfg = |hybrid_read: bool| ClientConfig {
        hybrid_read,
        loc_cache,
        obs: obs.clone(),
        ..ClientConfig::default()
    };
    let ef_hybrid = |kind: SystemKind| match kind {
        SystemKind::EFactory => true,
        SystemKind::EFactoryNoHr => false,
        other => panic!("{other:?} supports neither sharding nor replication"),
    };
    match any_desc {
        AnyDesc::Sharded(sharded) => {
            let c = efactory::shard::ShardedClient::connect(
                fabric,
                local,
                sharded,
                ef_cfg(ef_hybrid(kind)),
            )?;
            Ok(Box::new(c))
        }
        AnyDesc::Replicated(descs) => {
            let c = efactory::repl::ReplShardedClient::connect(
                fabric,
                local,
                descs,
                ef_cfg(ef_hybrid(kind)),
            )?;
            Ok(Box::new(c))
        }
        AnyDesc::Cluster {
            handle,
            meta_nodes,
            stats,
        } => {
            let c = efactory::cluster::ClusterClient::connect(
                fabric,
                local,
                meta_nodes,
                handle,
                stats,
                ef_cfg(ef_hybrid(kind)),
            )?;
            Ok(Box::new(c))
        }
        AnyDesc::Single(desc) => {
            let desc = *desc;
            Ok(match kind {
                SystemKind::EFactory => Box::new(Client::connect(
                    fabric,
                    local,
                    server_node,
                    desc,
                    ef_cfg(true),
                )?),
                SystemKind::EFactoryNoHr => Box::new(Client::connect(
                    fabric,
                    local,
                    server_node,
                    desc,
                    ef_cfg(false),
                )?),
                SystemKind::Saw => Box::new(SawClient::connect(fabric, local, server_node, desc)?),
                SystemKind::Imm => Box::new(ImmClient::connect(fabric, local, server_node, desc)?),
                SystemKind::Erda => {
                    Box::new(ErdaClient::connect(fabric, local, server_node, desc)?)
                }
                SystemKind::Forca => {
                    Box::new(ForcaClient::connect(fabric, local, server_node, desc)?)
                }
                SystemKind::CaNoper => {
                    Box::new(CaNoperClient::connect(fabric, local, server_node, desc)?)
                }
                SystemKind::Rpc => Box::new(RpcClient::connect(fabric, local, server_node, desc)?),
            })
        }
    }
}

fn make_client(
    kind: SystemKind,
    fabric: &Arc<Fabric>,
    local: &Node,
    server_node: &Node,
    any_desc: &AnyDesc,
    obs: &Obs,
    loc_cache: bool,
) -> Box<dyn RemoteKv> {
    connect_client(kind, fabric, local, server_node, any_desc, obs, loc_cache)
        .unwrap_or_else(|e| panic!("{}: client connect failed: {e}", kind.label()))
}

/// Connect a transactional workload client (plain KV **and** `TxnKv`
/// surfaces). Only the eFactory flavors qualify; baselines panic.
fn make_txn_client(
    kind: SystemKind,
    fabric: &Arc<Fabric>,
    local: &Node,
    server_node: &Node,
    any_desc: &AnyDesc,
    obs: &Obs,
    loc_cache: bool,
) -> Box<dyn TxnRemote> {
    let cfg = ClientConfig {
        hybrid_read: match kind {
            SystemKind::EFactory => true,
            SystemKind::EFactoryNoHr => false,
            other => panic!("{other:?} has no transactional client"),
        },
        loc_cache,
        obs: obs.clone(),
        ..ClientConfig::default()
    };
    let connected: Result<Box<dyn TxnRemote>, efactory::StoreError> = match any_desc {
        AnyDesc::Single(desc) => Client::connect(fabric, local, server_node, *desc, cfg)
            .map(|c| Box::new(c) as Box<dyn TxnRemote>),
        AnyDesc::Sharded(sharded) => {
            efactory::shard::ShardedClient::connect(fabric, local, sharded, cfg)
                .map(|c| Box::new(c) as Box<dyn TxnRemote>)
        }
        AnyDesc::Replicated(descs) => {
            efactory::repl::ReplShardedClient::connect(fabric, local, descs, cfg)
                .map(|c| Box::new(c) as Box<dyn TxnRemote>)
        }
        AnyDesc::Cluster {
            handle,
            meta_nodes,
            stats,
        } => {
            efactory::cluster::ClusterClient::connect(fabric, local, meta_nodes, handle, stats, cfg)
                .map(|c| Box::new(c) as Box<dyn TxnRemote>)
        }
    };
    connected.unwrap_or_else(|e| panic!("{}: txn client connect failed: {e}", kind.label()))
}

/// Drive one client's workload through a [`PipelinedClient`]
/// (`spec.window > 1`). Op latencies run submit → completion. Must run
/// inside the client's simulated process.
#[allow(clippy::too_many_arguments)]
fn run_pipelined(
    spec: &ExperimentSpec,
    fabric: &Arc<Fabric>,
    node: &Node,
    server_node: &Node,
    desc: &AnyDesc,
    obs: &Obs,
    cid: usize,
    stream: &mut OpStream,
    get: &mut Vec<Nanos>,
    put: &mut Vec<Nanos>,
) {
    let AnyDesc::Single(desc) = desc else {
        panic!("window > 1 requires an unsharded, unreplicated eFactory store");
    };
    let hybrid = match spec.system {
        SystemKind::EFactory => true,
        SystemKind::EFactoryNoHr => false,
        other => panic!("{other:?} does not support a pipelined client"),
    };
    let pcfg = PipelineConfig {
        window: spec.window,
        doorbell_batch: spec.doorbell_batch,
        client: ClientConfig {
            hybrid_read: hybrid,
            loc_cache: spec.loc_cache,
            obs: obs.clone(),
            ..ClientConfig::default()
        },
    };
    let mut pc = PipelinedClient::connect(
        fabric,
        node,
        server_node,
        *desc,
        pcfg,
        &format!("client-{cid}"),
    )
    .unwrap_or_else(|e| panic!("{}: pipelined connect failed: {e}", spec.system.label()));
    let record = |comps: Vec<OpCompletion>, get: &mut Vec<Nanos>, put: &mut Vec<Nanos>| {
        for comp in comps {
            match &comp.result {
                Ok(_) => {}
                Err(e) => panic!("{:?} failed: {e:?}", comp.kind),
            }
            match comp.kind {
                OpKind::Get => get.push(comp.latency()),
                OpKind::Put => put.push(comp.latency()),
                OpKind::Del => {}
                // One latency sample per written key, so transactional
                // throughput counts key-writes like the serial driver.
                OpKind::Txn => {
                    for _ in 0..comp.txn_keys.len().max(1) {
                        put.push(comp.latency());
                    }
                }
            }
        }
    };
    for _ in 0..spec.ops_per_client {
        let comps = match stream.next_op() {
            Op::Get { key } => pc.submit_get(&key),
            Op::Put { key, value } => pc.submit_put(&key, &value),
            Op::Txn { puts } => pc.submit_txn(&puts),
            Op::SnapRead { .. } => {
                panic!("pipelined driver has no snapshot-read lane; use spec.snap_readers")
            }
        };
        record(comps, get, put);
    }
    record(pc.finish(), get, put);
}

/// Drive one client's transactional workload through the serial `TxnKv`
/// client. Latencies: one sample per written key for a transaction (so
/// throughput counts key-writes), one sample per read key for a snapshot
/// read. Must run inside the client's simulated process.
fn run_serial_txn(
    kv: &dyn TxnRemote,
    ops_per_client: usize,
    stream: &mut OpStream,
    get: &mut Vec<Nanos>,
    put: &mut Vec<Nanos>,
) {
    use efactory::protocol::{Status, StoreError};
    for _ in 0..ops_per_client {
        match stream.next_op() {
            Op::Get { key } => {
                let t0 = sim::now();
                kv.kv_get(&key).expect("get failed");
                get.push(sim::now() - t0);
            }
            Op::Put { key, value } => {
                let t0 = sim::now();
                let mut tries = 0;
                loop {
                    match kv.kv_put(&key, &value) {
                        Ok(()) => break,
                        Err(StoreError::Status(Status::NoSpace | Status::Busy)) if tries < 200 => {
                            tries += 1;
                            sim::sleep(sim::micros(50));
                        }
                        Err(e) => panic!("put failed: {e:?}"),
                    }
                }
                put.push(sim::now() - t0);
            }
            Op::Txn { puts } => {
                let t0 = sim::now();
                // The routed txn driver already retries Busy/Conflict with
                // backoff; anything surviving that is a real failure.
                kv.txn_put_all(&puts).expect("txn commit failed");
                let dt = sim::now() - t0;
                for _ in 0..puts.len() {
                    put.push(dt);
                }
            }
            Op::SnapRead { keys } => {
                let t0 = sim::now();
                // A cleaning pool swap expires open snapshots (the swap
                // recycles old-pool offsets); re-capture and restart the
                // scan — the retry latency is part of the measurement.
                'scan: loop {
                    let snap = kv.snapshot().expect("snapshot capture failed");
                    for k in &keys {
                        match kv.snap_get(k, &snap) {
                            Ok(_) => {}
                            Err(StoreError::Status(Status::Expired)) => continue 'scan,
                            Err(e) => panic!("snap get failed: {e:?}"),
                        }
                    }
                    break;
                }
                let dt = sim::now() - t0;
                for _ in 0..keys.len() {
                    get.push(dt);
                }
            }
        }
    }
}

/// Execute one experiment. Deterministic in `spec.seed`.
pub fn run(spec: &ExperimentSpec) -> RunResult {
    run_with_cost(spec, CostModel::default())
}

/// Execute one experiment with a custom cost model (ablations).
pub fn run_with_cost(spec: &ExperimentSpec, cost: CostModel) -> RunResult {
    run_inner(spec, cost, None, None)
}

/// Execute one experiment against a caller-supplied observability handle:
/// the run's metrics land in `obs.registry` and its spans/events in
/// `obs.tracer`, so the caller can export a trace or inspect counters after
/// the run. Deterministic in `spec.seed` — same seed, same trace.
pub fn run_observed(spec: &ExperimentSpec, cost: CostModel, obs: &Obs) -> RunResult {
    run_inner(spec, cost, None, Some(obs.clone()))
}

/// Execute one experiment with a tweak applied to the eFactory
/// `ServerConfig` (verifier/cleaner ablations). No effect on baselines.
pub fn run_with_server_cfg(
    spec: &ExperimentSpec,
    cost: CostModel,
    tweak: impl Fn(&mut ServerConfig) + Send + Sync + 'static,
) -> RunResult {
    run_inner(spec, cost, Some(Arc::new(tweak)), None)
}

type CfgTweak = Arc<dyn Fn(&mut ServerConfig) + Send + Sync>;

fn run_inner(
    spec: &ExperimentSpec,
    cost: CostModel,
    tweak: Option<CfgTweak>,
    obs: Option<Obs>,
) -> RunResult {
    let obs = obs.unwrap_or_default();
    let mut simu = match spec.exec {
        Some(model) => Sim::with_exec(spec.seed, model),
        None => Sim::new(spec.seed),
    };
    let fabric = Fabric::new(cost);
    if let Some(plan) = spec.fault_plan {
        fabric.set_fault_plan(Some(plan));
    }
    // NIC verbs become spans on the trace's nic lane, covering the verb's
    // full start→completion window (retransmissions and fault delays
    // included). The probe fires on the issuing thread, so the record
    // inherits the active op id for critical-path attribution.
    let nic_tracer = obs.tracer.clone();
    fabric.set_verb_probe(move |verb, bytes, start, end| {
        nic_tracer.record_span_at(
            Subsystem::Nic,
            verb,
            start,
            end.saturating_sub(start),
            &[("bytes", bytes as u64)],
        );
    });
    let server_node = fabric.add_node("server");
    let server = Arc::new(build_server(
        &fabric,
        &server_node,
        spec,
        &obs,
        tweak.as_deref(),
    ));
    server.attach_obs(&obs);

    let collected: Arc<Mutex<Collected>> = Arc::default();
    let window: Arc<Mutex<(Nanos, Nanos)>> = Arc::default(); // (start, end)

    let spec2 = spec.clone();
    let f2 = Arc::clone(&fabric);
    let server2 = Arc::clone(&server);
    let collected2 = Arc::clone(&collected);
    let window2 = Arc::clone(&window);
    let obs2 = obs.clone();
    simu.spawn("orchestrator", move || {
        server2.start(&f2);
        let desc = server2.desc();

        // ---- preload ------------------------------------------------------
        let loader_node = f2.add_node("loader");
        let loader = make_client(
            spec2.system,
            &f2,
            &loader_node,
            &server_node,
            &desc,
            &obs2,
            spec2.loc_cache,
        );
        let wl = WorkloadConfig {
            mix: spec2.mix,
            record_count: spec2.record_count,
            key_len: spec2.key_len,
            value_len: spec2.value_len,
            txn_keys: TXN_KEYS,
        };
        for id in 0..spec2.record_count {
            loader
                .kv_put(&wl.key(id), &make_value(spec2.value_len, id, 0))
                .expect("preload put");
        }
        // Forca verifies+persists on *first read*; sweep the keyspace once
        // so measurement starts from the verified steady state (mirroring
        // eFactory's drained-verifier start below).
        if matches!(spec2.system, SystemKind::Forca) {
            for id in 0..spec2.record_count {
                loader.kv_get(&wl.key(id)).expect("preload warm get");
            }
        }
        // Let eFactory's verifier(s) drain so measurement starts from a
        // clean, fully durable store (bounded wait).
        if matches!(
            &*server2,
            AnyServer::Ef(_)
                | AnyServer::EfSharded(_)
                | AnyServer::EfRepl(_)
                | AnyServer::EfCluster(_)
        ) {
            let deadline = sim::now() + sim::millis(500);
            while server2.stat_sum(|s| &s.bg_verified) + server2.stat_sum(|s| &s.bg_timeouts)
                < spec2.record_count
                && sim::now() < deadline
            {
                sim::sleep(sim::micros(200));
            }
        }
        // With replication, also wait for the backups to catch up so the
        // measurement (and any injected fault) starts from a fully
        // mirrored store.
        if let AnyServer::EfRepl(cluster) = &*server2 {
            let deadline = sim::now() + sim::millis(500);
            while cluster.repl_stat_sum(|s| &s.applied_objects) < spec2.record_count
                && sim::now() < deadline
            {
                sim::sleep(sim::micros(200));
            }
        }

        // ---- measured clients ----------------------------------------------
        if spec2.force_clean {
            match &*server2 {
                AnyServer::Ef(s) => s.shared().clean_request.store(true, Ordering::Relaxed),
                AnyServer::EfSharded(s) => {
                    for shared in s.shared_all() {
                        shared.clean_request.store(true, Ordering::Relaxed);
                    }
                }
                AnyServer::EfRepl(c) => {
                    for shared in c.shared_all() {
                        shared.clean_request.store(true, Ordering::Relaxed);
                    }
                }
                AnyServer::EfCluster(c) => {
                    for g in 0..c.config().shards {
                        c.shard_shared(g)
                            .clean_request
                            .store(true, Ordering::Relaxed);
                    }
                }
                _ => {}
            }
        }
        let t_start = sim::now();
        window2.lock().unwrap().0 = t_start;
        // Fault injection: power-fail every shard's primary at the chosen
        // instant. Clients ride through via `ReplClient` failover; the
        // stall is part of the measured latency.
        if let Some(fault_at) = spec2.fault_at {
            let AnyServer::EfRepl(cluster) = &*server2 else {
                panic!("fault_at requires replicas > 0");
            };
            for i in 0..cluster.shards() {
                f2.schedule_crash(
                    cluster.server(i).primary_node(),
                    t_start + fault_at,
                    efactory_pmem::CrashSpec::DropAll,
                    spec2.seed ^ 0x0FAB_u64 ^ ((i as u64) << 17),
                );
            }
        }
        // Live migration mid-window: shard 0 moves to the next node
        // while the measured clients keep operating. The driver runs in
        // its own process; clients retarget on WrongEpoch. The handle is
        // joined before shutdown: at reduced op scales the window can end
        // before `migrate_at`, and the migration must still run against a
        // live cluster rather than race the teardown.
        let mut migrator = None;
        if let Some(migrate_at) = spec2.migrate_at {
            let AnyServer::EfCluster(_) = &*server2 else {
                panic!("migrate_at requires nodes > 1");
            };
            let server3 = Arc::clone(&server2);
            let t0 = t_start + migrate_at;
            migrator = Some(sim::spawn("migrator", move || {
                sim::sleep(t0.saturating_sub(sim::now()));
                let AnyServer::EfCluster(c) = &*server3 else {
                    unreachable!()
                };
                let from = c.owner_of(0);
                let to = (from + 1) % c.config().nodes;
                c.migrate(0, to).expect("mid-window migration failed");
            }));
        }
        // Background snapshot readers: continuous capture + multi-key
        // snapshot reads for the whole measurement window, stopped once
        // the workload clients finish. Their point is interference
        // measurement — they must not block (or be blocked by) writers.
        let snap_stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let mut snap_handles = Vec::new();
        for rid in 0..spec2.snap_readers {
            let f3 = Arc::clone(&f2);
            let sn = server_node.clone();
            let spec3 = spec2.clone();
            let wl = wl.clone();
            let obs3 = obs2.clone();
            let desc3 = desc.clone();
            let stop = Arc::clone(&snap_stop);
            snap_handles.push(sim::spawn(&format!("snap-reader-{rid}"), move || {
                let node = f3.add_node(&format!("snapnode-{rid}"));
                let kv = make_txn_client(
                    spec3.system,
                    &f3,
                    &node,
                    &sn,
                    &desc3,
                    &obs3,
                    spec3.loc_cache,
                );
                // Deterministic key picks: a per-reader xorshift stream.
                let mut z = spec3.seed ^ ((rid as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15));
                let mut next_id = || {
                    z ^= z << 13;
                    z ^= z >> 7;
                    z ^= z << 17;
                    z % spec3.record_count
                };
                // Scan cadence: readers model periodic analytics scans
                // (capture + 4 reads, then a 60 µs pause — ~12k scans/s
                // per reader), not closed-loop stress. Every scan RPC
                // still shares the server CPU with writer allocations, so
                // the interference measurement stays honest; the cadence
                // only bounds how much scan load the probe applies.
                while !stop.load(Ordering::Relaxed) {
                    let snap = kv.snapshot().expect("snap capture");
                    for _ in 0..TXN_KEYS {
                        // A cleaning pool swap expires the snapshot
                        // mid-scan; abandon it and re-capture on the next
                        // iteration (readers model periodic scans, not
                        // exactly-once reads).
                        use efactory::protocol::{Status, StoreError};
                        match kv.snap_get(&wl.key(next_id()), &snap) {
                            Ok(_) => {}
                            Err(StoreError::Status(Status::Expired)) => break,
                            Err(e) => panic!("snap get: {e:?}"),
                        }
                    }
                    sim::sleep(sim::micros(60));
                }
            }));
        }
        let mut handles = Vec::new();
        for cid in 0..spec2.clients {
            let f3 = Arc::clone(&f2);
            let sn = server_node.clone();
            let spec3 = spec2.clone();
            let wl = wl.clone();
            let collected3 = Arc::clone(&collected2);
            let obs3 = obs2.clone();
            let desc3 = desc.clone();
            handles.push(sim::spawn(&format!("client-{cid}"), move || {
                let node = f3.add_node(&format!("cnode-{cid}"));
                let mut stream = OpStream::new(wl, spec3.seed, cid as u64);
                let mut get = Vec::with_capacity(spec3.ops_per_client);
                let mut put = Vec::with_capacity(spec3.ops_per_client);
                if spec3.mix.transactional() && spec3.window <= 1 {
                    let kv = make_txn_client(
                        spec3.system,
                        &f3,
                        &node,
                        &sn,
                        &desc3,
                        &obs3,
                        spec3.loc_cache,
                    );
                    run_serial_txn(&*kv, spec3.ops_per_client, &mut stream, &mut get, &mut put);
                } else if spec3.window > 1 {
                    // Pipelined closed loop: up to `window` operations in
                    // flight; the latency of an op runs submit → completion
                    // (including any wait behind the window or a per-key
                    // hazard), and slot-level NoSpace/Busy backoff is part
                    // of it just like the serial loop below.
                    run_pipelined(
                        &spec3,
                        &f3,
                        &node,
                        &sn,
                        &desc3,
                        &obs3,
                        cid,
                        &mut stream,
                        &mut get,
                        &mut put,
                    );
                } else {
                    let kv = make_client(
                        spec3.system,
                        &f3,
                        &node,
                        &sn,
                        &desc3,
                        &obs3,
                        spec3.loc_cache,
                    );
                    for _ in 0..spec3.ops_per_client {
                        match stream.next_op() {
                            Op::Txn { .. } | Op::SnapRead { .. } => {
                                unreachable!("transactional ops route through run_serial_txn")
                            }
                            Op::Get { key } => {
                                let t0 = sim::now();
                                kv.kv_get(&key).expect("get failed");
                                get.push(sim::now() - t0);
                            }
                            Op::Put { key, value } => {
                                let t0 = sim::now();
                                // Under heavy cleaning pressure the pool can
                                // momentarily run out of space; real clients
                                // back off and retry, and the stall is part of
                                // the measured latency.
                                let mut tries = 0;
                                loop {
                                    match kv.kv_put(&key, &value) {
                                        Ok(()) => break,
                                        Err(efactory::protocol::StoreError::Status(
                                            efactory::protocol::Status::NoSpace
                                            | efactory::protocol::Status::Busy,
                                        )) if tries < 200 => {
                                            tries += 1;
                                            sim::sleep(sim::micros(50));
                                        }
                                        Err(e) => panic!("put failed: {e:?}"),
                                    }
                                }
                                put.push(sim::now() - t0);
                            }
                        }
                    }
                }
                let mut c = collected3.lock().unwrap();
                c.get.extend_from_slice(&get);
                c.put.extend_from_slice(&put);
                c.end = c.end.max(sim::now());
            }));
        }
        for h in &handles {
            h.join();
        }
        snap_stop.store(true, Ordering::Relaxed);
        for h in &snap_handles {
            h.join();
        }
        if let Some(h) = migrator {
            h.join();
        }
        window2.lock().unwrap().1 = collected2.lock().unwrap().end;
        server2.shutdown();
    });

    let outcome = simu.run();
    if let efactory_sim::RunOutcome::Failed { error, .. } = outcome {
        panic!("experiment failed: {error}");
    }

    let mut c = collected.lock().unwrap();
    let (start, end) = *window.lock().unwrap();
    let elapsed = end.saturating_sub(start).max(1);
    let total_ops = (c.get.len() + c.put.len()) as u64;
    let mut all: Vec<Nanos> = c.get.iter().chain(c.put.iter()).copied().collect();
    // Mirror the fabric's raw telemetry into the registry so the final
    // snapshot carries the full server/pmem/fabric picture.
    let fstats = fabric.stats();
    for (name, v) in [
        ("fabric.sends", &fstats.sends),
        ("fabric.rdma_reads", &fstats.rdma_reads),
        ("fabric.rdma_writes", &fstats.rdma_writes),
        ("fabric.bytes_on_wire", &fstats.bytes_on_wire),
        ("fabric.crashes", &fstats.crashes),
        ("fabric.fault.dropped", &fstats.fault_dropped),
        ("fabric.fault.duplicated", &fstats.fault_duplicated),
        ("fabric.fault.delayed", &fstats.fault_delayed),
        ("fabric.fault.retrans", &fstats.fault_retrans),
    ] {
        obs.registry
            .counter(name)
            .store(v.load(Ordering::Relaxed), Ordering::Relaxed);
    }
    obs.registry
        .counter("fabric.links_down")
        .store(fabric.links_down_count() as u64, Ordering::Relaxed);
    obs.registry
        .counter("obs.trace_dropped")
        .store(obs.tracer.dropped(), Ordering::Relaxed);
    // Mirror the kernel's execution telemetry the same way. Only the
    // backend-invariant counters go in (`stack_bytes` stays out): these
    // values are a function of the deterministic event sequence, so a
    // fiber run and a thread run of the same spec report identical
    // numbers — the equivalence tests assert exactly that.
    let sc = simu.counters().backend_invariant();
    for (name, v) in [
        ("sim.events_scheduled", sc.events_scheduled),
        ("sim.events_dispatched", sc.events_dispatched),
        ("sim.calls", sc.calls),
        ("sim.chan_wakes", sc.chan_wakes),
        ("sim.wakes_stale", sc.wakes_stale),
        ("sim.ctx_switches", sc.ctx_switches),
        ("sim.allocs", sc.allocs),
        ("sim.slab_reused", sc.slab_reused),
    ] {
        obs.registry.counter(name).store(v, Ordering::Relaxed);
    }
    // Fold the trace into the per-op critical-path breakdown, clipped to
    // the measurement window (preload ops start before `start` and are
    // excluded by min_start).
    let breakdown = {
        let b = efactory_obs::critical_path::fold(
            &obs.tracer.records(),
            &FoldConfig {
                min_start: start,
                exemplars: 4,
            },
        );
        (b.ops > 0).then_some(b)
    };
    RunResult {
        system: spec.system.label(),
        total_ops,
        elapsed_ns: elapsed,
        mops: total_ops as f64 / (elapsed as f64 / 1e9) / 1e6,
        get: LatencyStats::from_samples(&mut c.get),
        put: LatencyStats::from_samples(&mut c.put),
        all: LatencyStats::from_samples(&mut all),
        server_rpc_gets: server.stat_sum(|s| &s.gets),
        bg_verified: server.stat_sum(|s| &s.bg_verified),
        cleanings: server.stat_sum(|s| &s.cleanings),
        seed: spec.seed,
        counters: obs.registry.snapshot(),
        breakdown,
    }
}
