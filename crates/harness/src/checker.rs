//! Trace-based linearizability / snapshot-isolation checker.
//!
//! The deterministic simulator gives every operation exact virtual-time
//! invoke/complete instants, and the transaction layer stamps every commit
//! with an MVCC timestamp. This module folds those observations into a
//! **history** and checks the consistency contract the transaction PR
//! claims:
//!
//! * **No torn multi-key write** — a snapshot read covering several keys of
//!   one transaction's write set observes the transaction's effects on all
//!   of them or on none.
//! * **No stale or future snapshot read** — under snapshot timestamp `S`, a
//!   read of key `k` returns exactly the version with the greatest commit
//!   timestamp `≤ S` (per shard), never one past `S`.
//! * **Snapshot freshness** — a transaction acknowledged before the
//!   snapshot capture began is covered by the snapshot (`ts ≤ S`).
//! * **Plain-GET linearizability per key** — a GET observes a version at
//!   least as new as every write acknowledged before the GET began, and
//!   never one whose commit started after the GET ended.
//! * **No serialization cycle** — the direct serialization graph (Adya's
//!   DSG) over ww / wr / rw dependency edges plus real-time edges is
//!   acyclic.
//!
//! Values double as version identifiers: the workload must write a unique
//! value per (transaction, key), which the harness's versioned value
//! generator guarantees. An observed value that maps to no registered
//! write is itself a violation (torn/garbage bytes).

use std::collections::HashMap;
use std::fmt;

use efactory_sim::Nanos;

/// One committed multi-key transaction, as the client observed it.
#[derive(Debug, Clone)]
pub struct TxnEvent {
    /// Client-chosen label (diagnostics only).
    pub client: usize,
    /// Virtual time `txn_put_all` was invoked.
    pub invoke: Nanos,
    /// Virtual time the commit acknowledgement returned.
    pub complete: Nanos,
    /// The MVCC commit timestamp the store assigned.
    pub commit_ts: u64,
    /// The write set: `(key, value)`, values unique per (txn, key).
    pub writes: Vec<(Vec<u8>, Vec<u8>)>,
}

/// One snapshot read: a capture followed by reads under it.
#[derive(Debug, Clone)]
pub struct SnapEvent {
    /// Client-chosen label (diagnostics only).
    pub client: usize,
    /// Virtual time the snapshot capture was invoked.
    pub capture_invoke: Nanos,
    /// Virtual time the capture returned (the snapshot exists from here).
    pub capture_complete: Nanos,
    /// The snapshot timestamp `S` (min over the per-shard vector).
    pub snap_ts: u64,
    /// Virtual time the last read under this snapshot returned.
    pub reads_complete: Nanos,
    /// What each read returned: `(key, observed value or miss)`.
    pub reads: Vec<(Vec<u8>, Option<Vec<u8>>)>,
}

/// One plain (non-snapshot) GET.
#[derive(Debug, Clone)]
pub struct GetEvent {
    /// Client-chosen label (diagnostics only).
    pub client: usize,
    /// Virtual time the GET was invoked.
    pub invoke: Nanos,
    /// Virtual time the GET returned.
    pub complete: Nanos,
    /// The key read.
    pub key: Vec<u8>,
    /// The observed value (None = miss).
    pub value: Option<Vec<u8>>,
}

/// A complete run history to check.
#[derive(Debug, Clone, Default)]
pub struct History {
    /// Key → value state preloaded before the measured window (an implicit
    /// initial transaction with commit timestamp 0).
    pub init: Vec<(Vec<u8>, Vec<u8>)>,
    /// Every committed transaction.
    pub txns: Vec<TxnEvent>,
    /// Every snapshot read.
    pub snaps: Vec<SnapEvent>,
    /// Every plain GET.
    pub gets: Vec<GetEvent>,
}

/// Who wrote an observed version.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum Writer {
    /// The preloaded initial state (commit timestamp 0).
    Init,
    /// `History::txns[i]`.
    Txn(usize),
}

/// One consistency violation found in the history.
#[derive(Debug, Clone)]
pub enum Violation {
    /// An observed value maps to no registered write of that key.
    UnattributedValue { key: Vec<u8>, context: String },
    /// Two writes registered the same (key, value) pair — the workload
    /// broke the unique-version contract and the history is uncheckable.
    AmbiguousValue { key: Vec<u8> },
    /// Two transactions on one key share a commit timestamp.
    DuplicateTimestamp { key: Vec<u8>, ts: u64 },
    /// A snapshot read observed a version newer than its snapshot.
    FutureRead {
        key: Vec<u8>,
        snap_ts: u64,
        observed_ts: u64,
    },
    /// A snapshot read missed a version it must cover (`ts ≤ S` and no
    /// newer covered version exists), or a plain GET missed an
    /// acknowledged write.
    StaleRead {
        key: Vec<u8>,
        context: String,
        expected_ts: u64,
        observed_ts: u64,
    },
    /// A snapshot observed some keys of a transaction's write set at (or
    /// past) the transaction and others before it.
    TornWrite { txn: usize, snap: usize },
    /// A transaction acknowledged before a snapshot capture began is not
    /// covered by the snapshot.
    SnapshotTooOld {
        snap: usize,
        txn: usize,
        snap_ts: u64,
        txn_ts: u64,
    },
    /// The serialization graph has a cycle (node labels on the path).
    Cycle { path: Vec<String> },
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Violation::UnattributedValue { key, context } => write!(
                f,
                "unattributed value for key {} ({context}): torn or garbage bytes",
                String::from_utf8_lossy(key)
            ),
            Violation::AmbiguousValue { key } => write!(
                f,
                "two writes share one (key, value) pair on {} — history uncheckable",
                String::from_utf8_lossy(key)
            ),
            Violation::DuplicateTimestamp { key, ts } => write!(
                f,
                "two transactions on {} share commit ts {ts}",
                String::from_utf8_lossy(key)
            ),
            Violation::FutureRead {
                key,
                snap_ts,
                observed_ts,
            } => write!(
                f,
                "snapshot S={snap_ts} read key {} from the future (ts {observed_ts})",
                String::from_utf8_lossy(key)
            ),
            Violation::StaleRead {
                key,
                context,
                expected_ts,
                observed_ts,
            } => write!(
                f,
                "stale read of {} ({context}): expected version ts {expected_ts}, \
                 observed ts {observed_ts}",
                String::from_utf8_lossy(key)
            ),
            Violation::TornWrite { txn, snap } => write!(
                f,
                "snapshot #{snap} observed transaction #{txn} on some keys but not others \
                 (torn multi-key write)"
            ),
            Violation::SnapshotTooOld {
                snap,
                txn,
                snap_ts,
                txn_ts,
            } => write!(
                f,
                "snapshot #{snap} (S={snap_ts}) captured after txn #{txn} (ts={txn_ts}) \
                 acknowledged, yet does not cover it"
            ),
            Violation::Cycle { path } => {
                write!(f, "serialization cycle: {}", path.join(" -> "))
            }
        }
    }
}

/// Per-key write index: version list sorted by commit timestamp.
struct KeyIndex {
    /// `(commit_ts, writer)`, ascending by ts. Init sits at ts 0.
    versions: Vec<(u64, Writer)>,
}

struct Attribution {
    /// `(key, value)` → writer.
    by_value: HashMap<(Vec<u8>, Vec<u8>), Writer>,
    /// key → ordered versions.
    by_key: HashMap<Vec<u8>, KeyIndex>,
}

fn writer_ts(h: &History, w: Writer) -> u64 {
    match w {
        Writer::Init => 0,
        Writer::Txn(i) => h.txns[i].commit_ts,
    }
}

fn attribute(h: &History, out: &mut Vec<Violation>) -> Attribution {
    let mut by_value = HashMap::new();
    let mut by_key: HashMap<Vec<u8>, KeyIndex> = HashMap::new();
    let mut note = |key: &[u8], value: &[u8], w: Writer, ts: u64, out: &mut Vec<Violation>| {
        if by_value.insert((key.to_vec(), value.to_vec()), w).is_some() {
            out.push(Violation::AmbiguousValue { key: key.to_vec() });
        }
        by_key
            .entry(key.to_vec())
            .or_insert_with(|| KeyIndex {
                versions: Vec::new(),
            })
            .versions
            .push((ts, w));
    };
    for (k, v) in &h.init {
        note(k, v, Writer::Init, 0, out);
    }
    for (i, t) in h.txns.iter().enumerate() {
        for (k, v) in &t.writes {
            note(k, v, Writer::Txn(i), t.commit_ts, out);
        }
    }
    for idx in by_key.values_mut() {
        idx.versions.sort_by_key(|(ts, _)| *ts);
    }
    // A key's versions must carry distinct timestamps (per-shard commit
    // timestamps strictly increase, and a key lives on exactly one shard).
    for (k, idx) in &by_key {
        for w in idx.versions.windows(2) {
            if w[0].0 == w[1].0 {
                out.push(Violation::DuplicateTimestamp {
                    key: k.clone(),
                    ts: w[0].0,
                });
            }
        }
    }
    Attribution { by_value, by_key }
}

/// The newest version of `key` with `ts ≤ bound`, if any.
fn version_at(attr: &Attribution, key: &[u8], bound: u64) -> Option<(u64, Writer)> {
    let idx = attr.by_key.get(key)?;
    idx.versions
        .iter()
        .take_while(|(ts, _)| *ts <= bound)
        .last()
        .copied()
}

fn check_snapshots(h: &History, attr: &Attribution, out: &mut Vec<Violation>) {
    for (si, s) in h.snaps.iter().enumerate() {
        // What each read resolves to, per observed writer, for the torn-
        // write scan below: Writer -> did this snapshot observe it applied?
        let mut saw: HashMap<Writer, bool> = HashMap::new();
        for (key, val) in &s.reads {
            let expected = version_at(attr, key, s.snap_ts);
            match val {
                None => {
                    // A miss is legal only if no version is covered by S.
                    if let Some((ts, _)) = expected {
                        out.push(Violation::StaleRead {
                            key: key.clone(),
                            context: format!("snapshot #{si} S={}", s.snap_ts),
                            expected_ts: ts,
                            observed_ts: 0,
                        });
                    }
                }
                Some(v) => match attr.by_value.get(&(key.clone(), v.clone())) {
                    None => out.push(Violation::UnattributedValue {
                        key: key.clone(),
                        context: format!("snapshot #{si}"),
                    }),
                    Some(&w) => {
                        let ts = writer_ts(h, w);
                        if ts > s.snap_ts {
                            out.push(Violation::FutureRead {
                                key: key.clone(),
                                snap_ts: s.snap_ts,
                                observed_ts: ts,
                            });
                        } else if let Some((ets, ew)) = expected {
                            if ets != ts {
                                out.push(Violation::StaleRead {
                                    key: key.clone(),
                                    context: format!("snapshot #{si} S={}", s.snap_ts),
                                    expected_ts: ets,
                                    observed_ts: ts,
                                });
                            }
                            debug_assert!(ets != ts || ew == w);
                        }
                        // Record applied/not-applied per writer whose write
                        // set covers this key (for the torn-write scan).
                        if let Some(idx) = attr.by_key.get(key) {
                            for &(wts, wtr) in &idx.versions {
                                if let Writer::Txn(_) = wtr {
                                    let applied = ts >= wts;
                                    if let Some(prev) = saw.insert(wtr, applied) {
                                        if prev != applied {
                                            // Mixed observation of one
                                            // writer across keys: torn.
                                            if let Writer::Txn(t) = wtr {
                                                out.push(Violation::TornWrite { txn: t, snap: si });
                                            }
                                        }
                                    }
                                }
                            }
                        }
                    }
                },
            }
        }
        // Freshness: every transaction acknowledged before the capture
        // began must be covered by the snapshot.
        for (ti, t) in h.txns.iter().enumerate() {
            if t.complete < s.capture_invoke && t.commit_ts > s.snap_ts {
                out.push(Violation::SnapshotTooOld {
                    snap: si,
                    txn: ti,
                    snap_ts: s.snap_ts,
                    txn_ts: t.commit_ts,
                });
            }
        }
    }
}

fn check_plain_gets(h: &History, attr: &Attribution, out: &mut Vec<Violation>) {
    for (gi, g) in h.gets.iter().enumerate() {
        // The newest version acknowledged before the GET began: the floor
        // any linearizable read must reach.
        let floor = h
            .txns
            .iter()
            .filter(|t| t.complete < g.invoke && t.writes.iter().any(|(k, _)| k == &g.key))
            .map(|t| t.commit_ts)
            .max()
            .unwrap_or_else(|| {
                if h.init.iter().any(|(k, _)| k == &g.key) {
                    0
                } else {
                    u64::MAX // never written before the GET: a miss is fine
                }
            });
        match &g.value {
            None => {
                if floor != u64::MAX {
                    out.push(Violation::StaleRead {
                        key: g.key.clone(),
                        context: format!("plain GET #{gi} missed an acknowledged write"),
                        expected_ts: floor,
                        observed_ts: 0,
                    });
                }
            }
            Some(v) => match attr.by_value.get(&(g.key.clone(), v.clone())) {
                None => out.push(Violation::UnattributedValue {
                    key: g.key.clone(),
                    context: format!("plain GET #{gi}"),
                }),
                Some(&w) => {
                    let ts = writer_ts(h, w);
                    if floor != u64::MAX && ts < floor {
                        out.push(Violation::StaleRead {
                            key: g.key.clone(),
                            context: format!("plain GET #{gi}"),
                            expected_ts: floor,
                            observed_ts: ts,
                        });
                    }
                    // The writer must have started before the GET ended.
                    if let Writer::Txn(t) = w {
                        if h.txns[t].invoke > g.complete {
                            out.push(Violation::FutureRead {
                                key: g.key.clone(),
                                snap_ts: 0,
                                observed_ts: ts,
                            });
                        }
                    }
                }
            },
        }
    }
}

/// Node ids in the serialization graph: transactions, then snapshots, then
/// plain GETs (reads are their own nodes so rw antidependencies exist).
fn check_cycles(h: &History, attr: &Attribution, out: &mut Vec<Violation>) {
    let nt = h.txns.len();
    let ns = h.snaps.len();
    let n = nt + ns + h.gets.len();
    let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n];
    let label = |i: usize| -> String {
        if i < nt {
            format!("txn#{i}(ts={})", h.txns[i].commit_ts)
        } else if i < nt + ns {
            format!("snap#{}(S={})", i - nt, h.snaps[i - nt].snap_ts)
        } else {
            format!("get#{}", i - nt - ns)
        }
    };
    // ww edges: consecutive versions of each key, in ts order.
    for idx in attr.by_key.values() {
        for w in idx.versions.windows(2) {
            if let (Writer::Txn(a), Writer::Txn(b)) = (w[0].1, w[1].1) {
                adj[a].push(b);
            }
        }
    }
    // wr / rw edges from reads. A read node R observing version (ts, W) of
    // key k gets W -> R, and R -> W' where W' is k's next version past ts.
    let read_edges = |node: usize, key: &[u8], val: &Option<Vec<u8>>, adj: &mut Vec<Vec<usize>>| {
        let observed = match val {
            Some(v) => match attr.by_value.get(&(key.to_vec(), v.clone())) {
                Some(&w) => Some(writer_ts(h, w)).map(|ts| (ts, w)),
                None => None, // already reported as UnattributedValue
            },
            None => Some((0, Writer::Init)), // miss ~ before every version
        };
        let Some((ts, w)) = observed else { return };
        if let Writer::Txn(t) = w {
            adj[t].push(node);
        }
        if let Some(idx) = attr.by_key.get(key) {
            if let Some(&(_, Writer::Txn(next))) = idx.versions.iter().find(|(vts, _)| *vts > ts) {
                adj[node].push(next);
            }
        }
    };
    for (si, s) in h.snaps.iter().enumerate() {
        for (k, v) in &s.reads {
            read_edges(nt + si, k, v, &mut adj);
        }
    }
    for (gi, g) in h.gets.iter().enumerate() {
        read_edges(nt + ns + gi, &g.key, &g.value, &mut adj);
    }
    // Real-time edges: A completed before B began. All pairs, via a sweep
    // over (time, event) points to keep it near-linear: for each node, an
    // edge from the latest-completing node that still precedes its invoke
    // would not give full reachability, so fall back to all pairs — test
    // histories are small enough (n ≤ a few thousand).
    let invoke = |i: usize| -> Nanos {
        if i < nt {
            h.txns[i].invoke
        } else if i < nt + ns {
            h.snaps[i - nt].capture_invoke
        } else {
            h.gets[i - nt - ns].invoke
        }
    };
    let complete = |i: usize| -> Nanos {
        if i < nt {
            h.txns[i].complete
        } else if i < nt + ns {
            h.snaps[i - nt].reads_complete
        } else {
            h.gets[i - nt - ns].complete
        }
    };
    for (a, out) in adj.iter_mut().enumerate() {
        for b in 0..n {
            if a != b && complete(a) < invoke(b) {
                out.push(b);
            }
        }
    }
    // Iterative DFS cycle search (white/grey/black).
    #[derive(Clone, Copy, PartialEq)]
    enum Color {
        White,
        Grey,
        Black,
    }
    let mut color = vec![Color::White; n];
    let mut parent: Vec<usize> = vec![usize::MAX; n];
    for start in 0..n {
        if color[start] != Color::White {
            continue;
        }
        let mut stack: Vec<(usize, usize)> = vec![(start, 0)];
        color[start] = Color::Grey;
        while let Some(&mut (v, ref mut ei)) = stack.last_mut() {
            if *ei < adj[v].len() {
                let u = adj[v][*ei];
                *ei += 1;
                match color[u] {
                    Color::White => {
                        color[u] = Color::Grey;
                        parent[u] = v;
                        stack.push((u, 0));
                    }
                    Color::Grey => {
                        // Cycle: walk parents from v back to u.
                        let mut path = vec![label(u)];
                        let mut cur = v;
                        while cur != u && cur != usize::MAX {
                            path.push(label(cur));
                            cur = parent[cur];
                        }
                        path.push(label(u));
                        path.reverse();
                        out.push(Violation::Cycle { path });
                        return; // one cycle is diagnostic enough
                    }
                    Color::Black => {}
                }
            } else {
                color[v] = Color::Black;
                stack.pop();
            }
        }
    }
}

/// Check a history. Returns every violation found (empty = consistent).
pub fn check(h: &History) -> Vec<Violation> {
    let mut out = Vec::new();
    let attr = attribute(h, &mut out);
    check_snapshots(h, &attr, &mut out);
    check_plain_gets(h, &attr, &mut out);
    if out.is_empty() {
        // The cycle search assumes attributable reads and sane version
        // orders; only run it on an otherwise-clean history.
        check_cycles(h, &attr, &mut out);
    }
    out
}

/// Panic with a readable report if the history has violations.
pub fn assert_consistent(h: &History) {
    let v = check(h);
    assert!(
        v.is_empty(),
        "history has {} violation(s):\n  {}",
        v.len(),
        v.iter()
            .map(|x| x.to_string())
            .collect::<Vec<_>>()
            .join("\n  ")
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    fn txn(ts: u64, invoke: Nanos, complete: Nanos, writes: &[(&[u8], &[u8])]) -> TxnEvent {
        TxnEvent {
            client: 0,
            invoke,
            complete,
            commit_ts: ts,
            writes: writes
                .iter()
                .map(|(k, v)| (k.to_vec(), v.to_vec()))
                .collect(),
        }
    }

    fn snap(
        s: u64,
        capture_invoke: Nanos,
        capture_complete: Nanos,
        reads: &[(&[u8], Option<&[u8]>)],
    ) -> SnapEvent {
        SnapEvent {
            client: 0,
            capture_invoke,
            capture_complete,
            snap_ts: s,
            reads_complete: capture_complete + 10,
            reads: reads
                .iter()
                .map(|(k, v)| (k.to_vec(), v.map(|x| x.to_vec())))
                .collect(),
        }
    }

    #[test]
    fn clean_history_passes() {
        let h = History {
            init: vec![
                (b"a".to_vec(), b"a0".to_vec()),
                (b"b".to_vec(), b"b0".to_vec()),
            ],
            txns: vec![
                txn(10, 100, 200, &[(b"a", b"a1"), (b"b", b"b1")]),
                txn(20, 300, 400, &[(b"a", b"a2"), (b"b", b"b2")]),
            ],
            snaps: vec![
                snap(15, 250, 260, &[(b"a", Some(b"a1")), (b"b", Some(b"b1"))]),
                snap(25, 500, 510, &[(b"a", Some(b"a2")), (b"b", Some(b"b2"))]),
            ],
            gets: vec![GetEvent {
                client: 0,
                invoke: 450,
                complete: 460,
                key: b"a".to_vec(),
                value: Some(b"a2".to_vec()),
            }],
        };
        assert_consistent(&h);
    }

    #[test]
    fn torn_write_is_caught() {
        let h = History {
            init: vec![
                (b"a".to_vec(), b"a0".to_vec()),
                (b"b".to_vec(), b"b0".to_vec()),
            ],
            txns: vec![txn(10, 100, 200, &[(b"a", b"a1"), (b"b", b"b1")])],
            // S=15 covers the txn, yet key b still reads the init version.
            snaps: vec![snap(
                15,
                250,
                260,
                &[(b"a", Some(b"a1")), (b"b", Some(b"b0"))],
            )],
            gets: vec![],
        };
        let v = check(&h);
        assert!(
            v.iter()
                .any(|x| matches!(x, Violation::StaleRead { .. } | Violation::TornWrite { .. })),
            "torn write not caught: {v:?}"
        );
    }

    #[test]
    fn future_read_is_caught() {
        let h = History {
            init: vec![(b"a".to_vec(), b"a0".to_vec())],
            txns: vec![txn(20, 300, 400, &[(b"a", b"a1")])],
            // S=10 predates the txn, yet the read observes it.
            snaps: vec![snap(10, 50, 60, &[(b"a", Some(b"a1"))])],
            gets: vec![],
        };
        let v = check(&h);
        assert!(
            v.iter().any(|x| matches!(x, Violation::FutureRead { .. })),
            "future read not caught: {v:?}"
        );
    }

    #[test]
    fn stale_snapshot_capture_is_caught() {
        let h = History {
            init: vec![(b"a".to_vec(), b"a0".to_vec())],
            // Txn acked at t=200; capture begins at t=500 but S predates
            // the txn and the read shows the old version.
            txns: vec![txn(20, 100, 200, &[(b"a", b"a1")])],
            snaps: vec![snap(10, 500, 510, &[(b"a", Some(b"a0"))])],
            gets: vec![],
        };
        let v = check(&h);
        assert!(
            v.iter()
                .any(|x| matches!(x, Violation::SnapshotTooOld { .. })),
            "stale capture not caught: {v:?}"
        );
    }

    #[test]
    fn stale_plain_get_is_caught() {
        let h = History {
            init: vec![(b"a".to_vec(), b"a0".to_vec())],
            txns: vec![txn(20, 100, 200, &[(b"a", b"a1")])],
            snaps: vec![],
            gets: vec![GetEvent {
                client: 0,
                invoke: 400,
                complete: 410,
                key: b"a".to_vec(),
                value: Some(b"a0".to_vec()),
            }],
        };
        let v = check(&h);
        assert!(
            v.iter().any(|x| matches!(x, Violation::StaleRead { .. })),
            "stale GET not caught: {v:?}"
        );
    }

    #[test]
    fn garbage_value_is_caught() {
        let h = History {
            init: vec![(b"a".to_vec(), b"a0".to_vec())],
            txns: vec![],
            snaps: vec![],
            gets: vec![GetEvent {
                client: 0,
                invoke: 10,
                complete: 20,
                key: b"a".to_vec(),
                value: Some(b"corrupted".to_vec()),
            }],
        };
        let v = check(&h);
        assert!(
            v.iter()
                .any(|x| matches!(x, Violation::UnattributedValue { .. })),
            "garbage value not caught: {v:?}"
        );
    }

    #[test]
    fn real_time_ts_inversion_is_a_cycle() {
        // txn#0 completes before txn#1 begins, but the store handed txn#1
        // the *smaller* timestamp on the same key: ww edge 1->0 plus rt
        // edge 0->1 forms a cycle.
        let h = History {
            init: vec![],
            txns: vec![
                txn(20, 100, 200, &[(b"a", b"a-first")]),
                txn(10, 300, 400, &[(b"a", b"a-second")]),
            ],
            snaps: vec![],
            gets: vec![],
        };
        let v = check(&h);
        assert!(
            v.iter().any(|x| matches!(x, Violation::Cycle { .. })),
            "ts/real-time inversion not caught: {v:?}"
        );
    }
}
