//! Machine-readable run reports.
//!
//! Every bench binary can emit its results as JSON (`--json <path>`) so
//! perf trajectories can be tracked across commits without scraping the
//! rendered tables. The schema is versioned (`"schema": "efactory-run-report/v2"`)
//! and documented in `EXPERIMENTS.md`; rendering is deterministic — entries
//! appear in insertion order, counters in lexicographic order, and all
//! numbers use fixed-point formatting — so same seed ⇒ byte-identical file.
//!
//! v2 adds two per-entry sections, present whenever the run folded a
//! critical-path breakdown (eFactory runs with attributed ops): `breakdown`
//! (per-subsystem phase totals, off-path work, and percentile attribution)
//! and `tail_exemplars` (the K slowest ops with their full phase timeline).

use std::io;
use std::path::Path;

use efactory_obs::json::{Arr, Obj};
use efactory_rnic::CostModel;

use crate::cluster::{ExperimentSpec, RunResult};
use crate::stats::LatencyStats;

/// Schema identifier stamped into every report.
pub const SCHEMA: &str = "efactory-run-report/v2";

/// A JSON run report: one entry per experiment plus the cost-model
/// constants the runs were charged with.
pub struct Report {
    figure: String,
    cost: CostModel,
    entries: Vec<String>,
}

impl Report {
    /// Start a report for `figure` (e.g. `"fig1"`), priced by the default
    /// cost model.
    pub fn new(figure: &str) -> Report {
        Report::with_cost(figure, CostModel::default())
    }

    /// Start a report whose runs used a custom cost model (ablations).
    pub fn with_cost(figure: &str, cost: CostModel) -> Report {
        Report {
            figure: figure.to_string(),
            cost,
            entries: Vec::new(),
        }
    }

    /// Record one experiment's spec + result under `label`.
    pub fn add(&mut self, label: &str, spec: &ExperimentSpec, result: &RunResult) {
        let mut params = Obj::new()
            .str("system", result.system)
            .str("mix", &format!("{:?}", spec.mix))
            .u64("value_len", spec.value_len as u64)
            .u64("key_len", spec.key_len as u64)
            .u64("clients", spec.clients as u64)
            .u64("ops_per_client", spec.ops_per_client as u64)
            .u64("record_count", spec.record_count)
            .u64("seed", result.seed)
            .str("cleaning", &format!("{:?}", spec.cleaning))
            .bool("force_clean", spec.force_clean)
            .u64("shards", spec.shards as u64)
            .u64("doorbell_batch", spec.doorbell_batch as u64)
            .u64("replicas", spec.replicas as u64)
            .bool("scrub", spec.scrub)
            .u64("window", spec.window as u64)
            .bool("loc_cache", spec.loc_cache);
        // The fault-injection instant appears only when set, so replicated
        // steady-state runs and failover runs are distinguishable.
        if let Some(fault_at) = spec.fault_at {
            params = params.u64("fault_at_ns", fault_at);
        }
        // Same for the lossy-fabric plan: its parameters are stamped only
        // on chaos runs, so a report reader can tell a degraded-but-clean
        // fabric from a faulted one at a glance.
        if let Some(plan) = spec.fault_plan {
            params = params
                .f64("fault_drop_p", plan.drop_p, 6)
                .f64("fault_dup_p", plan.dup_p, 6)
                .f64("fault_delay_p", plan.delay_p, 6)
                .u64("fault_delay_ns", plan.delay_ns)
                .u64("fault_seed", plan.seed);
        }
        let params = params.finish();
        let mut counters = Obj::new();
        for (name, v) in &result.counters {
            counters = counters.u64(name, *v);
        }
        let mut entry = Obj::new()
            .str("label", label)
            .raw("params", &params)
            .u64("total_ops", result.total_ops)
            .u64("elapsed_ns", result.elapsed_ns)
            .f64("mops", result.mops, 6)
            .raw("get", &latency_json(&result.get))
            .raw("put", &latency_json(&result.put))
            .raw("all", &latency_json(&result.all))
            .u64("server_rpc_gets", result.server_rpc_gets)
            .u64("bg_verified", result.bg_verified)
            .u64("cleanings", result.cleanings)
            .raw("counters", &counters.finish());
        // v2: the critical-path sections, present only when the run folded
        // attributed ops (baseline systems emit no "op" roots).
        if let Some(b) = &result.breakdown {
            entry = entry
                .raw("breakdown", &b.to_json())
                .raw("tail_exemplars", &b.exemplars_json());
        }
        self.entries.push(entry.finish());
    }

    /// Record a latency-only measurement (micro-drivers that bypass the
    /// cluster harness, e.g. Figure 2's read-after-write probe). The entry
    /// carries `label` and the `all` latency block only.
    pub fn add_latency(&mut self, label: &str, stats: &LatencyStats) {
        let entry = Obj::new()
            .str("label", label)
            .raw("all", &latency_json(stats))
            .finish();
        self.entries.push(entry);
    }

    /// Render the whole report.
    pub fn to_json(&self) -> String {
        let mut entries = Arr::new();
        for e in &self.entries {
            entries = entries.raw(e);
        }
        Obj::new()
            .str("schema", SCHEMA)
            .str("figure", &self.figure)
            .raw("cost_model", &cost_model_json(&self.cost))
            .raw("entries", &entries.finish())
            .finish()
    }

    /// Write the report to `path` (trailing newline included).
    pub fn write_to(&self, path: impl AsRef<Path>) -> io::Result<()> {
        std::fs::write(path, self.to_json() + "\n")
    }
}

fn latency_json(s: &LatencyStats) -> String {
    Obj::new()
        .u64("count", s.count)
        .f64("mean_ns", s.mean_ns, 3)
        .u64("p50_ns", s.p50_ns)
        .u64("p99_ns", s.p99_ns)
        .u64("p999_ns", s.p999_ns)
        .u64("max_ns", s.max_ns)
        .finish()
}

fn cost_model_json(c: &CostModel) -> String {
    Obj::new()
        .u64("net_one_way_ns", c.net_one_way_ns)
        .u64("net_ns_per_kb", c.net_ns_per_kb)
        .u64("cpu_recv_post_ns", c.cpu_recv_post_ns)
        .u64("cpu_recv_post_batched_ns", c.cpu_recv_post_batched_ns)
        .u64("cpu_send_post_ns", c.cpu_send_post_ns)
        .u64("cpu_send_post_batched_ns", c.cpu_send_post_batched_ns)
        .u64("cpu_req_handle_ns", c.cpu_req_handle_ns)
        .u64("cpu_hash_ns", c.cpu_hash_ns)
        .u64("cpu_alloc_ns", c.cpu_alloc_ns)
        .u64("cpu_mem_hop_ns", c.cpu_mem_hop_ns)
        .u64("cpu_memcpy_ns_per_kb", c.cpu_memcpy_ns_per_kb)
        .u64("cpu_imm_completion_ns", c.cpu_imm_completion_ns)
        .u64("cpu_twosided_bulk_ns", c.cpu_twosided_bulk_ns)
        .u64("crc_ns_per_kb", c.crc_ns_per_kb)
        .u64("crc_hw_ns_per_kb", c.crc_hw_ns_per_kb)
        .u64("flush_base_ns", c.flush_base_ns)
        .u64("flush_ns_per_kb", c.flush_ns_per_kb)
        .bool("ddio_enabled", c.ddio_enabled)
        .u64("non_ddio_dma_ns_per_kb", c.non_ddio_dma_ns_per_kb)
        .finish()
}

/// Parse a `--json <path>` argument pair out of `std::env::args`-style
/// input. Returns the path if the flag is present — possibly empty when
/// the flag was given without a value (`--json` at end of line, or
/// `--json=`), which callers should reject up front rather than panic
/// at write time after the benchmark has run.
pub fn json_path_from_args(args: impl Iterator<Item = String>) -> Option<String> {
    let mut args = args.peekable();
    while let Some(a) = args.next() {
        if a == "--json" {
            return Some(args.next().unwrap_or_default());
        }
        if let Some(p) = a.strip_prefix("--json=") {
            return Some(p.to_string());
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::{run_with_cost, Cleaning, SystemKind};
    use efactory_ycsb::Mix;

    fn spec() -> ExperimentSpec {
        ExperimentSpec {
            system: SystemKind::EFactory,
            mix: Mix::A,
            value_len: 128,
            key_len: 16,
            clients: 2,
            ops_per_client: 40,
            record_count: 32,
            seed: 11,
            cleaning: Cleaning::Disabled,
            force_clean: false,
            shards: 1,
            doorbell_batch: 0,
            replicas: 0,
            fault_at: None,
            fault_plan: None,
            scrub: false,
            window: 1,
            loc_cache: false,
            snap_readers: 0,
            nodes: 1,
            migrate_at: None,
            exec: None,
        }
    }

    #[test]
    fn json_arg_parsing() {
        let args = |v: &[&str]| v.iter().map(|s| s.to_string()).collect::<Vec<_>>();
        assert_eq!(
            json_path_from_args(args(&["bin", "--json", "out.json"]).into_iter()),
            Some("out.json".to_string())
        );
        assert_eq!(
            json_path_from_args(args(&["bin", "--json=x.json"]).into_iter()),
            Some("x.json".to_string())
        );
        assert_eq!(json_path_from_args(args(&["bin"]).into_iter()), None);
        // Flag without a value parses as an empty path so callers can
        // report the mistake instead of silently dropping the report.
        assert_eq!(
            json_path_from_args(args(&["bin", "--json"]).into_iter()),
            Some(String::new())
        );
        assert_eq!(
            json_path_from_args(args(&["bin", "--json="]).into_iter()),
            Some(String::new())
        );
    }

    #[test]
    fn report_is_schema_stamped_and_deterministic() {
        let s = spec();
        let cost = CostModel::default();
        let render = || {
            let mut rep = Report::new("test");
            let r = run_with_cost(&s, cost.clone());
            rep.add("run-a", &s, &r);
            rep.to_json()
        };
        let a = render();
        let b = render();
        assert_eq!(a, b, "same seed must render byte-identical reports");
        assert!(a.starts_with(&format!("{{\"schema\":\"{SCHEMA}\"")));
        assert!(a.contains("\"cost_model\":{\"net_one_way_ns\":900"));
        assert!(a.contains("\"p999_ns\":"));
        assert!(a.contains("\"server.puts\":"));
        assert!(a.contains("\"pmem.flushes\":"));
        assert!(a.contains("\"fabric.sends\":"));
        assert!(a.contains("\"replicas\":0"));
        assert!(a.contains("\"scrub\":false"));
        assert!(a.contains("\"fabric.crashes\":0"));
        assert!(a.contains("\"fabric.links_down\":0"));
        assert!(a.contains("\"fabric.fault.dropped\":0"));
        assert!(!a.contains("\"fault_at_ns\""), "unset fault omitted");
        assert!(!a.contains("\"fault_drop_p\""), "unset plan omitted");
        // v2 sections: an eFactory run with measured ops folds a breakdown
        // whose conservation invariant holds exactly, plus tail exemplars.
        assert!(a.contains("\"breakdown\":{\"ops\":"));
        assert!(a.contains("\"conservation_max_err_ns\":0"));
        assert!(a.contains("\"tail_exemplars\":[{\"op\":"));
        assert!(a.contains("\"obs.trace_dropped\":0"));
    }

    #[test]
    fn replicated_faulted_run_stamps_fault_instant() {
        let s = ExperimentSpec {
            replicas: 1,
            fault_at: Some(5_000),
            ..spec()
        };
        let mut rep = Report::new("test");
        let r = run_with_cost(&s, CostModel::default());
        rep.add("run-f", &s, &r);
        let json = rep.to_json();
        assert!(json.contains("\"replicas\":1"));
        assert!(json.contains("\"fault_at_ns\":5000"));
    }

    #[test]
    fn zero_op_run_reports_zero_summary() {
        // A run with no measured operations must still produce a report
        // (explicit zero summary) rather than aborting.
        let s = ExperimentSpec {
            ops_per_client: 0,
            ..spec()
        };
        let mut rep = Report::new("test");
        let r = run_with_cost(&s, CostModel::default());
        rep.add("run-z", &s, &r);
        let json = rep.to_json();
        assert!(json.contains("\"total_ops\":0"));
        assert!(json.contains("\"count\":0"));
        // No measured ops ⇒ no attributed roots in the window ⇒ the v2
        // sections are omitted rather than rendered empty.
        assert!(!json.contains("\"breakdown\""));
    }
}
