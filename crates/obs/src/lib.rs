//! # efactory-obs — deterministic tracing and metrics
//!
//! Observability layer for the eFactory reproduction. Everything in this
//! crate is **deterministic**: timestamps come from the simulator's virtual
//! clock, metric iteration order is lexicographic, and the JSON emitters
//! format numbers with integer math — so two runs with the same seed produce
//! byte-identical traces and reports.
//!
//! Three pillars:
//!
//! * [`metrics`] — named [`Counter`]s/[`Gauge`]s collected in a [`Registry`],
//!   plus a streaming log-bucketed latency [`Histogram`] (HDR-style: ≤ ~1.6 %
//!   relative error, O(1) memory, exact below 64 ns).
//! * [`trace`] — a [`Tracer`] recording *spans* (operation phases with a
//!   duration) and *instant events*, stamped with [`efactory_sim::try_now`],
//!   kept in a bounded ring buffer with per-subsystem filtering, and
//!   exportable as Chrome `trace_event` JSON (load in `chrome://tracing` or
//!   Perfetto).
//! * [`json`] — a tiny dependency-free JSON writer used by the exporters and
//!   by the harness's run reports.
//!
//! The [`Obs`] bundle (one registry + one tracer) is what gets threaded
//! through server/client configs; it is cheap to clone (two `Arc`s) and its
//! `Default` is fully enabled, so existing `..Default::default()` call sites
//! pick up observability without changes.

pub mod critical_path;
pub mod hist;
pub mod json;
pub mod metrics;
pub mod trace;

pub use critical_path::{Breakdown, FoldConfig};
pub use hist::Histogram;
pub use metrics::{Counter, Gauge, Registry};
pub use trace::{OpScope, RecordKind, SpanGuard, Subsystem, TraceRecord, Tracer};

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// One observability context: a metrics registry plus a tracer. Threaded
/// through `ServerConfig`/`ClientConfig` and created per experiment by the
/// harness so concurrent experiments never share state.
#[derive(Clone, Default)]
pub struct Obs {
    /// Named counters, gauges, and histograms.
    pub registry: Registry,
    /// Span/event recorder.
    pub tracer: Tracer,
    /// Monotonic op-id source shared by all clones; ids start at 1 (0 is
    /// "unattributed" in trace records).
    op_source: Arc<AtomicU64>,
}

impl Obs {
    /// A fresh, fully enabled context.
    pub fn new() -> Obs {
        Obs::default()
    }

    /// A context whose tracer ring holds up to `capacity` records — used by
    /// the breakdown bench, whose folds need every per-op span retained.
    pub fn with_trace_capacity(capacity: usize) -> Obs {
        Obs {
            tracer: Tracer::with_capacity(capacity),
            ..Obs::default()
        }
    }

    /// Allocate the next operation id (deterministic: ids are handed out in
    /// program order, which the simulator serializes).
    pub fn next_op_id(&self) -> u64 {
        self.op_source.fetch_add(1, Ordering::Relaxed) + 1
    }
}

impl std::fmt::Debug for Obs {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Obs")
            .field("metrics", &self.registry.len())
            .field("trace_records", &self.tracer.len())
            .finish()
    }
}
