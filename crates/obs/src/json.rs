//! A tiny, dependency-free JSON writer.
//!
//! The repository has no serde_json; this module provides the few pieces the
//! exporters need: string escaping and incremental object/array builders.
//! Output is deterministic — field order is insertion order and all numeric
//! formatting goes through Rust's standard (locale-independent) formatter.

/// Escape `s` as the *contents* of a JSON string (no surrounding quotes).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Incremental JSON object builder.
pub struct Obj {
    buf: String,
    first: bool,
}

impl Obj {
    /// Start `{`.
    pub fn new() -> Obj {
        Obj {
            buf: String::from("{"),
            first: true,
        }
    }

    fn key(&mut self, k: &str) {
        if !self.first {
            self.buf.push(',');
        }
        self.first = false;
        self.buf.push('"');
        self.buf.push_str(&escape(k));
        self.buf.push_str("\":");
    }

    /// Add a string field.
    pub fn str(mut self, k: &str, v: &str) -> Obj {
        self.key(k);
        self.buf.push('"');
        self.buf.push_str(&escape(v));
        self.buf.push('"');
        self
    }

    /// Add an unsigned integer field.
    pub fn u64(mut self, k: &str, v: u64) -> Obj {
        self.key(k);
        self.buf.push_str(&v.to_string());
        self
    }

    /// Add a boolean field.
    pub fn bool(mut self, k: &str, v: bool) -> Obj {
        self.key(k);
        self.buf.push_str(if v { "true" } else { "false" });
        self
    }

    /// Add a float field rendered with `decimals` fractional digits
    /// (fixed-point, so output is stable across platforms).
    pub fn f64(mut self, k: &str, v: f64, decimals: usize) -> Obj {
        self.key(k);
        self.buf.push_str(&format!("{v:.decimals$}"));
        self
    }

    /// Add a pre-rendered JSON value verbatim.
    pub fn raw(mut self, k: &str, v: &str) -> Obj {
        self.key(k);
        self.buf.push_str(v);
        self
    }

    /// Close `}` and return the rendered object.
    pub fn finish(mut self) -> String {
        self.buf.push('}');
        self.buf
    }
}

impl Default for Obj {
    fn default() -> Self {
        Obj::new()
    }
}

/// Incremental JSON array builder.
pub struct Arr {
    buf: String,
    first: bool,
}

impl Arr {
    /// Start `[`.
    pub fn new() -> Arr {
        Arr {
            buf: String::from("["),
            first: true,
        }
    }

    /// Append a pre-rendered JSON value.
    pub fn raw(mut self, v: &str) -> Arr {
        if !self.first {
            self.buf.push(',');
        }
        self.first = false;
        self.buf.push_str(v);
        self
    }

    /// Close `]` and return the rendered array.
    pub fn finish(mut self) -> String {
        self.buf.push(']');
        self.buf
    }
}

impl Default for Arr {
    fn default() -> Self {
        Arr::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escaping_covers_controls_and_quotes() {
        assert_eq!(escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(escape("\u{1}"), "\\u0001");
        assert_eq!(escape("plain"), "plain");
    }

    #[test]
    fn object_and_array_render() {
        let inner = Obj::new().u64("n", 3).finish();
        let arr = Arr::new().raw("1").raw("2").finish();
        let s = Obj::new()
            .str("name", "x\"y")
            .f64("rate", 1.5, 3)
            .bool("ok", true)
            .raw("inner", &inner)
            .raw("list", &arr)
            .finish();
        assert_eq!(
            s,
            r#"{"name":"x\"y","rate":1.500,"ok":true,"inner":{"n":3},"list":[1,2]}"#
        );
    }

    #[test]
    fn empty_builders() {
        assert_eq!(Obj::new().finish(), "{}");
        assert_eq!(Arr::new().finish(), "[]");
    }
}
