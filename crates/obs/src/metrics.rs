//! Named counters, gauges, and histograms in a deterministic registry.
//!
//! [`Counter`] deliberately mirrors the `AtomicU64` read/update surface
//! (`fetch_add` / `load` with an ignored ordering argument), so stats
//! structs migrating from ad-hoc atomics keep their call sites unchanged —
//! the simulator serializes execution, making `Relaxed` semantics exact.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::hist::Histogram;
use crate::json::Obj;

/// A monotonically increasing counter. Cloning is cheap and clones share
/// the value, so a counter can live in a stats struct *and* a [`Registry`].
#[derive(Clone, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// A fresh zeroed counter.
    pub fn new() -> Counter {
        Counter::default()
    }

    /// Increment by `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Increment by 1.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }

    /// `AtomicU64`-compatible increment (ordering ignored; execution is
    /// serialized by the simulator).
    pub fn fetch_add(&self, n: u64, _order: Ordering) -> u64 {
        self.0.fetch_add(n, Ordering::Relaxed)
    }

    /// `AtomicU64`-compatible read (ordering ignored).
    pub fn load(&self, _order: Ordering) -> u64 {
        self.get()
    }

    /// `AtomicU64`-compatible overwrite (used when mirroring externally
    /// maintained counters into a registry).
    pub fn store(&self, v: u64, _order: Ordering) {
        self.0.store(v, Ordering::Relaxed);
    }
}

impl std::fmt::Debug for Counter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.get())
    }
}

/// A settable instantaneous value (same sharing semantics as [`Counter`]).
#[derive(Clone, Default)]
pub struct Gauge(Arc<AtomicU64>);

impl Gauge {
    /// A fresh zeroed gauge.
    pub fn new() -> Gauge {
        Gauge::default()
    }

    /// Set the value.
    pub fn set(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

impl std::fmt::Debug for Gauge {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.get())
    }
}

enum Metric {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

/// A named-metric registry. Iteration order is lexicographic (`BTreeMap`),
/// so snapshots and JSON output are deterministic.
#[derive(Clone, Default)]
pub struct Registry(Arc<Mutex<BTreeMap<String, Metric>>>);

impl Registry {
    /// A fresh empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    /// Number of registered metrics.
    pub fn len(&self) -> usize {
        self.0.lock().unwrap().len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Get or create the counter named `name`.
    pub fn counter(&self, name: &str) -> Counter {
        let mut m = self.0.lock().unwrap();
        match m
            .entry(name.to_string())
            .or_insert_with(|| Metric::Counter(Counter::new()))
        {
            Metric::Counter(c) => c.clone(),
            _ => panic!("metric '{name}' is not a counter"),
        }
    }

    /// Get or create the gauge named `name`.
    pub fn gauge(&self, name: &str) -> Gauge {
        let mut m = self.0.lock().unwrap();
        match m
            .entry(name.to_string())
            .or_insert_with(|| Metric::Gauge(Gauge::new()))
        {
            Metric::Gauge(g) => g.clone(),
            _ => panic!("metric '{name}' is not a gauge"),
        }
    }

    /// Get or create the histogram named `name`.
    pub fn histogram(&self, name: &str) -> Histogram {
        let mut m = self.0.lock().unwrap();
        match m
            .entry(name.to_string())
            .or_insert_with(|| Metric::Histogram(Histogram::new()))
        {
            Metric::Histogram(h) => h.clone(),
            _ => panic!("metric '{name}' is not a histogram"),
        }
    }

    /// Register an existing counter under `name` (sharing its value).
    /// Re-attaching a name replaces the previous binding.
    pub fn attach_counter(&self, name: &str, c: &Counter) {
        self.0
            .lock()
            .unwrap()
            .insert(name.to_string(), Metric::Counter(c.clone()));
    }

    /// Register an existing histogram under `name`.
    pub fn attach_histogram(&self, name: &str, h: &Histogram) {
        self.0
            .lock()
            .unwrap()
            .insert(name.to_string(), Metric::Histogram(h.clone()));
    }

    /// Scalar snapshot: every counter and gauge as `(name, value)`, plus
    /// each histogram's count as `<name>.count`. Lexicographic order.
    pub fn snapshot(&self) -> Vec<(String, u64)> {
        self.0
            .lock()
            .unwrap()
            .iter()
            .map(|(name, m)| match m {
                Metric::Counter(c) => (name.clone(), c.get()),
                Metric::Gauge(g) => (name.clone(), g.get()),
                Metric::Histogram(h) => (format!("{name}.count"), h.count()),
            })
            .collect()
    }

    /// Render the scalar snapshot as one flat JSON object.
    pub fn to_json(&self) -> String {
        let mut o = Obj::new();
        for (name, v) in self.snapshot() {
            o = o.u64(&name, v);
        }
        o.finish()
    }
}

impl std::fmt::Debug for Registry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_map().entries(self.snapshot()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_share_state_across_clones() {
        let c = Counter::new();
        let c2 = c.clone();
        c.add(3);
        c2.fetch_add(2, Ordering::Relaxed);
        assert_eq!(c.get(), 5);
        assert_eq!(c2.load(Ordering::SeqCst), 5);
    }

    #[test]
    fn registry_get_or_create_and_attach() {
        let r = Registry::new();
        let a = r.counter("z.second");
        a.inc();
        let pre = Counter::new();
        pre.add(7);
        r.attach_counter("a.first", &pre);
        r.gauge("m.gauge").set(42);
        let h = r.histogram("lat");
        h.record(10);
        assert_eq!(
            r.snapshot(),
            vec![
                ("a.first".to_string(), 7),
                ("lat.count".to_string(), 1),
                ("m.gauge".to_string(), 42),
                ("z.second".to_string(), 1),
            ]
        );
        // Same name returns the same underlying counter.
        r.counter("z.second").inc();
        assert_eq!(a.get(), 2);
    }

    #[test]
    fn snapshot_json_is_sorted_and_flat() {
        let r = Registry::new();
        r.counter("b").add(2);
        r.counter("a").add(1);
        assert_eq!(r.to_json(), r#"{"a":1,"b":2}"#);
    }

    #[test]
    #[should_panic(expected = "not a counter")]
    fn kind_mismatch_panics() {
        let r = Registry::new();
        r.gauge("x");
        r.counter("x");
    }
}
