//! Streaming log-bucketed latency histogram (HDR-histogram style).
//!
//! Values below [`EXACT_LIMIT`] land in unit-width buckets (exact). Above
//! that, each power-of-two octave is split into [`SUBBUCKETS`] sub-buckets,
//! bounding the relative quantile error by `1/SUBBUCKETS` ≈ 1.6 % — inside
//! the 2 % budget the harness promises — while memory stays constant
//! (~3.8 K buckets for the full `u64` range) and `record` is O(1).
//!
//! Reported quantiles use each bucket's *upper* edge, so a streaming
//! percentile never under-reports the exact one.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Sub-buckets per octave (2^6): bounds relative error by 1/64.
pub const SUBBUCKETS: u64 = 64;
const SUB_BITS: u32 = 6;
/// Values below this are recorded exactly (unit buckets).
pub const EXACT_LIMIT: u64 = SUBBUCKETS;
/// Octaves covering values from `EXACT_LIMIT` up to `u64::MAX`.
const OCTAVES: usize = 58; // msb 6..=63
const BUCKETS: usize = EXACT_LIMIT as usize + OCTAVES * SUBBUCKETS as usize;

struct Inner {
    buckets: Box<[AtomicU64]>,
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

/// A shareable streaming histogram. Cloning is cheap (an `Arc`); all clones
/// record into the same buckets.
#[derive(Clone)]
pub struct Histogram(Arc<Inner>);

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Histogram {
        Histogram(Arc::new(Inner {
            buckets: (0..BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }))
    }

    fn index(v: u64) -> usize {
        if v < EXACT_LIMIT {
            return v as usize;
        }
        let msb = 63 - v.leading_zeros(); // >= SUB_BITS
        let octave = (msb - SUB_BITS) as usize;
        let sub = ((v >> (msb - SUB_BITS)) & (SUBBUCKETS - 1)) as usize;
        EXACT_LIMIT as usize + octave * SUBBUCKETS as usize + sub
    }

    /// Upper edge of bucket `idx` — the value reported for samples in it.
    fn bucket_value(idx: usize) -> u64 {
        if idx < EXACT_LIMIT as usize {
            return idx as u64;
        }
        let rel = idx - EXACT_LIMIT as usize;
        let octave = (rel / SUBBUCKETS as usize) as u32;
        let sub = (rel % SUBBUCKETS as usize) as u64;
        let low = (SUBBUCKETS + sub) << octave;
        low + ((1u64 << octave) - 1)
    }

    /// Record one sample.
    pub fn record(&self, v: u64) {
        self.0.buckets[Self::index(v)].fetch_add(1, Ordering::Relaxed);
        self.0.count.fetch_add(1, Ordering::Relaxed);
        self.0.sum.fetch_add(v, Ordering::Relaxed);
        self.0.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.0.count.load(Ordering::Relaxed)
    }

    /// Arithmetic mean of the samples (0 when empty). Exact: the sum is
    /// tracked directly, not reconstructed from buckets.
    pub fn mean(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.0.sum.load(Ordering::Relaxed) as f64 / n as f64
        }
    }

    /// Exact maximum recorded value (0 when empty).
    pub fn max(&self) -> u64 {
        self.0.max.load(Ordering::Relaxed)
    }

    /// Nearest-rank quantile (`q` in percent, e.g. `99.9`), matching the
    /// harness's exact `percentile` convention. Returns the bucket upper
    /// edge, clamped to the exact maximum. 0 when empty.
    pub fn value_at_quantile(&self, q: f64) -> u64 {
        let n = self.count();
        if n == 0 {
            return 0;
        }
        let rank = ((q / 100.0) * n as f64).ceil() as u64;
        let rank = rank.clamp(1, n);
        let mut seen = 0u64;
        for (idx, b) in self.0.buckets.iter().enumerate() {
            seen += b.load(Ordering::Relaxed);
            if seen >= rank {
                return Self::bucket_value(idx).min(self.max());
            }
        }
        self.max()
    }

    /// Median.
    pub fn p50(&self) -> u64 {
        self.value_at_quantile(50.0)
    }

    /// 99th percentile.
    pub fn p99(&self) -> u64 {
        self.value_at_quantile(99.0)
    }

    /// 99.9th percentile.
    pub fn p999(&self) -> u64 {
        self.value_at_quantile(99.9)
    }

    /// Fold `other`'s samples into `self` (bucket-wise add; count/sum add,
    /// max folds with `max`). Merging is associative and commutative, so
    /// per-shard histograms can be combined in any order.
    pub fn merge(&self, other: &Histogram) {
        for (mine, theirs) in self.0.buckets.iter().zip(other.0.buckets.iter()) {
            let n = theirs.load(Ordering::Relaxed);
            if n != 0 {
                mine.fetch_add(n, Ordering::Relaxed);
            }
        }
        self.0
            .count
            .fetch_add(other.0.count.load(Ordering::Relaxed), Ordering::Relaxed);
        self.0
            .sum
            .fetch_add(other.0.sum.load(Ordering::Relaxed), Ordering::Relaxed);
        self.0
            .max
            .fetch_max(other.0.max.load(Ordering::Relaxed), Ordering::Relaxed);
    }
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Histogram")
            .field("count", &self.count())
            .field("p50", &self.p50())
            .field("p99", &self.p99())
            .field("max", &self.max())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_reports_zeroes() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.p50(), 0);
        assert_eq!(h.p999(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.mean(), 0.0);
    }

    #[test]
    fn small_values_are_exact() {
        let h = Histogram::new();
        for v in 0..EXACT_LIMIT {
            h.record(v);
        }
        assert_eq!(h.p50(), 31); // nearest-rank ceil(0.5*64)=32nd sample = 31
        assert_eq!(h.max(), 63);
        assert_eq!(h.value_at_quantile(100.0), 63);
    }

    #[test]
    fn quantiles_match_exact_within_error_bound() {
        // Deterministic pseudo-random sample set spanning several octaves.
        let mut v: Vec<u64> = Vec::new();
        let mut x = 0x9e3779b97f4a7c15u64;
        for _ in 0..10_000 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            v.push(1 + (x >> 33) % 5_000_000);
        }
        let h = Histogram::new();
        for &s in &v {
            h.record(s);
        }
        v.sort_unstable();
        for q in [50.0, 90.0, 99.0, 99.9] {
            let rank = ((q / 100.0) * v.len() as f64).ceil() as usize;
            let exact = v[rank.clamp(1, v.len()) - 1];
            let approx = h.value_at_quantile(q);
            assert!(approx >= exact, "q{q}: {approx} < exact {exact}");
            let err = (approx - exact) as f64 / exact as f64;
            assert!(
                err <= 0.02,
                "q{q}: error {err} above 2% ({approx} vs {exact})"
            );
        }
        assert_eq!(h.count(), 10_000);
        let exact_mean = v.iter().sum::<u64>() as f64 / v.len() as f64;
        assert!((h.mean() - exact_mean).abs() < 1e-6);
    }

    #[test]
    fn empty_merge_is_identity_both_ways() {
        let h = Histogram::new();
        h.record(100);
        h.record(2_000);
        let (count, p50, p999, max, mean) = (h.count(), h.p50(), h.p999(), h.max(), h.mean());
        // Merging an empty histogram in changes nothing...
        h.merge(&Histogram::new());
        assert_eq!(
            (h.count(), h.p50(), h.p999(), h.max(), h.mean()),
            (count, p50, p999, max, mean)
        );
        // ...and merging into an empty histogram reproduces the source.
        let empty = Histogram::new();
        empty.merge(&h);
        assert_eq!(
            (empty.count(), empty.p50(), empty.p999(), empty.max()),
            (count, p50, p999, max)
        );
        // Empty ∪ empty stays empty.
        let e2 = Histogram::new();
        e2.merge(&Histogram::new());
        assert_eq!((e2.count(), e2.p999(), e2.max()), (0, 0, 0));
    }

    #[test]
    fn single_bucket_merge_matches_repeated_record() {
        // All samples land in one bucket: quantiles collapse to that value
        // and the merged count is the sum.
        let a = Histogram::new();
        let b = Histogram::new();
        for _ in 0..3 {
            a.record(42);
        }
        for _ in 0..5 {
            b.record(42);
        }
        a.merge(&b);
        assert_eq!(a.count(), 8);
        assert_eq!(a.p50(), 42);
        assert_eq!(a.value_at_quantile(100.0), 42);
        assert_eq!(a.max(), 42);
        assert_eq!(a.mean(), 42.0);
    }

    #[test]
    fn cross_octave_merge_is_associative() {
        // Samples spanning the exact region and several octaves, split three
        // ways: (a ∪ b) ∪ c must equal a ∪ (b ∪ c) on every quantile.
        let mk = |seed: u64, n: u64| {
            let h = Histogram::new();
            let mut x = seed;
            for _ in 0..n {
                x = x
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                h.record(1 + (x >> 33) % 3_000_000);
            }
            h
        };
        let (a1, b1, c1) = (mk(1, 500), mk(2, 700), mk(3, 90));
        let (a2, b2, c2) = (mk(1, 500), mk(2, 700), mk(3, 90));
        // left-assoc into a1
        a1.merge(&b1);
        a1.merge(&c1);
        // right-assoc: b2 ∪ c2 first, then into a2
        b2.merge(&c2);
        a2.merge(&b2);
        assert_eq!(a1.count(), a2.count());
        assert_eq!(a1.max(), a2.max());
        assert_eq!(a1.mean(), a2.mean());
        for q in [1.0, 50.0, 90.0, 99.0, 99.9, 100.0] {
            assert_eq!(a1.value_at_quantile(q), a2.value_at_quantile(q), "q{q}");
        }
    }

    #[test]
    fn max_is_exact_and_caps_quantiles() {
        let h = Histogram::new();
        h.record(1_000_003);
        assert_eq!(h.max(), 1_000_003);
        assert_eq!(h.p999(), 1_000_003);
    }

    #[test]
    fn bucket_roundtrip_bounds() {
        for v in [
            0u64,
            1,
            63,
            64,
            65,
            127,
            128,
            1_000,
            1 << 20,
            u64::MAX / 2,
            u64::MAX,
        ] {
            let idx = Histogram::index(v);
            let upper = Histogram::bucket_value(idx);
            assert!(upper >= v, "upper edge below value for {v}");
            if v >= EXACT_LIMIT {
                // Relative width within the 1/64 design bound.
                assert!(
                    (upper - v) as f64 <= v as f64 / 64.0 + 1.0,
                    "{v} -> {upper}"
                );
            } else {
                assert_eq!(upper, v);
            }
        }
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #[test]
            fn streaming_quantiles_track_exact(
                samples in proptest::collection::vec(1u64..100_000_000, 100..800),
                q in 1.0f64..100.0,
            ) {
                let h = Histogram::new();
                for &s in &samples {
                    h.record(s);
                }
                let mut sorted = samples.clone();
                sorted.sort_unstable();
                let rank = ((q / 100.0) * sorted.len() as f64).ceil() as usize;
                let exact = sorted[rank.clamp(1, sorted.len()) - 1];
                let approx = h.value_at_quantile(q);
                prop_assert!(approx >= exact);
                prop_assert!((approx - exact) as f64 <= exact as f64 * 0.02);
            }
        }
    }
}
