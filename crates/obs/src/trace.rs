//! Virtual-time span/event tracing with Chrome `trace_event` export.
//!
//! Spans cover operation *phases* (RPC alloc, RDMA write, CRC verify,
//! flush/drain, fallback RPC, cleaning); instant events mark discrete
//! occurrences (verifier timeouts, cleaner stage transitions, NVM crashes,
//! NIC verb completions). Timestamps come from the simulator's virtual
//! clock ([`efactory_sim::try_now`]; records emitted from outside a
//! simulated process — e.g. test drivers between `run_until` calls — are
//! stamped 0).
//!
//! The buffer is a bounded ring: when full, the oldest record is dropped
//! and counted, so tracing can stay on in long benchmark runs with O(1)
//! memory. Records carry a subsystem tag; a bitmask filter drops unwanted
//! subsystems at record time. Everything is deterministic — the export is
//! byte-identical across same-seed runs.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::{Arc, Mutex};

use efactory_sim::Nanos;

use crate::json::{Arr, Obj};

/// Which part of the system emitted a record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Subsystem {
    /// Request handler (server side).
    Server,
    /// Client library.
    Client,
    /// Background verifier.
    Verifier,
    /// Log cleaner.
    Cleaner,
    /// Persistent memory device.
    Pmem,
    /// NIC / fabric verbs.
    Nic,
    /// Replication tier (mirroring, backup apply, promotion).
    Repl,
    /// Cluster control plane: metadata service, membership, migration.
    Cluster,
}

impl Subsystem {
    /// All subsystems, in trace-lane order.
    pub const ALL: [Subsystem; 8] = [
        Subsystem::Server,
        Subsystem::Client,
        Subsystem::Verifier,
        Subsystem::Cleaner,
        Subsystem::Pmem,
        Subsystem::Nic,
        Subsystem::Repl,
        Subsystem::Cluster,
    ];

    /// Stable lane index (used as the Chrome-trace `tid`).
    pub fn lane(self) -> u32 {
        match self {
            Subsystem::Server => 0,
            Subsystem::Client => 1,
            Subsystem::Verifier => 2,
            Subsystem::Cleaner => 3,
            Subsystem::Pmem => 4,
            Subsystem::Nic => 5,
            Subsystem::Repl => 6,
            Subsystem::Cluster => 7,
        }
    }

    fn bit(self) -> u32 {
        1 << self.lane()
    }

    /// Category label used in exports.
    pub fn label(self) -> &'static str {
        match self {
            Subsystem::Server => "server",
            Subsystem::Client => "client",
            Subsystem::Verifier => "verifier",
            Subsystem::Cleaner => "cleaner",
            Subsystem::Pmem => "pmem",
            Subsystem::Nic => "nic",
            Subsystem::Repl => "repl",
            Subsystem::Cluster => "cluster",
        }
    }
}

/// Span (has a duration) or instant event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecordKind {
    /// A phase with start + duration.
    Span,
    /// A point-in-time event.
    Instant,
}

/// One recorded span or event.
#[derive(Debug, Clone)]
pub struct TraceRecord {
    /// Start (span) or occurrence (event) virtual time.
    pub ts: Nanos,
    /// Span duration; 0 for instants.
    pub dur: Nanos,
    /// Span or instant.
    pub kind: RecordKind,
    /// Emitting subsystem.
    pub sub: Subsystem,
    /// Phase/event name.
    pub name: &'static str,
    /// Operation id the record belongs to (0 = unattributed). Captured
    /// from the recording thread's [`OpScope`] when the span/event opens.
    pub op: u64,
    /// Optional numeric attributes.
    pub args: Vec<(&'static str, u64)>,
}

/// The op id active for the current simulated *process* (0 when none).
///
/// Stored in the sim kernel's per-process context slot, not a thread-local:
/// with the fiber executor every process shares the driver thread, and a
/// thread-local would leak one process's op id into the next at every park
/// point. Outside a simulation the kernel falls back to a per-thread slot,
/// so driver/test code behaves as before.
pub fn current_op() -> u64 {
    efactory_sim::op_ctx_get()
}

/// Marks the current process as executing op `op` until dropped; spans and
/// events recorded meanwhile inherit the id. Nests: the previous id is
/// restored on drop.
pub struct OpScope {
    prev: u64,
}

impl OpScope {
    /// Enter op `op` for the current process.
    pub fn enter(op: u64) -> OpScope {
        let prev = efactory_sim::op_ctx_replace(op);
        OpScope { prev }
    }
}

impl Drop for OpScope {
    fn drop(&mut self) {
        efactory_sim::op_ctx_replace(self.prev);
    }
}

struct Ring {
    buf: VecDeque<TraceRecord>,
    dropped: u64,
}

struct Inner {
    ring: Mutex<Ring>,
    mask: AtomicU32,
    capacity: usize,
}

/// Default ring capacity (records).
pub const DEFAULT_CAPACITY: usize = 65_536;

/// The span/event recorder. Cheap to clone; clones share the buffer.
#[derive(Clone)]
pub struct Tracer(Arc<Inner>);

impl Default for Tracer {
    fn default() -> Self {
        Tracer::with_capacity(DEFAULT_CAPACITY)
    }
}

fn clock() -> Nanos {
    efactory_sim::try_now().unwrap_or(0)
}

/// Chrome-trace lane (`tid`) used for overlay events appended via
/// [`Tracer::to_chrome_json_with_overlay`], one past the last subsystem.
pub const OVERLAY_LANE: u32 = 7;

/// Virtual nanoseconds rendered as Chrome-trace microseconds with integer
/// math (byte-identical across same-seed runs).
pub fn chrome_us(ns: Nanos) -> String {
    format!("{}.{:03}", ns / 1_000, ns % 1_000)
}

impl Tracer {
    /// A tracer with the default capacity, all subsystems enabled.
    pub fn new() -> Tracer {
        Tracer::default()
    }

    /// A tracer with a custom ring capacity.
    pub fn with_capacity(capacity: usize) -> Tracer {
        Tracer(Arc::new(Inner {
            ring: Mutex::new(Ring {
                buf: VecDeque::new(),
                dropped: 0,
            }),
            mask: AtomicU32::new(u32::MAX),
            capacity: capacity.max(1),
        }))
    }

    /// Record only the given subsystems (empty disables everything).
    pub fn filter(&self, subs: &[Subsystem]) {
        let mask = subs.iter().fold(0u32, |m, s| m | s.bit());
        self.0.mask.store(mask, Ordering::Relaxed);
    }

    /// Whether records from `sub` are currently kept.
    pub fn enabled(&self, sub: Subsystem) -> bool {
        self.0.mask.load(Ordering::Relaxed) & sub.bit() != 0
    }

    fn push(&self, rec: TraceRecord) {
        let mut ring = self.0.ring.lock().unwrap();
        if ring.buf.len() == self.0.capacity {
            ring.buf.pop_front();
            ring.dropped += 1;
        }
        ring.buf.push_back(rec);
    }

    /// Open a span for `name`; it is recorded (with its duration) when the
    /// guard drops. Filtered subsystems return an inert guard.
    pub fn span(&self, sub: Subsystem, name: &'static str) -> SpanGuard {
        SpanGuard {
            tracer: self.enabled(sub).then(|| self.clone()),
            sub,
            name,
            start: clock(),
            op: current_op(),
            args: Vec::new(),
        }
    }

    /// Record an already-measured span directly (explicit start + duration),
    /// attributed to the current thread's op. Used where the span window is
    /// known only after the fact, e.g. the pipelined client's per-op root
    /// spans ([submit, completion]) and NIC verb windows.
    pub fn record_span_at(
        &self,
        sub: Subsystem,
        name: &'static str,
        ts: Nanos,
        dur: Nanos,
        args: &[(&'static str, u64)],
    ) {
        if !self.enabled(sub) {
            return;
        }
        self.push(TraceRecord {
            ts,
            dur,
            kind: RecordKind::Span,
            sub,
            name,
            op: current_op(),
            args: args.to_vec(),
        });
    }

    /// Record an instant event.
    pub fn event(&self, sub: Subsystem, name: &'static str) {
        self.event_args(sub, name, &[]);
    }

    /// Record an instant event with numeric attributes.
    pub fn event_args(&self, sub: Subsystem, name: &'static str, args: &[(&'static str, u64)]) {
        if !self.enabled(sub) {
            return;
        }
        self.push(TraceRecord {
            ts: clock(),
            dur: 0,
            kind: RecordKind::Instant,
            sub,
            name,
            op: current_op(),
            args: args.to_vec(),
        });
    }

    /// Number of buffered records.
    pub fn len(&self) -> usize {
        self.0.ring.lock().unwrap().buf.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Records evicted by the ring bound.
    pub fn dropped(&self) -> u64 {
        self.0.ring.lock().unwrap().dropped
    }

    /// Snapshot of the buffered records, oldest first.
    pub fn records(&self) -> Vec<TraceRecord> {
        self.0.ring.lock().unwrap().buf.iter().cloned().collect()
    }

    /// Buffered records with the given name (tests and assertions).
    pub fn records_named(&self, name: &str) -> Vec<TraceRecord> {
        self.records()
            .into_iter()
            .filter(|r| r.name == name)
            .collect()
    }

    /// Export as Chrome `trace_event` JSON (open in `chrome://tracing` or
    /// Perfetto). Timestamps are virtual microseconds rendered with integer
    /// math, so same-seed runs export byte-identical bytes.
    pub fn to_chrome_json(&self) -> String {
        self.to_chrome_json_with_overlay(&[])
    }

    /// Chrome export with extra pre-rendered event objects appended after
    /// the recorded ones — used for the tail-exemplar overlay lane
    /// (`tid` [`OVERLAY_LANE`]) produced by `critical_path`.
    pub fn to_chrome_json_with_overlay(&self, extra_events: &[String]) -> String {
        let mut events = Arr::new();
        for r in self.records() {
            let mut o = Obj::new()
                .str("name", r.name)
                .str("cat", r.sub.label())
                .str(
                    "ph",
                    match r.kind {
                        RecordKind::Span => "X",
                        RecordKind::Instant => "i",
                    },
                )
                .raw("ts", &chrome_us(r.ts));
            match r.kind {
                RecordKind::Span => o = o.raw("dur", &chrome_us(r.dur)),
                RecordKind::Instant => o = o.str("s", "g"),
            }
            o = o.u64("pid", 0).u64("tid", r.sub.lane() as u64);
            if r.op != 0 || !r.args.is_empty() {
                let mut args = Obj::new();
                if r.op != 0 {
                    args = args.u64("op", r.op);
                }
                for (k, v) in &r.args {
                    args = args.u64(k, *v);
                }
                o = o.raw("args", &args.finish());
            }
            events = events.raw(&o.finish());
        }
        for e in extra_events {
            events = events.raw(e);
        }
        Obj::new()
            .raw("traceEvents", &events.finish())
            .str("displayTimeUnit", "ns")
            .u64("droppedRecords", self.dropped())
            .finish()
    }
}

impl std::fmt::Debug for Tracer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Tracer")
            .field("records", &self.len())
            .field("dropped", &self.dropped())
            .finish()
    }
}

/// Completes its span when dropped. Attach numeric attributes with
/// [`SpanGuard::arg`].
pub struct SpanGuard {
    tracer: Option<Tracer>,
    sub: Subsystem,
    name: &'static str,
    start: Nanos,
    op: u64,
    args: Vec<(&'static str, u64)>,
}

impl SpanGuard {
    /// Attach a numeric attribute to the span.
    pub fn arg(&mut self, key: &'static str, value: u64) {
        if self.tracer.is_some() {
            self.args.push((key, value));
        }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(tracer) = self.tracer.take() else {
            return;
        };
        tracer.push(TraceRecord {
            ts: self.start,
            dur: clock().saturating_sub(self.start),
            kind: RecordKind::Span,
            sub: self.sub,
            name: self.name,
            op: self.op,
            args: std::mem::take(&mut self.args),
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_and_events_record_in_order() {
        let t = Tracer::new();
        {
            let mut sp = t.span(Subsystem::Server, "rpc_alloc");
            sp.arg("vlen", 128);
        }
        t.event_args(Subsystem::Verifier, "invalidate", &[("off", 4096)]);
        let recs = t.records();
        assert_eq!(recs.len(), 2);
        assert_eq!(recs[0].name, "rpc_alloc");
        assert_eq!(recs[0].kind, RecordKind::Span);
        assert_eq!(recs[0].args, vec![("vlen", 128)]);
        assert_eq!(recs[1].name, "invalidate");
        assert_eq!(recs[1].kind, RecordKind::Instant);
    }

    #[test]
    fn filter_drops_disabled_subsystems() {
        let t = Tracer::new();
        t.filter(&[Subsystem::Client]);
        t.event(Subsystem::Server, "ignored");
        t.span(Subsystem::Verifier, "ignored_span");
        t.event(Subsystem::Client, "kept");
        assert_eq!(t.len(), 1);
        assert_eq!(t.records()[0].name, "kept");
    }

    #[test]
    fn ring_is_bounded_and_counts_drops() {
        let t = Tracer::with_capacity(3);
        for _ in 0..5 {
            t.event(Subsystem::Pmem, "tick");
        }
        assert_eq!(t.len(), 3);
        assert_eq!(t.dropped(), 2);
    }

    #[test]
    fn chrome_export_shape() {
        let t = Tracer::new();
        t.event(Subsystem::Cleaner, "clean_start");
        let json = t.to_chrome_json();
        assert!(json.starts_with(r#"{"traceEvents":["#), "{json}");
        assert!(json.contains(r#""name":"clean_start""#));
        assert!(json.contains(r#""cat":"cleaner""#));
        assert!(json.contains(r#""ph":"i""#));
        assert!(json.ends_with(r#""displayTimeUnit":"ns","droppedRecords":0}"#));
    }

    #[test]
    fn timestamps_outside_simulation_are_zero() {
        let t = Tracer::new();
        t.event(Subsystem::Nic, "e");
        assert_eq!(t.records()[0].ts, 0);
    }

    #[test]
    fn op_scope_attributes_and_nests() {
        let t = Tracer::new();
        assert_eq!(current_op(), 0);
        t.event(Subsystem::Client, "before");
        {
            let _outer = OpScope::enter(7);
            assert_eq!(current_op(), 7);
            t.span(Subsystem::Client, "outer_span");
            {
                let _inner = OpScope::enter(9);
                t.event(Subsystem::Nic, "inner_event");
            }
            assert_eq!(current_op(), 7);
        }
        assert_eq!(current_op(), 0);
        // The un-bound span guard drops (and records) immediately, before
        // the nested event.
        let recs = t.records();
        assert_eq!(recs[0].op, 0);
        assert_eq!(recs[1].name, "outer_span");
        assert_eq!(recs[1].op, 7, "span captures op at open");
        assert_eq!(recs[2].op, 9, "nested scope wins while active");
    }

    #[test]
    fn record_span_at_is_direct_and_attributed() {
        let t = Tracer::new();
        let _scope = OpScope::enter(3);
        t.record_span_at(Subsystem::Nic, "send", 100, 40, &[("bytes", 64)]);
        let recs = t.records();
        assert_eq!(recs.len(), 1);
        assert_eq!((recs[0].ts, recs[0].dur, recs[0].op), (100, 40, 3));
        assert_eq!(recs[0].kind, RecordKind::Span);
        t.filter(&[Subsystem::Client]);
        t.record_span_at(Subsystem::Nic, "send", 0, 0, &[]);
        assert_eq!(t.len(), 1, "filtered subsystem records nothing");
    }

    #[test]
    fn op_ids_render_in_chrome_args_and_overlay_appends() {
        let t = Tracer::new();
        {
            let _scope = OpScope::enter(5);
            t.event(Subsystem::Client, "tick");
        }
        let json = t.to_chrome_json();
        assert!(json.contains(r#""args":{"op":5}"#), "{json}");
        let overlay =
            t.to_chrome_json_with_overlay(&[r#"{"name":"exemplar","tid":7}"#.to_string()]);
        assert!(overlay.contains(r#"{"name":"exemplar","tid":7}"#));
        assert!(overlay.ends_with(r#""displayTimeUnit":"ns","droppedRecords":0}"#));
    }
}
